"""Counter/gauge/histogram registry for search-pipeline telemetry.

A `Metrics` registry holds named instruments that the instrumented
phases (`CostModel.build_tables`, `reduce_problem`, the DP vertex loop,
the resilient ladder, `execute_search`) bump as they run:

* `Counter` — monotone totals (``dp_cells_total``, ``table_cache_hits_total``)
* `Gauge` — last-written values (``dp_cells_per_second``)
* `Histogram` — bucketed latency distributions (``checkpoint_poll_seconds``)

Exports land either as JSON (``to_json``) or Prometheus text exposition
format (``to_prometheus``, ``pase_`` prefix); ``dump(path)`` picks the
format from the extension (``.prom``/``.txt`` → Prometheus, anything
else → JSON) and writes through the journal's atomic temp-file +
``os.replace`` pattern so a crash never leaves a half-written export.

Counters and gauges optionally carry **labels** (Prometheus dimension
sets): ``metrics.counter("serve_requests_total", labels={"code": "200"})``
registers one instrument per label combination under a shared family, so
the server can count requests by status without minting a metric name
per code.  Histograms stay label-free (their ``le`` buckets are already
a label dimension).

The default everywhere is `NULL_METRICS`, whose instruments are shared
no-ops — the hot path pays one attribute lookup per bump, nothing more.
"""

from __future__ import annotations

import json
import math
import os
import re
import tempfile
from typing import Any, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "NullMetrics",
    "NULL_METRICS",
    "DEFAULT_BUCKETS",
    "atomic_write_text",
]

#: Default histogram buckets, tuned for checkpoint-poll / per-vertex
#: latencies: 1 microsecond up to 1 second, one decade per pair.
DEFAULT_BUCKETS = (1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4,
                   1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0)

_NAME_RE = re.compile(r"^[a-z_][a-z0-9_]*$")

#: Label values are kept simple on purpose: no quotes, backslashes, or
#: newlines means the Prometheus exposition needs no escaping logic.
_LABEL_VALUE_RE = re.compile(r"^[A-Za-z0-9_.:/@ -]*$")


def _label_key(labels: "dict[str, str] | None") -> str:
    """Canonical ``{k="v",...}`` suffix (sorted); empty for no labels."""
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        value = str(labels[key])
        if not _NAME_RE.match(key):
            raise ValueError(f"invalid label name {key!r} "
                             "(want [a-z_][a-z0-9_]*)")
        if not _LABEL_VALUE_RE.match(value):
            raise ValueError(f"invalid label value {value!r} for {key!r}")
        parts.append(f'{key}="{value}"')
    return "{" + ",".join(parts) + "}"


def atomic_write_text(path: "str | os.PathLike", text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    Same crash-safety contract as `repro.runtime.journal.SearchJournal`'s
    flush: readers see either the old file or the complete new one.
    """
    path = os.fspath(path)
    parent = os.path.dirname(path) or "."
    os.makedirs(parent, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=parent, prefix=".metrics-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class Counter:
    """Monotonically increasing total."""

    kind = "counter"
    __slots__ = ("name", "help", "value", "labels")

    def __init__(self, name: str, help: str = "",
                 labels: "dict[str, str] | None" = None) -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self.labels = dict(labels) if labels else None

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """Last-written value."""

    kind = "gauge"
    __slots__ = ("name", "help", "value", "labels")

    def __init__(self, name: str, help: str = "",
                 labels: "dict[str, str] | None" = None) -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self.labels = dict(labels) if labels else None

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches the
    rest.  ``observe`` is O(len(buckets)) linear scan — fine for the
    ~dozen default buckets and the poll-frequency call rates here.
    """

    kind = "histogram"
    labels = None  # histograms stay label-free (``le`` is their dimension)
    __slots__ = ("name", "help", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name}: needs at least one bucket")
        self.name = name
        self.help = help
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def snapshot(self) -> dict[str, Any]:
        cumulative = []
        running = 0
        for c in self.counts:
            running += c
            cumulative.append(running)
        return {
            "buckets": {("+Inf" if math.isinf(b) else repr(b)): n
                        for b, n in zip(self.buckets + (math.inf,),
                                        cumulative)},
            "sum": self.sum,
            "count": self.count,
        }


class Metrics:
    """Get-or-create registry of named instruments.

    Names must match ``[a-z_][a-z0-9_]*`` (they become Prometheus metric
    names under the ``pase_`` prefix).  Re-requesting a name returns the
    existing instrument; requesting it as a different kind raises.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, Any] = {}

    def _get(self, cls, name: str, help: str,
             labels: "dict[str, str] | None" = None, **kwargs):
        key = name + _label_key(labels)
        inst = self._instruments.get(key)
        if inst is not None:
            if not isinstance(inst, cls):
                raise ValueError(
                    f"metric {key!r} already registered as {inst.kind}, "
                    f"requested as {cls.kind}")
            return inst
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r} "
                             "(want [a-z_][a-z0-9_]*)")
        if labels:
            kwargs["labels"] = labels
        inst = cls(name, help, **kwargs)
        self._instruments[key] = inst
        return inst

    def counter(self, name: str, help: str = "",
                labels: "dict[str, str] | None" = None) -> Counter:
        return self._get(Counter, name, help, labels=labels)

    def gauge(self, name: str, help: str = "",
              labels: "dict[str, str] | None" = None) -> Gauge:
        return self._get(Gauge, name, help, labels=labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def __iter__(self):
        return iter(sorted(self._instruments.values(),
                           key=lambda i: (i.name, _label_key(i.labels))))

    def __len__(self) -> int:
        return len(self._instruments)

    # -- exporters -----------------------------------------------------------

    def to_json(self) -> str:
        doc = {inst.name + _label_key(inst.labels):
               {"kind": inst.kind, "help": inst.help,
                "value": inst.snapshot()}
               for inst in self}
        return json.dumps(doc, indent=2, sort_keys=True) + "\n"

    def to_prometheus(self, prefix: str = "pase_") -> str:
        lines: list[str] = []
        described: set[str] = set()
        for inst in self:
            full = prefix + inst.name
            if full not in described:
                # HELP/TYPE announce the *family* once; labelled
                # siblings then contribute sample lines only.
                described.add(full)
                if inst.help:
                    lines.append(f"# HELP {full} {inst.help}")
                lines.append(f"# TYPE {full} {inst.kind}")
            if inst.labels:
                lines.append(
                    f"{full}{_label_key(inst.labels)} "
                    f"{inst.snapshot()!r}")
                continue
            if inst.kind == "histogram":
                running = 0
                for bound, n in zip(inst.buckets, inst.counts):
                    running += n
                    lines.append(f'{full}_bucket{{le="{bound!r}"}} {running}')
                running += inst.counts[-1]
                lines.append(f'{full}_bucket{{le="+Inf"}} {running}')
                lines.append(f"{full}_sum {inst.sum!r}")
                lines.append(f"{full}_count {inst.count}")
            else:
                value = inst.snapshot()
                text = repr(value) if isinstance(value, float) else str(value)
                lines.append(f"{full} {text}")
        return "\n".join(lines) + "\n" if lines else ""

    def dump(self, path: "str | os.PathLike") -> None:
        """Atomically export to ``path``; format chosen by extension."""
        ext = os.path.splitext(os.fspath(path))[1].lower()
        if ext in (".prom", ".txt"):
            atomic_write_text(path, self.to_prometheus())
        else:
            atomic_write_text(path, self.to_json())


class _NullInstrument:
    """Shared stand-in for every instrument kind: all bumps are no-ops."""

    __slots__ = ()
    name = "null"
    help = ""
    kind = "null"
    labels = None

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def snapshot(self) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Default no-op registry; duck-type compatible with `Metrics`."""

    enabled = False

    def counter(self, name: str, help: str = "",
                labels: "dict[str, str] | None" = None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "",
              labels: "dict[str, str] | None" = None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def __iter__(self):
        return iter(())

    def __len__(self) -> int:
        return 0

    def to_json(self) -> str:
        return "{}\n"

    def to_prometheus(self, prefix: str = "pase_") -> str:
        return ""

    def dump(self, path: "str | os.PathLike") -> None:
        pass


#: The process-wide default registry (see module docstring).
NULL_METRICS = NullMetrics()
