"""Nested-span tracing for the strategy-search pipeline.

FlexFlow and TensorOpt both credit their search-time claims to per-phase
profiling of the strategy search itself; this module gives PaSE the same
visibility without adding a dependency or slowing the hot path.  A
`Tracer` emits **spans** — named, attributed intervals that nest by
lexical scope::

    with tracer.span("dp", vertices=n):
        for i in range(n):
            with tracer.span("dp.vertex", name=seq.name(i)):
                ...

Spans are recorded on *close* (children before parents) both in memory
and, when a path is given, as one JSON line per span in a trace file.
The writer is crash-safe in the same spirit as the run journal's
temp-file + ``os.replace`` snapshots (`repro.runtime.journal`): every
record is a complete line flushed before the next span starts, so a
crash at any instant leaves a valid prefix plus at most one torn final
line, which :func:`read_trace` detects and drops.  Whole-file artifacts
derived from a trace (metric exports) go through the journal's atomic
pattern itself, see `repro.obs.metrics.atomic_write_text`.

The default tracer everywhere is the module-level `NULL_TRACER`, whose
``span`` returns one shared no-op context manager — the instrumented hot
paths stay bit-identical and unmeasurably slower (pinned by
``benchmarks/bench_obs.py``).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Iterable, Mapping, Sequence

__all__ = [
    "TRACE_VERSION",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "read_trace",
    "span_tree",
    "format_trace_summary",
]

#: Trace file schema version; bump whenever the record layout changes.
TRACE_VERSION = 1


def _jsonable(attrs: Mapping[str, Any]) -> dict[str, Any]:
    """Coerce span attributes to JSON-safe scalars (repr for the rest)."""
    out: dict[str, Any] = {}
    for key, val in attrs.items():
        if isinstance(val, (bool, int, float, str)) or val is None:
            out[str(key)] = val
        else:
            out[str(key)] = repr(val)
    return out


class Span:
    """One open interval of a `Tracer`; a context manager.

    Attributes set at open time (``tracer.span(name, **attrs)``) or later
    via :meth:`set` land in the record's ``attrs``.  An exception
    unwinding through the span stamps ``attrs["error"]`` with the
    exception type, so traces of failed runs show *where* they failed.
    """

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any],
                 span_id: int, parent_id: int | None, start: float) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span before it closes."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self)
        return False


class _NullSpan:
    """The shared no-op span: enter/exit/set all do nothing."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Default no-op tracer: zero allocation per span, nothing recorded.

    Duck-type compatible with `Tracer` (``enabled`` / ``span`` /
    ``records`` / ``close``), so call sites never branch on the type —
    only optionally on ``enabled`` when skipping work that exists purely
    to feed the span (string formatting, counts).
    """

    enabled = False
    path = None
    records: tuple = ()

    def span(self, name: str, /, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def close(self) -> None:
        pass

    def summary(self) -> str:
        return "trace: disabled"

    def __enter__(self) -> "NullTracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The process-wide default tracer (see module docstring).
NULL_TRACER = NullTracer()


class Tracer:
    """Records nested spans in memory and, optionally, to a JSONL file.

    Parameters
    ----------
    path:
        Trace file to (over)write, one JSON record per line: a ``meta``
        header followed by ``span`` records in close order.  ``None``
        keeps the trace in memory only (``tracer.records``), which is
        what the CLI's ``-v`` summary uses when ``--trace`` is absent.
    clock:
        Monotonic time source; spans store offsets from tracer creation,
        so records are machine-relocatable and never go backwards.
    """

    enabled = True

    def __init__(self, path: "str | os.PathLike | None" = None, *,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.path = None if path is None else os.fspath(path)
        self._clock = clock
        self._t0 = clock()
        self.records: list[dict[str, Any]] = []
        self._stack: list[int] = []
        self._next_id = 1
        self._fh = None
        if self.path is not None:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._fh = open(self.path, "w", encoding="utf-8")
            self._emit({
                "kind": "meta",
                "version": TRACE_VERSION,
                "unix_time": time.time(),
                "clock": getattr(clock, "__name__", str(clock)),
            })

    # -- span lifecycle ------------------------------------------------------

    def span(self, name: str, /, **attrs: Any) -> Span:
        """Open a child span of the innermost open span.

        ``name`` is positional-only so spans can carry a ``name=``
        attribute (per-vertex DP spans name the vertex that way).
        """
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        self._stack.append(span_id)
        return Span(self, str(name), dict(attrs), span_id, parent,
                    self._clock() - self._t0)

    def _finish(self, span: Span) -> None:
        end = self._clock() - self._t0
        # Exception unwinding can close an outer span while inner spans
        # were abandoned un-exited; drop the abandoned frames.
        while self._stack and self._stack[-1] != span.span_id:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        rec: dict[str, Any] = {
            "kind": "span",
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "start": span.start,
            "end": end,
            "seconds": end - span.start,
        }
        if span.attrs:
            rec["attrs"] = _jsonable(span.attrs)
        self.records.append(rec)
        self._emit(rec)

    def _emit(self, rec: dict[str, Any]) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(rec, sort_keys=True) + "\n")
        # One complete line per record, flushed: a crash leaves a valid
        # prefix (plus at most one torn tail line `read_trace` drops).
        self._fh.flush()

    # -- lifecycle / presentation -------------------------------------------

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def summary(self) -> str:
        return format_trace_summary(self.records)

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Tracer spans={len(self.records)} "
                f"path={self.path or 'memory'}>")


# ---------------------------------------------------------------------------
# Reading and presenting traces
# ---------------------------------------------------------------------------

def read_trace(path: "str | os.PathLike") -> list[dict[str, Any]]:
    """Load a JSONL trace written by `Tracer`.

    Returns every record (``meta`` first, then spans in close order).  A
    torn **final** line — the signature of a crash mid-write — is
    silently dropped; a malformed line anywhere else raises
    ``ValueError``, because that means the file was corrupted rather
    than merely truncated.
    """
    with open(path, encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    records: list[dict[str, Any]] = []
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if lineno == len(lines) - 1:
                break  # torn tail from a crash mid-write
            raise ValueError(
                f"{os.fspath(path)}:{lineno + 1}: malformed trace line")
    return records


def span_tree(records: Iterable[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """Reconstruct the span forest from flat records.

    Returns the roots (spans whose parent is ``None`` **or** was never
    recorded — the parent of an interrupted run's last spans may be the
    torn tail line), each a dict with a ``children`` list; siblings are
    ordered by start time.
    """
    spans = [dict(r) for r in records if r.get("kind") == "span"]
    by_id: dict[int, dict[str, Any]] = {}
    for rec in spans:
        rec["children"] = []
        by_id[rec["id"]] = rec
    roots: list[dict[str, Any]] = []
    for rec in spans:
        parent = by_id.get(rec.get("parent"))
        if parent is None:
            roots.append(rec)
        else:
            parent["children"].append(rec)
    for rec in spans:
        rec["children"].sort(key=lambda r: r["start"])
    roots.sort(key=lambda r: r["start"])
    return roots


def format_trace_summary(records: Sequence[Mapping[str, Any]]) -> str:
    """Per-phase breakdown table of a trace (the CLI's ``-v`` output).

    Aggregates spans by name: count, total self-inclusive seconds, and
    share of the run (the union of root spans).
    """
    spans = [r for r in records if r.get("kind") == "span"]
    if not spans:
        return "trace: no spans recorded"
    roots = span_tree(spans)
    total = sum(r["seconds"] for r in roots) or float("nan")
    agg: dict[str, list[float]] = {}
    for rec in spans:
        ent = agg.setdefault(rec["name"], [0, 0.0])
        ent[0] += 1
        ent[1] += rec["seconds"]
    rows = sorted(agg.items(), key=lambda kv: -kv[1][1])
    name_w = max(len("span"), max(len(n) for n in agg))
    lines = [f"trace summary ({total:.3f}s total, {len(spans)} spans)",
             f"  {'span'.ljust(name_w)}  count    seconds       %"]
    for name, (count, seconds) in rows:
        share = 100.0 * seconds / total
        lines.append(f"  {name.ljust(name_w)}  {count:5d}  {seconds:9.3f}"
                     f"  {share:6.1f}")
    return "\n".join(lines)
