"""Zero-dependency observability for the PaSE search pipeline.

Three pieces, all defaulting to no-ops so the uninstrumented hot path
stays bit-identical:

* `trace` — nested spans with a crash-safe JSONL writer
  (`Tracer`, `read_trace`, `span_tree`, `format_trace_summary`)
* `metrics` — counter/gauge/histogram registry with JSON and
  Prometheus-text exporters (`Metrics`)
* `profile` — ambient ``contextvars`` plumbing (`activate`,
  `current_tracer`, `current_metrics`, `@profiled`)

See DESIGN.md §9 for the span model and metric-name catalogue.
"""

from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    Metrics,
    NULL_METRICS,
    NullMetrics,
    atomic_write_text,
)
from .profile import (
    activate,
    current_metrics,
    current_tracer,
    metrics_of,
    profiled,
    tracer_of,
)
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TRACE_VERSION,
    Tracer,
    format_trace_summary,
    read_trace,
    span_tree,
)

__all__ = [
    "TRACE_VERSION",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "read_trace",
    "span_tree",
    "format_trace_summary",
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "NullMetrics",
    "NULL_METRICS",
    "DEFAULT_BUCKETS",
    "atomic_write_text",
    "activate",
    "current_tracer",
    "current_metrics",
    "tracer_of",
    "metrics_of",
    "profiled",
]
