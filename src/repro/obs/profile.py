"""Ambient observability context: `activate`, `current_*`, `@profiled`.

The budget/journal/jobs knobs change *behaviour* and therefore travel
explicitly through `RunContext` — but a tracer changes nothing, so
forcing every helper (baselines, experiment drivers) to grow a
``tracer=`` parameter would be pure plumbing.  Instead the active
tracer/metrics pair lives in `contextvars.ContextVar`s:

    with activate(tracer=tracer, metrics=metrics):
        run = execute_search(...)      # everything below sees them

``contextvars`` (not module globals) so concurrent searches in separate
threads — the resilience tests run them — each see their own context,
and the defaults (`NULL_TRACER` / `NULL_METRICS`) are restored on exit
even when the body raises.

`@profiled` wraps a function in a span named after it (override with
``@profiled("baseline.mcmc")``); with the default null tracer the
wrapper costs one ContextVar read and an empty context-manager enter,
which the overhead benchmark pins below 2% end to end.
"""

from __future__ import annotations

import contextlib
import functools
from contextvars import ContextVar
from typing import Any, Callable, Iterator, TypeVar, overload

from .metrics import Metrics, NullMetrics, NULL_METRICS
from .trace import Tracer, NullTracer, NULL_TRACER

__all__ = ["activate", "current_tracer", "current_metrics", "profiled",
           "tracer_of", "metrics_of"]

_F = TypeVar("_F", bound=Callable[..., Any])

_tracer_var: ContextVar["Tracer | NullTracer"] = ContextVar(
    "pase_tracer", default=NULL_TRACER)
_metrics_var: ContextVar["Metrics | NullMetrics"] = ContextVar(
    "pase_metrics", default=NULL_METRICS)


def current_tracer() -> "Tracer | NullTracer":
    """The tracer installed by the innermost `activate`, else no-op."""
    return _tracer_var.get()


def current_metrics() -> "Metrics | NullMetrics":
    """The metrics registry installed by `activate`, else no-op."""
    return _metrics_var.get()


def tracer_of(ctx: Any = None) -> "Tracer | NullTracer":
    """Resolve the tracer for a (duck-typed) `RunContext`.

    A context's ``tracer`` of ``None`` means *inherit the ambient one*,
    so instrumented core code works identically whether it was reached
    through `execute_search` (which activates the context's pair) or
    called directly with a bare context.
    """
    tracer = getattr(ctx, "tracer", None)
    return tracer if tracer is not None else _tracer_var.get()


def metrics_of(ctx: Any = None) -> "Metrics | NullMetrics":
    """Resolve the metrics registry for a (duck-typed) `RunContext`."""
    metrics = getattr(ctx, "metrics", None)
    return metrics if metrics is not None else _metrics_var.get()


@contextlib.contextmanager
def activate(tracer: "Tracer | NullTracer | None" = None,
             metrics: "Metrics | NullMetrics | None" = None,
             ) -> Iterator[None]:
    """Install ``tracer``/``metrics`` as the ambient pair for this scope.

    ``None`` leaves the corresponding slot at whatever is already
    active, so nested activations can override just one of the two.
    """
    tok_t = None if tracer is None else _tracer_var.set(tracer)
    tok_m = None if metrics is None else _metrics_var.set(metrics)
    try:
        yield
    finally:
        if tok_m is not None:
            _metrics_var.reset(tok_m)
        if tok_t is not None:
            _tracer_var.reset(tok_t)


@overload
def profiled(func: _F) -> _F: ...
@overload
def profiled(func: str, **attrs: Any) -> Callable[[_F], _F]: ...


def profiled(func=None, **attrs):
    """Wrap a function in a span on the ambient tracer.

    Bare (``@profiled``) the span is named after the function; called
    (``@profiled("baseline.mcmc", flavour="anneal")``) the string is the
    span name and keyword arguments become span attributes.
    """
    if isinstance(func, str) or func is None:
        name = func

        def deco(f: _F) -> _F:
            return _wrap(f, name or f.__qualname__, attrs)

        return deco
    return _wrap(func, func.__qualname__, attrs)


def _wrap(func: _F, name: str, attrs: dict[str, Any]) -> _F:
    @functools.wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        with _tracer_var.get().span(name, **attrs):
            return func(*args, **kwargs)

    wrapper.__wrapped__ = func
    return wrapper  # type: ignore[return-value]
