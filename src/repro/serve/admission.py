"""Admission control and backpressure for the serve daemon.

The `AdmissionController` bounds how much concurrently-admitted work the
server holds: every validated request that needs an answer from the
engine (a new search *or* a coalesced wait on someone else's search)
occupies one admission slot from acceptance until its response is
determined.  Cache hits and rejections never take a slot — they do no
work worth bounding.

When the window is full the request is refused with `AdmissionFull`
(HTTP 429) and a ``Retry-After`` hint derived from the observed service
rate, so well-behaved clients back off proportionally to the actual
overload instead of hammering a fixed interval.

Draining flips one switch: new admissions are refused with a structured
503 (and ``/readyz`` reports 503) while already-admitted requests run to
completion — exactly the SIGTERM contract.
"""

from __future__ import annotations

import threading
import time

from .wire import ServeError

__all__ = ["AdmissionController", "AdmissionFull", "Draining"]

#: Retry-After floor/ceiling (seconds) — never tell a client "0" (it
#: will immediately retry into the same full window) and never park one
#: for minutes on a stale estimate.
MIN_RETRY_AFTER = 1.0
MAX_RETRY_AFTER = 30.0


class AdmissionFull(ServeError):
    """The admission window is full: HTTP 429 + Retry-After."""

    def __init__(self, limit: int, retry_after: float) -> None:
        super().__init__(
            429, "queue-full",
            f"admission window full ({limit} requests in flight); "
            "retry later",
            retry_after=retry_after)


class Draining(ServeError):
    """The server is draining for shutdown: HTTP 503."""

    def __init__(self) -> None:
        super().__init__(503, "draining",
                         "server is draining for shutdown",
                         retry_after=MIN_RETRY_AFTER)


class AdmissionController:
    """Bounded admission window with a service-rate Retry-After hint."""

    def __init__(self, max_queue: int, *, workers: int = 1,
                 clock=time.monotonic) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue={max_queue} must be >= 1")
        self.max_queue = int(max_queue)
        self.workers = max(1, int(workers))
        self._clock = clock
        self._lock = threading.Lock()
        self._admitted = 0
        self._draining = False
        self._drained = threading.Condition(self._lock)
        # Exponential moving average of per-request service seconds,
        # seeded pessimistically so a cold server doesn't promise
        # instant retries.
        self._avg_service_seconds = 2.0

    # -- admission -----------------------------------------------------------

    def admit(self) -> None:
        """Take one slot or raise `AdmissionFull` / `Draining`."""
        with self._lock:
            if self._draining:
                raise Draining()
            if self._admitted >= self.max_queue:
                raise AdmissionFull(self.max_queue, self.retry_after())
            self._admitted += 1

    def release(self, service_seconds: float | None = None) -> None:
        """Give a slot back; optionally record the service time."""
        with self._lock:
            self._admitted = max(0, self._admitted - 1)
            if service_seconds is not None and service_seconds >= 0:
                self._avg_service_seconds = (
                    0.8 * self._avg_service_seconds + 0.2 * service_seconds)
            self._drained.notify_all()

    def retry_after(self) -> float:
        """Backoff hint: expected seconds until a slot opens, i.e. the
        admitted backlog divided across the worker width at the observed
        per-request service rate."""
        est = self._avg_service_seconds * self._admitted / self.workers
        return max(MIN_RETRY_AFTER, min(MAX_RETRY_AFTER, est))

    # -- introspection -------------------------------------------------------

    @property
    def admitted(self) -> int:
        with self._lock:
            return self._admitted

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    # -- lifecycle -----------------------------------------------------------

    def start_draining(self) -> None:
        """Refuse new admissions from now on (idempotent)."""
        with self._lock:
            self._draining = True
            self._drained.notify_all()

    def wait_drained(self, timeout: float | None = None) -> bool:
        """Block until every admitted request released; True if drained."""
        deadline = None if timeout is None else self._clock() + timeout
        with self._lock:
            while self._admitted > 0:
                remaining = (None if deadline is None
                             else deadline - self._clock())
                if remaining is not None and remaining <= 0:
                    return False
                self._drained.wait(remaining)
            return True
