"""Wire schemas for the serve daemon: requests, responses, errors.

Everything that crosses the HTTP boundary is defined here, so the
handler and engine never guess at shapes:

* :func:`validate_request` turns a decoded JSON body into a
  `ServeRequest` or raises a `ServeError` carrying a structured 400 —
  every problem found, each with the offending ``field`` — *before* any
  search work starts.
* `ServeError` is the one exception the HTTP layer translates: it
  carries the status code, a machine-readable ``kind``, optional
  per-field detail, and an optional ``Retry-After`` hint.
* :func:`success_body` / `ServeError.body` are the only two response
  shapes the server emits, both deterministic (sorted keys) so
  identical answers are byte-identical on the wire.

The deterministic ``record`` inside a success body is exactly the fleet
worker's result record (task, cost, method, strategy) — byte-identical
across cache hits, coalesced waiters, retries, and server restarts for
equal request fingerprints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..core.exceptions import PaseError
from ..fleet.spec import SweepSpecError, SweepTask

__all__ = ["WIRE_VERSION", "MAX_BODY_BYTES", "MAX_P", "ServeError",
           "ServeRequest", "validate_request", "success_body",
           "encode_body"]

#: Response schema version, embedded in every body.
WIRE_VERSION = 1

#: Largest request body the server will read (a valid request is <1 KiB;
#: anything larger is garbage or abuse).
MAX_BODY_BYTES = 64 * 1024

#: Largest device count a request may ask for: the configuration-space
#: enumeration is exponential-ish in log2(p), so this is an admission
#: decision, not a numeric limit.
MAX_P = 1024


class ServeError(PaseError):
    """A structured, HTTP-mappable serve failure.

    Parameters
    ----------
    status:
        HTTP status code (400, 413, 429, 503, 504, ...).
    kind:
        Machine-readable failure class (``invalid-request``,
        ``queue-full``, ``quarantined``, ``deadline``, ``resource``,
        ``draining``, ...).
    message:
        Human-readable one-liner.
    errors:
        Optional per-field problems, each ``{"field": ..., "message":
        ...}`` (validation failures carry every problem found).
    retry_after:
        Optional client backoff hint in seconds (429/503 responses emit
        it as a ``Retry-After`` header too).
    detail:
        Optional extra context (e.g. the quarantined fingerprint and
        last worker error).
    """

    def __init__(self, status: int, kind: str, message: str, *,
                 errors: list[dict[str, str]] | None = None,
                 retry_after: float | None = None,
                 detail: Mapping[str, Any] | None = None) -> None:
        super().__init__(message)
        self.status = int(status)
        self.kind = kind
        self.message = message
        self.errors = errors or []
        self.retry_after = retry_after
        self.detail = dict(detail) if detail else {}

    def body(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "version": WIRE_VERSION,
            "error": {"kind": self.kind, "message": self.message},
        }
        if self.errors:
            doc["error"]["errors"] = self.errors
        if self.retry_after is not None:
            doc["error"]["retry_after"] = round(float(self.retry_after), 3)
        if self.detail:
            doc["error"]["detail"] = self.detail
        return doc


@dataclass(frozen=True)
class ServeRequest:
    """One validated strategy query, ready for the engine.

    ``task`` is the fleet `SweepTask` the worker will execute;
    ``deadline`` caps this request's wall clock (both the waiter and the
    worker's `RunBudget`); ``degrade`` opts into the resilient
    degradation ladder as a fallback when the problem is quarantined.
    """

    task: SweepTask
    deadline: float | None = None
    degrade: bool = False
    raw: Mapping[str, Any] = field(default_factory=dict)


#: Request fields: name -> (accepted types, default).  ``p`` and
#: ``model`` are required (default is the REQUIRED sentinel).
_REQUIRED = object()
_FIELDS: dict[str, tuple[tuple[type, ...], Any]] = {
    "model": ((str,), _REQUIRED),
    "p": ((int,), _REQUIRED),
    "machine": ((str,), "1080ti"),
    "mode": ((str,), "pow2"),
    "method": ((str,), "ours"),
    "seed": ((int,), 0),
    "reduce": ((bool, str), False),
    "resilient": ((bool,), False),
    "memory_budget": ((int,), None),
    "deadline": ((int, float), None),
    "degrade": ((bool,), False),
    "chaos": ((dict,), None),
}


def validate_request(doc: Any, *, allow_chaos: bool = False,
                     max_deadline: float | None = None) -> ServeRequest:
    """Schema-check one decoded request body; raises `ServeError` (400).

    Collects *every* problem before failing, so a client fixing its
    request sees the full list at once.  ``chaos`` (the fleet's
    test-only worker-misbehaviour hook) is rejected unless the server
    was started with ``--allow-chaos`` — production servers never run
    client-injected faults.
    """
    if not isinstance(doc, dict):
        raise ServeError(400, "invalid-request",
                         "request body must be a JSON object")
    errors: list[dict[str, str]] = []
    unknown = set(doc) - set(_FIELDS)
    for name in sorted(unknown):
        errors.append({"field": name, "message": "unknown field"})
    values: dict[str, Any] = {}
    for name, (types, default) in _FIELDS.items():
        if name not in doc:
            if default is _REQUIRED:
                errors.append({"field": name, "message": "required"})
            else:
                values[name] = default
            continue
        val = doc[name]
        # bool is an int subclass; don't let `true` pass as a p.
        if isinstance(val, bool) and bool not in types:
            errors.append({"field": name,
                           "message": f"expected {types[0].__name__}"})
            continue
        if val is not None and not isinstance(val, types):
            errors.append({"field": name,
                           "message": f"expected {types[0].__name__}"})
            continue
        values[name] = val

    if errors:
        raise ServeError(400, "invalid-request", "request failed validation",
                         errors=errors)

    if values["p"] > MAX_P:
        errors.append({"field": "p",
                       "message": f"p={values['p']} exceeds the service "
                       f"limit of {MAX_P}"})
    if isinstance(values["reduce"], str) and \
            values["reduce"] not in ("off", "never", "auto", "always"):
        errors.append({"field": "reduce",
                       "message": "expected a bool or one of "
                       "off/never/auto/always"})
    deadline = values.pop("deadline")
    if deadline is not None and deadline <= 0:
        errors.append({"field": "deadline", "message": "must be positive"})
    if max_deadline is not None:
        deadline = (max_deadline if deadline is None
                    else min(float(deadline), max_deadline))
    degrade = values.pop("degrade")
    chaos = values.pop("chaos")
    if chaos is not None and not allow_chaos:
        errors.append({"field": "chaos",
                       "message": "chaos injection is disabled on this "
                       "server (start with --allow-chaos)"})
    if errors:
        raise ServeError(400, "invalid-request", "request failed validation",
                         errors=errors)

    try:
        task = SweepTask(chaos=chaos, **values)
        task.validate()
    except SweepSpecError as err:
        raise ServeError(400, "invalid-request", str(err)) from None
    return ServeRequest(task=task,
                        deadline=None if deadline is None
                        else float(deadline),
                        degrade=degrade, raw=doc)


def success_body(fingerprint: str, record: Mapping[str, Any], *,
                 cached: bool, coalesced: bool, attempts: int,
                 degraded: bool = False) -> dict[str, Any]:
    """The one success shape: deterministic record + served metadata."""
    return {
        "version": WIRE_VERSION,
        "fingerprint": fingerprint,
        "record": dict(record),
        "served": {
            "cached": bool(cached),
            "coalesced": bool(coalesced),
            "attempts": int(attempts),
            "degraded": bool(degraded),
        },
    }


def encode_body(doc: Mapping[str, Any]) -> bytes:
    """Canonical wire encoding (sorted keys, trailing newline)."""
    return (json.dumps(doc, sort_keys=True, indent=None,
                       separators=(",", ":")) + "\n").encode("utf-8")
