"""The HTTP surface and lifecycle of ``pase serve``.

A `StrategyServer` is a stdlib ``ThreadingHTTPServer``: one handler
thread per connection, each of which only validates, admits, and then
waits on the `SearchEngine` — all actual search work happens in
crash-isolated pool worker processes, so no request can take the
listener down.

Endpoints::

    POST /v1/search      a strategy query (see repro.serve.wire)
    GET  /healthz        200 while the process is up
    GET  /readyz         200 accepting work; 503 while draining
    GET  /metrics        Prometheus text exposition
    GET  /v1/quarantine  the current poison-fingerprint set

Every request runs under its own in-memory span tree —
``serve.request`` → ``serve.validate`` / ``serve.admit`` /
(``serve.cache`` | ``serve.coalesce`` | ``serve.search``) /
``serve.respond`` — merged into one shared JSONL trace file by
`_TraceLog` (the `Tracer` span stack is per-instance and single
threaded, so concurrent handlers each get their own and the log
serializes the writes, remapping span ids to stay globally unique).

Lifecycle (:func:`serve_forever`): the first SIGTERM/SIGINT flips a
`Cancellation` via the composable `trap_signals` and starts the drain —
``/readyz`` goes 503, new work is refused with a structured 503,
admitted requests run to completion — then the server exits 0.  A
second SIGINT abandons the drain through the documented
`RunInterrupted` path (exit code 6).  A SIGKILLed server loses nothing
durable: the result cache, quarantine, table cache, and task state all
live under ``--state-dir`` as atomic snapshots, and a restart picks
them up.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping

from ..core.exceptions import RunInterrupted
from ..obs.metrics import Metrics
from ..obs.trace import TRACE_VERSION, NULL_TRACER, Tracer
from ..runtime.budget import Cancellation
from ..runtime.signals import trap_signals
from .admission import AdmissionController
from .engine import SearchEngine, quarantined_error
from .wire import (
    MAX_BODY_BYTES,
    ServeError,
    ServeRequest,
    encode_body,
    success_body,
    validate_request,
)

__all__ = ["StrategyServer", "serve_forever"]

#: Seconds the drain waits for admitted requests before giving up.
DEFAULT_DRAIN_GRACE_SECONDS = 60.0


class _TraceLog:
    """Thread-safe JSONL sink merging per-request in-memory tracers.

    Each handler runs its spans in a private ``Tracer(None)`` (the span
    stack is instance state, not thread-local); on completion the
    request's records are appended here under a lock with span ids
    rebased past everything already written, so `read_trace` /
    ``span_tree`` see one valid multi-root trace file.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._lock = threading.Lock()
        self._next_id = 1
        self._fh = open(self.path, "w", encoding="utf-8")
        self._write({"kind": "meta", "version": TRACE_VERSION,
                     "unix_time": time.time(), "clock": "perf_counter"})

    def _write(self, rec: Mapping[str, Any]) -> None:
        self._fh.write(json.dumps(rec, sort_keys=True) + "\n")
        self._fh.flush()

    def append(self, records: list) -> None:
        spans = [r for r in records if r.get("kind") == "span"]
        if not spans:
            return
        with self._lock:
            base = self._next_id
            self._next_id += max(r["id"] for r in spans)
            for rec in spans:
                rec = dict(rec)
                rec["id"] += base
                if rec.get("parent") is not None:
                    rec["parent"] += base
                self._write(rec)

    def close(self) -> None:
        with self._lock:
            self._fh.close()


class _Handler(BaseHTTPRequestHandler):
    """One HTTP request; all state lives on ``self.server``."""

    protocol_version = "HTTP/1.1"
    server: "StrategyServer"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:  # pragma: no cover - operator convenience
            super().log_message(format, *args)

    def _send(self, status: int, body: dict, *,
              retry_after: float | None = None,
              content_type: str = "application/json") -> None:
        payload = encode_body(body)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        if retry_after is not None:
            self.send_header("Retry-After", str(max(1, round(retry_after))))
        self.end_headers()
        self.wfile.write(payload)
        with self.server.metrics_lock:
            self.server.metrics.counter(
                "serve_requests_total", "serve requests by status code",
                labels={"code": str(status)}).inc()

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        payload = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _read_body(self) -> Any:
        length = self.headers.get("Content-Length")
        try:
            length = int(length)
        except (TypeError, ValueError):
            raise ServeError(400, "invalid-request",
                             "missing or malformed Content-Length") from None
        if length > MAX_BODY_BYTES:
            # Don't read an oversized body; the connection is poisoned.
            self.close_connection = True
            raise ServeError(
                413, "body-too-large",
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise ServeError(400, "invalid-request",
                             f"request body is not valid JSON: {err}") \
                from None

    # -- GET -----------------------------------------------------------------

    def do_GET(self) -> None:
        if self.path == "/healthz":
            self._send(200, {"ok": True})
        elif self.path == "/readyz":
            if self.server.admission.draining:
                self._send(503, {"ready": False, "draining": True})
            else:
                self._send(200, {"ready": True, "draining": False})
        elif self.path == "/metrics":
            with self.server.metrics_lock:
                text = self.server.metrics.to_prometheus()
            self._send_text(200, text, "text/plain; version=0.0.4")
        elif self.path == "/v1/quarantine":
            self._send(200, {"quarantine":
                             self.server.engine.quarantine_snapshot()})
        else:
            self._send(404, ServeError(404, "not-found",
                                       f"no such path: {self.path}").body())

    # -- POST /v1/search -----------------------------------------------------

    def do_POST(self) -> None:
        if self.path != "/v1/search":
            self._send(404, ServeError(404, "not-found",
                                       f"no such path: {self.path}").body())
            return
        server = self.server
        tracer = Tracer(None) if server.trace_log is not None else NULL_TRACER
        t0 = time.perf_counter()
        status = 500
        with tracer.span("serve.request", path=self.path) as req_span:
            try:
                status = self._search(tracer, req_span)
            except ServeError as err:
                status = err.status
                with tracer.span("serve.respond", status=status):
                    self._send(status, err.body(),
                               retry_after=err.retry_after)
            except Exception as err:  # pragma: no cover - belt and braces
                status = 500
                body = ServeError(500, "internal",
                                  f"{type(err).__name__}: {err}").body()
                with tracer.span("serve.respond", status=500):
                    self._send(500, body)
            req_span.set(status=status)
        with server.metrics_lock:
            server.metrics.histogram(
                "serve_request_seconds",
                "wall seconds per serve request").observe(
                    time.perf_counter() - t0)
        if server.trace_log is not None:
            server.trace_log.append(tracer.records)

    def _search(self, tracer, req_span) -> int:
        """The admitted-request flow; returns the response status."""
        server = self.server
        engine = server.engine
        with tracer.span("serve.validate"):
            doc = self._read_body()
            request = validate_request(
                doc, allow_chaos=server.allow_chaos,
                max_deadline=server.request_deadline)
            task = engine.normalize(request.task)
            fingerprint = engine.fingerprint_of(task)
        req_span.set(fingerprint=fingerprint)
        # Fast paths that never take an admission slot: a cached answer
        # costs a dict lookup; a quarantined fingerprint (without the
        # degrade opt-in) is refused before any work.
        record = engine.cached(fingerprint)
        if record is not None:
            with tracer.span("serve.cache", fingerprint=fingerprint):
                pass
            with tracer.span("serve.respond", status=200):
                self._send(200, success_body(
                    fingerprint, record, cached=True, coalesced=False,
                    attempts=0))
            return 200
        entry = engine.quarantine.get(fingerprint)
        if entry is not None and not request.degrade:
            raise quarantined_error(fingerprint, entry, degradable=True)
        with tracer.span("serve.admit"):
            server.admission.admit()  # raises 429 queue-full / 503 draining
        admitted_at = time.perf_counter()
        try:
            with tracer.span("serve.search") as work_span:
                result = engine.execute(
                    ServeRequest(task=task, deadline=request.deadline,
                                 degrade=request.degrade, raw=request.raw),
                    fingerprint)
                if tracer.enabled:
                    # Rename to what actually happened; _NullSpan has no
                    # name slot, hence the enabled guard.
                    if result.coalesced:
                        work_span.name = "serve.coalesce"
                    elif result.cached:
                        work_span.name = "serve.cache"
                work_span.set(attempts=result.attempts,
                              degraded=result.degraded)
        finally:
            server.admission.release(time.perf_counter() - admitted_at)
        with tracer.span("serve.respond", status=200):
            self._send(200, success_body(
                result.fingerprint, result.record, cached=result.cached,
                coalesced=result.coalesced, attempts=result.attempts,
                degraded=result.degraded))
        return 200


class StrategyServer(ThreadingHTTPServer):
    """The serve daemon: engine + admission + observability + HTTP.

    Bind with ``port=0`` to let the OS pick (tests); ``server_port``
    reports the bound port either way.
    """

    daemon_threads = True
    # The stdlib default backlog of 5 drops connections under the very
    # bursts this daemon exists to absorb; admission control, not the
    # kernel accept queue, is where load gets shed.
    request_queue_size = 128

    def __init__(self, address: tuple[str, int], *,
                 engine: SearchEngine,
                 admission: AdmissionController,
                 metrics: Metrics | None = None,
                 allow_chaos: bool = False,
                 request_deadline: float | None = None,
                 trace: str | os.PathLike | None = None,
                 verbose: bool = False) -> None:
        self.engine = engine
        self.admission = admission
        self.metrics = metrics if metrics is not None else Metrics()
        self.metrics_lock = threading.Lock()
        self.allow_chaos = allow_chaos
        self.request_deadline = request_deadline
        self.trace_log = None if trace is None else _TraceLog(trace)
        self.verbose = verbose
        super().__init__(address, _Handler)

    def drain(self, grace: float = DEFAULT_DRAIN_GRACE_SECONDS) -> bool:
        """Refuse new work, wait for admitted requests; True if drained."""
        self.admission.start_draining()
        return self.admission.wait_drained(grace)

    def close(self) -> None:
        """Stop accepting, stop the engine, flush everything."""
        self.shutdown()
        self.server_close()
        self.engine.close()
        if self.trace_log is not None:
            self.trace_log.close()


def serve_forever(*, host: str = "127.0.0.1", port: int = 8421,
                  workers: int = 4, max_queue: int = 16,
                  max_attempts: int = 3,
                  request_deadline: float | None = None,
                  memory_budget: int | None = None,
                  state_dir: str | os.PathLike = "pase-serve",
                  allow_chaos: bool = False,
                  trace: str | None = None,
                  metrics_path: str | None = None,
                  drain_grace: float = DEFAULT_DRAIN_GRACE_SECONDS,
                  verbose: bool = False) -> int:
    """Run the daemon until SIGTERM/SIGINT; returns the exit code (0).

    The blocking entry point behind ``pase serve``.  Raises
    `RunInterrupted` (CLI exit code 6) when a second SIGINT abandons
    the drain.
    """
    metrics = Metrics()
    engine = SearchEngine(
        state_dir, workers=workers, max_attempts=max_attempts,
        default_deadline=request_deadline, memory_budget=memory_budget,
        metrics=metrics)
    admission = AdmissionController(max_queue, workers=workers)
    server = StrategyServer(
        (host, port), engine=engine, admission=admission, metrics=metrics,
        allow_chaos=allow_chaos, request_deadline=request_deadline,
        trace=trace, verbose=verbose)
    cancellation = Cancellation()
    listener = threading.Thread(target=server.serve_forever,
                                kwargs={"poll_interval": 0.1},
                                daemon=True, name="serve-listener")
    try:
        with trap_signals(cancellation):
            listener.start()
            print(f"# pase serve on http://{host}:{server.server_port} "
                  f"({workers} workers, window {max_queue}, "
                  f"state {os.fspath(state_dir)})", flush=True)
            try:
                while not cancellation.requested:
                    time.sleep(0.1)
            except KeyboardInterrupt:
                cancellation.set("SIGINT")
            print("# draining: refusing new work, finishing "
                  "in-flight requests", flush=True)
            try:
                drained = server.drain(drain_grace)
            except KeyboardInterrupt:
                # Second SIGINT: the user wants out *now*; unwind via
                # the documented interrupted path (exit code 6).
                raise RunInterrupted(
                    "drain abandoned by a second interrupt") from None
            if not drained:  # pragma: no cover - pathological stall
                print("# drain grace expired with requests still in "
                      "flight", flush=True)
    finally:
        server.close()
        listener.join(timeout=5.0)
        if metrics_path is not None:
            metrics.dump(metrics_path)
    print("# serve: drained clean, state flushed", flush=True)
    return 0
