"""``pase serve``: the hardened, long-running strategy-search service.

A zero-dependency HTTP/JSON daemon (stdlib ``http.server`` + ``json``)
that answers *(model, machine, p, search flags)* strategy queries by
composing the machinery the repo already trusts:

* `repro.api.Problem` + the journalled `execute_search` pipeline run
  inside crash-isolated `repro.fleet` pool workers (a search crash never
  takes down the server);
* the content-addressed `TableCache` shared across all workers under
  ``--state-dir``;
* `RunContext` per-request budgets (deadline + DP memory budget);
* `repro.obs` metrics (Prometheus ``/metrics``) and span traces.

The robustness surface:

* **validation** — schema-checked requests, structured 400s before any
  work starts (`repro.serve.wire`);
* **admission control** — a bounded admission window, 429 +
  ``Retry-After`` under overload, 503 while draining
  (`repro.serve.admission`);
* **coalescing & caching** — identical problems (keyed by the public
  `Problem.fingerprint`) share one in-flight search; finished answers
  come from a persistent cross-request result cache
  (`repro.serve.coalesce`);
* **quarantine & degradation** — a problem that kills ``max_attempts``
  workers is quarantined (structured 503), optionally answered by the
  resilient degradation ladder instead (`repro.serve.engine`);
* **lifecycle** — SIGTERM drains then exits 0; a SIGKILLed server
  restarts from ``--state-dir`` with its quarantine and result cache
  intact (`repro.serve.server`).
"""

from .admission import AdmissionController, AdmissionFull
from .coalesce import Quarantine, ResultCache
from .engine import SearchEngine
from .server import StrategyServer, serve_forever
from .wire import (
    ServeError,
    ServeRequest,
    validate_request,
    WIRE_VERSION,
)

__all__ = [
    "AdmissionController",
    "AdmissionFull",
    "Quarantine",
    "ResultCache",
    "SearchEngine",
    "ServeError",
    "ServeRequest",
    "StrategyServer",
    "serve_forever",
    "validate_request",
    "WIRE_VERSION",
]
