"""Cross-request state: result cache and poison quarantine.

Both stores key on the public `Problem.fingerprint` digest — the
canonical content hash of *(problem, search parameters)* — and both
persist under ``--state-dir`` through the journal's atomic temp-file +
``os.replace`` pattern, so a SIGKILLed server restarts with the same
answers and the same quarantine decisions (crash at any instant leaves
the old snapshot or the new one, never a torn file).

`ResultCache`
    LRU-capped map of fingerprint → deterministic result record.  The
    *answer* plane: a warm hit costs a dict lookup, no DP work, no
    worker round-trip.  (Cost *tables* have their own shared
    content-addressed `TableCache` under the state dir, so even a cold
    result for a previously-seen problem skips table construction.)

`Quarantine`
    Map of fingerprint → the evidence that convicted it (attempts,
    last error kind/detail).  Mirrors the fleet's exit-7 poison-task
    semantics: a problem that crashed/timed out ``max_attempts``
    workers answers 503 immediately instead of burning more processes.

Writes are throttled (`FLUSH_INTERVAL_SECONDS`) for the cache — losing
the last few seconds of cached answers to a crash merely costs a
recompute — and immediate for the quarantine, whose whole point is
surviving the restart after the crash it just witnessed.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Mapping

from ..obs.metrics import atomic_write_text

__all__ = ["ResultCache", "Quarantine", "CACHE_VERSION"]

#: On-disk schema version for both stores.
CACHE_VERSION = 1

#: Most entries a `ResultCache` keeps (LRU eviction beyond it).
DEFAULT_CACHE_ENTRIES = 4096

#: Minimum seconds between result-cache disk flushes.
FLUSH_INTERVAL_SECONDS = 0.5


def _load(path: Path, label: str) -> dict[str, Any]:
    """Tolerant snapshot load: missing/corrupt/foreign files mean empty
    (the stores are rebuildable; refusing to start over them would turn
    a disk hiccup into an outage)."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return {}
    if not isinstance(doc, dict) or doc.get("version") != CACHE_VERSION \
            or not isinstance(doc.get(label), dict):
        return {}
    return doc[label]


class ResultCache:
    """Thread-safe, LRU-capped, crash-safe fingerprint → record map."""

    def __init__(self, path: str | os.PathLike | None, *,
                 max_entries: int = DEFAULT_CACHE_ENTRIES) -> None:
        self.path = None if path is None else Path(path)
        self.max_entries = max(1, int(max_entries))
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self._last_flush = 0.0
        self._dirty = False
        if self.path is not None:
            for fp, rec in _load(self.path, "results").items():
                if isinstance(rec, dict):
                    self._entries[fp] = rec
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, fingerprint: str) -> dict | None:
        with self._lock:
            rec = self._entries.get(fingerprint)
            if rec is not None:
                self._entries.move_to_end(fingerprint)
            return rec

    def put(self, fingerprint: str, record: Mapping[str, Any]) -> None:
        with self._lock:
            self._entries[fingerprint] = dict(record)
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            self._dirty = True
            flush_due = (time.monotonic() - self._last_flush
                         >= FLUSH_INTERVAL_SECONDS)
        if flush_due:
            self.flush()

    def flush(self) -> None:
        """Atomically persist the snapshot (no-op when memory-only)."""
        if self.path is None:
            return
        with self._lock:
            if not self._dirty:
                return
            doc = {"version": CACHE_VERSION,
                   "results": dict(self._entries)}
            self._dirty = False
            self._last_flush = time.monotonic()
        atomic_write_text(self.path,
                          json.dumps(doc, sort_keys=True, indent=None))


class Quarantine:
    """Thread-safe, crash-safe set of poisoned fingerprints."""

    def __init__(self, path: str | os.PathLike | None) -> None:
        self.path = None if path is None else Path(path)
        self._lock = threading.Lock()
        self._entries: dict[str, dict] = {}
        if self.path is not None:
            self._entries = {
                fp: rec for fp, rec in
                _load(self.path, "quarantine").items()
                if isinstance(rec, dict)}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, fingerprint: str) -> dict | None:
        with self._lock:
            return self._entries.get(fingerprint)

    def add(self, fingerprint: str, *, attempts: int, kind: str,
            detail: str, label: str = "") -> dict:
        entry = {
            "attempts": int(attempts),
            "kind": kind,
            "detail": detail,
            "label": label,
            "quarantined_at": time.time(),
        }
        with self._lock:
            self._entries[fingerprint] = entry
        self.flush()  # immediate: must survive the crash it witnessed
        return entry

    def remove(self, fingerprint: str) -> bool:
        with self._lock:
            found = self._entries.pop(fingerprint, None) is not None
        if found:
            self.flush()
        return found

    def snapshot(self) -> dict[str, dict]:
        with self._lock:
            return {fp: dict(rec) for fp, rec in self._entries.items()}

    def flush(self) -> None:
        if self.path is None:
            return
        with self._lock:
            doc = {"version": CACHE_VERSION, "quarantine": dict(self._entries)}
        atomic_write_text(self.path,
                          json.dumps(doc, sort_keys=True, indent=None))
