"""The search engine behind the serve daemon.

One `SearchEngine` owns a persistent `repro.fleet.pool.WorkerPool` and a
single **dispatcher thread** that does *all* pool bookkeeping — submit,
reap, straggler kill, retry, quarantine — exactly like the fleet
supervisor's drain loop, while HTTP handler threads only enqueue work
and wait on events.  Searches run in crash-isolated child processes over
the fleet's file protocol (``result.json`` / ``error.json`` /
``heartbeat.json`` under ``<state_dir>/tasks/<task_id>/``), so a search
that segfaults, OOMs, or wedges never takes down the server.

Request flow (handler thread side):

1. ``fingerprint_of(task)`` — the public `Problem.fingerprint` digest,
   computed against a process-local memo of built problems so a warm
   lookup costs microseconds, not a graph build.
2. `ResultCache` hit → answered immediately, no admission slot, no
   worker.
3. `Quarantine` hit → structured 503 — or, when the request opted in
   with ``degrade``, a **degraded** search: ``resilient=True`` with a
   coarsened enumeration mode, under its own fingerprint.
4. Otherwise the request joins the in-flight **flight** for its
   fingerprint (request coalescing: N identical requests, one search)
   or creates a new one, then waits on the flight's event with its own
   deadline.

Dispatcher side, per flight: adopt an existing on-disk result if one
matches (same rule as fleet resume adoption), else dispatch to a pool
worker with the request's own ``task_deadline``; a failed attempt burns
the worker process (crash isolation) and retries with deterministic
backoff; ``max_attempts`` failures quarantine the fingerprint — every
coalesced waiter gets the same structured 503, persisted so a restarted
server refuses the poison problem without re-burning workers.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..fleet.pool import WorkerPool
from ..fleet.spec import SweepTask
from ..fleet.worker import read_json, task_dir
from ..obs.metrics import NULL_METRICS
from .coalesce import Quarantine, ResultCache
from .wire import ServeError, ServeRequest

__all__ = ["SearchEngine", "EngineResult", "DEFAULT_MAX_ATTEMPTS",
           "DEGRADE_LADDER"]

#: Total attempts a fingerprint gets before quarantine (fleet default).
DEFAULT_MAX_ATTEMPTS = 3

#: Heartbeat age (seconds) past which a worker is SIGKILLed.
DEFAULT_STRAGGLER_AFTER_SECONDS = 60.0

#: Dispatcher loop poll period (seconds) — the fleet supervisor's
#: cadence.  Searches run 0.1-10s, so dispatch latency is noise there,
#: and cache hits never touch the dispatcher at all.
POLL_INTERVAL_SECONDS = 0.05

#: Retry backoff base/cap (seconds) — much tighter than the fleet's:
#: a waiting HTTP client should not watch a 30s backoff ladder.
BACKOFF_BASE_SECONDS = 0.05
BACKOFF_CAP_SECONDS = 1.0

#: The degradation ladder: a quarantined problem retried with
#: ``degrade: true`` runs resilient with a coarser enumeration mode —
#: a cheaper, sturdier search that answers *something* principled.
DEGRADE_LADDER = {"all": "divisors", "divisors": "pow2", "pow2": "pow2"}

#: Bound on the process-local problem memo (distinct (model, machine,
#: p, mode) cells kept hot for fast fingerprints).
_PROBLEM_MEMO_MAX = 8


def _backoff(task_id: str, attempts: int) -> float:
    """Deterministic per-(task, attempt) backoff, fleet-style jitter."""
    delay = min(BACKOFF_CAP_SECONDS,
                BACKOFF_BASE_SECONDS * (2.0 ** max(attempts - 1, 0)))
    jitter = random.Random(f"{task_id}:{attempts}").uniform(0.0, 0.5)
    return delay * (1.0 + jitter)


def quarantined_error(fingerprint: str, entry: Mapping[str, Any],
                      *, degradable: bool) -> ServeError:
    """The structured 503 every waiter on a poison fingerprint gets."""
    hint = ("resubmit with degrade=true for a resilient, coarsened "
            "fallback search" if degradable else
            "the degraded fallback failed too")
    return ServeError(
        503, "quarantined",
        f"problem is quarantined after {entry.get('attempts', '?')} "
        f"failed attempts; {hint}",
        detail={"fingerprint": fingerprint,
                "attempts": entry.get("attempts"),
                "last_error_kind": entry.get("kind"),
                "last_error": entry.get("detail")})


@dataclass
class EngineResult:
    """One answered request: the deterministic record + how it was served."""

    fingerprint: str
    record: dict[str, Any]
    cached: bool = False
    coalesced: bool = False
    attempts: int = 0
    degraded: bool = False


@dataclass
class _Flight:
    """One in-flight search shared by every coalesced waiter."""

    fingerprint: str
    task: SweepTask
    deadline: float | None                 # worker-side budget (seconds)
    event: threading.Event = field(default_factory=threading.Event)
    waiters: int = 1
    attempts: int = 0
    outcome: Any = None                    # EngineResult | ServeError
    process: Any = None                    # pool process while running
    started: float = 0.0                   # monotonic dispatch time
    next_eligible: float = 0.0
    straggler_killed: bool = False


class SearchEngine:
    """Coalescing, quarantining, crash-isolated search executor.

    Parameters
    ----------
    state_dir:
        Root for everything persistent: ``tasks/<task_id>/`` worker
        protocol dirs, the shared ``table-cache``, ``results.json``
        (result cache), ``quarantine.json``.  Restarting a (possibly
        SIGKILLed) server on the same directory restores all of it.
    workers:
        Pool width — maximum concurrently running search processes.
    max_attempts:
        Worker deaths a fingerprint survives before quarantine.
    default_deadline:
        Worker-side wall-clock budget applied when a request carries no
        ``deadline`` of its own.
    memory_budget:
        Server-wide DP memory-budget cap; a request asking for more is
        clamped (the budget rides inside the task fingerprint, so the
        clamp happens before fingerprinting).
    """

    def __init__(self, state_dir: str | os.PathLike, *,
                 workers: int = 4,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 default_deadline: float | None = None,
                 memory_budget: int | None = None,
                 straggler_after: float = DEFAULT_STRAGGLER_AFTER_SECONDS,
                 metrics=NULL_METRICS) -> None:
        if workers < 1:
            raise ValueError(f"workers={workers} must be >= 1")
        if max_attempts < 1:
            raise ValueError(f"max_attempts={max_attempts} must be >= 1")
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.workers = workers
        self.max_attempts = max_attempts
        self.default_deadline = default_deadline
        self.memory_budget = memory_budget
        self.straggler_after = straggler_after
        self.metrics = metrics
        self.cache = ResultCache(self.state_dir / "results.json")
        self.quarantine = Quarantine(self.state_dir / "quarantine.json")
        self._lock = threading.Lock()
        self._flights: dict[str, _Flight] = {}
        self._inbox: "queue.Queue[_Flight]" = queue.Queue()
        self._problems: dict = {}
        self._stop = threading.Event()
        self._mp = multiprocessing.get_context()
        self._pool = WorkerPool(
            mp_ctx=self._mp, fleet_dir=str(self.state_dir),
            options={"task_deadline": default_deadline},
            max_workers=workers,
            on_spawn=metrics.counter(
                "serve_worker_spawned_total",
                "serve pool worker processes forked").inc,
            on_reuse=metrics.counter(
                "serve_worker_reused_total",
                "serve searches run on an already-warm pool worker").inc)
        self._coalesce_hits = metrics.counter(
            "serve_coalesce_hits_total",
            "requests answered by joining an in-flight identical search")
        self._cache_hits = metrics.counter(
            "serve_result_cache_hits_total",
            "requests answered from the cross-request result cache")
        self._searches = metrics.counter(
            "serve_searches_total", "searches completed by pool workers")
        self._retries = metrics.counter(
            "serve_retries_total", "search attempt retries after failure")
        self._crashes = metrics.counter(
            "serve_worker_crashes_total",
            "search attempts that died without an error report")
        self._quarantined = metrics.counter(
            "serve_quarantined_total", "fingerprints quarantined")
        self._depth = metrics.gauge(
            "serve_queue_depth", "in-flight searches (waiting + running)")
        self._dispatcher = threading.Thread(
            target=self._run_dispatcher, daemon=True, name="serve-dispatcher")
        self._dispatcher.start()

    # -- handler-thread API --------------------------------------------------

    def normalize(self, task: SweepTask) -> SweepTask:
        """Apply server-wide clamps (DP memory budget) to a request task.

        Must run before fingerprinting: the clamped budget is part of
        the answer, so two requests above the cap coalesce correctly.
        """
        if self.memory_budget is not None and (
                task.memory_budget is None
                or task.memory_budget > self.memory_budget):
            return SweepTask(**{**task.to_dict(),
                                "memory_budget": self.memory_budget,
                                "chaos": task.chaos})
        return task

    def fingerprint_of(self, task: SweepTask) -> str:
        """`Problem.fingerprint` of one task, via a hot problem memo."""
        from ..api import Problem
        from ..core.machine import MACHINES

        key = (task.model, task.machine, task.p, task.mode)
        with self._lock:
            prob = self._problems.get(key)
        if prob is None:
            prob = Problem.from_benchmark(
                task.model, task.p, machine=MACHINES[task.machine],
                mode=task.mode)
            with self._lock:
                while len(self._problems) >= _PROBLEM_MEMO_MAX:
                    self._problems.pop(next(iter(self._problems)))
                self._problems[key] = prob
        return prob.fingerprint(
            method=task.method, seed=task.seed, reduce=task.reduce,
            resilient=task.resilient, memory_budget=task.memory_budget)

    def cached(self, fingerprint: str) -> dict | None:
        """Result-cache lookup (counts a hit metric when it lands)."""
        rec = self.cache.get(fingerprint)
        if rec is not None:
            with self._lock:
                self._cache_hits.inc()
        return rec

    def execute(self, request: ServeRequest,
                fingerprint: str | None = None) -> EngineResult:
        """Answer one admitted request; blocks, raises `ServeError`.

        ``fingerprint`` lets the server reuse the digest it computed for
        the cache fast path; the task must already be normalized then.
        """
        task = request.task if fingerprint is not None \
            else self.normalize(request.task)
        fp = fingerprint if fingerprint is not None \
            else self.fingerprint_of(task)
        rec = self.cached(fp)
        if rec is not None:
            return EngineResult(fingerprint=fp, record=rec, cached=True)
        entry = self.quarantine.get(fp)
        if entry is not None:
            if request.degrade:
                return self._execute_degraded(task, request.deadline)
            raise quarantined_error(fp, entry, degradable=True)
        flight, coalesced = self._join(fp, task, request.deadline)
        try:
            return self._await(flight, coalesced, request.deadline)
        finally:
            with self._lock:
                flight.waiters -= 1

    def quarantine_snapshot(self) -> dict[str, dict]:
        return self.quarantine.snapshot()

    # -- degradation ladder --------------------------------------------------

    def _execute_degraded(self, task: SweepTask,
                          deadline: float | None) -> EngineResult:
        """Quarantined-problem fallback: resilient + coarsened mode."""
        degraded_task = SweepTask(**{
            **task.to_dict(),
            "mode": DEGRADE_LADDER.get(task.mode, "pow2"),
            "resilient": True,
            "chaos": None,  # never degrade *into* an injected fault
        })
        fp = self.fingerprint_of(degraded_task)
        rec = self.cached(fp)
        if rec is not None:
            return EngineResult(fingerprint=fp, record=rec, cached=True,
                                degraded=True)
        entry = self.quarantine.get(fp)
        if entry is not None:
            raise quarantined_error(fp, entry, degradable=False)
        flight, coalesced = self._join(fp, degraded_task, deadline)
        try:
            result = self._await(flight, coalesced, deadline)
        finally:
            with self._lock:
                flight.waiters -= 1
        result.degraded = True
        return result

    # -- coalescing ----------------------------------------------------------

    def _join(self, fp: str, task: SweepTask,
              deadline: float | None) -> tuple[_Flight, bool]:
        """Join the in-flight search for ``fp``, creating it if needed."""
        with self._lock:
            flight = self._flights.get(fp)
            if flight is not None:
                flight.waiters += 1
                self._coalesce_hits.inc()
                return flight, True
            flight = _Flight(
                fingerprint=fp, task=task,
                deadline=(deadline if deadline is not None
                          else self.default_deadline))
            self._flights[fp] = flight
        self._inbox.put(flight)
        return flight, False

    def _await(self, flight: _Flight, coalesced: bool,
               deadline: float | None) -> EngineResult:
        if not flight.event.wait(timeout=deadline):
            raise ServeError(
                504, "deadline",
                f"request deadline of {deadline:.1f}s expired; the "
                "search continues and will be served from cache",
                detail={"fingerprint": flight.fingerprint})
        outcome = flight.outcome
        if isinstance(outcome, ServeError):
            raise outcome
        assert isinstance(outcome, EngineResult)
        return EngineResult(
            fingerprint=outcome.fingerprint, record=outcome.record,
            cached=outcome.cached, coalesced=coalesced,
            attempts=outcome.attempts, degraded=outcome.degraded)

    # -- dispatcher thread (all pool bookkeeping lives here) -----------------

    def _run_dispatcher(self) -> None:
        waiting: list[_Flight] = []
        running: dict[str, _Flight] = {}
        while not self._stop.is_set():
            self._drain_inbox(waiting, running)
            # Reap before dispatching so a worker freed this cycle picks
            # up waiting work immediately instead of idling a full poll.
            self._reap(running, waiting)
            self._dispatch(waiting, running)
            self._kill_stragglers(running)
            with self._lock:
                self._depth.set(len(waiting) + len(running))
            time.sleep(POLL_INTERVAL_SECONDS)
        # Forced shutdown: answer every remaining waiter rather than
        # leaving HTTP threads parked on events that will never fire.
        self._drain_inbox(waiting, running)
        err = ServeError(503, "draining",
                         "server shut down before the search finished")
        for flight in waiting + list(running.values()):
            self._finish(flight, err, running)

    def _drain_inbox(self, waiting: list[_Flight],
                     running: dict[str, _Flight]) -> None:
        while True:
            try:
                flight = self._inbox.get_nowait()
            except queue.Empty:
                return
            # Adopt a finished result already on disk (server restart,
            # prior fleet run on the same state dir) — same content-hash
            # adoption rule as fleet resume; never touches the pool.
            if not self._adopt(flight, running):
                waiting.append(flight)

    def _adopt(self, flight: _Flight,
               running: dict[str, _Flight]) -> bool:
        tid = flight.task.task_id
        doc = read_json(task_dir(self.state_dir, tid) / "result.json")
        if doc is None or doc.get("record", {}).get("task_id") != tid:
            return False
        self._succeed(flight, doc["record"], running)
        return True

    def _dispatch(self, waiting: list[_Flight],
                  running: dict[str, _Flight]) -> None:
        now = time.monotonic()
        for flight in list(waiting):
            if len(running) >= self.workers:
                return
            if flight.next_eligible > now:
                continue
            waiting.remove(flight)
            tid = flight.task.task_id
            tdir = task_dir(self.state_dir, tid)
            tdir.mkdir(parents=True, exist_ok=True)
            # Staleness is measured against *this* attempt's process.
            (tdir / "heartbeat.json").unlink(missing_ok=True)
            flight.attempts += 1
            options = None
            if flight.deadline is not None:
                options = {"task_deadline": flight.deadline}
            flight.process = self._pool.submit(
                tid, flight.task.to_dict(), flight.attempts, options)
            flight.started = now
            flight.straggler_killed = False
            running[flight.fingerprint] = flight

    def _reap(self, running: dict[str, _Flight],
              waiting: list[_Flight]) -> None:
        for fp in list(running):
            flight = running[fp]
            tid = flight.task.task_id
            tdir = task_dir(self.state_dir, tid)
            # Pool workers outlive their tasks: completion is the atomic
            # result.json write; a dead process without one is the
            # failure signal (burned on error, SIGKILLed, real crash).
            result = read_json(tdir / "result.json")
            attempt_ok = (result is not None and
                          result.get("record", {}).get("task_id") == tid)
            if flight.process.is_alive() and not attempt_ok:
                continue
            if not flight.process.is_alive():
                flight.process.join()
            exitcode = 0 if attempt_ok else flight.process.exitcode
            self._pool.release(tid)
            del running[fp]
            if attempt_ok:
                with self._lock:
                    self._searches.inc()
                self._succeed(flight, result["record"], running)
                continue
            kind, detail = self._failure_of(flight, exitcode, tdir)
            if kind == "crash":
                with self._lock:
                    self._crashes.inc()
            if flight.attempts >= self.max_attempts:
                entry = self.quarantine.add(
                    fp, attempts=flight.attempts, kind=kind, detail=detail,
                    label=flight.task.label)
                with self._lock:
                    self._quarantined.inc()
                self._finish(flight,
                             quarantined_error(fp, entry, degradable=True),
                             running)
            else:
                with self._lock:
                    self._retries.inc()
                flight.next_eligible = time.monotonic() + _backoff(
                    tid, flight.attempts)
                waiting.append(flight)

    @staticmethod
    def _failure_of(flight: _Flight, exitcode: int | None,
                    tdir: Path) -> tuple[str, str]:
        """Classify a failed attempt from the evidence left behind."""
        if flight.straggler_killed:
            return "straggler", "heartbeat went stale; worker SIGKILLed"
        err = read_json(tdir / "error.json")
        if err is not None and int(err.get("attempt", -1)) == flight.attempts:
            return (str(err.get("kind", "error")),
                    f"{err.get('type', 'Exception')}: "
                    f"{err.get('detail', '?')}")
        return "crash", (f"worker died with exit code {exitcode} and no "
                         "error report")

    def _kill_stragglers(self, running: dict[str, _Flight]) -> None:
        now = time.monotonic()
        wall_now = time.time()
        for flight in running.values():
            if not flight.process.is_alive() or flight.straggler_killed:
                continue
            age = now - flight.started
            if age < self.straggler_after:
                continue  # dispatch grace: younger than the threshold
            hb = read_json(
                task_dir(self.state_dir, flight.task.task_id)
                / "heartbeat.json")
            hb_age = (wall_now - float(hb["time"])) if hb else age
            if hb_age < self.straggler_after:
                continue
            flight.straggler_killed = True
            with self._lock:
                self.metrics.counter(
                    "serve_stragglers_killed_total",
                    "straggling serve workers SIGKILLed").inc()
            flight.process.kill()

    def _succeed(self, flight: _Flight, record: Mapping[str, Any],
                 running: dict[str, _Flight]) -> None:
        self.cache.put(flight.fingerprint, record)
        self._finish(
            flight,
            EngineResult(fingerprint=flight.fingerprint, record=dict(record),
                         attempts=flight.attempts),
            running)

    def _finish(self, flight: _Flight, outcome: Any,
                running: dict[str, _Flight]) -> None:
        with self._lock:
            self._flights.pop(flight.fingerprint, None)
        running.pop(flight.fingerprint, None)
        flight.outcome = outcome
        flight.event.set()

    # -- lifecycle -----------------------------------------------------------

    def close(self, grace: float = 2.0) -> None:
        """Stop the dispatcher and the pool; flush persistent state.

        Call after draining: any flight still in the air is answered
        with a structured 503 so no waiter hangs forever.
        """
        self._stop.set()
        self._dispatcher.join(timeout=max(grace, 5.0))
        self._pool.shutdown(grace)
        self.cache.flush()
        self.quarantine.flush()

    def __enter__(self) -> "SearchEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
