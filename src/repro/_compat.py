"""Deprecation plumbing for the pre-`RunContext` keyword spellings.

PR 5 consolidated the loose ``jobs`` / ``cache`` / ``budget`` /
``cancellation`` / ``journal`` / ``checkpoint`` keywords into one
`repro.runtime.RunContext`.  The old spellings keep working — they are
mapped onto a context internally and produce bit-identical results —
but emit a `DeprecationWarning` pointing at the replacement.

This module is import-cycle neutral (stdlib only) so both ``core`` and
``runtime`` can use it.
"""

from __future__ import annotations

import warnings
from typing import Any, Iterable

__all__ = ["UNSET", "warn_deprecated_kwargs", "reject_ctx_conflict"]


class _Unset:
    """Sentinel distinguishing "not passed" from an explicit ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<UNSET>"

    def __bool__(self) -> bool:
        return False


UNSET: Any = _Unset()


def warn_deprecated_kwargs(func: str, names: Iterable[str],
                           *, stacklevel: int = 3) -> None:
    """Emit the one shared deprecation message for legacy keywords.

    ``stacklevel=3`` points at the caller of the deprecated public
    function (this helper -> public function -> caller).
    """
    joined = ", ".join(sorted(names))
    warnings.warn(
        f"{func}: the {joined} keyword(s) are deprecated; bundle them "
        "into a repro.runtime.RunContext and pass ctx= instead",
        DeprecationWarning, stacklevel=stacklevel)


def reject_ctx_conflict(func: str, names: Iterable[str]) -> None:
    """Raise when both ``ctx=`` and legacy keywords were passed.

    Silently preferring one over the other would make the migration
    ambiguous; mixing the two spellings is a hard error.
    """
    joined = ", ".join(sorted(names))
    raise TypeError(
        f"{func}: pass either ctx= or the legacy {joined} keyword(s), "
        "not both")
