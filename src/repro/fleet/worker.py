"""The fleet worker: one process, one task, crash-only protocol.

Every dispatch runs :func:`worker_main` in a fresh child process.  The
worker never talks to the supervisor over a pipe — pipes die with
processes.  All communication is crash-safe files under the task's
directory ``<fleet_dir>/tasks/<task_id>/``:

``heartbeat.json``
    Re-written atomically every `HEARTBEAT_INTERVAL_SECONDS` by a
    daemon thread.  A stale heartbeat is how the supervisor detects a
    wedged or silently-dead worker and reassigns the task.
``result.json``
    Written atomically on success; carries the deterministic ``record``
    the merged results JSONL is built from (task, cost, strategy,
    optional fault-injected simulation) plus operational fields
    (elapsed seconds, attempt number) kept *out* of the record so
    resumed and fresh sweeps merge bit-identically.
``error.json``
    Written atomically on any caught failure, then the worker exits
    non-zero.  A worker that dies without writing either file (SIGKILL,
    ``os._exit``, segfault) is still handled: the supervisor sees the
    exit code and the missing result.

The search itself is a journalled `execute_search` under the task's own
`RunContext` — per-task wall-clock deadline and memory budget — with
the journal's table store pointed at the fleet-wide shared `TableCache`
(multi-process safe), so identical (graph, machine, p, mode) cells
across the sweep build their cost tables exactly once.  A retried task
resumes its own journal when the previous attempt got far enough to
leave one.

Chaos hooks (``task.chaos``, see `repro.fleet.spec`) let the tests and
CI make a worker ``os._exit`` mid-task, raise, or wedge with heartbeats
suppressed — real process-level faults, not monkeypatched ones.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
from pathlib import Path
from typing import Any, Mapping

from ..core.exceptions import (
    DeadlineExceededError,
    JournalError,
    SearchResourceError,
)
from ..obs.metrics import atomic_write_text
from .spec import SweepTask

__all__ = ["worker_main", "run_task_attempt", "prewarm_fork_template",
           "task_dir", "read_json",
           "HEARTBEAT_INTERVAL_SECONDS", "RESULT_VERSION"]

#: Seconds between heartbeat re-writes.
HEARTBEAT_INTERVAL_SECONDS = 0.25

#: Result/error file schema version.
RESULT_VERSION = 1


def task_dir(fleet_dir: str | os.PathLike, task_id: str) -> Path:
    return Path(fleet_dir) / "tasks" / task_id


def read_json(path: Path) -> dict[str, Any] | None:
    """Best-effort read of a worker artifact; None if absent/torn.

    Artifacts are written atomically, so a parse failure means the file
    predates this fleet layout — treated the same as missing.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None


def _write_json(path: Path, payload: Mapping[str, Any]) -> None:
    atomic_write_text(path, json.dumps(payload, sort_keys=True, indent=2))


class _Heartbeat:
    """Daemon thread atomically re-writing the task's heartbeat file."""

    def __init__(self, path: Path, task_id: str, attempt: int) -> None:
        self.path = path
        self.task_id = task_id
        self.attempt = attempt
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=f"heartbeat-{task_id}")

    def _beat(self) -> None:
        _write_json(self.path, {
            "task_id": self.task_id,
            "attempt": self.attempt,
            "pid": os.getpid(),
            "time": time.time(),
        })

    def _run(self) -> None:
        while not self._stop.wait(HEARTBEAT_INTERVAL_SECONDS):
            try:
                self._beat()
            except OSError:  # pragma: no cover - disk full etc.
                pass

    def start(self) -> None:
        self._beat()
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()


def _apply_chaos(task: SweepTask, attempt: int,
                 heartbeat: _Heartbeat) -> None:
    """Misbehave per the task's test-only chaos hook.

    ``attempts`` bounds which attempts misbehave (default: all of them,
    i.e. a poison task); ``{"kind": "exit", "attempts": 1}`` crashes
    only the first attempt, modelling a transient worker death.
    """
    chaos = task.chaos
    if chaos is None or attempt > int(chaos.get("attempts", 1 << 30)):
        return
    kind = chaos["kind"]
    if kind == "exit":
        # The moral equivalent of an OOM kill: no cleanup, no result.
        os._exit(int(chaos.get("code", 13)))
    if kind == "raise":
        raise RuntimeError(chaos.get("message", "chaos: injected failure"))
    if kind == "hang":
        # A wedged worker: stop heartbeating, then sleep well past any
        # straggler threshold so the supervisor must SIGKILL us.
        heartbeat.stop()
        time.sleep(float(chaos.get("seconds", 3600.0)))


#: Process-wide memo of built ``(graph, space)`` problems keyed by
#: ``(model, p, mode)``.  A persistent pool worker serves many tasks
#: that differ only in seed/method; rebuilding the identical benchmark
#: graph and configuration space per task is pure overhead.  Both
#: objects are treated as immutable by the search, so sharing them
#: across sequential tasks in one process is safe.
_PROBLEM_MEMO: dict = {}
_PROBLEM_MEMO_MAX = 8


def _problem(model: str, p: int, mode: str):
    from ..core.configs import ConfigSpace
    from ..models import BENCHMARKS

    key = (model, p, mode)
    hit = _PROBLEM_MEMO.get(key)
    if hit is None:
        graph = BENCHMARKS[model]()
        hit = (graph, ConfigSpace.build(graph, p, mode=mode))
        while len(_PROBLEM_MEMO) >= _PROBLEM_MEMO_MAX:
            _PROBLEM_MEMO.pop(next(iter(_PROBLEM_MEMO)))
        _PROBLEM_MEMO[key] = hit
    return hit


def prewarm_fork_template(tasks, fleet_dir: str | os.PathLike) -> int:
    """Warm the process-wide memos before pool workers fork.

    A persistent pool forks its workers from the supervisor, so
    anything memoized here is inherited by every worker for free —
    instead of each of N workers paying its own first-touch cost per
    distinct problem.  Builds each distinct ``(model, machine, p,
    mode)`` cell's problem and cost tables through the fleet-wide
    shared `TableCache`, leaving `_PROBLEM_MEMO` and the cache's mmap
    memo hot.  Returns the number of cells warmed.  Failures are
    swallowed: prewarming is a pure optimisation and workers rebuild
    anything missing themselves.
    """
    from ..core.costmodel import CostModel
    from ..core.machine import MACHINES
    from ..core.tablecache import TableCache
    from ..runtime import RunContext

    cache = TableCache(Path(fleet_dir) / "table-cache")
    warmed = 0
    seen: set[tuple] = set()
    for task in tasks:
        key = (task.model, task.machine, task.p, task.mode)
        if key in seen:
            continue
        seen.add(key)
        try:
            graph, space = _problem(task.model, task.p, task.mode)
            ctx = RunContext(cache=cache)
            model = CostModel(MACHINES[task.machine])
            model.build_tables(graph, space, ctx=ctx)  # build + store
            model.build_tables(graph, space, ctx=ctx)  # load -> mmap memo
            warmed += 1
        except Exception:  # pragma: no cover - best-effort warm-up
            continue
    return warmed


def _run_task(task: SweepTask, attempt: int, fleet: Path,
              options: Mapping[str, Any]) -> dict[str, Any]:
    """Execute one task; returns the deterministic result record."""
    from ..core.dp import DEFAULT_MEMORY_BUDGET
    from ..core.machine import MACHINES
    from ..core.tablecache import TableCache
    from ..runtime import RunBudget, RunContext, SearchJournal
    from ..runtime.run import execute_search

    machine = MACHINES[task.machine]
    graph, space = _problem(task.model, task.p, task.mode)
    shared_cache = TableCache(fleet / "table-cache")
    tdir = task_dir(fleet, task.task_id)
    journal = SearchJournal(tdir / "journal", table_store=shared_cache)
    ctx = RunContext(
        budget=RunBudget(
            deadline=options.get("task_deadline"),
            memory_budget=task.memory_budget or DEFAULT_MEMORY_BUDGET),
        journal=journal, jobs=None)
    # A previous attempt that reached the journal gets replayed/resumed
    # bit-identically; a fresh or fingerprint-mismatched journal starts
    # over (the journal overwrites itself on a fresh open).
    resume = (tdir / "journal" / "journal.json").is_file()
    try:
        outcome = execute_search(
            graph, space, machine, method=task.method, seed=task.seed,
            reduce=task.reduce, objective=task.objective,
            resilient=task.resilient, ctx=ctx, resume=resume)
    except JournalError:
        if not resume:
            raise
        outcome = execute_search(
            graph, space, machine, method=task.method, seed=task.seed,
            reduce=task.reduce, objective=task.objective,
            resilient=task.resilient, ctx=ctx, resume=False)
    result = outcome.result
    record: dict[str, Any] = {
        "task_id": task.task_id,
        "label": task.label,
        "task": task.to_dict(),
        "cost": result.cost,
        "method": result.method,
        "strategy": {n: list(c) for n, c in
                     result.strategy.assignment.items()},
    }
    if task.objective != "cost":
        # Frontier tasks record every non-dominated point (strategies
        # included) so sweep consumers can select under memory caps
        # without re-running the search.
        record["frontier"] = [
            {"cost": pt.cost, "peak_bytes": pt.peak_bytes,
             "strategy": {n: list(c) for n, c in
                          pt.strategy.assignment.items()}}
            for pt in result.frontier]
    if task.faults is not None:
        from ..cluster import simulate_step
        from ..resilience import FaultPlan

        plan = FaultPlan.from_dict(dict(task.faults))
        plan.validate(task.p)
        rep = simulate_step(graph, result.strategy, machine, task.p,
                            faults=plan)
        record["sim"] = {
            "step_time": rep.step_time,
            "throughput": rep.throughput,
            "faults": task.faults_name or "faults",
        }
    return record


def run_task_attempt(task_dict: Mapping[str, Any], attempt: int,
                     fleet_dir: str, options: Mapping[str, Any]) -> bool:
    """Run one task attempt over the file protocol; True on success.

    The reusable core shared by the spawn-per-task `worker_main` and the
    persistent pool's worker loop (`repro.fleet.pool`): heartbeat for
    the duration, apply chaos, run the search, and leave exactly one of
    ``result.json`` (success) or ``error.json`` (caught failure) behind.
    Task failures are *returned*, not raised — only process-killing
    faults (chaos ``os._exit``, a real crash) escape.
    """
    task = SweepTask.from_dict(dict(task_dict))
    tdir = task_dir(fleet_dir, task.task_id)
    tdir.mkdir(parents=True, exist_ok=True)
    heartbeat = _Heartbeat(tdir / "heartbeat.json", task.task_id, attempt)
    heartbeat.start()
    t0 = time.perf_counter()
    try:
        _apply_chaos(task, attempt, heartbeat)
        record = _run_task(task, attempt, Path(fleet_dir), options)
    except Exception as err:
        if isinstance(err, DeadlineExceededError):
            kind = "deadline"
        elif isinstance(err, SearchResourceError):
            kind = "resource"
        else:
            kind = "error"
        _write_json(tdir / "error.json", {
            "version": RESULT_VERSION,
            "task_id": task.task_id,
            "attempt": attempt,
            "kind": kind,
            "type": type(err).__name__,
            "detail": str(err),
        })
        heartbeat.stop()
        return False
    _write_json(tdir / "result.json", {
        "version": RESULT_VERSION,
        "record": record,
        "attempt": attempt,
        "elapsed_seconds": time.perf_counter() - t0,
    })
    heartbeat.stop()
    return True


def worker_main(task_dict: Mapping[str, Any], attempt: int,
                fleet_dir: str, options: Mapping[str, Any]) -> None:
    """Child-process entry point: run one task, leave files, exit.

    Exit codes: 0 success (``result.json`` written), 1 failure
    (``error.json`` written); anything else means the process died
    uncleanly and the supervisor treats it as a crash.
    """
    # The supervisor owns shutdown: ignore SIGINT (a terminal ^C hits
    # the whole process group) so the fleet winds down through the
    # supervisor's manifest flush, not through 50 dying children.  A
    # forked child also inherits `trap_signals`' SIGTERM handler, which
    # would flip a *copy* of the supervisor's token and keep running —
    # restore the default so the supervisor's terminate() actually
    # terminates.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    sys.exit(0 if run_task_attempt(task_dict, attempt, fleet_dir, options)
             else 1)
