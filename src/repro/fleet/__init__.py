"""Fault-tolerant fleet sweeps: shard the search over a work queue.

A *fleet* evaluates a declarative grid of strategy searches — models ×
machines × device counts × fault plans × flags — through a pool of
crash-isolated worker processes, each task a journalled
`execute_search` under its own per-task budget, all sharing one
multi-process-safe content-addressed table cache.

The robustness contract (see DESIGN.md §10):

* per-task retry with exponential backoff + deterministic jitter;
* poison-task quarantine after ``max_attempts`` (recorded, not fatal);
* worker heartbeats with straggler SIGKILL + reassignment;
* SIGINT/SIGTERM-safe shutdown (exit code 6, manifest flushed);
* crash-safe `FleetManifest` (temp + ``os.replace``) so a killed fleet
  resumes mid-sweep, with completed tasks replayed — the merged
  ``results.jsonl`` is byte-identical to an uninterrupted run.

CLI: ``pase sweep --spec SPEC.json --fleet-dir DIR --workers N``.
"""

from .manifest import MANIFEST_VERSION, FleetManifest
from .report import (
    SUMMARY_VERSION,
    FleetReport,
    format_fleet_report,
    merge_results,
    write_summary,
)
from .spec import SPEC_VERSION, SweepSpec, SweepSpecError, SweepTask
from .supervisor import (
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_STRAGGLER_AFTER_SECONDS,
    FleetSupervisor,
    run_sweep,
)
from .worker import HEARTBEAT_INTERVAL_SECONDS, worker_main

__all__ = [
    "SweepSpec",
    "SweepTask",
    "SweepSpecError",
    "SPEC_VERSION",
    "FleetManifest",
    "MANIFEST_VERSION",
    "FleetReport",
    "FleetSupervisor",
    "run_sweep",
    "merge_results",
    "write_summary",
    "format_fleet_report",
    "SUMMARY_VERSION",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_STRAGGLER_AFTER_SECONDS",
    "HEARTBEAT_INTERVAL_SECONDS",
    "worker_main",
]
