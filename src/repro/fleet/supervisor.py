"""The fleet supervisor: drain a sweep through self-healing workers.

`FleetSupervisor.run` takes a `SweepSpec` and a fleet directory and
drives every task to ``done`` or ``quarantined`` through a pool of
single-task worker processes (`repro.fleet.worker`), surviving every
failure mode the chaos suite can produce:

* **worker crash** (``os._exit``, OOM kill, segfault): the exit code
  and missing result file mark a failed attempt; the task retries with
  exponential backoff and deterministic jitter;
* **poison task** (fails every attempt): after ``max_attempts`` total
  attempts it is *quarantined* — recorded with its last error in the
  manifest and summary, skipped by the merge, never fatal to the fleet;
* **straggler / wedged worker**: a heartbeat older than
  ``straggler_after`` gets the process SIGKILLed and the task
  reassigned (counted, attempt burned);
* **supervisor death**: every state transition is flushed atomically to
  the `FleetManifest`, so ``kill -9`` mid-sweep loses at most the
  in-flight attempts; ``--resume`` demotes them to pending, *adopts*
  any finished results orphan workers left behind, and replays
  completed tasks from their result files without recomputing — the
  merged ``results.jsonl`` is byte-identical to an uninterrupted run;
* **SIGINT/SIGTERM**: the first signal flips the context's
  `Cancellation` token (pair with `trap_signals`); the supervisor stops
  dispatching, terminates children (TERM, then KILL after a grace
  period), flushes the manifest, and raises `RunInterrupted` so the CLI
  exits with the documented code 6.

Fleet-level observability flows through the run's `RunContext`: a
``fleet`` root span with one ``fleet.task`` span per terminal task
state, plus ``fleet_*`` counters and a ``fleet_searches_per_minute``
gauge.
"""

from __future__ import annotations

import multiprocessing
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..obs.profile import metrics_of, tracer_of
from ..runtime.budget import Cancellation, RunBudget
from ..runtime.context import RunContext
from .manifest import FleetManifest
from .pool import WorkerPool
from .report import FleetReport, format_fleet_report, merge_results, \
    write_summary
from .spec import SweepSpec, SweepTask
from .worker import (
    prewarm_fork_template,
    read_json,
    task_dir,
    worker_main,
)

__all__ = ["FleetSupervisor", "run_sweep", "DEFAULT_POOL",
           "DEFAULT_MAX_ATTEMPTS", "DEFAULT_STRAGGLER_AFTER_SECONDS"]

#: Worker management strategy: ``"persistent"`` reuses pre-forked
#: processes across tasks (`repro.fleet.pool`); ``"spawn"`` forks a
#: fresh process per task attempt (the original behaviour).
DEFAULT_POOL = "persistent"
POOL_MODES = ("spawn", "persistent")

#: Total attempts a task gets before quarantine (first run + retries).
DEFAULT_MAX_ATTEMPTS = 3

#: Heartbeat age (seconds) past which a worker is declared a straggler.
DEFAULT_STRAGGLER_AFTER_SECONDS = 60.0

#: Exponential-backoff base/cap for task retries (seconds).
BACKOFF_BASE_SECONDS = 0.5
BACKOFF_CAP_SECONDS = 30.0

#: Supervisor loop poll period (seconds).
POLL_INTERVAL_SECONDS = 0.05

#: Grace period between SIGTERM and SIGKILL during shutdown.
SHUTDOWN_GRACE_SECONDS = 2.0


def _backoff(task_id: str, attempts: int, base: float, cap: float) -> float:
    """Exponential backoff with deterministic per-(task, attempt) jitter.

    Jitter decorrelates a thundering herd of simultaneous failures
    (e.g. every worker dying when a shared filesystem hiccups) without
    making test runs flaky — the same task/attempt always backs off the
    same amount.
    """
    delay = min(cap, base * (2.0 ** max(attempts - 1, 0)))
    jitter = random.Random(f"{task_id}:{attempts}").uniform(0.0, 0.5)
    return delay * (1.0 + jitter)


@dataclass
class _InFlight:
    """One running worker process as the supervisor tracks it."""

    task: SweepTask
    process: multiprocessing.Process
    started: float                 # time.monotonic() at spawn
    straggler_killed: bool = False


class FleetSupervisor:
    """Drains one `SweepSpec` through crash-isolated worker processes.

    Parameters
    ----------
    spec:
        The sweep to run (see `repro.fleet.spec`).
    fleet_dir:
        Root for all fleet state: ``manifest.json``, per-task
        directories, the shared table cache, merged results, summary.
    workers:
        Maximum concurrently running worker processes.
    max_attempts:
        Total attempts (first run + retries) before quarantine.
    task_deadline:
        Per-task wall-clock budget (seconds) enforced *inside* the
        worker via `RunBudget`; ``None`` leaves tasks unbounded (the
        straggler reaper still applies).
    straggler_after:
        Heartbeat age (seconds) past which the worker is SIGKILLed and
        the task reassigned.
    ctx:
        Fleet-level `RunContext`: cancellation token (pair with
        `trap_signals`), optional fleet-wide deadline, tracer/metrics.
        Per-task budgets are separate and built by the workers.
    pool:
        ``"persistent"`` (default) serves tasks from a pre-forked
        reusable worker pool; ``"spawn"`` forks one process per task
        attempt.  Failure semantics are identical: a failed attempt
        always costs its process.  ``None`` falls back to
        ``ctx.pool``, then `DEFAULT_POOL`.
    """

    def __init__(self, spec: SweepSpec, fleet_dir: str | Path, *,
                 workers: int = 4,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 task_deadline: float | None = None,
                 straggler_after: float = DEFAULT_STRAGGLER_AFTER_SECONDS,
                 backoff_base: float = BACKOFF_BASE_SECONDS,
                 backoff_cap: float = BACKOFF_CAP_SECONDS,
                 ctx: RunContext | None = None,
                 pool: str | None = None) -> None:
        if workers < 1:
            raise ValueError(f"workers={workers} must be >= 1")
        if max_attempts < 1:
            raise ValueError(f"max_attempts={max_attempts} must be >= 1")
        if straggler_after <= 0:
            raise ValueError(
                f"straggler_after={straggler_after} must be positive")
        self.spec = spec
        self.fleet_dir = Path(fleet_dir)
        self.workers = workers
        self.max_attempts = max_attempts
        self.task_deadline = task_deadline
        self.straggler_after = straggler_after
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        if ctx is None:
            ctx = RunContext()
        if ctx.budget is None or ctx.cancellation is None:
            ctx = ctx.with_overrides(
                budget=ctx.budget or RunBudget(),
                cancellation=ctx.cancellation or Cancellation())
        self.ctx = ctx
        resolved_pool = pool or ctx.pool or DEFAULT_POOL
        if resolved_pool not in POOL_MODES:
            raise ValueError(
                f"pool={resolved_pool!r} must be one of {POOL_MODES}")
        self.pool = resolved_pool
        self._pool: WorkerPool | None = None
        self._spawn_dispatches = 0
        self._worker_spawned_counter: Any = None
        self.manifest = FleetManifest(self.fleet_dir)
        self._mp = multiprocessing.get_context()

    # -- public entry point --------------------------------------------------

    def run(self, *, resume: bool = False) -> FleetReport:
        """Drain the sweep; returns the `FleetReport`.

        Raises `RunInterrupted` on SIGINT/SIGTERM (manifest flushed,
        children reaped — rerun with ``resume=True`` to continue) and
        `DeadlineExceededError` when the fleet-level budget expires.
        """
        self.ctx.started()
        tracer = tracer_of(self.ctx)
        metrics = metrics_of(self.ctx)
        tasks = self.spec.expand()
        by_id = {t.task_id: t for t in tasks}
        t0 = time.monotonic()
        with self.ctx.observe(), tracer.span(
                "fleet", tasks=len(tasks), workers=self.workers,
                resume=resume) as fleet_span:
            resumed = self.manifest.open(
                self.spec.fingerprint(), list(by_id), resume=resume)
            if resumed:
                self._adopt_orphan_results(by_id, tracer)
            report = self._drain(by_id, tracer, metrics, t0)
            report.resumed = resumed
            report.workers = self.workers
            report.manifest_path = str(self.manifest.path)
            results = merge_results(self.fleet_dir, tasks, self.manifest)
            report.results_path = str(results)
            summary = write_summary(self.fleet_dir, report,
                                    self.spec.fingerprint())
            report.summary_path = str(summary)
            fleet_span.set(succeeded=report.succeeded,
                           quarantined=report.quarantined,
                           retries=report.retries,
                           searches_per_minute=report.searches_per_minute)
            metrics.gauge(
                "fleet_searches_per_minute",
                "completed searches per minute at fleet width").set(
                    report.searches_per_minute)
        return report

    def summary(self, report: FleetReport) -> str:
        return format_fleet_report(report)

    # -- resume adoption -----------------------------------------------------

    def _adopt_orphan_results(self, by_id: dict[str, SweepTask],
                              tracer) -> None:
        """Adopt finished results the previous fleet never recorded.

        A supervisor killed between a worker's atomic ``result.json``
        write and the manifest's ``done`` flush — or whose orphaned
        workers finished after it died — left completed work on disk.
        Recognise it by task id (a content hash, so a matching file
        *is* the right answer) instead of recomputing.
        """
        for tid in self.manifest.in_state("pending"):
            doc = read_json(task_dir(self.fleet_dir, tid) / "result.json")
            if doc is None or doc.get("record", {}).get("task_id") != tid:
                continue
            self.manifest.mark_done(
                tid, seconds=float(doc.get("elapsed_seconds", 0.0)))
            counters = self.manifest.counters
            counters["adopted"] = int(counters.get("adopted", 0)) + 1
            self.manifest.flush()
            with tracer.span("fleet.task", task=by_id[tid].label,
                             state="adopted"):
                pass

    # -- the drain loop ------------------------------------------------------

    def _drain(self, by_id: dict[str, SweepTask], tracer, metrics,
               t0: float) -> FleetReport:
        running: dict[str, _InFlight] = {}
        next_eligible: dict[str, float] = {}
        completed_this_run = 0
        task_seconds = metrics.histogram(
            "fleet_task_seconds", "wall seconds per completed fleet task")
        spawned_total = metrics.counter(
            "fleet_worker_spawned_total", "fleet worker processes forked")
        reused_total = metrics.counter(
            "fleet_worker_reused_total",
            "fleet tasks served by an already-warm pool worker")
        self._worker_spawned_counter = spawned_total
        if self.pool == "persistent":
            # Workers fork from this process: memos warmed here are
            # inherited by every worker, so each distinct problem pays
            # its first-touch cost exactly once fleet-wide.
            prewarm_fork_template(
                (by_id[tid] for tid in self.manifest.in_state("pending")
                 if tid in by_id),
                self.fleet_dir)
            self._pool = WorkerPool(
                mp_ctx=self._mp, fleet_dir=str(self.fleet_dir),
                options={"task_deadline": self.task_deadline},
                max_workers=self.workers,
                on_spawn=spawned_total.inc, on_reuse=reused_total.inc)
        try:
            while True:
                self._poll_control(running)
                with self.manifest.batch():
                    completed_this_run += self._reap(
                        running, by_id, tracer, metrics, next_eligible,
                        task_seconds)
                    self._kill_stragglers(running, metrics)
                    pending = self.manifest.in_state("pending")
                    if not pending and not running:
                        break
                    self._dispatch(pending, running, by_id, next_eligible)
                time.sleep(POLL_INTERVAL_SECONDS)
        except BaseException:
            self._shutdown(running)
            raise
        if self._pool is not None:
            self._pool.shutdown(SHUTDOWN_GRACE_SECONDS)
        return self._build_report(by_id, completed_this_run,
                                  time.monotonic() - t0)

    def _poll_control(self, running: dict[str, _InFlight]) -> None:
        """Surface cancellation/deadline; `_drain`'s unwind path kills
        the children before the error escapes."""
        assert self.ctx.cancellation is not None
        assert self.ctx.budget is not None
        self.ctx.cancellation.check("fleet")
        self.ctx.budget.check("fleet")

    def _dispatch(self, pending: list[str], running: dict[str, _InFlight],
                  by_id: dict[str, SweepTask],
                  next_eligible: dict[str, float]) -> None:
        now = time.monotonic()
        for tid in pending:
            if len(running) >= self.workers:
                break
            if tid in running or next_eligible.get(tid, 0.0) > now:
                continue
            task = by_id[tid]
            attempt = int(self.manifest.task(tid)["attempts"])
            tdir = task_dir(self.fleet_dir, tid)
            tdir.mkdir(parents=True, exist_ok=True)
            # Clear the previous attempt's heartbeat so staleness is
            # always measured against *this* process.
            (tdir / "heartbeat.json").unlink(missing_ok=True)
            if self._pool is not None:
                proc = self._pool.submit(tid, task.to_dict(), attempt + 1)
            else:
                proc = self._mp.Process(
                    target=worker_main,
                    args=(task.to_dict(), attempt + 1, str(self.fleet_dir),
                          {"task_deadline": self.task_deadline}),
                    name=f"fleet-worker-{tid}")
                proc.start()
                self._spawn_dispatches += 1
                if self._worker_spawned_counter is not None:
                    self._worker_spawned_counter.inc()
            assert proc.pid is not None
            self.manifest.mark_running(tid, pid=proc.pid)
            running[tid] = _InFlight(task=task, process=proc, started=now)

    def _reap(self, running: dict[str, _InFlight],
              by_id: dict[str, SweepTask], tracer, metrics,
              next_eligible: dict[str, float], task_seconds) -> int:
        """Collect finished workers; returns tasks completed this call."""
        done = 0
        for tid in list(running):
            flight = running[tid]
            tdir = task_dir(self.fleet_dir, tid)
            if self._pool is not None:
                # Pool workers outlive their tasks, so completion is the
                # atomic result.json write, not process exit; a dead
                # process (burned on failure, straggler-SIGKILLed, real
                # crash) is the failure signal, exactly as in spawn
                # mode.  A valid result counts even from a process that
                # died afterwards — same rule as orphan adoption.
                result = read_json(tdir / "result.json")
                attempt_ok = (result is not None and
                              result.get("record", {}).get("task_id") == tid)
                if flight.process.is_alive() and not attempt_ok:
                    continue
                if not flight.process.is_alive():
                    flight.process.join()
                exitcode = 0 if attempt_ok else flight.process.exitcode
                self._pool.release(tid)
            else:
                if flight.process.is_alive():
                    continue
                flight.process.join()
                exitcode = flight.process.exitcode
                result = read_json(tdir / "result.json")
                attempt_ok = (exitcode == 0 and result is not None
                              and result.get("record", {}).get("task_id")
                              == tid)
            del running[tid]
            seconds = time.monotonic() - flight.started
            if attempt_ok:
                self.manifest.mark_done(tid, seconds=seconds)
                task_seconds.observe(seconds)
                metrics.counter("fleet_tasks_succeeded_total",
                                "fleet tasks completed").inc()
                with tracer.span("fleet.task", task=flight.task.label,
                                 state="done", seconds_task=seconds,
                                 attempts=self.manifest.task(tid)["attempts"]):
                    pass
                done += 1
                continue
            kind, detail = self._failure_of(flight, exitcode, tdir)
            attempts = int(self.manifest.task(tid)["attempts"])
            state = self.manifest.mark_failed(
                tid, detail=detail, kind=kind,
                max_attempts=self.max_attempts)
            if state == "quarantined":
                metrics.counter("fleet_tasks_quarantined_total",
                                "fleet tasks quarantined").inc()
            else:
                metrics.counter("fleet_task_retries_total",
                                "fleet task retry dispatches").inc()
                next_eligible[tid] = time.monotonic() + _backoff(
                    tid, attempts, self.backoff_base, self.backoff_cap)
            with tracer.span("fleet.task", task=flight.task.label,
                             state=state, failure=kind,
                             attempts=attempts):
                pass
        return done

    @staticmethod
    def _failure_of(flight: _InFlight, exitcode: int | None,
                    tdir: Path) -> tuple[str, str]:
        """Classify a failed attempt from the evidence left behind."""
        if flight.straggler_killed:
            return "straggler", "heartbeat went stale; worker SIGKILLed"
        err = read_json(tdir / "error.json")
        if exitcode == 1 and err is not None:
            return (str(err.get("kind", "error")),
                    f"{err.get('type', 'Exception')}: "
                    f"{err.get('detail', '?')}")
        return "crash", (f"worker died with exit code {exitcode} and no "
                         "error report")

    def _kill_stragglers(self, running: dict[str, _InFlight],
                         metrics) -> None:
        """SIGKILL workers whose heartbeat went stale; reap handles it."""
        now = time.monotonic()
        wall_now = time.time()
        for tid, flight in running.items():
            if not flight.process.is_alive() or flight.straggler_killed:
                continue
            age = now - flight.started
            if age < self.straggler_after:
                continue  # spawn grace: younger than the threshold
            hb = read_json(task_dir(self.fleet_dir, tid) / "heartbeat.json")
            hb_age = (wall_now - float(hb["time"])) if hb else age
            if hb_age < self.straggler_after:
                continue
            flight.straggler_killed = True
            metrics.counter("fleet_stragglers_killed_total",
                            "straggling fleet workers SIGKILLed").inc()
            flight.process.kill()

    def _shutdown(self, running: dict[str, _InFlight]) -> None:
        """TERM then KILL every child, flush the manifest, stay quiet."""
        if self._pool is not None:
            # The pool owns the processes: idle workers drain cleanly,
            # busy ones are TERMed (their in-flight attempts die, same
            # as spawn mode) and KILLed past the grace period.
            self._pool.shutdown(SHUTDOWN_GRACE_SECONDS)
        else:
            for flight in running.values():
                if flight.process.is_alive():
                    flight.process.terminate()
            deadline = time.monotonic() + SHUTDOWN_GRACE_SECONDS
            for flight in running.values():
                flight.process.join(max(0.0, deadline - time.monotonic()))
                if flight.process.is_alive():
                    flight.process.kill()
                    flight.process.join()
        # The in-flight attempts die with us; resume demotes their
        # "running" slots back to pending.
        self.manifest.flush()

    # -- reporting -----------------------------------------------------------

    def _build_report(self, by_id: dict[str, SweepTask],
                      completed_this_run: int,
                      wall_seconds: float) -> FleetReport:
        counts = self.manifest.counts()
        report = FleetReport(
            tasks_total=len(by_id),
            succeeded=counts["done"],
            quarantined=counts["quarantined"],
            retries=counts["retries"],
            stragglers_killed=counts["stragglers_killed"],
            worker_crashes=counts["worker_crashes"],
            adopted=int(counts.get("adopted", 0)),
            completed_this_run=completed_this_run,
            wall_seconds=wall_seconds,
            searches_per_minute=(
                60.0 * completed_this_run / wall_seconds
                if wall_seconds > 0 else 0.0),
            pool=self.pool,
            workers_spawned=(self._pool.spawned if self._pool is not None
                             else self._spawn_dispatches),
            workers_reused=(self._pool.reused if self._pool is not None
                            else 0),
        )
        for tid in self.manifest.in_state("quarantined"):
            rec = self.manifest.task(tid)
            report.quarantined_tasks.append({
                "task_id": tid,
                "label": by_id[tid].label,
                "attempts": rec["attempts"],
                "last_error": rec.get("last_error"),
            })
        return report


def run_sweep(spec: SweepSpec, fleet_dir: str | Path, *,
              resume: bool = False, **kwargs: Any) -> FleetReport:
    """One-call convenience wrapper: build a supervisor and drain it."""
    return FleetSupervisor(spec, fleet_dir, **kwargs).run(resume=resume)
