"""Fleet results merge, summary artifact, and human-readable report.

Two output files, two different contracts:

``results.jsonl``
    One line per **completed** task, in the spec's deterministic
    expansion order, each line the compact sorted-key JSON of the
    worker's deterministic ``record``.  Because the records exclude all
    wall-clock/operational fields, a sweep that crashed and resumed any
    number of times merges to a **byte-identical** file as the same
    sweep run uninterrupted — the property the chaos suite pins.
``summary.json``
    The operational story: state counts, retries, quarantines (with
    their last errors), stragglers killed, workers, wall seconds and
    searches/minute.  Varies run to run by construction; validated
    structurally by ``scripts/check_obs_schema.py``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..obs.metrics import atomic_write_text
from .worker import read_json, task_dir

if TYPE_CHECKING:  # pragma: no cover
    from .manifest import FleetManifest
    from .spec import SweepTask

__all__ = ["FleetReport", "SUMMARY_VERSION", "merge_results",
           "write_summary", "format_fleet_report"]

#: Summary artifact schema version.
SUMMARY_VERSION = 1


@dataclass
class FleetReport:
    """What one supervisor run did: the in-memory face of the summary."""

    tasks_total: int = 0
    succeeded: int = 0
    quarantined: int = 0
    retries: int = 0
    stragglers_killed: int = 0
    worker_crashes: int = 0
    adopted: int = 0
    completed_this_run: int = 0
    wall_seconds: float = 0.0
    searches_per_minute: float = 0.0
    workers: int = 0
    pool: str = "spawn"
    workers_spawned: int = 0
    workers_reused: int = 0
    resumed: bool = False
    results_path: str | None = None
    summary_path: str | None = None
    manifest_path: str | None = None
    quarantined_tasks: list[dict[str, Any]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every task succeeded with zero quarantines."""
        return self.quarantined == 0 and self.succeeded == self.tasks_total


def merge_results(fleet_dir: str | Path, tasks: "list[SweepTask]",
                  manifest: "FleetManifest") -> Path:
    """Write ``results.jsonl`` from the completed tasks' records.

    Lines appear in spec expansion order regardless of completion
    order, retries, or resumes; the write is atomic so a crash during
    merge leaves the previous merge (or nothing), never a torn file.
    """
    fleet = Path(fleet_dir)
    lines: list[str] = []
    for task in tasks:
        if manifest.task_state(task.task_id) != "done":
            continue
        doc = read_json(task_dir(fleet, task.task_id) / "result.json")
        if doc is None or "record" not in doc:
            raise FileNotFoundError(
                f"task {task.task_id} is marked done but has no readable "
                f"result.json under {task_dir(fleet, task.task_id)}")
        lines.append(json.dumps(doc["record"], sort_keys=True,
                                separators=(",", ":")))
    out = fleet / "results.jsonl"
    atomic_write_text(out, "".join(line + "\n" for line in lines))
    return out


def write_summary(fleet_dir: str | Path, report: FleetReport,
                  fingerprint: str) -> Path:
    """Persist ``summary.json`` (atomic write)."""
    out = Path(fleet_dir) / "summary.json"
    payload = {
        "version": SUMMARY_VERSION,
        "fingerprint": fingerprint,
        "generated_at": time.time(),
        "tasks_total": report.tasks_total,
        "succeeded": report.succeeded,
        "quarantined": report.quarantined,
        "retries": report.retries,
        "stragglers_killed": report.stragglers_killed,
        "worker_crashes": report.worker_crashes,
        "adopted": report.adopted,
        "completed_this_run": report.completed_this_run,
        "wall_seconds": report.wall_seconds,
        "searches_per_minute": report.searches_per_minute,
        "workers": report.workers,
        "pool": report.pool,
        "workers_spawned": report.workers_spawned,
        "workers_reused": report.workers_reused,
        "resumed": report.resumed,
        "quarantined_tasks": report.quarantined_tasks,
        "results": "results.jsonl",
    }
    atomic_write_text(out, json.dumps(payload, indent=2, sort_keys=True))
    return out


def format_fleet_report(report: FleetReport) -> str:
    """Multi-line human summary printed by ``pase sweep``."""
    lines = [
        f"fleet: {report.succeeded}/{report.tasks_total} tasks succeeded "
        f"({report.workers} workers, {report.wall_seconds:.1f}s, "
        f"{report.searches_per_minute:.1f} searches/min)"
    ]
    if report.pool == "persistent":
        lines.append(
            f"fleet: persistent pool — {report.workers_spawned} "
            f"process(es) forked, {report.workers_reused} warm "
            "reuse(s)")
    if report.resumed:
        lines.append(
            f"fleet: resumed mid-sweep; {report.adopted} finished "
            f"result(s) adopted, {report.completed_this_run} task(s) run "
            "this session")
    ops = []
    if report.retries:
        ops.append(f"{report.retries} retr{_y(report.retries)}")
    if report.worker_crashes:
        ops.append(f"{report.worker_crashes} worker crash(es)")
    if report.stragglers_killed:
        ops.append(f"{report.stragglers_killed} straggler(s) killed")
    if ops:
        lines.append("fleet: " + ", ".join(ops))
    if report.quarantined:
        lines.append(
            f"fleet: {report.quarantined} task(s) QUARANTINED after "
            "exhausting retries:")
        for q in report.quarantined_tasks:
            err = q.get("last_error") or {}
            lines.append(
                f"fleet:   - {q.get('label', q['task_id'])}: "
                f"{err.get('kind', '?')}: {err.get('detail', '?')}")
    else:
        lines.append("fleet: zero quarantines")
    if report.results_path:
        lines.append(f"fleet: merged results at {report.results_path}")
    if report.summary_path:
        lines.append(f"fleet: summary at {report.summary_path}")
    return "\n".join(lines)


def _y(n: int) -> str:
    return "y" if n == 1 else "ies"
