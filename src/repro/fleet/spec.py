"""Declarative sweep specifications for fleet runs.

A `SweepSpec` describes a grid of strategy searches — models × machines
× device counts × fault plans × search flags — exactly the evaluation
shape of the paper (Tables I/II, Fig. 6) and of the ROADMAP's
"thousands of scenarios" north star.  The spec is data, not code: a JSON
file (or dict) that expands deterministically into a list of
`SweepTask`\\ s, each of which is one journalled `execute_search` (plus
an optional fault-injected simulation of the found strategy).

Determinism is the load-bearing property:

* :meth:`SweepSpec.expand` always yields tasks in the same order for the
  same spec, so a resumed fleet merges results in the same order as an
  uninterrupted one;
* :attr:`SweepTask.task_id` is a content hash of everything the task's
  *answer* depends on, so the fleet manifest can recognise completed
  work across supervisor crashes, and two sweeps never confuse tasks;
* :meth:`SweepSpec.fingerprint` hashes the whole spec, so ``--resume``
  against an edited spec fails loudly instead of silently answering a
  different question (same discipline as `SearchJournal`).

The optional per-task ``chaos`` field is a *test hook*: it makes the
worker misbehave (die, raise, hang) on its first N attempts so the
chaos suite and CI can exercise retry, quarantine, and straggler
handling against real process deaths.  Production specs leave it unset;
it is deliberately excluded from nothing — it participates in the task
id like any other field, because a chaos task is a different task.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Iterator, Mapping

from ..core.exceptions import PaseError

__all__ = ["SweepSpec", "SweepTask", "SweepSpecError", "SPEC_VERSION"]

#: Spec schema version; bump when the expansion rule or task fields change
#: (a resume across versions must fail loudly).
SPEC_VERSION = 1

_MODES = ("pow2", "divisors", "all")


class SweepSpecError(PaseError):
    """A sweep spec that cannot be expanded into tasks."""


@dataclass(frozen=True)
class SweepTask:
    """One (model, machine, p, faults, flags) cell of a sweep.

    ``faults`` is an optional `FaultPlan` dict applied when simulating
    the found strategy; ``chaos`` is the test-only misbehaviour hook
    (``{"kind": "exit"|"raise"|"hang", "attempts": N, ...}``).
    """

    model: str
    machine: str = "1080ti"
    p: int = 8
    mode: str = "pow2"
    method: str = "ours"
    seed: int = 0
    reduce: bool = False
    objective: str = "cost"
    resilient: bool = False
    memory_budget: int | None = None
    faults: Mapping[str, Any] | None = None
    faults_name: str | None = None
    chaos: Mapping[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready canonical description (drives the task id)."""
        out = asdict(self)
        if out["objective"] == "cost":
            # Omitted when default so every pre-frontier task keeps its
            # task id (journal directories and manifest slots are keyed
            # on it — resumes of existing sweeps must not churn).
            del out["objective"]
        if out["faults"] is not None:
            out["faults"] = json.loads(json.dumps(out["faults"],
                                                  sort_keys=True))
        if out["chaos"] is not None:
            out["chaos"] = json.loads(json.dumps(out["chaos"],
                                                 sort_keys=True))
        return out

    @property
    def task_id(self) -> str:
        """Stable content hash of the task (short, filesystem-safe)."""
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    @property
    def label(self) -> str:
        """Human-readable one-liner for logs and reports."""
        bits = [self.model, self.machine, f"p{self.p}", self.method,
                f"seed{self.seed}"]
        if self.mode != "pow2":
            bits.append(self.mode)
        if self.reduce:
            bits.append("reduce")
        if self.objective != "cost":
            bits.append(self.objective)
        if self.resilient:
            bits.append("resilient")
        if self.faults_name:
            bits.append(f"faults={self.faults_name}")
        return "/".join(bits)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepTask":
        unknown = set(data) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise SweepSpecError(
                f"task has unknown field(s) {sorted(unknown)}")
        try:
            return cls(**data)
        except TypeError as err:
            raise SweepSpecError(f"malformed task: {err}") from None

    def validate(self) -> None:
        from ..core.machine import MACHINES
        from ..experiments.common import METHODS
        from ..models import BENCHMARKS

        if self.model not in BENCHMARKS:
            raise SweepSpecError(
                f"unknown model {self.model!r}; expected one of "
                f"{sorted(BENCHMARKS)}")
        if self.machine not in MACHINES:
            raise SweepSpecError(
                f"unknown machine {self.machine!r}; expected one of "
                f"{sorted(MACHINES)}")
        if self.p < 1:
            raise SweepSpecError(f"p={self.p} must be >= 1")
        if self.mode not in _MODES:
            raise SweepSpecError(
                f"unknown mode {self.mode!r}; expected one of {_MODES}")
        if self.method not in METHODS:
            raise SweepSpecError(
                f"unknown method {self.method!r}; expected one of "
                f"{sorted(METHODS)}")
        if self.memory_budget is not None and self.memory_budget <= 0:
            raise SweepSpecError(
                f"memory_budget={self.memory_budget} must be positive")
        try:
            from ..core.frontier import parse_objective

            obj = parse_objective(self.objective)
        except ValueError as err:
            raise SweepSpecError(str(err)) from None
        if obj.is_frontier and self.method != "ours":
            raise SweepSpecError(
                f"objective {self.objective!r} requires method 'ours', "
                f"got {self.method!r}")
        if self.faults is not None:
            from ..resilience import FaultPlan

            FaultPlan.from_dict(dict(self.faults)).validate(self.p)
        if self.chaos is not None:
            kind = self.chaos.get("kind")
            if kind not in ("exit", "raise", "hang"):
                raise SweepSpecError(
                    f"chaos kind {kind!r} must be exit/raise/hang")


@dataclass(frozen=True)
class SweepSpec:
    """A grid of `SweepTask`\\ s plus explicit extras.

    Axis fields are cross-multiplied in the field order below; the
    ``tasks`` list appends hand-written tasks (each a `SweepTask` dict)
    after the grid.  ``fault_plans`` entries are either ``None`` (no
    faults) or ``{"name": ..., "plan": {FaultPlan dict}}``.
    """

    models: tuple[str, ...] = ()
    machines: tuple[str, ...] = ("1080ti",)
    ps: tuple[int, ...] = (8,)
    modes: tuple[str, ...] = ("pow2",)
    methods: tuple[str, ...] = ("ours",)
    seeds: tuple[int, ...] = (0,)
    reduce: tuple[bool, ...] = (False,)
    objectives: tuple[str, ...] = ("cost",)
    resilient: tuple[bool, ...] = (False,)
    memory_budget: int | None = None
    fault_plans: tuple[Any, ...] = (None,)
    tasks: tuple[Mapping[str, Any], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for name in ("models", "machines", "ps", "modes", "methods",
                     "seeds", "reduce", "objectives", "resilient",
                     "fault_plans", "tasks"):
            object.__setattr__(self, name, tuple(getattr(self, name)))

    # -- construction --------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        data = dict(data)
        version = data.pop("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise SweepSpecError(
                f"sweep spec version {version!r} unsupported "
                f"(expected {SPEC_VERSION})")
        unknown = set(data) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise SweepSpecError(
                f"sweep spec has unknown field(s) {sorted(unknown)}")
        try:
            return cls(**data)
        except TypeError as err:
            raise SweepSpecError(f"malformed sweep spec: {err}") from None

    @classmethod
    def from_file(cls, path: str | os.PathLike) -> "SweepSpec":
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except OSError as err:
            raise SweepSpecError(
                f"cannot read sweep spec {os.fspath(path)!r}: {err}") \
                from None
        except json.JSONDecodeError as err:
            raise SweepSpecError(
                f"sweep spec {os.fspath(path)!r} is not valid JSON: "
                f"{err}") from None
        if not isinstance(data, dict):
            raise SweepSpecError("sweep spec JSON must be an object")
        return cls.from_dict(data)

    def to_dict(self) -> dict[str, Any]:
        out = asdict(self)
        if out["objectives"] == ["cost"] or out["objectives"] == ("cost",):
            # Default axis is omitted: the spec fingerprint — and with it
            # ``--resume`` of pre-frontier sweeps — must not churn.
            del out["objectives"]
        out["version"] = SPEC_VERSION
        return json.loads(json.dumps(out, sort_keys=True))

    def fingerprint(self) -> str:
        """Content hash of the whole spec (guards ``--resume``)."""
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    # -- expansion -----------------------------------------------------------

    def _grid(self) -> Iterator[SweepTask]:
        for (model, machine, p, mode, method, seed, red, obj, res,
             plan) in itertools.product(
                self.models, self.machines, self.ps, self.modes,
                self.methods, self.seeds, self.reduce, self.objectives,
                self.resilient, self.fault_plans):
            faults = faults_name = None
            if plan is not None:
                if not isinstance(plan, Mapping) or "plan" not in plan:
                    raise SweepSpecError(
                        "fault_plans entries must be null or "
                        '{"name": ..., "plan": {...}} objects')
                faults = plan["plan"]
                faults_name = str(plan.get("name", "faults"))
            yield SweepTask(
                model=model, machine=machine, p=int(p), mode=mode,
                method=method, seed=int(seed), reduce=bool(red),
                objective=str(obj), resilient=bool(res),
                memory_budget=self.memory_budget,
                faults=faults, faults_name=faults_name)

    def expand(self) -> list[SweepTask]:
        """The sweep's tasks, validated, in deterministic order.

        Grid tasks come first (axis cross-product in field order), then
        the explicit ``tasks`` extras.  Duplicate task ids are an error:
        two identical tasks would race for one journal directory and
        one manifest slot.
        """
        out = list(self._grid())
        out.extend(SweepTask.from_dict(t) for t in self.tasks)
        if not out:
            raise SweepSpecError("sweep spec expands to zero tasks")
        seen: dict[str, str] = {}
        for t in out:
            t.validate()
            if t.task_id in seen:
                raise SweepSpecError(
                    f"duplicate task {t.label} (id {t.task_id}); every "
                    "sweep cell must be unique")
            seen[t.task_id] = t.label
        return out
