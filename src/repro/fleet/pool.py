"""The persistent fleet worker pool: pre-forked, recycled, crash-only.

Spawn-per-task (`repro.fleet.worker.worker_main` in a fresh process)
pays a full interpreter bootstrap — fork, imports, journal setup — for
every task; on the 18-task benchmark grid that fixed cost dominates the
actual search.  This module keeps a pool of long-lived worker processes
that drain tasks from per-worker inboxes instead, while preserving the
crash-only file protocol *exactly*:

- Workers still communicate results only through ``result.json`` /
  ``error.json`` / ``heartbeat.json`` under the task directory (the
  inbox queue carries task dicts *into* a worker, never results out),
  so the supervisor's straggler detection, quarantine, resume, and
  orphan-result adoption work unchanged.
- A worker that sees a task attempt *fail* (error, deadline, chaos
  ``raise``) burns itself with ``os._exit(1)`` after writing
  ``error.json`` — identical crash isolation to spawn-per-task, where a
  failed task's process dies by definition.  The supervisor replaces it
  on the next dispatch.
- Healthy workers are recycled after `recycle_after` tasks to bound
  leak accumulation; recycling is supervisor-driven (sentinel + join)
  so a task is never enqueued to a process that is about to exit.
- Workers watch their parent pid each inbox-poll; if the supervisor
  died uncleanly (SIGKILL) they exit rather than linger as orphans.
"""

from __future__ import annotations

import os
import queue
import signal
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

__all__ = ["WorkerPool", "pool_worker_main", "DEFAULT_RECYCLE_AFTER",
           "INBOX_POLL_SECONDS"]

#: How often an idle worker wakes to check its inbox and its parent.
INBOX_POLL_SECONDS = 0.25

#: Healthy workers are retired after this many tasks (leak hygiene).
DEFAULT_RECYCLE_AFTER = 25


def pool_worker_main(inbox, fleet_dir: str, options: Mapping[str, Any],
                     parent_pid: int) -> None:
    """Long-lived child entry point: drain tasks until told to stop.

    Protocol on ``inbox``: ``(task_dict, attempt, extra_options)``
    tuples to run (``extra_options`` — ``None`` for none — is merged
    over the pool-wide ``options``, which is how the serve daemon gives
    each request its own deadline), ``None`` as a clean-shutdown
    sentinel.  A *failed* attempt (False from `run_task_attempt`, or an
    escaped exception) ends the process with ``os._exit(1)`` — the pool
    equivalent of spawn-per-task's nonzero exit — so one task's damage
    never leaks into the next.
    """
    from .worker import run_task_attempt

    # Same signal posture as worker_main: the supervisor owns SIGINT
    # shutdown; its terminate() must actually terminate.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    while True:
        try:
            item = inbox.get(timeout=INBOX_POLL_SECONDS)
        except queue.Empty:
            if os.getppid() != parent_pid:
                # Supervisor died uncleanly; don't linger as an orphan.
                os._exit(0)
            continue
        if item is None:
            return  # clean recycle/shutdown
        task_dict, attempt, extra = item
        merged = dict(options)
        if extra:
            merged.update(extra)
        try:
            ok = run_task_attempt(task_dict, attempt, fleet_dir, merged)
        except BaseException:
            os._exit(1)
        if not ok:
            # error.json is on disk; burn the process for crash
            # isolation, exactly as a spawn-per-task worker would exit.
            os._exit(1)


@dataclass
class _PoolWorker:
    process: Any
    inbox: Any
    tasks_done: int = 0


@dataclass
class WorkerPool:
    """Supervisor-side pool of reusable worker processes.

    ``submit`` hands a task to an idle worker (forking a fresh one only
    when none is available), ``release`` returns the worker to the idle
    list after the supervisor has reaped the task — retiring it first
    if it hit the recycle limit or died.  All bookkeeping runs on the
    supervisor's thread; workers never share an inbox, so a dead
    worker's queued sentinel can't strand another worker's task.
    """

    mp_ctx: Any
    fleet_dir: str
    options: Mapping[str, Any]
    max_workers: int = 4
    recycle_after: int = DEFAULT_RECYCLE_AFTER
    on_spawn: Callable[[], None] | None = None
    on_reuse: Callable[[], None] | None = None
    spawned: int = 0
    reused: int = 0
    _idle: list = field(default_factory=list)
    _busy: dict = field(default_factory=dict)

    def submit(self, task_id: str, task_dict: Mapping[str, Any],
               attempt: int,
               options: Mapping[str, Any] | None = None):
        """Dispatch one task; returns the worker's process handle.

        ``options`` are per-task overrides merged over the pool-wide
        ``options`` inside the worker (e.g. a serve request's own
        ``task_deadline``).
        """
        worker = None
        while self._idle:
            cand = self._idle.pop()
            if cand.process.is_alive():
                worker = cand
                break
            cand.process.join(timeout=0)  # reap a silently-dead idler
        if worker is None:
            worker = self._spawn()
        else:
            self.reused += 1
            if self.on_reuse is not None:
                self.on_reuse()
        worker.inbox.put((dict(task_dict), attempt,
                          None if options is None else dict(options)))
        self._busy[task_id] = worker
        return worker.process

    def release(self, task_id: str) -> None:
        """Return the worker for ``task_id`` after its task was reaped."""
        worker = self._busy.pop(task_id, None)
        if worker is None:
            return
        if not worker.process.is_alive():
            worker.process.join(timeout=0)
            self._drain_inbox(worker)
            return
        worker.tasks_done += 1
        if worker.tasks_done >= self.recycle_after:
            self._retire(worker)
        else:
            self._idle.append(worker)

    def shutdown(self, grace: float = 2.0) -> None:
        """Stop every worker: idle ones exit on a sentinel, busy ones
        get SIGTERM (their in-flight attempt dies, exactly as in
        spawn-per-task shutdown), stragglers are SIGKILLed after
        ``grace`` seconds."""
        import time

        idle, busy = self._idle, list(self._busy.values())
        self._idle, self._busy = [], {}
        for worker in idle:
            if worker.process.is_alive():
                try:
                    worker.inbox.put_nowait(None)
                except (queue.Full, ValueError):  # pragma: no cover
                    pass
        for worker in busy:
            if worker.process.is_alive():
                worker.process.terminate()
        deadline = time.monotonic() + grace
        for worker in idle + busy:
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():  # pragma: no cover - stuck
                worker.process.kill()
                worker.process.join()
            self._drain_inbox(worker)

    # -- internals -----------------------------------------------------------

    def _spawn(self) -> _PoolWorker:
        inbox = self.mp_ctx.Queue()
        process = self.mp_ctx.Process(
            target=pool_worker_main,
            args=(inbox, self.fleet_dir, dict(self.options), os.getpid()),
            name=f"fleet-pool-{self.spawned}")
        process.start()
        self.spawned += 1
        if self.on_spawn is not None:
            self.on_spawn()
        return _PoolWorker(process=process, inbox=inbox)

    def _retire(self, worker: _PoolWorker) -> None:
        try:
            worker.inbox.put_nowait(None)
        except (queue.Full, ValueError):  # pragma: no cover
            pass
        worker.process.join(timeout=2.0)
        if worker.process.is_alive():  # pragma: no cover - wedged
            worker.process.kill()
            worker.process.join()
        self._drain_inbox(worker)

    @staticmethod
    def _drain_inbox(worker: _PoolWorker) -> None:
        # mp.Queue owns a feeder thread; close it so interpreter exit
        # doesn't block joining a thread whose pipe reader is gone.
        try:
            worker.inbox.close()
            worker.inbox.cancel_join_thread()
        except (OSError, ValueError):  # pragma: no cover
            pass
