"""Crash-safe fleet manifest: the supervisor's on-disk brain.

The `FleetManifest` is to a sweep what `SearchJournal` is to one search:
a single JSON snapshot (``manifest.json`` under the fleet directory)
written atomically via temp + ``os.replace``, so a supervisor killed at
any instant — including ``kill -9`` — leaves either the old snapshot or
the new one, never a torn file.

It records the spec fingerprint (resume against an edited spec fails
loudly), one state machine per task, and fleet-level counters.  Task
states::

    pending ──dispatch──> running ──ok──────────> done
        ^                    │
        │                    ├─crash/error/straggler─(attempts < max)─┐
        └────────────────────┴<───────────────────────────────────────┘
                             └─(attempts >= max)──> quarantined

On resume, ``running`` tasks are demoted back to ``pending`` (the
process that owned them died with the fleet); ``done`` and
``quarantined`` states survive verbatim, which is what makes a resumed
sweep's merged results bit-identical to an uninterrupted run — finished
work is *replayed from the manifest and per-task result files*, never
recomputed.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any

from ..core.exceptions import JournalError

__all__ = ["FleetManifest", "MANIFEST_VERSION", "TASK_STATES"]

#: Manifest layout version; bump whenever the stored schema changes.
MANIFEST_VERSION = 1

#: Every state a task slot can hold.
TASK_STATES = ("pending", "running", "done", "quarantined")

#: Minimum seconds between periodic snapshot writes (state transitions
#: always flush immediately; this only throttles heartbeat-ish updates).
FLUSH_INTERVAL_SECONDS = 0.5


class FleetManifest:
    """One sweep's crash-safe state under ``<fleet_dir>/manifest.json``."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.path = self.root / "manifest.json"
        self.state: dict[str, Any] | None = None
        self._last_flush = 0.0
        self._batching = False
        self._batch_dirty = False

    @contextmanager
    def batch(self):
        """Coalesce state-transition flushes into one snapshot write.

        Inside the context every `flush` is deferred; leaving it writes
        a single snapshot if anything changed.  The supervisor wraps
        each poll-loop tick in this so a wide tick (N reaps + N
        dispatches) costs one atomic write instead of 2N.  Crash
        recovery is unaffected: a supervisor killed mid-tick resumes
        from the previous snapshot, and any finished-but-unrecorded
        tasks are re-adopted from their ``result.json`` files.
        """
        self._batching = True
        try:
            yield
        finally:
            self._batching = False
            if self._batch_dirty:
                self._batch_dirty = False
                self.flush()

    # -- lifecycle -----------------------------------------------------------

    def open(self, fingerprint: str, task_ids: list[str], *,
             resume: bool = False) -> bool:
        """Start (or resume) a fleet; returns True when resuming.

        A fresh open overwrites any existing manifest.  ``resume=True``
        requires an existing manifest whose spec fingerprint and task
        set match; any ``running`` tasks are demoted to ``pending``
        (their worker died with the previous supervisor).
        """
        if resume:
            state = self._read()
            if state["fingerprint"] != fingerprint:
                raise JournalError(
                    f"fleet manifest at {self.path} was written for a "
                    "different sweep spec (fingerprint mismatch); re-run "
                    "without --resume to start fresh")
            if set(state["tasks"]) != set(task_ids):
                raise JournalError(
                    f"fleet manifest at {self.path} tracks a different "
                    "task set; re-run without --resume to start fresh")
            reassigned = 0
            for rec in state["tasks"].values():
                if rec["state"] == "running":
                    rec["state"] = "pending"
                    reassigned += 1
            state["counters"]["resumes"] = \
                state["counters"].get("resumes", 0) + 1
            state["counters"]["reassigned_on_resume"] = \
                state["counters"].get("reassigned_on_resume", 0) + reassigned
            self.state = state
            self.flush()
            return True
        self.state = {
            "version": MANIFEST_VERSION,
            "fingerprint": fingerprint,
            "tasks": {tid: {"state": "pending", "attempts": 0}
                      for tid in task_ids},
            "counters": {"retries": 0, "stragglers_killed": 0,
                         "worker_crashes": 0, "resumes": 0,
                         "reassigned_on_resume": 0},
        }
        self.flush()
        return False

    def _read(self) -> dict[str, Any]:
        try:
            with open(self.path, encoding="utf-8") as fh:
                state = json.load(fh)
        except FileNotFoundError:
            raise JournalError(
                f"no fleet manifest to resume at {self.path}") from None
        except (OSError, json.JSONDecodeError) as err:
            raise JournalError(
                f"fleet manifest at {self.path} is unreadable: {err}") \
                from err
        if not isinstance(state, dict) or \
                state.get("version") != MANIFEST_VERSION:
            raise JournalError(
                f"fleet manifest at {self.path} has unsupported version "
                f"{state.get('version') if isinstance(state, dict) else '?'}")
        return state

    def flush(self, *, force: bool = True) -> None:
        """Atomically persist the snapshot (temp + ``os.replace``).

        ``force=False`` throttles to `FLUSH_INTERVAL_SECONDS` — used for
        the supervisor's periodic loop writes; every state transition
        flushes with ``force=True`` so crashes never lose a transition.
        """
        if self.state is None:
            return
        if self._batching:
            self._batch_dirty = True
            return
        now = time.monotonic()
        if not force and now - self._last_flush < FLUSH_INTERVAL_SECONDS:
            return
        self._last_flush = now
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(self.state, fh, indent=2, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # -- task state machine --------------------------------------------------

    def task(self, task_id: str) -> dict[str, Any]:
        assert self.state is not None, "manifest not opened"
        return self.state["tasks"][task_id]

    def task_state(self, task_id: str) -> str:
        return str(self.task(task_id)["state"])

    def mark_running(self, task_id: str, *, pid: int) -> None:
        rec = self.task(task_id)
        rec["state"] = "running"
        rec["attempts"] = int(rec["attempts"]) + 1
        rec["pid"] = pid
        self.flush()

    def mark_done(self, task_id: str, *, seconds: float) -> None:
        rec = self.task(task_id)
        rec["state"] = "done"
        rec["seconds"] = float(seconds)
        rec.pop("pid", None)
        self.flush()

    def mark_failed(self, task_id: str, *, detail: str, kind: str,
                    max_attempts: int) -> str:
        """Record one failed attempt; returns the resulting state.

        ``kind`` labels the failure ("crash", "error", "straggler",
        "deadline") for the report.  The task goes back to ``pending``
        until it has burned ``max_attempts`` attempts, then is
        quarantined — recorded, skipped, never fatal to the fleet.
        """
        assert self.state is not None
        rec = self.task(task_id)
        rec.pop("pid", None)
        rec["last_error"] = {"kind": kind, "detail": detail[:500]}
        counters = self.state["counters"]
        if kind == "crash":
            counters["worker_crashes"] += 1
        elif kind == "straggler":
            counters["stragglers_killed"] += 1
        if int(rec["attempts"]) >= max_attempts:
            rec["state"] = "quarantined"
        else:
            rec["state"] = "pending"
            counters["retries"] += 1
        self.flush()
        return str(rec["state"])

    # -- queries -------------------------------------------------------------

    def in_state(self, *states: str) -> list[str]:
        """Task ids currently in any of ``states`` (manifest order)."""
        assert self.state is not None, "manifest not opened"
        return [tid for tid, rec in self.state["tasks"].items()
                if rec["state"] in states]

    def counts(self) -> dict[str, int]:
        """State -> task count, plus the fleet counters."""
        assert self.state is not None, "manifest not opened"
        out = {s: 0 for s in TASK_STATES}
        for rec in self.state["tasks"].values():
            out[rec["state"]] += 1
        out.update({k: int(v) for k, v in self.state["counters"].items()})
        return out

    @property
    def counters(self) -> dict[str, int]:
        assert self.state is not None, "manifest not opened"
        return self.state["counters"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FleetManifest {self.path}>"
