"""`OpSpec`: the operator protocol every layer type implements.

An operator is fully described by

* an ordered iteration space (tuple of `Dim`),
* optional *alias dims* — named axes with their own extent that either
  follow the split of a primary dim (a convolution's input spatial extent
  follows the output-spatial split) or are never split (the model-width
  axis of a fused attention operator),
* input tensor ports (some marked as trainable parameters),
* output tensor ports,
* the subset of dims that are *contracted* (appear in the computation but
  not in the primary output — splitting them leaves partial sums that must
  be reduced across devices),
* a FLOP model: either uniform FLOPs per iteration point or an explicit
  forward-FLOP override for operators (embedding lookup, fused attention)
  whose work is not proportional to their full iteration-space volume.

From these, `repro.core.costmodel` derives the paper's layer cost ``t_l``
and edge transfer cost ``t_x`` generically; operators may additionally
override :meth:`OpSpec.extra_comm_bytes` for layer-specific communication
such as convolution halo exchange or recurrent-boundary handoff.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.dims import Dim
from ..core.exceptions import GraphError
from ..core.tensors import TensorSpec

__all__ = [
    "OpSpec",
    "TRAINING_FLOP_FACTOR_PARAM",
    "TRAINING_FLOP_FACTOR_NOPARAM",
]

#: Training-step FLOP multiple of the forward pass.  Layers with trainable
#: parameters run forward, grad-input, and grad-weight passes (3x); layers
#: without parameters skip grad-weight (2x).
TRAINING_FLOP_FACTOR_PARAM = 3.0
TRAINING_FLOP_FACTOR_NOPARAM = 2.0

#: Default primary output port name.
OUT = "out"


@dataclass(frozen=True)
class OpSpec:
    """A DNN layer as a parallelizable iteration space.

    Subclasses are thin constructors that fill in the fields for a concrete
    layer type; all cost behaviour lives in the generic methods here plus
    the cost model.

    Attributes
    ----------
    name:
        Unique node name within a computation graph.
    kind:
        Layer-type tag (``"conv2d"``, ``"fc"``, ...) used by baseline
        strategy generators (e.g. OWT switches on conv vs fully-connected).
    dims:
        The iteration space (primary, configurable dims).
    aliases:
        Alias axes: name -> (primary dim name or None, extent).  Aliases
        may appear in tensor axes; they inherit the primary dim's split
        factor (or stay unsplit when the primary is None) but are never
        enumerated in configurations.
    inputs / outputs:
        Tensor ports keyed by port name.  Edge endpoints reference ports.
    reduction_dims:
        Names of contracted primary dims.
    flops_per_point:
        Forward FLOPs per iteration point (2.0 for multiply-accumulate
        kernels such as GEMM/conv, ~1.0 for elementwise work).
    flops_fwd_override:
        Explicit total forward FLOPs; when set, ``flops_per_point`` is
        ignored.
    """

    name: str
    kind: str
    dims: tuple[Dim, ...]
    inputs: dict[str, TensorSpec] = field(default_factory=dict)
    outputs: dict[str, TensorSpec] = field(default_factory=dict)
    reduction_dims: frozenset[str] = frozenset()
    flops_per_point: float = 1.0
    flops_fwd_override: float | None = None
    aliases: dict[str, tuple[str | None, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [d.name for d in self.dims]
        if len(set(names)) != len(names):
            raise GraphError(f"op {self.name!r} has duplicate dim names {names}")
        index = {n: i for i, n in enumerate(names)}
        object.__setattr__(self, "_dim_index", index)
        object.__setattr__(self, "_dim_sizes", tuple(d.size for d in self.dims))
        for alias, (primary, size) in self.aliases.items():
            if alias in index:
                raise GraphError(f"op {self.name!r}: alias {alias!r} shadows a dim")
            if primary is not None and primary not in index:
                raise GraphError(
                    f"op {self.name!r}: alias {alias!r} maps to unknown dim {primary!r}")
            if size < 1:
                raise GraphError(f"op {self.name!r}: alias {alias!r} has size {size}")
        for port, spec in {**self.inputs, **self.outputs}.items():
            if not isinstance(spec, TensorSpec):
                raise GraphError(f"port {port!r} of {self.name!r} is not a TensorSpec")
            spec.validate(self)
        for red in self.reduction_dims:
            if red not in index:
                raise GraphError(f"op {self.name!r} reduction dim {red!r} not in iteration space")
        if self.outputs:
            out = self.primary_output
            for red in self.reduction_dims:
                if red in out.axes:
                    raise GraphError(
                        f"op {self.name!r}: reduction dim {red!r} appears in output axes")

    # -- iteration space ---------------------------------------------------

    @property
    def rank(self) -> int:
        """Dimensionality of the (configurable) iteration space."""
        return len(self.dims)

    def has_dim(self, name: str) -> bool:
        return name in self._dim_index or name in self.aliases

    def resolve_dim(self, name: str) -> str | None:
        """Primary dim a (possibly alias) axis follows; None if never split."""
        if name in self._dim_index:
            return name
        try:
            return self.aliases[name][0]
        except KeyError:
            raise GraphError(f"op {self.name!r} has no dim or alias {name!r}") from None

    def dim_index(self, name: str) -> int:
        return self._dim_index[name]

    def dim_size(self, name: str) -> int:
        if name in self._dim_index:
            return self._dim_sizes[self._dim_index[name]]
        try:
            return self.aliases[name][1]
        except KeyError:
            raise GraphError(f"op {self.name!r} has no dim or alias {name!r}") from None

    @property
    def dim_names(self) -> tuple[str, ...]:
        return tuple(d.name for d in self.dims)

    @property
    def dim_sizes(self) -> tuple[int, ...]:
        return self._dim_sizes

    @property
    def iteration_points(self) -> int:
        return int(np.prod(self._dim_sizes, dtype=np.int64))

    # -- tensors -----------------------------------------------------------

    @property
    def primary_output(self) -> TensorSpec:
        """The output tensor whose partial sums reductions target.

        By convention the port named ``"out"`` if present, else the first
        declared output.
        """
        if OUT in self.outputs:
            return self.outputs[OUT]
        return next(iter(self.outputs.values()))

    @property
    def param_ports(self) -> tuple[str, ...]:
        return tuple(p for p, s in self.inputs.items() if s.is_param)

    @property
    def has_params(self) -> bool:
        return any(s.is_param for s in self.inputs.values())

    def param_volume(self) -> float:
        """Total trainable-parameter element count."""
        return sum(s.volume(self) for s in self.inputs.values() if s.is_param)

    # -- cost hooks ----------------------------------------------------------

    @property
    def training_flop_factor(self) -> float:
        return TRAINING_FLOP_FACTOR_PARAM if self.has_params else TRAINING_FLOP_FACTOR_NOPARAM

    @property
    def fwd_flops(self) -> float:
        """Forward-pass FLOPs."""
        if self.flops_fwd_override is not None:
            return self.flops_fwd_override
        return self.flops_per_point * self.iteration_points

    @property
    def flops(self) -> float:
        """Total training-step FLOPs (forward + backward)."""
        return self.fwd_flops * self.training_flop_factor

    def extra_comm_bytes(self, configs: np.ndarray) -> np.ndarray:
        """Layer-specific internal communication (bytes/device/step).

        Evaluated vectorized over ``configs`` of shape ``[K, d]``; returns
        ``[K]``.  The default is zero; convolution overrides this with halo
        exchange for spatial splits, the fused LSTM with recurrent-boundary
        handoff.
        """
        configs = np.asarray(configs)
        return np.zeros(configs.shape[:-1], dtype=np.float64)

    # -- misc ----------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        space = ", ".join(f"{d.name}={d.size}" for d in self.dims)
        return f"<{type(self).__name__} {self.name!r} [{space}]>"
