"""Fully-connected (GEMM) layers and friends."""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.dims import Dim
from ..core.tensors import TensorSpec
from .base import OpSpec

__all__ = ["FullyConnected", "FeedForward", "BiasAdd"]


def FullyConnected(
    name: str,
    *,
    batch: int,
    in_dim: int,
    out_dim: int,
    seq: int | None = None,
    names: Mapping[str, str] | None = None,
    in_factors: Sequence[int] | None = None,
    bias: bool = True,
) -> OpSpec:
    """A fully-connected layer ``out[b,(s),n] = Σ_c in[b,(s),c] · W[c,n]``.

    Iteration space ``(b, [s,] n, c)`` with ``c`` contracted.  ``names``
    optionally renames the canonical dims — e.g. the RNNLM projection layer
    uses ``{"n": "v", "c": "d"}`` so reports show the paper's ``bsvd``
    labels (Table II).

    ``in_factors`` consumes a *flattened* multi-axis input (the classic
    conv-to-FC transition) without a reshape node: the input tensor keeps
    the producer's factored shape, its leading factor follows the split of
    the contracted dim ``c`` (channel-major flattening) and the remaining
    factors stay unsplit.  ``prod(in_factors)`` must equal ``in_dim``.
    """
    label = {"b": "b", "s": "s", "n": "n", "c": "c"}
    label.update(names or {})
    dims = [Dim(label["b"], batch)]
    if seq is not None:
        dims.append(Dim(label["s"], seq))
    dims += [Dim(label["n"], out_dim), Dim(label["c"], in_dim)]
    lead = (label["b"],) + ((label["s"],) if seq is not None else ())

    aliases: dict[str, tuple[str | None, int]] = {}
    if in_factors is None:
        in_axes = lead + (label["c"],)
    else:
        prod = 1
        for f in in_factors:
            prod *= int(f)
        if prod != in_dim:
            raise ValueError(
                f"FC {name!r}: prod(in_factors)={prod} != in_dim={in_dim}")
        factor_axes = []
        for i, f in enumerate(in_factors):
            axis = f"{label['c']}_f{i}"
            aliases[axis] = (label["c"] if i == 0 else None, int(f))
            factor_axes.append(axis)
        in_axes = lead + tuple(factor_axes)

    inputs = {
        "in": TensorSpec(axes=in_axes),
        "w": TensorSpec(axes=(label["c"], label["n"]), is_param=True),
    }
    if bias:
        inputs["bias"] = TensorSpec(axes=(label["n"],), is_param=True)
    return OpSpec(
        name=name,
        kind="fc",
        dims=tuple(dims),
        inputs=inputs,
        outputs={"out": TensorSpec(axes=lead + (label["n"],))},
        reduction_dims=frozenset({label["c"]}),
        flops_per_point=2.0,
        aliases=aliases,
    )


def FeedForward(
    name: str,
    *,
    batch: int,
    seq: int,
    model_dim: int,
    hidden: int,
) -> OpSpec:
    """A Transformer position-wise feed-forward block, fused.

    ``out[b,s,·] = W2[e,·] · act(W1[d,e] · in[b,s,d])`` over iteration
    space ``(b, s, d, e)`` — the paper's ``bsde`` (Table II).  Both matrix
    dims are contracted: splitting the hidden dim ``e`` (the
    Megatron-style tensor-parallel pattern) or the input model dim ``d``
    leaves partial sums that must be combined.  The output model-width
    axis is the fixed alias ``do`` (activations stay full-width across the
    tensor-parallel group, like the attention block).
    """
    return OpSpec(
        name=name,
        kind="feed_forward",
        dims=(Dim("b", batch), Dim("s", seq), Dim("d", model_dim), Dim("e", hidden)),
        inputs={
            "in": TensorSpec(axes=("b", "s", "d")),
            "w": TensorSpec(axes=("d", "e"), is_param=True, scale=2.0),
        },
        outputs={"out": TensorSpec(axes=("b", "s", "do"))},
        reduction_dims=frozenset({"d", "e"}),
        flops_per_point=4.0,  # two GEMMs x 2 FLOPs per MAC
        aliases={"do": (None, model_dim)},
    )


def BiasAdd(name: str, *, dims: Sequence[tuple[str, int]], bias_axis: str) -> OpSpec:
    """A standalone bias addition (rarely needed; FC/conv fold their own)."""
    dtuple = tuple(Dim(n, s) for n, s in dims)
    axes = tuple(n for n, _ in dims)
    return OpSpec(
        name=name,
        kind="bias_add",
        dims=dtuple,
        inputs={
            "in": TensorSpec(axes=axes),
            "bias": TensorSpec(axes=(bias_axis,), is_param=True),
        },
        outputs={"out": TensorSpec(axes=axes)},
        flops_per_point=1.0,
    )
