"""Normalization layers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.dims import Dim, shard_extent
from ..core.tensors import DTYPE_BYTES, TensorSpec
from .base import OpSpec

__all__ = ["LocalResponseNorm", "BatchNorm", "LayerNorm"]


@dataclass(frozen=True)
class _LayerNormSpec(OpSpec):
    """LayerNorm whose model-dim splits all-reduce the per-row moments."""

    def extra_comm_bytes(self, configs: np.ndarray) -> np.ndarray:
        configs = np.asarray(configs, dtype=np.int64)
        sd = configs[..., self.dim_index("d")]
        rows = shard_extent(self.dim_size("b"), configs[..., self.dim_index("b")]) \
            * shard_extent(self.dim_size("s"), configs[..., self.dim_index("s")])
        # mean + variance forward, matching pair backward.
        per = 4.0 * 2.0 * rows * DTYPE_BYTES * (sd - 1) / np.maximum(sd, 1)
        return np.where(sd > 1, per.astype(np.float64), 0.0)


def LocalResponseNorm(name: str, *, batch: int, channels: int,
                      hw: tuple[int, int], window: int = 5) -> OpSpec:
    """AlexNet-style local response normalization (no parameters)."""
    return OpSpec(
        name=name,
        kind="lrn",
        dims=(Dim("b", batch), Dim("c", channels), Dim("h", hw[0]), Dim("w", hw[1])),
        inputs={"in": TensorSpec(axes=("b", "c", "h", "w"))},
        outputs={"out": TensorSpec(axes=("b", "c", "h", "w"))},
        flops_per_point=float(window),
    )


def BatchNorm(name: str, *, batch: int, channels: int, hw: tuple[int, int]) -> OpSpec:
    """Batch normalization; gamma/beta are ``(c,)`` parameters.

    Cross-device moment synchronization under batch splits is a
    two-scalars-per-channel all-reduce — folded into the (tiny) gradient
    all-reduce the parameter replication already charges.
    """
    return OpSpec(
        name=name,
        kind="batchnorm",
        dims=(Dim("b", batch), Dim("c", channels), Dim("h", hw[0]), Dim("w", hw[1])),
        inputs={
            "in": TensorSpec(axes=("b", "c", "h", "w")),
            "gamma": TensorSpec(axes=("c",), is_param=True, scale=2.0),
        },
        outputs={"out": TensorSpec(axes=("b", "c", "h", "w"))},
        flops_per_point=4.0,
    )


def LayerNorm(name: str, *, batch: int, seq: int, dim: int) -> OpSpec:
    """Layer normalization over the model dim; gamma/beta parameters."""
    return _LayerNormSpec(
        name=name,
        kind="layernorm",
        dims=(Dim("b", batch), Dim("s", seq), Dim("d", dim)),
        inputs={
            "in": TensorSpec(axes=("b", "s", "d")),
            "gamma": TensorSpec(axes=("d",), is_param=True, scale=2.0),
        },
        outputs={"out": TensorSpec(axes=("b", "s", "d"))},
        flops_per_point=5.0,
    )
