"""Elementwise activation / regularization layers."""

from __future__ import annotations

from typing import Sequence

from ..core.dims import Dim
from ..core.tensors import TensorSpec
from .base import OpSpec

__all__ = ["Activation", "Dropout"]


def Activation(name: str, *, dims: Sequence[tuple[str, int]],
               fn: str = "relu") -> OpSpec:
    """An elementwise activation over an arbitrary iteration space.

    ``dims`` is a sequence of ``(dim_name, size)`` pairs matching the
    producing layer's output axes.
    """
    dtuple = tuple(Dim(n, s) for n, s in dims)
    axes = tuple(n for n, _ in dims)
    return OpSpec(
        name=name,
        kind=f"act_{fn}",
        dims=dtuple,
        inputs={"in": TensorSpec(axes=axes)},
        outputs={"out": TensorSpec(axes=axes)},
        flops_per_point=1.0,
    )


def Dropout(name: str, *, dims: Sequence[tuple[str, int]]) -> OpSpec:
    """Dropout (mask multiply)."""
    dtuple = tuple(Dim(n, s) for n, s in dims)
    axes = tuple(n for n, _ in dims)
    return OpSpec(
        name=name,
        kind="dropout",
        dims=dtuple,
        inputs={"in": TensorSpec(axes=axes)},
        outputs={"out": TensorSpec(axes=axes)},
        flops_per_point=1.0,
    )
