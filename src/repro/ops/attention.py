"""Fused multi-head attention as a single graph vertex.

Iteration space ``(b, s, h, c, k)`` — batch, sequence, heads, per-head
query channels, per-head key/value channels — the paper's ``bshck``
(Table II).  The model-width axis of the input/output activations is the
*fixed alias* ``dm`` of extent ``h·c``: splitting heads shards the
projection weights (Megatron-style) while the activations stay full-width,
so ``h``/``c``/``k`` splits produce the end-of-block partial-sum all-reduce
through the generic reduction machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.dims import Dim, shard_extent
from ..core.tensors import DTYPE_BYTES, TensorSpec
from .base import OpSpec

__all__ = ["MultiheadAttention"]


@dataclass(frozen=True)
class _MHASpec(OpSpec):
    """MHA with sequence-split key/value all-gather as extra comm."""

    def extra_comm_bytes(self, configs: np.ndarray) -> np.ndarray:
        """Splitting ``s`` requires each shard to gather full-sequence K/V."""
        configs = np.asarray(configs, dtype=np.int64)
        ss = configs[..., self.dim_index("s")]
        sb = configs[..., self.dim_index("b")]
        sh = configs[..., self.dim_index("h")]
        sk = configs[..., self.dim_index("k")]
        b_sh = shard_extent(self.dim_size("b"), sb)
        h_sh = shard_extent(self.dim_size("h"), sh)
        k_sh = shard_extent(self.dim_size("k"), sk)
        s_full = self.dim_size("s")
        kv = 2.0 * b_sh * s_full * h_sh * k_sh  # K and V
        gathered = np.where(ss > 1, kv * (ss - 1) / np.maximum(ss, 1), 0.0)
        return 2.0 * DTYPE_BYTES * gathered  # forward + backward


def MultiheadAttention(name: str, *, batch: int, seq: int, heads: int,
                       q_channels: int, kv_channels: int | None = None,
                       cross_seq: int | None = None) -> OpSpec:
    """A fused multi-head attention block (self- or cross-attention).

    Parameters
    ----------
    q_channels:
        Per-head query/output channels; model width is ``heads·q_channels``.
    kv_channels:
        Per-head key/value channels (defaults to ``q_channels``).
    cross_seq:
        If given, the block is cross-attention: keys/values come from a
        second ``memory`` input port of sequence length ``cross_seq`` (the
        encoder output in a Transformer decoder).  The memory's sequence
        axis is a fixed alias — every query shard attends over the whole
        memory, so it is never split.
    """
    kv_channels = q_channels if kv_channels is None else kv_channels
    kv_seq = seq if cross_seq is None else cross_seq
    d_model = heads * q_channels
    # Q/K/V/O projections + score and context matmuls.
    proj = 8.0 * batch * seq * d_model * d_model
    attn = 4.0 * batch * heads * seq * kv_seq * kv_channels
    aliases: dict[str, tuple[str | None, int]] = {"dm": (None, d_model)}
    inputs = {
        "in": TensorSpec(axes=("b", "s", "dm")),
        "w": TensorSpec(axes=("h", "c", "dm"), is_param=True, scale=4.0),
    }
    if cross_seq is not None:
        aliases["sm"] = (None, cross_seq)
        inputs["memory"] = TensorSpec(axes=("b", "sm", "dm"))
    return _MHASpec(
        name=name,
        kind="attention",
        dims=(Dim("b", batch), Dim("s", seq), Dim("h", heads),
              Dim("c", q_channels), Dim("k", kv_channels)),
        inputs=inputs,
        outputs={"out": TensorSpec(axes=("b", "s", "dm"))},
        reduction_dims=frozenset({"h", "c", "k"}),
        flops_fwd_override=proj + attn,
        aliases=aliases,
    )
