"""Softmax / cross-entropy loss layers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.dims import Dim, shard_extent
from ..core.tensors import DTYPE_BYTES, TensorSpec
from .base import OpSpec

__all__ = ["Softmax", "SoftmaxCrossEntropy"]


@dataclass(frozen=True)
class _SoftmaxSpec(OpSpec):
    """Softmax whose class-dim splits all-reduce the per-row normalizer."""

    class_dim: str = "n"

    def extra_comm_bytes(self, configs: np.ndarray) -> np.ndarray:
        configs = np.asarray(configs, dtype=np.int64)
        sv = configs[..., self.dim_index(self.class_dim)]
        rows = np.ones(configs.shape[:-1], dtype=np.float64)
        for d in self.dims:
            if d.name == self.class_dim:
                continue
            rows = rows * shard_extent(d.size, configs[..., self.dim_index(d.name)])
        # max + sum all-reduce forward, matching term backward.
        per = 2.0 * 2.0 * rows * DTYPE_BYTES * (sv - 1) / np.maximum(sv, 1)
        return np.where(sv > 1, per, 0.0)


def _softmax(name: str, kind: str, *, batch: int, classes: int,
             seq: int | None, class_name: str) -> OpSpec:
    dims = [Dim("b", batch)]
    if seq is not None:
        dims.append(Dim("s", seq))
    dims.append(Dim(class_name, classes))
    axes = tuple(d.name for d in dims)
    return _SoftmaxSpec(
        name=name,
        kind=kind,
        dims=tuple(dims),
        inputs={"in": TensorSpec(axes=axes)},
        outputs={"out": TensorSpec(axes=axes)},
        flops_per_point=5.0,
        class_dim=class_name,
    )


def Softmax(name: str, *, batch: int, classes: int, seq: int | None = None,
            class_name: str = "n") -> OpSpec:
    """Softmax over ``(b, [s,] n)``; splitting the class dim incurs a
    per-row normalizer all-reduce."""
    return _softmax(name, "softmax", batch=batch, classes=classes, seq=seq,
                    class_name=class_name)


def SoftmaxCrossEntropy(name: str, *, batch: int, classes: int,
                        seq: int | None = None, class_name: str = "n") -> OpSpec:
    """Fused softmax + cross-entropy loss (the usual training head)."""
    return _softmax(name, "softmax_xent", batch=batch, classes=classes, seq=seq,
                    class_name=class_name)
