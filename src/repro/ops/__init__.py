"""Operator library: DNN layer types as iteration spaces with cost hooks.

Every layer kind the four paper benchmarks need (plus DenseNet for the
Section V stress case) is defined here.  An operator is an `OpSpec`: a
named iteration space, input/output `TensorSpec` ports, the set of
contracted (reduction) dims, a forward FLOP count, and optional extra
internal-communication hooks (e.g. convolution halo exchange).
"""

from .base import OpSpec, TRAINING_FLOP_FACTOR_PARAM, TRAINING_FLOP_FACTOR_NOPARAM
from .dense import FullyConnected, BiasAdd
from .conv import Conv2D
from .pool import Pool2D
from .norm import LocalResponseNorm, LayerNorm, BatchNorm
from .activation import Activation, Dropout
from .softmax import Softmax, SoftmaxCrossEntropy
from .embedding import Embedding
from .rnn import LSTMStack
from .attention import MultiheadAttention
from .elementwise import ElementwiseBinary
from .structural import Concat, Identity

__all__ = [
    "OpSpec",
    "TRAINING_FLOP_FACTOR_PARAM",
    "TRAINING_FLOP_FACTOR_NOPARAM",
    "FullyConnected",
    "BiasAdd",
    "Conv2D",
    "Pool2D",
    "LocalResponseNorm",
    "LayerNorm",
    "BatchNorm",
    "Activation",
    "Dropout",
    "Softmax",
    "SoftmaxCrossEntropy",
    "Embedding",
    "LSTMStack",
    "MultiheadAttention",
    "ElementwiseBinary",
    "Concat",
    "Identity",
]
