"""2-D convolution with halo-exchange accounting."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.dims import Dim, shard_extent
from ..core.tensors import DTYPE_BYTES, TensorSpec
from .base import OpSpec

__all__ = ["Conv2D"]


@dataclass(frozen=True)
class _Conv2DSpec(OpSpec):
    """Conv2D with spatial-split halo exchange as extra internal comm."""

    kernel_hw: tuple[int, int] = (1, 1)

    def extra_comm_bytes(self, configs: np.ndarray) -> np.ndarray:
        """Halo exchange for spatial splits (forward + backward).

        Splitting output height ``sh``-ways makes each device's input tile
        miss ``kh - 1`` boundary rows, fetched from spatial neighbors; the
        same volume flows back as input-gradient halo.  Symmetric in
        width.  Stride is ignored (halo is a boundary effect).
        """
        configs = np.asarray(configs, dtype=np.int64)
        kh, kw = self.kernel_hw
        sb = configs[..., self.dim_index("b")]
        sc = configs[..., self.dim_index("c")]
        sh = configs[..., self.dim_index("h")]
        sw = configs[..., self.dim_index("w")]
        in_h = self.dim_size("hi")
        in_w = self.dim_size("wi")
        c = self.dim_size("c")
        b = self.dim_size("b")
        row = shard_extent(in_w, sw) * shard_extent(c, sc) * shard_extent(b, sb)
        col = shard_extent(in_h, sh) * shard_extent(c, sc) * shard_extent(b, sb)
        halo = np.where(sh > 1, (kh - 1) * row, 0) + np.where(sw > 1, (kw - 1) * col, 0)
        return 2.0 * DTYPE_BYTES * halo.astype(np.float64)


def Conv2D(
    name: str,
    *,
    batch: int,
    in_channels: int,
    out_channels: int,
    in_hw: tuple[int, int],
    kernel: tuple[int, int] | int,
    stride: tuple[int, int] | int = 1,
    padding: str = "same",
    splittable_kernel: bool = False,
    bias: bool = True,
) -> OpSpec:
    """A 2-D convolution layer.

    Iteration space ``(b, c, h, w, n, r, s)`` in the paper's Table II order
    (``h, w`` are *output* spatial extents; ``r, s`` the filter window,
    unsplittable by default — splitting a small stencil across devices is
    never profitable and excluding it keeps configuration counts in the
    paper's reported ranges).  The input tensor's spatial axes are aliases
    ``hi, wi`` of ``h, w``: they carry the input extents but follow the
    output-spatial splits.

    ``padding``: ``"same"`` (output = ceil(in / stride)) or ``"valid"``.
    """
    kh, kw = (kernel, kernel) if isinstance(kernel, int) else kernel
    sh, sw = (stride, stride) if isinstance(stride, int) else stride
    ih, iw = in_hw
    if padding == "same":
        oh, ow = -(-ih // sh), -(-iw // sw)
    elif padding == "valid":
        oh, ow = (ih - kh) // sh + 1, (iw - kw) // sw + 1
    else:
        raise ValueError(f"unknown padding {padding!r}")
    if oh < 1 or ow < 1:
        raise ValueError(f"conv {name!r}: non-positive output spatial ({oh}, {ow})")
    dims = (
        Dim("b", batch),
        Dim("c", in_channels),
        Dim("h", oh),
        Dim("w", ow),
        Dim("n", out_channels),
        Dim("r", kh, splittable=splittable_kernel),
        Dim("s", kw, splittable=splittable_kernel),
    )
    inputs = {
        "in": TensorSpec(axes=("b", "c", "hi", "wi")),
        "w": TensorSpec(axes=("n", "c", "r", "s"), is_param=True),
    }
    if bias:
        inputs["bias"] = TensorSpec(axes=("n",), is_param=True)
    return _Conv2DSpec(
        name=name,
        kind="conv2d",
        dims=dims,
        inputs=inputs,
        outputs={"out": TensorSpec(axes=("b", "n", "h", "w"))},
        reduction_dims=frozenset({"c", "r", "s"}),
        flops_per_point=2.0,
        aliases={"hi": ("h", ih), "wi": ("w", iw)},
        kernel_hw=(kh, kw),
    )
