"""Spatial pooling."""

from __future__ import annotations

from ..core.dims import Dim
from ..core.tensors import TensorSpec
from .base import OpSpec

__all__ = ["Pool2D"]


def Pool2D(
    name: str,
    *,
    batch: int,
    channels: int,
    in_hw: tuple[int, int],
    kernel: tuple[int, int] | int,
    stride: tuple[int, int] | int | None = None,
    padding: str = "valid",
    kind: str = "maxpool",
) -> OpSpec:
    """Max/average pooling over iteration space ``(b, c, h, w)``.

    ``h, w`` are output spatial extents; the input tensor uses alias axes
    ``hi, wi``.  One comparison/add per window element is charged per
    output point.
    """
    kh, kw = (kernel, kernel) if isinstance(kernel, int) else kernel
    if stride is None:
        stride = (kh, kw)
    sh, sw = (stride, stride) if isinstance(stride, int) else stride
    ih, iw = in_hw
    if padding == "same":
        oh, ow = -(-ih // sh), -(-iw // sw)
    elif padding == "valid":
        oh, ow = (ih - kh) // sh + 1, (iw - kw) // sw + 1
    else:
        raise ValueError(f"unknown padding {padding!r}")
    if oh < 1 or ow < 1:
        raise ValueError(f"pool {name!r}: non-positive output spatial ({oh}, {ow})")
    return OpSpec(
        name=name,
        kind=kind,
        dims=(Dim("b", batch), Dim("c", channels), Dim("h", oh), Dim("w", ow)),
        inputs={"in": TensorSpec(axes=("b", "c", "hi", "wi"))},
        outputs={"out": TensorSpec(axes=("b", "c", "h", "w"))},
        flops_per_point=float(kh * kw),
        aliases={"hi": ("h", ih), "wi": ("w", iw)},
    )
