"""Elementwise binary operators (residual adds, gating)."""

from __future__ import annotations

from typing import Sequence

from ..core.dims import Dim
from ..core.tensors import TensorSpec
from .base import OpSpec

__all__ = ["ElementwiseBinary"]


def ElementwiseBinary(name: str, *, dims: Sequence[tuple[str, int]],
                      fn: str = "add") -> OpSpec:
    """An elementwise binary op with two input ports ``in0``/``in1``."""
    dtuple = tuple(Dim(n, s) for n, s in dims)
    axes = tuple(n for n, _ in dims)
    return OpSpec(
        name=name,
        kind=f"ew_{fn}",
        dims=dtuple,
        inputs={"in0": TensorSpec(axes=axes), "in1": TensorSpec(axes=axes)},
        outputs={"out": TensorSpec(axes=axes)},
        flops_per_point=1.0,
    )
