"""Embedding lookup layers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.dims import Dim
from ..core.tensors import DTYPE_BYTES, TensorSpec
from .base import OpSpec

__all__ = ["Embedding"]


@dataclass(frozen=True)
class _EmbeddingSpec(OpSpec):
    """Embedding with all-to-all gather for vocabulary-split tables.

    Splitting the vocabulary dim ``m``-ways shards the table; each device
    computes the embeddings of the roughly ``1/m`` of tokens that hit its
    shard and exchanges them with the devices that consume them — an
    all-to-all whose per-device volume is the *produced* share, not the
    full activation (unlike a partial-sum reduction, every output element
    has exactly one producer).
    """

    def extra_comm_bytes(self, configs: np.ndarray) -> np.ndarray:
        configs = np.asarray(configs, dtype=np.int64)
        m = configs[..., self.dim_index("v")].astype(np.float64)
        out_shard = self.primary_output.shard_volume(self, configs)
        produced = out_shard / np.maximum(m, 1.0)
        # send + receive, forward + backward.
        per_dev = 4.0 * DTYPE_BYTES * produced * (m - 1.0) / np.maximum(m, 1.0)
        return np.where(m > 1, per_dev, 0.0)


def Embedding(name: str, *, batch: int, vocab: int, dim: int,
              seq: int | None = None) -> OpSpec:
    """Embedding lookup ``out[b,(s),d] = W[id[b,(s)], d]``.

    Iteration space ``(b, [s,] d, v)`` — the paper's ``bsdv`` (Table II).
    Splitting ``v`` shards the (huge) table, cutting the update-phase cost
    and the gradient footprint at the price of an all-to-all exchange of
    looked-up rows; actual arithmetic is the lookup's ``O(b·s·d)``.
    """
    dims = [Dim("b", batch)]
    lead = ["b"]
    if seq is not None:
        dims.append(Dim("s", seq))
        lead.append("s")
    dims += [Dim("d", dim), Dim("v", vocab)]
    points = batch * (seq or 1) * dim
    return _EmbeddingSpec(
        name=name,
        kind="embedding",
        dims=tuple(dims),
        inputs={
            "ids": TensorSpec(axes=tuple(lead)),
            # Gradients only touch the looked-up rows.
            "w": TensorSpec(axes=("v", "d"), is_param=True,
                            sparse_grad_elements=float(points)),
        },
        outputs={"out": TensorSpec(axes=tuple(lead) + ("d",))},
        flops_fwd_override=2.0 * points,
    )
