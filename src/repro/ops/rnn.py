"""Recurrent layers: a whole LSTM stack as a single graph vertex.

Following Section IV-A of the paper, the complete multi-layer LSTM
operator — including its recurrent steps — is one vertex with a
five-dimensional iteration space ``(l, b, s, d, e)``: layers, batch,
sequence (recurrent steps), input/embedding dim, hidden dim.  This both
shrinks the RNNLM graph to a path graph and lets configurations that split
``l`` and ``s`` capture *intra-layer pipeline parallelism* (wave-front
execution across layer/time tiles).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.dims import Dim, shard_extent
from ..core.tensors import DTYPE_BYTES, TensorSpec
from .base import OpSpec

__all__ = ["LSTMStack"]


@dataclass(frozen=True)
class _LSTMStackSpec(OpSpec):
    """LSTM stack with layer/sequence tile-boundary handoff costs."""

    def extra_comm_bytes(self, configs: np.ndarray) -> np.ndarray:
        """Pipeline tile handoff (forward + backward).

        Splitting the sequence dim ``s`` passes the hidden and cell states
        across each time boundary; splitting the layer dim ``l`` passes
        activations across each layer-group boundary.
        """
        configs = np.asarray(configs, dtype=np.int64)
        sl = configs[..., self.dim_index("l")]
        sb = configs[..., self.dim_index("b")]
        ss = configs[..., self.dim_index("s")]
        se = configs[..., self.dim_index("e")]
        b_sh = shard_extent(self.dim_size("b"), sb)
        e_sh = shard_extent(self.dim_size("e"), se)
        l_sh = shard_extent(self.dim_size("l"), sl)
        s_sh = shard_extent(self.dim_size("s"), ss)
        # h and c states at each of the (ss-1) sequence boundaries.
        seq_handoff = np.where(ss > 1, 2.0 * l_sh * b_sh * e_sh, 0.0)
        # activations at each of the (sl-1) layer boundaries, every step.
        layer_handoff = np.where(sl > 1, 1.0 * b_sh * s_sh * e_sh, 0.0)
        # Splitting the hidden dim shards h, but the recurrent GEMM
        # h_{t-1}·W_hh contracts over the *full* hidden vector: every
        # step all-gathers the missing (se-1)/se of h across the group.
        e_full = self.dim_size("e")
        hidden_gather = np.where(
            se > 1,
            s_sh * l_sh * b_sh * e_full * (se - 1) / np.maximum(se, 1),
            0.0)
        return 2.0 * DTYPE_BYTES * (seq_handoff + layer_handoff + hidden_gather)


def LSTMStack(name: str, *, layers: int, batch: int, seq: int,
              in_dim: int, hidden: int) -> OpSpec:
    """A fused multi-layer LSTM operator.

    Iteration space ``(l, b, s, d, e)`` in the paper's Table II order;
    ``d`` (the gate-GEMM contraction) is the reduction dim.  The four gate
    matrices of every layer are one parameter spec of axes ``(l, d, e)``
    with a volume scale of ``4 (d + e) / d`` (input-to-hidden plus
    hidden-to-hidden for four gates).
    """
    if in_dim < 1 or hidden < 1:
        raise ValueError("LSTM dims must be positive")
    param_scale = 4.0 * (in_dim + hidden) / in_dim
    fwd = 8.0 * layers * batch * seq * hidden * (in_dim + hidden)
    return _LSTMStackSpec(
        name=name,
        kind="lstm",
        dims=(Dim("l", layers), Dim("b", batch), Dim("s", seq),
              Dim("d", in_dim), Dim("e", hidden)),
        inputs={
            "in": TensorSpec(axes=("b", "s", "d")),
            "w": TensorSpec(axes=("l", "d", "e"), is_param=True, scale=param_scale),
        },
        outputs={"out": TensorSpec(axes=("b", "s", "e"))},
        reduction_dims=frozenset({"d"}),
        flops_fwd_override=fwd,
    )
