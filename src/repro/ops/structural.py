"""Structural operators: concatenation and identity.

InceptionV3's module outputs concatenate several towers along the channel
axis — these concat nodes are exactly the high-degree vertices the paper's
GENERATESEQ ordering exists to handle (Fig. 5).
"""

from __future__ import annotations

from typing import Sequence

from ..core.dims import Dim
from ..core.tensors import TensorSpec
from .base import OpSpec

__all__ = ["Concat", "Identity"]


def Concat(name: str, *, parts: Sequence[int], batch: int,
           hw: tuple[int, int] | None = None,
           axis_name: str = "c") -> OpSpec:
    """Channel-axis concatenation of ``len(parts)`` input tensors.

    The concatenated axis is a real dim of extent ``sum(parts)``; input
    port ``in{i}`` uses the alias axis ``{axis_name}{i}`` of extent
    ``parts[i]``, which follows the concatenated axis's split — splitting
    the output channels splits every input proportionally.

    ``hw=None`` builds the sequence-model variant ``(b, axis)`` instead of
    the CNN variant ``(b, c, h, w)``.
    """
    total = int(sum(parts))
    if hw is not None:
        dims = (Dim("b", batch), Dim(axis_name, total),
                Dim("h", hw[0]), Dim("w", hw[1]))
        tail = ("h", "w")
    else:
        dims = (Dim("b", batch), Dim(axis_name, total))
        tail = ()
    aliases = {f"{axis_name}{i}": (axis_name, int(sz)) for i, sz in enumerate(parts)}
    inputs = {
        f"in{i}": TensorSpec(axes=("b", f"{axis_name}{i}") + tail)
        for i in range(len(parts))
    }
    return OpSpec(
        name=name,
        kind="concat",
        dims=dims,
        inputs=inputs,
        outputs={"out": TensorSpec(axes=("b", axis_name) + tail)},
        flops_per_point=1.0,  # a copy, charged as one move per point
        aliases=aliases,
    )


def Identity(name: str, *, dims: Sequence[tuple[str, int]]) -> OpSpec:
    """A passthrough node (branch points, graph surgery)."""
    dtuple = tuple(Dim(n, s) for n, s in dims)
    axes = tuple(n for n, _ in dims)
    return OpSpec(
        name=name,
        kind="identity",
        dims=dtuple,
        inputs={"in": TensorSpec(axes=axes)},
        outputs={"out": TensorSpec(axes=axes)},
        flops_per_point=0.0,
    )
