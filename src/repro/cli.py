"""``pase`` command-line interface.

Subcommands::

    pase search   --model alexnet --p 8          find the best strategy
    pase serve    --port 8421 --workers 4        strategy-search service
    pase simulate --model rnnlm --p 16           simulate strategies
    pase stats    --model inception_v3           graph/ordering statistics
    pase table1   [--full]                       regenerate Table I
    pase table2   [--p 32]                       regenerate Table II
    pase figure6  [--full]                       regenerate Fig. 6a/6b
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .analysis import section_3c_report
from .cluster import simulate_step
from .core.machine import MACHINES as _MACHINES
from .experiments import figure6, table1, table2
from .experiments.common import METHODS, build_setup, search_with
from .models import BENCHMARKS

__all__ = ["main"]


def _add_common(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--model", choices=sorted(BENCHMARKS), required=True)
    sub.add_argument("--p", type=int, default=8, help="device count")
    sub.add_argument("--machine", choices=sorted(_MACHINES), default="1080ti")
    sub.add_argument("--mode", choices=("pow2", "divisors", "all"),
                     default="pow2", help="configuration enumeration mode")


def _jobs_arg(value: str):
    """``--jobs`` accepts a worker count or a backend spelling.

    Plain integers keep the historical meaning (auto backend selection,
    0 = all cores); strings like ``serial``, ``threads:4``,
    ``processes:2``, or ``auto`` force a specific backend.
    """
    try:
        return int(value)
    except ValueError:
        pass
    from .core.costmodel import _parse_jobs

    try:
        _parse_jobs(value)
    except ValueError as err:
        raise argparse.ArgumentTypeError(str(err)) from None
    return value


def _add_table_opts(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--jobs", type=_jobs_arg, default=None, metavar="N",
                     help="cost-table construction parallelism: a worker "
                     "count (0 = all cores, backend auto-selected from "
                     "the measured work) or an explicit backend spelling "
                     "like 'serial', 'threads:4', 'processes:2' "
                     "(default: serial)")
    sub.add_argument("--table-cache", metavar="DIR", default=None,
                     help="cache precomputed cost tables under DIR "
                     "(content-addressed; reused across runs)")
    sub.add_argument("--reduce", action=argparse.BooleanOptionalAction,
                     default=False,
                     help="run the exactness-preserving search-space "
                     "reduction (dominance pruning + chain contraction) "
                     "before the DP (auto-bypassed when the plain DP is "
                     "predicted to be cheap; see PASE_REDUCE_BYPASS_RATIO)")
    sub.add_argument("--kernel", choices=("numpy", "numba", "auto"),
                     default=None,
                     help="compute backend for the hot search kernels "
                     "(numba falls back to numpy with a warning when not "
                     "installed; default: $PASE_KERNEL or numpy)")


def _cmd_search(args: argparse.Namespace) -> int:
    from .core.configs import ConfigSpace
    from .core.dp import DEFAULT_MEMORY_BUDGET
    from .runtime import (Cancellation, RunBudget, RunContext, SearchJournal,
                          execute_search, trap_signals)

    if args.resume and args.journal_dir is None:
        print("pase: --resume requires --journal-dir", file=sys.stderr)
        return 2
    machine = _MACHINES[args.machine]
    graph = BENCHMARKS[args.model]()
    space = ConfigSpace.build(graph, args.p, mode=args.mode)
    cache = None
    if args.table_cache is not None:
        from .core.tablecache import TableCache

        cache = TableCache(args.table_cache)
    journal = None
    if args.journal_dir is not None:
        journal = SearchJournal(args.journal_dir)
    tracer = None
    if args.trace is not None or args.verbose:
        from .obs import Tracer

        # -v without --trace still needs the in-memory records for the
        # post-run summary; Tracer(None) keeps them without a file.
        tracer = Tracer(args.trace)
    metrics = None
    if args.metrics is not None:
        from .obs import Metrics

        metrics = Metrics()
    # The DP path runs whenever it can honor a custom memory budget /
    # breadth-first ordering; plain "bf" stays the naive recurrence-(2)
    # baseline, exactly as before the hardened runtime.
    method, order = args.method, None
    if args.method == "bf" and \
            (args.resilient or args.memory_budget is not None):
        from .core.sequencer import breadth_first_seq

        method, order = "ours", breadth_first_seq(graph)
    objective = "cost"
    if args.frontier:
        if method != "ours":
            print("pase: --frontier requires --method ours",
                  file=sys.stderr)
            return 2
        objective = ("frontier" if not args.frontier_eps
                     else f"frontier:eps={args.frontier_eps:g}")
    ctx = RunContext(
        budget=RunBudget(
            deadline=args.deadline,
            memory_budget=args.memory_budget if args.memory_budget is not None
            else DEFAULT_MEMORY_BUDGET),
        cancellation=Cancellation(),
        journal=journal, jobs=args.jobs, cache=cache,
        tracer=tracer, metrics=metrics, kernel=args.kernel)
    try:
        with trap_signals(ctx.cancellation):
            outcome = execute_search(
                graph, space, machine, method=method, seed=args.seed,
                order=order, reduce=args.reduce, objective=objective,
                resilient=args.resilient, ctx=ctx, resume=args.resume)
    finally:
        # The tracer flushes per-span, so the trace file is valid even on
        # a failure path; the metrics snapshot needs an explicit dump.
        if metrics is not None:
            metrics.dump(args.metrics)
    result = outcome.result
    from .analysis.reporting import (format_reduction_stats, format_run_report,
                                     format_table_build_stats)

    print(f"# {args.model} p={args.p} machine={args.machine} "
          f"method={args.method}")
    print(f"# cost={result.cost:.6e} FLOP-equivalents, "
          f"elapsed={result.elapsed:.3f}s")
    print(f"# {format_table_build_stats(result.stats)}")
    if args.reduce:
        print(f"# {format_reduction_stats(result.stats)}")
    if outcome.resilience is not None:
        print(outcome.resilience.summary())
    print(format_run_report(outcome.report))
    if args.frontier:
        from .analysis.reporting import (format_frontier_plot,
                                         format_frontier_table)

        print(f"# Pareto frontier: {len(result.frontier)} non-dominated "
              f"(cost, peak-bytes) point(s)")
        print(format_frontier_table(result.frontier))
        plot = format_frontier_plot(result.frontier)
        if plot:
            print(plot)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(result.strategy.to_json())
        print(f"# strategy written to {args.json}")
    else:
        print(result.strategy.format_table(graph))
    if args.metrics is not None:
        print(f"# metrics written to {args.metrics}")
    if args.trace is not None:
        print(f"# trace written to {args.trace}")
    if args.verbose and tracer is not None:
        from .obs import format_trace_summary

        print(format_trace_summary(tracer.records))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .fleet import (FleetSupervisor, SweepSpec, SweepSpecError,
                        format_fleet_report)
    from .runtime import (Cancellation, EXIT_QUARANTINED, RunBudget,
                          RunContext, trap_signals)

    try:
        spec = SweepSpec.from_file(args.spec)
        n_tasks = len(spec.expand())
    except SweepSpecError as err:
        print(f"pase: bad sweep spec: {err}", file=sys.stderr)
        return 2
    tracer = None
    if args.trace is not None:
        from .obs import Tracer

        tracer = Tracer(args.trace)
    metrics = None
    if args.metrics is not None:
        from .obs import Metrics

        metrics = Metrics()
    ctx = RunContext(budget=RunBudget(deadline=args.deadline),
                     cancellation=Cancellation(),
                     tracer=tracer, metrics=metrics)
    supervisor = FleetSupervisor(
        spec, args.fleet_dir, workers=args.workers,
        max_attempts=args.max_retries + 1,
        task_deadline=args.task_deadline,
        straggler_after=args.straggler_after, ctx=ctx, pool=args.pool)
    print(f"# sweep: {n_tasks} tasks from {args.spec} -> {args.fleet_dir} "
          f"({args.workers} workers, {supervisor.pool} pool)")
    try:
        with trap_signals(ctx.cancellation):
            report = supervisor.run(resume=args.resume)
    finally:
        if metrics is not None:
            metrics.dump(args.metrics)
    print(format_fleet_report(report))
    if args.metrics is not None:
        print(f"# metrics written to {args.metrics}")
    if args.trace is not None:
        print(f"# trace written to {args.trace}")
    return EXIT_QUARANTINED if report.quarantined else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import serve_forever

    return serve_forever(
        host=args.host, port=args.port, workers=args.workers,
        max_queue=args.max_queue, max_attempts=args.max_retries + 1,
        request_deadline=args.request_deadline,
        memory_budget=args.memory_budget, state_dir=args.state_dir,
        allow_chaos=args.allow_chaos, trace=args.trace,
        metrics_path=args.metrics, verbose=args.verbose)


def _cmd_simulate(args: argparse.Namespace) -> int:
    machine = _MACHINES[args.machine]
    setup = build_setup(args.model, args.p, machine=machine, mode=args.mode,
                        jobs=args.jobs, cache_dir=args.table_cache)
    plan = None
    if args.faults:
        from .resilience import FaultPlan

        plan = FaultPlan.from_file(args.faults)
        plan.validate(args.p)
    from .analysis.reporting import format_table_build_stats

    print(f"# {format_table_build_stats(setup.tables.build_stats)}")
    from .core import kernels

    rows = []
    base = None
    with kernels.use(args.kernel):
        for method in args.methods:
            strat = search_with(setup, method, seed=args.seed,
                                reduce=args.reduce).strategy
            rep = simulate_step(setup.graph, strat, machine, args.p,
                                keep_trace=args.gantt)
            if method == "data_parallel":
                base = rep.throughput
            rows.append((method, rep, strat))
    print(f"# {args.model} p={args.p} machine={args.machine}")
    for method, rep, _ in rows:
        speed = f"  ({rep.throughput / base:.2f}x vs dp)" if base else ""
        print(f"{method:16s} step={rep.step_time * 1e3:9.2f} ms  "
              f"{rep.throughput:10.1f} samples/s{speed}")
    if plan is not None:
        from .analysis.reporting import format_fault_table

        faulted = [(method, simulate_step(setup.graph, strat, machine,
                                          args.p, faults=plan))
                   for method, _, strat in rows]
        print(f"\n# fault-injected step ({args.faults})")
        print(format_fault_table(faulted))
        if args.ckpt_interval:
            from .resilience import CheckpointPolicy, effective_step_time

            policy = CheckpointPolicy(interval_steps=args.ckpt_interval,
                                      checkpoint_time=args.ckpt_time,
                                      restore_time=args.ckpt_restore)
            print(f"\n# effective step time with checkpoints every "
                  f"{args.ckpt_interval} steps, MTBF {args.mtbf_steps} steps")
            for method, rep in faulted:
                eff = effective_step_time(rep.step_time, policy,
                                          1.0 / args.mtbf_steps)
                print(f"{method:16s} {eff * 1e3:9.2f} ms/step")
        if args.replan and plan.failed_devices():
            from .resilience import CheckpointPolicy, elastic_replan

            policy = None
            if args.ckpt_interval:
                policy = CheckpointPolicy(interval_steps=args.ckpt_interval,
                                          checkpoint_time=args.ckpt_time,
                                          restore_time=args.ckpt_restore)
            method, _, strat = rows[0]
            print(f"\n# elastic re-plan after fail-stop (strategy: {method})")
            print(elastic_replan(setup.graph, strat, machine, args.p, plan,
                                 mode=args.mode, policy=policy).summary())
    if args.gantt:
        from .cluster import render_gantt
        for method, rep, _ in rows:
            show = [("gpu", d) for d in range(min(args.p, 4))] + \
                [("tx", d) for d in range(min(args.p, 2))]
            print(f"\n# timeline: {method} "
                  f"(F fwd, B bwd, x xfer, r reduce, g gradsync, u update)")
            print(render_gantt(rep.trace, rep.step_time, width=72,
                               resources=show))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from .extensions import to_gshard_json

    setup = build_setup(args.model, args.p, machine=_MACHINES[args.machine],
                        mode=args.mode)
    strat = search_with(setup, args.method, seed=args.seed).strategy
    text = to_gshard_json(setup.graph, strat)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"# sharding spec written to {args.out}")
    else:
        print(text)
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    from .extensions import pipeline_pase

    machine = _MACHINES[args.machine]
    graph = BENCHMARKS[args.model]()
    cache = None
    if args.table_cache is not None:
        from .core.tablecache import TableCache

        cache = TableCache(args.table_cache)
    from .core import kernels

    with kernels.use(args.kernel):
        res = pipeline_pase(graph, args.p, args.stages, machine=machine,
                            mode=args.mode, jobs=args.jobs, cache=cache,
                            reduce=args.reduce)
    print(f"# {args.model} p={args.p} stages={args.stages} "
          f"({res.devices_per_stage} devices/stage)")
    for i, (stage, cost) in enumerate(zip(res.stages, res.stage_costs)):
        print(f"stage {i}: {len(stage):3d} layers  cost={cost:.4e}  "
              f"[{stage[0]} .. {stage[-1]}]")
    print(f"bottleneck={res.bottleneck_cost:.4e}  "
          f"balance={res.pipeline_efficiency:.2%}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = BENCHMARKS[args.model]()
    rep = section_3c_report(graph, ps=(args.p,), mode=args.mode)
    print(json.dumps(rep, indent=2, default=str))
    return 0


#: Subcommands forwarded verbatim to their experiment driver's ``main``
#: (argparse's REMAINDER cannot capture leading ``--options``, bpo-17050).
_PASSTHROUGH = {"table1": table1, "table2": table2, "figure6": figure6}


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in _PASSTHROUGH:
        return int(_PASSTHROUGH[argv[0]].main(argv[1:]) or 0)

    parser = argparse.ArgumentParser(
        prog="pase",
        description="PaSE: automatic DNN parallelization-strategy search "
                    "(IPDPS 2021 reproduction)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "exit codes:\n"
            "  0  success\n"
            "  1  unexpected internal error\n"
            "  2  usage error\n"
            "  3  search resource budget exceeded (SearchResourceError)\n"
            "  4  cluster-simulation error (SimulationError)\n"
            "  5  wall-clock deadline exceeded (--deadline)\n"
            "  6  interrupted by SIGINT/SIGTERM with the journal flushed\n"
            "     (resume with `search --journal-dir DIR --resume`)\n"
            "  7  fleet sweep drained, but some tasks were quarantined\n"
            "     after exhausting their retries (`sweep`)\n"
            "\n"
            "`serve` introduces no new exit codes: the first\n"
            "SIGINT/SIGTERM drains in-flight requests and exits 0; a\n"
            "second SIGINT abandons the drain and exits 6. Per-request\n"
            "failures are HTTP statuses (400/413/429/503/504), never\n"
            "process exits.\n"
        ))
    subs = parser.add_subparsers(dest="command", required=True)

    p_search = subs.add_parser("search", help="find the best strategy")
    _add_common(p_search)
    _add_table_opts(p_search)
    p_search.add_argument("--method", choices=METHODS, default="ours")
    p_search.add_argument("--seed", type=int, default=0)
    p_search.add_argument("--frontier", action="store_true",
                          help="multi-objective search: return the exact "
                          "(cost, peak-bytes) Pareto frontier instead of "
                          "only the min-cost strategy (method 'ours')")
    p_search.add_argument("--frontier-eps", type=float, default=0.0,
                          metavar="EPS",
                          help="coarsen the frontier to one point per "
                          "geometric memory bucket of width (1+EPS); 0 "
                          "keeps the exact frontier (default)")
    p_search.add_argument("--json", help="write the strategy to a JSON file")
    p_search.add_argument("--resilient", action="store_true",
                          help="degrade gracefully (chunk reduction, "
                          "GENERATESEQ fallback, config coarsening) instead "
                          "of failing on a blown memory budget")
    p_search.add_argument("--memory-budget", type=int, default=None,
                          help="DP byte budget (default 2 GiB)")
    p_search.add_argument("--deadline", type=float, default=None,
                          metavar="SECONDS",
                          help="wall-clock budget for the whole run; "
                          "checked at cooperative checkpoints, exceeding "
                          "it exits with code 5")
    p_search.add_argument("--journal-dir", metavar="DIR", default=None,
                          help="crash-safe run journal: phase snapshots "
                          "and built tables land here (atomic writes), "
                          "SIGINT/SIGTERM flush it and exit with code 6")
    p_search.add_argument("--resume", action="store_true",
                          help="resume a journalled run from --journal-dir "
                          "bit-identically (fingerprint-checked)")
    p_search.add_argument("--trace", metavar="FILE", default=None,
                          help="write a nested-span trace of the run as "
                          "JSONL (crash-safe: flushed per span)")
    p_search.add_argument("--metrics", metavar="FILE", default=None,
                          help="export run metrics to FILE; .prom/.txt "
                          "selects Prometheus text format, anything else "
                          "JSON")
    p_search.add_argument("-v", "--verbose", action="store_true",
                          help="print a per-phase timing summary of the "
                          "run's trace")
    p_search.set_defaults(fn=_cmd_search)

    p_sweep = subs.add_parser(
        "sweep", help="drain a declarative sweep spec through a "
        "fault-tolerant fleet of search workers")
    p_sweep.add_argument("--spec", required=True, metavar="SPEC.json",
                         help="sweep spec: models x machines x p x "
                         "fault-plans x flags (see DESIGN.md §10)")
    p_sweep.add_argument("--fleet-dir", required=True, metavar="DIR",
                         help="fleet state root: crash-safe manifest, "
                         "per-task journals, shared table cache, merged "
                         "results.jsonl + summary.json")
    p_sweep.add_argument("--workers", type=int, default=4, metavar="N",
                         help="concurrent worker processes (default 4)")
    p_sweep.add_argument("--pool", choices=("spawn", "persistent"),
                         default=None,
                         help="worker management: 'persistent' (default) "
                         "reuses pre-forked processes across tasks; "
                         "'spawn' forks one process per task attempt")
    p_sweep.add_argument("--resume", action="store_true",
                         help="resume an interrupted sweep from "
                         "--fleet-dir: completed tasks are replayed, "
                         "in-flight ones re-queued (fingerprint-checked)")
    p_sweep.add_argument("--task-deadline", type=float, default=None,
                         metavar="SECONDS",
                         help="per-task wall-clock budget enforced inside "
                         "each worker")
    p_sweep.add_argument("--deadline", type=float, default=None,
                         metavar="SECONDS",
                         help="fleet-wide wall-clock budget; exceeding it "
                         "exits with code 5 (resume later with --resume)")
    p_sweep.add_argument("--max-retries", type=int, default=2, metavar="N",
                         help="retries per task before quarantine "
                         "(default 2; exponential backoff with jitter)")
    p_sweep.add_argument("--straggler-after", type=float, default=60.0,
                         metavar="SECONDS",
                         help="SIGKILL + reassign a worker whose heartbeat "
                         "is older than this (default 60)")
    p_sweep.add_argument("--trace", metavar="FILE", default=None,
                         help="write fleet-level nested-span trace JSONL")
    p_sweep.add_argument("--metrics", metavar="FILE", default=None,
                         help="export fleet metrics to FILE (.prom/.txt "
                         "= Prometheus text, anything else JSON)")
    p_sweep.set_defaults(fn=_cmd_sweep)

    p_serve = subs.add_parser(
        "serve", help="run the hardened long-running strategy-search "
        "HTTP service (admission control, request coalescing, "
        "poison-problem quarantine, graceful drain)")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8421,
                         help="bind port; 0 lets the OS pick (default 8421)")
    p_serve.add_argument("--workers", type=int, default=4, metavar="N",
                         help="search worker processes (default 4); "
                         "searches run crash-isolated in a persistent "
                         "pre-forked pool, so a crashing search never "
                         "takes down the server")
    p_serve.add_argument("--max-queue", type=int, default=16, metavar="N",
                         help="admission window: concurrently admitted "
                         "requests (coalesced waiters included; cache "
                         "hits exempt) before new ones get 429 + "
                         "Retry-After (default 16)")
    p_serve.add_argument("--request-deadline", type=float, default=None,
                         metavar="SECONDS",
                         help="cap on any request's wall clock, enforced "
                         "both on the waiting client connection (504) and "
                         "inside the worker via its RunBudget")
    p_serve.add_argument("--memory-budget", type=int, default=None,
                         metavar="BYTES",
                         help="server-wide DP memory-budget ceiling; "
                         "requests asking for more are clamped before "
                         "fingerprinting")
    p_serve.add_argument("--state-dir", default="pase-serve", metavar="DIR",
                         help="persistent state root (result cache, "
                         "quarantine, shared table cache, task dirs); a "
                         "SIGKILLed server restarts from it intact "
                         "(default ./pase-serve)")
    p_serve.add_argument("--max-retries", type=int, default=2, metavar="N",
                         help="worker deaths a problem survives before "
                         "quarantine (default 2; quarantined problems "
                         "answer 503, or degrade=true for a resilient "
                         "coarsened fallback)")
    p_serve.add_argument("--allow-chaos", action="store_true",
                         help="accept test-only chaos hooks in requests "
                         "(worker fault injection; never enable in "
                         "production)")
    p_serve.add_argument("--trace", metavar="FILE", default=None,
                         help="write per-request nested-span trace JSONL "
                         "(serve.request -> validate/admit/coalesce|"
                         "search/respond)")
    p_serve.add_argument("--metrics", metavar="FILE", default=None,
                         help="dump final metrics on shutdown (.prom/.txt "
                         "= Prometheus text; live scraping: GET /metrics)")
    p_serve.add_argument("-v", "--verbose", action="store_true",
                         help="log one line per HTTP request to stderr")
    p_serve.set_defaults(fn=_cmd_serve)

    p_sim = subs.add_parser("simulate", help="simulate strategies on a cluster")
    _add_common(p_sim)
    _add_table_opts(p_sim)
    p_sim.add_argument("--methods", nargs="+", choices=METHODS,
                       default=["data_parallel", "expert", "ours"])
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--gantt", action="store_true",
                       help="render ASCII timelines of the simulated step")
    p_sim.add_argument("--faults", metavar="PLAN.json",
                       help="fault plan to inject into the simulated step")
    p_sim.add_argument("--replan", action="store_true",
                       help="with --faults containing fail-stops: price "
                       "elastic re-planning on the survivor devices")
    p_sim.add_argument("--ckpt-interval", type=int, default=0,
                       help="checkpoint every N steps (0 = no checkpoints)")
    p_sim.add_argument("--ckpt-time", type=float, default=0.5,
                       help="seconds per checkpoint write")
    p_sim.add_argument("--ckpt-restore", type=float, default=2.0,
                       help="seconds to restore from a checkpoint")
    p_sim.add_argument("--mtbf-steps", type=float, default=10_000.0,
                       help="mean steps between failures for the "
                       "effective-step-time model")
    p_sim.set_defaults(fn=_cmd_simulate)

    p_exp = subs.add_parser("export", help="emit GShard-style sharding "
                            "annotations for the found strategy")
    _add_common(p_exp)
    p_exp.add_argument("--method", choices=METHODS, default="ours")
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument("--out", help="write JSON here instead of stdout")
    p_exp.set_defaults(fn=_cmd_export)

    p_pipe = subs.add_parser("pipeline", help="PipeDream-style stages + "
                             "PaSE per stage (Section VI composition)")
    _add_common(p_pipe)
    _add_table_opts(p_pipe)
    p_pipe.add_argument("--stages", type=int, default=2)
    p_pipe.set_defaults(fn=_cmd_pipeline)

    p_stats = subs.add_parser("stats", help="graph/ordering statistics")
    _add_common(p_stats)
    p_stats.set_defaults(fn=_cmd_stats)

    for name in _PASSTHROUGH:
        subs.add_parser(name, help=f"regenerate the paper's {name} "
                        "(arguments pass through to the experiment driver)")

    args = parser.parse_args(argv)
    return _dispatch(args)


def _dispatch(args: argparse.Namespace) -> int:
    """Run a subcommand, mapping library failures to documented exit
    codes (listed in ``pase --help``).  Terminating errors that carry a
    `RunReport` print it, so an interrupted or out-of-budget run still
    tells the user what degraded and where the journal is."""
    from .core.exceptions import (DeadlineExceededError, JournalError,
                                  RunInterrupted, SearchResourceError,
                                  SimulationError)
    from .runtime import (EXIT_DEADLINE, EXIT_INTERRUPTED, EXIT_RESOURCE,
                          EXIT_SIMULATION, EXIT_USAGE)

    try:
        return int(args.fn(args) or 0)
    except DeadlineExceededError as err:
        _report_failure("deadline exceeded", err)
        return EXIT_DEADLINE
    except RunInterrupted as err:
        _report_failure("interrupted", err)
        return EXIT_INTERRUPTED
    except SearchResourceError as err:
        _report_failure("search resource budget exceeded", err)
        return EXIT_RESOURCE
    except JournalError as err:
        _report_failure("unusable journal", err)
        return EXIT_USAGE
    except SimulationError as err:
        _report_failure("simulation error", err)
        return EXIT_SIMULATION


def _report_failure(label: str, err: BaseException) -> None:
    print(f"pase: {label}: {err}", file=sys.stderr)
    report = getattr(err, "run_report", None)
    if report is not None:
        from .analysis.reporting import format_run_report

        print(format_run_report(report), file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
