"""Machine descriptions: device peak performance and interconnect bandwidth.

The analytic cost model only needs the FLOP-to-byte ratio ``r = F / B``
(paper, Equation 1).  The cluster simulator additionally needs the topology
breakdown: devices per node, intra-node (PCIe, with or without peer-to-peer
access) and inter-node (InfiniBand) bandwidths.

The two built-in profiles encode the paper's hardware contrast:

* ``GTX1080TI``: moderate peak FLOPS, PCIe peer-to-peer enabled — the
  "high machine balance" system of Fig. 6a.
* ``RTX2080TI``: higher peak FLOPS but no P2P over PCIe (staged through
  host memory), hence far lower effective bandwidth — the "low machine
  balance" system of Fig. 6b where strategy quality matters most.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineSpec", "GTX1080TI", "RTX2080TI", "UNIT_BALANCE",
           "MACHINES", "from_heterogeneous"]


@dataclass(frozen=True, slots=True)
class MachineSpec:
    """A homogeneous multi-node GPU cluster description.

    Attributes
    ----------
    name:
        Profile label used in reports.
    peak_flops:
        Per-device peak floating-point rate (FLOP/s).
    intra_node_bw:
        Per-link bandwidth between devices in the same node (bytes/s).
    inter_node_bw:
        Per-NIC bandwidth between nodes (bytes/s).
    devices_per_node:
        GPUs per node (the paper's systems have 8).
    p2p:
        Whether intra-node transfers go device-to-device (True) or must be
        staged through host memory (False; 2080Ti's PCIe limitation).
    """

    name: str
    peak_flops: float
    intra_node_bw: float
    inter_node_bw: float
    devices_per_node: int = 8
    p2p: bool = True

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.intra_node_bw <= 0 or self.inter_node_bw <= 0:
            raise ValueError("machine rates must be positive")
        if self.devices_per_node < 1:
            raise ValueError("devices_per_node must be >= 1")

    @property
    def link_bandwidth(self) -> float:
        """Average per-link bandwidth B used by the analytic model.

        The paper uses a single average bandwidth; we take the geometric
        mean of the intra- and inter-node rates so that both tiers
        influence the ranking oracle.
        """
        return (self.intra_node_bw * self.inter_node_bw) ** 0.5

    @property
    def flop_byte_ratio(self) -> float:
        """r = F / B, the FLOP-to-byte ratio of Equation (1)."""
        return self.peak_flops / self.link_bandwidth

    def nodes_for(self, p: int) -> int:
        """Number of nodes hosting ``p`` devices."""
        return -(-p // self.devices_per_node)


#: GeForce GTX 1080 Ti cluster: ~11.3 TFLOPS fp32; PCIe 3.0 x16 with
#: peer-to-peer (~12 GB/s effective); EDR InfiniBand (~10 GB/s effective).
GTX1080TI = MachineSpec(
    name="1080Ti",
    peak_flops=11.3e12,
    intra_node_bw=12.0e9,
    inter_node_bw=10.0e9,
    devices_per_node=8,
    p2p=True,
)

#: GeForce RTX 2080 Ti cluster: ~13.4 TFLOPS fp32; no P2P over PCIe, so
#: intra-node transfers stage through the host (~4 GB/s effective); same
#: InfiniBand fabric.  Machine balance is ~4x worse than the 1080Ti system.
RTX2080TI = MachineSpec(
    name="2080Ti",
    peak_flops=13.4e12,
    intra_node_bw=4.0e9,
    inter_node_bw=10.0e9,
    devices_per_node=8,
    p2p=False,
)

#: CLI/spec name -> machine registry (the names `pase --machine` and
#: sweep specs accept).
MACHINES: dict[str, MachineSpec] = {
    "1080ti": GTX1080TI,
    "2080ti": RTX2080TI,
}

#: A balance-1 machine (r == 1): layer costs and transfer volumes weigh
#: equally.  Handy for unit tests where hand-computed costs are checked.
UNIT_BALANCE = MachineSpec(
    name="unit",
    peak_flops=1.0,
    intra_node_bw=1.0,
    inter_node_bw=1.0,
    devices_per_node=8,
    p2p=True,
)


def from_heterogeneous(name, device_flops, intra_bws, inter_bws, *,
                       devices_per_node: int = 8, p2p: bool = True) -> MachineSpec:
    """Collapse a heterogeneous cluster description into a `MachineSpec`.

    Following the paper's Section V treatment of heterogeneous systems,
    the peak FLOP rate of the *weakest* device and the bandwidth of the
    *weakest* link are used — they form the bottlenecks the cost model
    must rank against.
    """
    device_flops = list(device_flops)
    intra_bws = list(intra_bws)
    inter_bws = list(inter_bws)
    if not device_flops or not intra_bws or not inter_bws:
        raise ValueError("heterogeneous description must be non-empty")
    return MachineSpec(
        name=name,
        peak_flops=min(device_flops),
        intra_node_bw=min(intra_bws),
        inter_node_bw=min(inter_bws),
        devices_per_node=devices_per_node,
        p2p=p2p,
    )
