"""Reference searches: the naive recurrence (2) DP and brute force.

* :func:`naive_bf_strategy` implements Section III-A: recurrence (2) over a
  breadth-first ordering, with DP tables keyed by the *breadth-first
  dependent sets* ``D_B(i) = N(V_<=i) ∩ V_>i``.  This is the paper's "BF"
  column in Table I; it matches the efficient DP on path graphs and runs
  out of memory on InceptionV3/Transformer.
* :func:`brute_force_strategy` enumerates every strategy (vectorized as one
  giant broadcast sum); it is the ground truth the property tests compare
  both DPs against on small graphs.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from .configs import ConfigSpace
from .costmodel import CostTables
from .exceptions import SearchResourceError
from .graph import CompGraph
from .sequencer import breadth_first_seq
from .strategy import SearchResult, Strategy
from ..obs.profile import profiled
from ._tensorops import chunked_min_argmin
from .dp import DEFAULT_CHUNK_CELLS, DEFAULT_MEMORY_BUDGET

__all__ = ["naive_bf_strategy", "brute_force_strategy", "bf_dependent_sets"]


def bf_dependent_sets(adj: Sequence[Sequence[int]]) -> list[tuple[int, ...]]:
    """D_B(i) = N(V_<=i) ∩ V_>i for every prefix, maintained incrementally."""
    frontier: set[int] = set()
    out: list[tuple[int, ...]] = []
    for i in range(len(adj)):
        frontier.discard(i)
        frontier.update(j for j in adj[i] if j > i)
        out.append(tuple(sorted(frontier)))
    return out


@profiled("baseline.bf")
def naive_bf_strategy(
    graph: CompGraph,
    space: ConfigSpace,
    tables: CostTables,
    *,
    order: Sequence[str] | None = None,
    memory_budget: int = DEFAULT_MEMORY_BUDGET,
    chunk_cells: int = DEFAULT_CHUNK_CELLS,
    time_budget: float | None = None,
) -> SearchResult:
    """Recurrence (2) DP (Section III-A).

    ``B(i, φ) = min_C [ H(i, φ ∪ {(v_i, C)}) + B(i-1, φ'') ]`` with tables
    keyed by ``D_B(i)``.  Raises `SearchResourceError` when a table would
    exceed the byte budget — the deterministic counterpart of the paper's
    OOM entries — or, if ``time_budget`` seconds is set, when the search
    exceeds it (large chunked tables can take unbounded time even while
    they still fit in memory).
    """
    t0 = time.perf_counter()
    if order is None:
        order = breadth_first_seq(graph)
    order = tuple(order)
    n = len(order)
    if n == 0:
        return SearchResult(Strategy({}), 0.0, time.perf_counter() - t0, "naive-bf")
    pos = {name: i for i, name in enumerate(order)}
    adj = [sorted(pos[m] for m in graph.neighbors(name)) for name in order]
    dep = bf_dependent_sets(adj)
    ksize = [space.size(name) for name in order]

    prev_table: np.ndarray | None = None
    prev_axes: tuple[int, ...] = ()
    argmins: list[np.ndarray] = []
    axes_log: list[tuple[int, ...]] = []
    live = 0
    peak = 0
    cells_evaluated = 0

    for i in range(n):
        if time_budget is not None and time.perf_counter() - t0 > time_budget:
            raise SearchResourceError(
                f"BF DP exceeded the {time_budget:.0f}s time budget at "
                f"vertex {order[i]!r} ({i}/{n})",
                requested_bytes=live, budget_bytes=memory_budget)
        axes = dep[i]
        full_axes = axes + (i,)
        table_shape = tuple(ksize[d] for d in axes)
        table_cells = int(np.prod(table_shape, dtype=np.int64)) if axes else 1
        needed = table_cells * 12 + min(table_cells * ksize[i], chunk_cells) * 8
        if live + needed > memory_budget:
            raise SearchResourceError(
                f"BF DP table for vertex {order[i]!r} needs {needed} bytes "
                f"({live} live, budget {memory_budget}); |D_B(i)|={len(axes)}",
                requested_bytes=live + needed, budget_bytes=memory_budget)

        terms: list[tuple[np.ndarray, tuple[int, ...]]] = []
        terms.append((tables.lc[order[i]], (i,)))
        for u in adj[i]:
            if u > i:
                terms.append((tables.tx(order[i], order[u]), (i, u)))
        if prev_table is not None:
            terms.append((prev_table, prev_axes))

        deadline = None if time_budget is None else t0 + time_budget
        try:
            table, argmin = chunked_min_argmin(
                terms, full_axes, i, ksize[i], table_shape, chunk_cells,
                deadline=deadline)
        except TimeoutError:
            raise SearchResourceError(
                f"BF DP exceeded the {time_budget:.0f}s time budget at "
                f"vertex {order[i]!r} ({i}/{n})",
                requested_bytes=live + needed,
                budget_bytes=memory_budget) from None
        cells_evaluated += table_cells * ksize[i]
        if prev_table is not None:
            live -= prev_table.nbytes
        prev_table, prev_axes = table, axes
        argmins.append(argmin)
        axes_log.append(axes)
        live += table.nbytes + argmin.nbytes
        peak = max(peak, live + needed)

    assert prev_table is not None and prev_table.shape == ()
    total = float(prev_table)

    chosen: dict[int, int] = {}
    for i in range(n - 1, -1, -1):
        idx = tuple(chosen[d] for d in axes_log[i])
        chosen[i] = int(argmins[i][idx])

    strategy = Strategy.from_indices(space, {order[i]: k for i, k in chosen.items()})
    return SearchResult(
        strategy=strategy,
        cost=total,
        elapsed=time.perf_counter() - t0,
        method="naive-bf",
        stats={
            "cells": float(cells_evaluated),
            "peak_bytes": float(peak),
            "max_dependent": float(max((len(d) for d in dep), default=0)),
            "k_max": float(space.max_size),
        },
    )


def brute_force_strategy(
    graph: CompGraph,
    space: ConfigSpace,
    tables: CostTables,
    *,
    max_cells: int = 50_000_000,
) -> SearchResult:
    """Exhaustive minimum over every valid strategy (small graphs only).

    Vectorized: the full objective is one broadcast sum over an array with
    one axis per node; refuses to run past ``max_cells``.
    """
    t0 = time.perf_counter()
    names = graph.node_names
    n = len(names)
    pos = {name: i for i, name in enumerate(names)}
    shape = tuple(space.size(name) for name in names)
    cells = int(np.prod(shape, dtype=np.int64)) if n else 1
    if cells > max_cells:
        raise SearchResourceError(
            f"brute force needs {cells} cells > limit {max_cells}",
            requested_bytes=cells * 8, budget_bytes=max_cells * 8)

    total = np.zeros(shape, dtype=np.float64)
    for name in names:
        view = [1] * n
        view[pos[name]] = shape[pos[name]]
        total = total + tables.lc[name].reshape(view)
    for (u, v), mat in tables.pair_tx.items():
        view = [1] * n
        view[pos[u]] = shape[pos[u]]
        view[pos[v]] = shape[pos[v]]
        if pos[u] < pos[v]:
            total = total + mat.reshape(view)
        else:
            total = total + mat.T.reshape(view)
    flat = int(np.argmin(total))
    best = float(total.reshape(-1)[flat])
    multi = np.unravel_index(flat, shape) if n else ()
    strategy = Strategy.from_indices(
        space, {name: int(multi[pos[name]]) for name in names})
    return SearchResult(
        strategy=strategy,
        cost=best,
        elapsed=time.perf_counter() - t0,
        method="brute-force",
        stats={"cells": float(cells)},
    )
