"""Tensor specifications: how operator iteration spaces map onto tensors.

A `TensorSpec` describes one input or output tensor of an operator as a
tuple of *axis names*.  Each axis names either a dimension of the owning
operator's iteration space or an *alias dim* the operator declares (see
`repro.ops.base.OpSpec.aliases`): an alias has its own extent but is split
by the configuration entry of the primary dim it maps to (e.g. a
convolution's input spatial extent follows the output-spatial split), or is
never split when it maps to no primary dim (e.g. the model-width axis of a
fused attention operator).

Iteration dims that do **not** appear among a tensor's axes matter too:

* for an *input* tensor, splitting such a dim replicates the tensor across
  those splits (e.g. splitting GEMM's out-channel dim replicates the input
  activations);
* for a *parameter* tensor, those splits determine the gradient all-reduce
  group size (e.g. the batch dim for a weight matrix — the data-parallelism
  synchronization cost);
* for the *output* tensor, splits of contracted (reduction) dims leave each
  device with a partial sum that must be reduced.

``scale`` lets a single spec stand for a small family of same-shaped
parameter tensors (the four LSTM gate matrices, the QKV+output projections
of attention) without enumerating them; it multiplies volumes, never
shapes, and is only allowed on tensors that never flow along graph edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from .dims import shard_extent
from .exceptions import GraphError

if TYPE_CHECKING:  # pragma: no cover
    from ..ops.base import OpSpec

__all__ = ["TensorSpec", "DTYPE_BYTES"]

#: Bytes per element assumed throughout (fp32 training, as in the paper's
#: Mesh-TensorFlow evaluation).
DTYPE_BYTES = 4


@dataclass(frozen=True, slots=True)
class TensorSpec:
    """One tensor port of an operator.

    Attributes
    ----------
    axes:
        Ordered axis names; each names an iteration dim or a declared alias.
    is_param:
        True for trainable parameters (weights, biases, embedding tables).
        Parameter tensors incur gradient all-reduce in the layer cost.
    scale:
        Volume multiplier for specs standing for several same-shaped
        tensors (default 1.0).
    sparse_grad_elements:
        For parameter tensors whose gradients are sparse (embedding
        tables: only looked-up rows receive gradients), the total element
        count touched per step.  Gradient-synchronization volumes are
        capped at the touched share of each device's shard; the update
        phase stays dense (momentum/Adam state decays every slot).
    """

    axes: tuple[str, ...]
    is_param: bool = False
    scale: float = 1.0
    sparse_grad_elements: float | None = None

    def shape(self, op: "OpSpec") -> tuple[int, ...]:
        """Concrete (unscaled) shape of this tensor under its operator."""
        return tuple(op.dim_size(a) for a in self.axes)

    def volume(self, op: "OpSpec") -> float:
        """Total element count (scaled)."""
        base = float(np.prod([op.dim_size(a) for a in self.axes], dtype=np.float64)) \
            if self.axes else 1.0
        return base * self.scale

    def nbytes(self, op: "OpSpec") -> float:
        return self.volume(op) * DTYPE_BYTES

    def splits(self, op: "OpSpec", configs: np.ndarray) -> np.ndarray:
        """Split factor per tensor axis induced by operator configurations.

        Alias axes inherit the split of their primary dim; fixed alias axes
        (no primary) are never split.  Returns ``[..., len(axes)]``.
        """
        configs = np.asarray(configs)
        cols = []
        for a in self.axes:
            primary = op.resolve_dim(a)
            if primary is None:
                cols.append(np.ones(configs.shape[:-1], dtype=configs.dtype))
            else:
                cols.append(configs[..., op.dim_index(primary)])
        if not cols:
            return np.ones(configs.shape[:-1] + (0,), dtype=configs.dtype)
        return np.stack(cols, axis=-1)

    def shard_volume(self, op: "OpSpec", configs: np.ndarray) -> np.ndarray:
        """Largest per-device shard volume (scaled) under each configuration."""
        configs = np.asarray(configs)
        if not self.axes:
            return np.full(configs.shape[:-1], self.scale, dtype=np.float64)
        shape = np.asarray(self.shape(op), dtype=np.int64)
        ext = shard_extent(shape, self.splits(op, configs))
        return np.prod(ext, axis=-1, dtype=np.float64) * self.scale

    def grad_sync_volume(self, op: "OpSpec", configs: np.ndarray) -> np.ndarray:
        """Per-device gradient volume that replication groups exchange.

        The full shard for dense gradients; capped at the touched share of
        the shard (``sparse_grad_elements · shard/total``) for sparse ones.
        """
        shard = self.shard_volume(op, configs)
        if self.sparse_grad_elements is None:
            return shard
        total = max(self.volume(op), 1.0)
        return np.minimum(shard, self.sparse_grad_elements * shard / total)

    def replication(self, op: "OpSpec", configs: np.ndarray) -> np.ndarray:
        """Number of devices holding identical shards of this tensor.

        Product of configuration entries over primary iteration dims that
        no axis of this tensor resolves to.  For a parameter tensor this is
        the gradient all-reduce group size.
        """
        configs = np.asarray(configs)
        covered = {op.resolve_dim(a) for a in self.axes} - {None}
        other = [i for i, d in enumerate(op.dims) if d.name not in covered]
        if not other:
            return np.ones(configs.shape[:-1], dtype=np.int64)
        return np.prod(configs[..., other], axis=-1, dtype=np.int64)

    def validate(self, op: "OpSpec") -> None:
        seen: set[str] = set()
        for a in self.axes:
            if a in seen:
                raise GraphError(f"tensor of {op.name!r} repeats axis {a!r}")
            seen.add(a)
            if not op.has_dim(a):
                raise GraphError(f"tensor of {op.name!r} names unknown axis {a!r}")
        if self.scale <= 0:
            raise GraphError(f"tensor of {op.name!r} has non-positive scale {self.scale}")
