"""Parallelization-configuration enumeration.

A configuration of a node ``v`` with a ``d``-dimensional iteration space is
a ``d``-tuple of positive split factors with product at most ``p`` (paper,
Section II).  We additionally cap each factor by its dimension size (a
dimension cannot be split into more parts than it has points) and respect
per-dim ``splittable`` flags.

Three enumeration modes control granularity:

* ``"pow2"`` (default): factors are powers of two.  Matches Mesh-TensorFlow
  practice, keeps per-node configuration counts in the ranges the paper
  reports (Section III-C), and device counts are powers of two anyway.
* ``"divisors"``: factors are divisors of ``p``.
* ``"all"``: any positive integers with product <= ``p`` (used only in
  ablations and tiny test spaces — exhaustive but large).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..ops.base import OpSpec
from .exceptions import ConfigError
from .graph import CompGraph

__all__ = ["enumerate_configs", "ConfigSpace", "serial_config",
           "batch_split_config", "prune_configs_by_memory"]

_MODES = ("pow2", "divisors", "all")


@lru_cache(maxsize=None)
def _candidate_factors(limit: int, p: int, mode: str) -> tuple[int, ...]:
    """Allowed split factors for one dim of size ``limit`` on ``p`` devices."""
    cap = min(limit, p)
    if mode == "pow2":
        vals, f = [], 1
        while f <= cap:
            vals.append(f)
            f *= 2
        return tuple(vals)
    if mode == "divisors":
        return tuple(f for f in range(1, cap + 1) if p % f == 0)
    if mode == "all":
        return tuple(range(1, cap + 1))
    raise ConfigError(f"unknown config mode {mode!r}; expected one of {_MODES}")


def enumerate_configs(op: OpSpec, p: int, *, mode: str = "pow2") -> np.ndarray:
    """All valid configurations of ``op`` on ``p`` devices.

    Returns an int64 array ``[K, d]`` in lexicographic order; row 0 is the
    serial configuration ``(1, ..., 1)``.
    """
    if p < 1:
        raise ConfigError(f"device count p={p} must be >= 1")
    per_dim = [
        _candidate_factors(d.size, p, mode) if d.splittable else (1,)
        for d in op.dims
    ]
    rows: list[tuple[int, ...]] = []
    cur = [1] * op.rank

    def rec(i: int, prod: int) -> None:
        if i == op.rank:
            rows.append(tuple(cur))
            return
        for f in per_dim[i]:
            np_ = prod * f
            if np_ > p:
                break  # candidates ascend, so later factors only get larger
            cur[i] = f
            rec(i + 1, np_)
        cur[i] = 1

    rec(0, 1)
    return np.array(rows, dtype=np.int64).reshape(len(rows), op.rank)


def serial_config(op: OpSpec) -> tuple[int, ...]:
    """The no-parallelism configuration."""
    return (1,) * op.rank


def batch_split_config(op: OpSpec, p: int, batch_dim: str = "b") -> tuple[int, ...]:
    """Pure data parallelism: split the batch dim ``p``-ways.

    Raises `ConfigError` if the op has no batch dim or its extent is
    below ``p`` (data parallelism needs at least one sample per device).
    """
    if not op.has_dim(batch_dim):
        raise ConfigError(f"op {op.name!r} has no {batch_dim!r} dim for data parallelism")
    if op.dim_size(batch_dim) < p:
        raise ConfigError(
            f"op {op.name!r}: batch {op.dim_size(batch_dim)} < p={p}")
    cfg = [1] * op.rank
    cfg[op.dim_index(batch_dim)] = p
    return tuple(cfg)


@dataclass
class ConfigSpace:
    """Per-node configuration tables for one (graph, p, mode) instance.

    Attributes
    ----------
    p:
        Device count.
    mode:
        Enumeration mode (see module docstring).
    tables:
        Node name -> int64 array ``[K_v, d_v]`` of valid configurations.
    """

    p: int
    mode: str
    tables: dict[str, np.ndarray]
    _index: dict[str, dict[tuple[int, ...], int]] = field(default_factory=dict, repr=False)

    @classmethod
    def build(cls, graph: CompGraph, p: int, *, mode: str = "pow2") -> "ConfigSpace":
        tables = {op.name: enumerate_configs(op, p, mode=mode) for op in graph}
        return cls(p=p, mode=mode, tables=tables)

    def size(self, name: str) -> int:
        """Number of valid configurations K_v for a node."""
        return self.tables[name].shape[0]

    @property
    def max_size(self) -> int:
        """K = max_v |C(v)| (the paper's per-layer configuration bound)."""
        return max((t.shape[0] for t in self.tables.values()), default=0)

    def configs(self, name: str) -> np.ndarray:
        return self.tables[name]

    def config(self, name: str, index: int) -> tuple[int, ...]:
        return tuple(int(x) for x in self.tables[name][index])

    def index_of(self, name: str, config) -> int:
        """Index of a configuration tuple within a node's table."""
        if name not in self._index:
            tab = self.tables[name]
            self._index[name] = {tuple(int(x) for x in row): i for i, row in enumerate(tab)}
        try:
            return self._index[name][tuple(int(x) for x in config)]
        except KeyError:
            raise ConfigError(
                f"configuration {tuple(config)} not valid for node {name!r} "
                f"(p={self.p}, mode={self.mode!r})") from None

    def total_cells(self) -> int:
        """Sum of K_v over nodes (a size proxy used in reports)."""
        return int(sum(t.shape[0] for t in self.tables.values()))

    def restrict(self, rows: "dict[str, np.ndarray]") -> "ConfigSpace":
        """Sub-space keeping, per node in ``rows``, only the listed
        configuration rows (original indices); nodes absent from ``rows``
        are dropped entirely.

        Used by the search-space reduction engine: the row arrays double
        as the reduced-index -> original-index back-maps.
        """
        missing = set(rows) - set(self.tables)
        if missing:
            raise ConfigError(
                f"restrict names unknown nodes: {sorted(missing)[:5]}")
        tables = {
            name: self.tables[name][np.asarray(idx, dtype=np.int64)]
            for name, idx in rows.items()
        }
        return ConfigSpace(p=self.p, mode=self.mode, tables=tables)


def prune_configs_by_memory(graph: CompGraph, space: ConfigSpace,
                            capacity_bytes: float) -> ConfigSpace:
    """Drop configurations whose worst-device footprint exceeds a device's
    memory capacity.

    This is the hard form of the paper's Section II memory argument: pure
    data parallelism replicates every parameter and simply cannot train
    large models — with a capacity limit the batch-split-only
    configurations of the big layers disappear from the search space and
    the DP is forced into parameter parallelism for them.

    Raises `ConfigError` if some node has *no* feasible configuration.
    """
    from ..analysis.memory import MemoryModel

    mm = MemoryModel()
    tables: dict[str, np.ndarray] = {}
    for name, tab in space.tables.items():
        keep = mm.node_bytes(graph.node(name), tab) <= capacity_bytes
        kept = tab[keep]
        if kept.shape[0] == 0:
            raise ConfigError(
                f"node {name!r}: no configuration fits in "
                f"{capacity_bytes / 2**30:.1f} GiB on p={space.p} devices")
        tables[name] = kept
    return ConfigSpace(p=space.p, mode=space.mode, tables=tables)
