"""Exception hierarchy for the PaSE reproduction."""

from __future__ import annotations


class PaseError(Exception):
    """Base class for all library-specific errors."""


class GraphError(PaseError):
    """Raised for malformed computation graphs (dangling edges, shape
    mismatches between producer and consumer tensors, duplicate names)."""


class ConfigError(PaseError):
    """Raised for invalid parallelization configurations (wrong arity,
    non-positive split factors, product exceeding the device count)."""


class StrategyError(PaseError):
    """Raised for invalid parallelization strategies (missing nodes,
    configurations inconsistent with the graph)."""


class SearchResourceError(PaseError):
    """Raised when a strategy search exceeds its memory budget.

    This is the deterministic stand-in for the out-of-memory failures the
    paper reports for the breadth-first baseline in Table I: instead of
    letting the process die, searches account the DP table cells they are
    about to allocate against a byte budget and raise this error.
    """

    def __init__(self, message: str, *, requested_bytes: int | None = None,
                 budget_bytes: int | None = None) -> None:
        super().__init__(message)
        self.requested_bytes = requested_bytes
        self.budget_bytes = budget_bytes

    def __str__(self) -> str:
        base = super().__str__()
        if self.requested_bytes is not None or self.budget_bytes is not None:
            req = "?" if self.requested_bytes is None \
                else f"{self.requested_bytes:,}"
            bud = "?" if self.budget_bytes is None \
                else f"{self.budget_bytes:,}"
            return f"{base} [requested_bytes={req}, budget_bytes={bud}]"
        return base


class DeadlineExceededError(PaseError):
    """Raised when a run blows through its wall-clock deadline.

    Searches under a `repro.runtime.RunBudget` poll the budget at
    cooperative checkpoints (between table-build tasks, reduction rounds,
    and DP vertices); the first poll past the deadline raises this error
    so the run stops at a phase boundary instead of being killed.
    """

    def __init__(self, message: str, *, deadline_seconds: float | None = None,
                 elapsed_seconds: float | None = None,
                 where: str | None = None) -> None:
        super().__init__(message)
        self.deadline_seconds = deadline_seconds
        self.elapsed_seconds = elapsed_seconds
        self.where = where


class RunInterrupted(PaseError):
    """Raised at a cooperative checkpoint after SIGINT/SIGTERM.

    The signal handler only sets a flag (`repro.runtime.Cancellation`);
    the working code observes it at the next checkpoint, flushes the
    search journal, and unwinds with this exception so the CLI can exit
    with its documented interrupted-with-journal code.
    """

    def __init__(self, message: str, *, signal_name: str | None = None,
                 where: str | None = None) -> None:
        super().__init__(message)
        self.signal_name = signal_name
        self.where = where


class JournalError(PaseError):
    """Raised for unusable search journals (missing or corrupt journal
    file on ``--resume``, or a journal written for a different problem
    fingerprint than the one being resumed)."""


class SimulationError(PaseError):
    """Raised for inconsistent cluster-simulation inputs (unplaced shards,
    unknown devices, dependency cycles in the task graph)."""


class FaultPlanError(SimulationError):
    """Raised for invalid fault-injection plans (devices outside the
    cluster, non-finite downtimes, slowdown factors below 1, malformed
    plan files)."""
