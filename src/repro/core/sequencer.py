"""Vertex orderings and dependent-set machinery (paper, Section III).

The efficiency of the dynamic program hinges on the *ordering* of the
vertices: DP tables are keyed by the dependent set ``D(i)`` of each vertex,
and table sizes are exponential in ``|D(i)|``.  This module provides

* :func:`generate_seq` — the paper's GENERATESEQ (Fig. 3): greedily pick
  the unsequenced vertex with the smallest maintained dependent set, so
  high-degree nodes are sequenced only after their sparse neighborhoods;
* :func:`breadth_first_seq` — the naive baseline ordering (Section III-A);
* :func:`random_seq` — for ablations;
* :class:`SequencedGraph` — a graph indexed by sequence position with
  dependent sets ``D(i)``, connected sets ``X(i)`` and connected subsets
  ``S(i)`` (Section III-B definitions), consumed by the DP;
* definitional reference implementations of ``D/X/S`` used by the
  Theorem 2 property tests.

The incremental dependent-set update (Fig. 3, line 8) is valid for *any*
ordering — the correctness proof (Appendix B) never uses the greedy pick —
so `SequencedGraph` uses it to annotate arbitrary orderings.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .exceptions import GraphError
from .graph import CompGraph

__all__ = [
    "generate_seq",
    "breadth_first_seq",
    "random_seq",
    "SequencedGraph",
    "dependent_set_reference",
    "connected_set_reference",
    "connected_subsets_reference",
]


# ---------------------------------------------------------------------------
# Orderings
# ---------------------------------------------------------------------------

def generate_seq(graph: CompGraph) -> tuple[str, ...]:
    """GENERATESEQ (paper Fig. 3): order vertices to keep ``|D(i)|`` small.

    Maintains, for every unsequenced vertex ``v``, its prospective
    dependent set ``v.d``; each iteration sequences the vertex with the
    smallest ``|v.d|`` (ties broken by graph insertion order, which makes
    the result deterministic) and merges its set into its dependents'.

    The minimum is tracked with a size-keyed heap under lazy invalidation:
    every dependent-set change pushes a fresh ``(size, insertion index,
    name)`` entry, and popped entries whose size no longer matches the live
    set are discarded.  Sizes both grow (merges) and shrink (each set drops
    the vertex just sequenced), so staleness is detected by comparing
    against the live size rather than assuming monotonicity.  The
    ``(size, insertion index)`` key reproduces the linear scan's
    first-minimal-in-insertion-order tie-break exactly.
    """
    names = graph.node_names
    dep: dict[str, set[str]] = {n: set(graph.neighbors(n)) for n in names}
    idx = {n: i for i, n in enumerate(names)}
    heap = [(len(dep[n]), i, n) for i, n in enumerate(names)]
    heapq.heapify(heap)
    sequenced: set[str] = set()
    order: list[str] = []
    while len(order) < len(names):
        size, _, pick = heapq.heappop(heap)
        if pick in sequenced or size != len(dep[pick]):
            continue
        sequenced.add(pick)
        order.append(pick)
        pick_set = dep[pick]
        for v in pick_set:
            merged = dep[v] | pick_set
            merged.discard(pick)
            merged.discard(v)
            dep[v] = merged
            heapq.heappush(heap, (len(merged), idx[v], v))
    return tuple(order)


def breadth_first_seq(graph: CompGraph, root: str | None = None) -> tuple[str, ...]:
    """Breadth-first ordering over the undirected graph (Section III-A).

    Starts from ``root`` (default: the first topological source) and, for
    forests, restarts from the next unvisited vertex.
    """
    names = graph.node_names
    if not names:
        return ()
    if root is None:
        topo = graph.topological_order()
        root = topo[0]
    elif root not in graph:
        raise GraphError(f"unknown BFS root {root!r}")
    order: list[str] = []
    visited: set[str] = set()
    pending = [root] + [n for n in names if n != root]
    for start in pending:
        if start in visited:
            continue
        queue = deque([start])
        visited.add(start)
        while queue:
            n = queue.popleft()
            order.append(n)
            for m in graph.neighbors(n):
                if m not in visited:
                    visited.add(m)
                    queue.append(m)
    return tuple(order)


def random_seq(graph: CompGraph, rng: np.random.Generator) -> tuple[str, ...]:
    """A uniformly random vertex ordering (ablation baseline)."""
    names = list(graph.node_names)
    rng.shuffle(names)
    return tuple(names)


# ---------------------------------------------------------------------------
# Sequenced graph: positions, D(i), X(i), S(i)
# ---------------------------------------------------------------------------

@dataclass
class SequencedGraph:
    """A computation graph annotated with one vertex ordering.

    All sets are represented by 0-based sequence positions; ``order[i]`` is
    the paper's ``v^{(i+1)}``.

    Attributes
    ----------
    order:
        Node names in sequence order.
    adj:
        ``adj[i]`` — positions of the undirected neighbors of vertex ``i``.
    dep:
        ``dep[i]`` — the dependent set ``D(i)`` as a sorted tuple of
        positions (all ``> i``), maintained incrementally per Fig. 3.
    """

    graph: CompGraph
    order: tuple[str, ...]
    pos: dict[str, int]
    adj: tuple[tuple[int, ...], ...]
    dep: tuple[tuple[int, ...], ...]

    @classmethod
    def build(cls, graph: CompGraph, order: Sequence[str]) -> "SequencedGraph":
        order = tuple(order)
        if sorted(order) != sorted(graph.node_names):
            raise GraphError("ordering is not a permutation of the graph's nodes")
        pos = {n: i for i, n in enumerate(order)}
        adj = tuple(
            tuple(sorted(pos[m] for m in graph.neighbors(n))) for n in order
        )
        # Incremental dependent-set maintenance (Fig. 3 lines 1, 7-9).
        dsets: list[set[int]] = [set(a) for a in adj]
        dep: list[tuple[int, ...]] = [()] * len(order)
        for i in range(len(order)):
            cur = dsets[i]
            dep[i] = tuple(sorted(j for j in cur if j > i))
            for v in cur:
                if v <= i:
                    continue
                merged = dsets[v] | cur
                merged.discard(i)
                merged.discard(v)
                dsets[v] = merged
        return cls(graph=graph, order=order, pos=pos, adj=adj, dep=tuple(dep))

    def __len__(self) -> int:
        return len(self.order)

    @property
    def max_dependent_size(self) -> int:
        """M = max_i |D(i)| (drives the DP's exponential factor)."""
        return max((len(d) for d in self.dep), default=0)

    def name(self, i: int) -> str:
        return self.order[i]

    def later_neighbors(self, i: int) -> tuple[int, ...]:
        """N(v_i) ∩ V_>i — the neighbors whose transfer cost H(i, ·) owns."""
        return tuple(j for j in self.adj[i] if j > i)

    def connected_set(self, i: int) -> list[int]:
        """X(i): vertices in V_<=i reachable from i through V_<=i (incl. i)."""
        seen = {i}
        stack = [i]
        while stack:
            u = stack.pop()
            for w in self.adj[u]:
                if w <= i and w not in seen:
                    seen.add(w)
                    stack.append(w)
        return sorted(seen)

    def connected_subsets(self, i: int) -> list[list[int]]:
        """S(i): connected components of the subgraph induced by X(i) - {i}.

        Each component is returned as a sorted position list; its maximum
        element is the ``j`` whose DP table the recurrence consults.
        """
        members = [u for u in self.connected_set(i) if u != i]
        member_set = set(members)
        comps: list[list[int]] = []
        seen: set[int] = set()
        for start in members:
            if start in seen:
                continue
            comp = {start}
            stack = [start]
            while stack:
                u = stack.pop()
                for w in self.adj[u]:
                    if w in member_set and w not in comp:
                        comp.add(w)
                        stack.append(w)
            seen |= comp
            comps.append(sorted(comp))
        return comps

    def roots(self) -> list[int]:
        """Max-position vertex of each weakly connected component.

        For a weakly connected graph this is ``[len(self) - 1]``; the DP
        sums the root tables so forests also work.
        """
        comp_of: dict[int, int] = {}
        roots: list[int] = []
        for i in range(len(self.order) - 1, -1, -1):
            if i in comp_of:
                continue
            stack = [i]
            comp_of[i] = i
            while stack:
                u = stack.pop()
                for w in self.adj[u]:
                    if w not in comp_of:
                        comp_of[w] = i
                        stack.append(w)
            roots.append(i)
        return sorted(roots)


# ---------------------------------------------------------------------------
# Definitional reference implementations (used by property tests)
# ---------------------------------------------------------------------------

def connected_set_reference(graph: CompGraph, order: Sequence[str], i: int) -> set[str]:
    """X(i) straight from the Section III-B definition."""
    order = tuple(order)
    allowed = set(order[: i + 1])
    start = order[i]
    seen = {start}
    stack = [start]
    while stack:
        u = stack.pop()
        for w in graph.neighbors(u):
            if w in allowed and w not in seen:
                seen.add(w)
                stack.append(w)
    return seen


def dependent_set_reference(graph: CompGraph, order: Sequence[str], i: int) -> set[str]:
    """D(i) = N(X(i)) ∩ V_>i straight from the definition."""
    order = tuple(order)
    x = connected_set_reference(graph, order, i)
    later = set(order[i + 1:])
    nbrs: set[str] = set()
    for u in x:
        nbrs.update(graph.neighbors(u))
    return nbrs & later


def connected_subsets_reference(graph: CompGraph, order: Sequence[str],
                                i: int) -> list[set[str]]:
    """S(i): components of the induced subgraph on X(i) - {v_i}."""
    order = tuple(order)
    members = connected_set_reference(graph, order, i) - {order[i]}
    comps: list[set[str]] = []
    seen: set[str] = set()
    for start in sorted(members, key=order.index):
        if start in seen:
            continue
        comp = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for w in graph.neighbors(u):
                if w in members and w not in comp:
                    comp.add(w)
                    stack.append(w)
        seen |= comp
        comps.append(comp)
    return comps


OrderingFn = Callable[[CompGraph], tuple[str, ...]]
