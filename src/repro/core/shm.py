"""The shared-memory data plane: zero-copy parallel results.

Two independent mechanisms live here, both serving the same goal —
stop shipping multi-megabyte cost matrices through pickle pipes:

`ShmArena`
    A single sized ``multiprocessing.shared_memory`` segment with a
    per-array **offset manifest**, planned by the parent *before* any
    worker runs (every table array's shape is known from the
    configuration space alone).  Pool workers attach, write their
    result matrix in place, and return only the array key; the parent
    *adopts* each array — one ``memcpy`` into process-private memory —
    and then unlinks the segment.  Adoption copies deliberately: the
    returned `CostTables` must outlive the arena, survive retries, and
    never dangle a mapping into an unlinked segment.

    The arena is crash-robust by construction: creation failures
    (``/dev/shm`` exhausted) surface as ``OSError`` and flow into the
    existing retry-then-serial degradation; the owner's
    ``destroy()`` is idempotent and runs in a ``finally``, so the
    segment is unlinked on success, on worker death mid-write, and on
    the serial-fallback path alike.

`open_npz_mmap`
    Read-only zero-copy views over the arrays of an **uncompressed**
    ``.npz`` (the format `repro.core.tablecache` writes).  ``np.load``
    ignores ``mmap_mode`` for zip archives, so this walks the zip's
    local headers itself: each stored member's payload is a contiguous
    ``.npy`` byte range inside the file, mapped once with
    ``mmap.ACCESS_READ`` and wrapped by ``np.frombuffer``.  The views
    are *read-only* (a write raises ``ValueError``) and share pages
    across every process mapping the same cache entry — a fleet of
    workers warm-hitting one table-cache file no longer copies the
    payload per task.  Deleting the file while views are alive is safe
    on POSIX: the inode persists until the last mapping dies.
"""

from __future__ import annotations

import io
import mmap
import struct
import zipfile
from multiprocessing import shared_memory
from typing import Any, Iterable, Mapping

import numpy as np

__all__ = ["ShmArena", "ArenaManifest", "open_npz_mmap", "plan_nbytes"]

#: Byte alignment of every array inside an arena.  64 keeps each array
#: cache-line aligned, so worker writes to neighbouring arrays never
#: false-share a line.
ARENA_ALIGN = 64

#: The fixed portion of a zip *local* file header (signature through
#: the extra-field length), per APPNOTE 4.3.7.
_ZIP_LOCAL_HEADER = struct.Struct("<IHHHHHIIIHH")
_ZIP_LOCAL_MAGIC = 0x04034B50

#: key -> (byte offset, shape, dtype str); picklable, shipped once per
#: pool worker through the initializer.
ArenaManifest = dict


def _align(n: int) -> int:
    return (n + ARENA_ALIGN - 1) // ARENA_ALIGN * ARENA_ALIGN


def plan_nbytes(plan: Mapping[Any, tuple[tuple[int, ...], Any]]) -> int:
    """Total segment bytes an arena for ``plan`` would allocate."""
    total = 0
    for shape, dtype in plan.values():
        nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        total = _align(total + nbytes)
    return max(total, 1)


class ShmArena:
    """One shared-memory segment holding many planned arrays.

    Lifecycle::

        arena = ShmArena.create({key: (shape, dtype), ...})   # parent
        worker = ShmArena.attach(arena.name, arena.manifest)  # child
        worker.write(key, computed_array)                     # in place
        out = arena.adopt(key)                                # memcpy out
        arena.destroy()                                       # unlink

    ``create`` raises ``OSError`` when the segment cannot be allocated
    (shm exhausted); callers route that into their degradation path.
    """

    def __init__(self, shm: shared_memory.SharedMemory,
                 manifest: ArenaManifest, *, owner: bool) -> None:
        self._shm: shared_memory.SharedMemory | None = shm
        self.manifest = manifest
        self._owner = owner

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, plan: Mapping[Any, tuple[tuple[int, ...], Any]]
               ) -> "ShmArena":
        """Allocate a segment sized for ``plan`` (key -> (shape, dtype))."""
        manifest: ArenaManifest = {}
        offset = 0
        for key, (shape, dtype) in plan.items():
            dt = np.dtype(dtype)
            nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
            manifest[key] = (offset, tuple(int(s) for s in shape), dt.str)
            offset = _align(offset + nbytes)
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        return cls(shm, manifest, owner=True)

    @classmethod
    def attach(cls, name: str, manifest: ArenaManifest) -> "ShmArena":
        """Map an existing arena by name (worker side)."""
        return cls(shared_memory.SharedMemory(name=name), manifest,
                   owner=False)

    @property
    def name(self) -> str:
        assert self._shm is not None, "arena already closed"
        return self._shm.name

    @property
    def nbytes(self) -> int:
        assert self._shm is not None, "arena already closed"
        return self._shm.size

    def keys(self) -> Iterable[Any]:
        return self.manifest.keys()

    # -- array access --------------------------------------------------------

    def _view(self, key: Any) -> np.ndarray:
        assert self._shm is not None, "arena already closed"
        offset, shape, dtype = self.manifest[key]
        return np.ndarray(shape, dtype=np.dtype(dtype),
                          buffer=self._shm.buf, offset=offset)

    def write(self, key: Any, array: np.ndarray) -> None:
        """Copy ``array`` into the arena slot for ``key`` (worker side).

        The slot's shape/dtype were planned by the parent; a mismatch is
        a programming error and raises rather than corrupting a
        neighbouring array.
        """
        view = self._view(key)
        if view.shape != array.shape:
            raise ValueError(
                f"arena slot {key!r} planned as {view.shape}, "
                f"worker produced {array.shape}")
        view[...] = array
        del view  # release the buffer export so close() can unmap

    def adopt(self, key: Any) -> np.ndarray:
        """Copy the array for ``key`` out of the arena (parent side).

        One ``memcpy`` into process-private memory, so the result is an
        ordinary owned array safe to keep after ``destroy()``.
        """
        view = self._view(key)
        out = view.copy()
        del view
        return out

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        """Unmap this process's view (idempotent, export-tolerant)."""
        if self._shm is None:
            return
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a live view still exports
            return  # process exit reclaims the mapping
        self._shm = None

    def destroy(self) -> None:
        """Unlink the segment (owner only) and unmap.  Idempotent; safe
        to call from a ``finally`` on every success/failure/retry path."""
        if self._shm is None:
            return
        name = self._shm.name
        self.close()
        if self._owner:
            try:
                # close() may have early-returned on BufferError; unlink
                # through a fresh handle so the name always goes away.
                seg = shared_memory.SharedMemory(name=name)
                seg.close()
                seg.unlink()
            except FileNotFoundError:
                pass
        self._shm = None

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            self.destroy() if self._owner else self.close()
        except Exception:
            pass


# -- mmap'd .npz reads -------------------------------------------------------


def _member_data_span(zf: zipfile.ZipFile, raw, info: zipfile.ZipInfo
                      ) -> tuple[int, int]:
    """(offset, size) of a stored member's payload inside the file.

    The *local* header's name/extra lengths can differ from the central
    directory's, so the span is computed from the local header itself.
    """
    if info.compress_type != zipfile.ZIP_STORED:
        raise ValueError(f"{info.filename} is compressed; cannot mmap")
    hdr = bytes(raw[info.header_offset:
                    info.header_offset + _ZIP_LOCAL_HEADER.size])
    if len(hdr) < _ZIP_LOCAL_HEADER.size:
        raise ValueError("truncated zip local header")
    fields = _ZIP_LOCAL_HEADER.unpack(hdr)
    if fields[0] != _ZIP_LOCAL_MAGIC:
        raise ValueError("bad zip local header signature")
    name_len, extra_len = fields[9], fields[10]
    start = info.header_offset + _ZIP_LOCAL_HEADER.size + name_len + extra_len
    return start, info.file_size


def _npy_view(raw: memoryview, start: int, size: int) -> np.ndarray:
    """A read-only ndarray over one ``.npy`` payload inside ``raw``."""
    head = bytes(raw[start:start + min(size, 4096)])
    bio = io.BytesIO(head)
    version = np.lib.format.read_magic(bio)
    if version == (1, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_1_0(bio)
    elif version == (2, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_2_0(bio)
    else:
        raise ValueError(f"unsupported .npy version {version}")
    if dtype.hasobject:
        raise ValueError("object arrays cannot be mapped")
    data_start = start + bio.tell()
    count = int(np.prod(shape, dtype=np.int64))
    arr = np.frombuffer(raw, dtype=dtype, count=count, offset=data_start)
    return arr.reshape(shape, order="F" if fortran else "C")


def open_npz_mmap(path) -> dict[str, np.ndarray]:
    """Read-only zero-copy array views over an uncompressed ``.npz``.

    Returns member name (without the ``.npy`` suffix) -> read-only
    ndarray backed by one shared ``mmap`` of the file; the mapping stays
    alive as long as any view references it.  Raises ``ValueError`` /
    ``OSError`` / ``zipfile.BadZipFile`` when the archive is compressed,
    torn, or otherwise unmappable — callers fall back to an eager load.
    """
    with open(path, "rb") as fh:
        mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
    raw = memoryview(mapped)
    views: dict[str, np.ndarray] = {}
    with open(path, "rb") as fh, zipfile.ZipFile(fh) as zf:
        for info in zf.infolist():
            name = info.filename
            if name.endswith(".npy"):
                name = name[:-4]
            start, size = _member_data_span(zf, raw, info)
            views[name] = _npy_view(raw, start, size)
    return views
