"""The analytic cost model of Equation (1).

``F(G, φ) = Σ_v t_l(v, φ, r)  +  Σ_(u,v)∈E  r · t_x(u, v, φ)``

*Layer cost* ``t_l`` (FLOP units, per worst device):

* compute: total training FLOPs of the layer divided by the number of
  devices the configuration uses;
* partial-sum reduction: splitting contracted dims ``m``-ways leaves each
  device with a partial output that is combined by an all-reduce over the
  ``m``-group (and the matching gradient broadcast on the backward pass);
* parameter-gradient all-reduce: dims *not* appearing in a parameter
  tensor's axes replicate that parameter; its gradients are all-reduced
  across the replication group every step (the classic data-parallelism
  synchronization cost);
* operator-specific extra communication (e.g. convolution halo exchange).

*Transfer cost* ``t_x`` (bytes, per worst device pair): the volume the
consumer needs minus the best-case aligned overlap with what the producer
holds, in both directions (activations forward, gradients backward), which
makes it edge-direction symmetric as required by the paper (footnote 2).

All per-node and per-edge costs are precomputed **vectorized over entire
configuration tables** into `CostTables`; the dynamic program, brute force,
MCMC comparator, and reports all rank strategies with these shared arrays.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .._compat import UNSET, reject_ctx_conflict, warn_deprecated_kwargs
from ..obs.profile import metrics_of, tracer_of
from ..ops.base import OpSpec
from .configs import ConfigSpace
from .dims import shard_extent
from .exceptions import StrategyError
from .graph import CompGraph, Edge
from .machine import MachineSpec
from .tensors import DTYPE_BYTES, TensorSpec

__all__ = ["CostModel", "CostTables", "allreduce_bytes",
           "PARALLEL_THRESHOLD_CELLS", "PROCESS_MIN_RESULT_BYTES",
           "BACKEND_CODES"]

#: Minimum total table cells (Σ_v K_v + Σ_e K_u·K_v) before ``jobs=``
#: auto-selection considers any parallel backend; below it task-dispatch
#: overhead dominates and construction stays serial.
PARALLEL_THRESHOLD_CELLS = 200_000

#: Minimum *result payload* (``work_cells * 8`` bytes of float64) before
#: auto-selection picks the process backend over threads.  Below it the
#: per-worker fork cost is larger than any GIL contention the thread
#: backend suffers (the matrix kernels are vectorized numpy, which
#: releases the GIL for the heavy work); above it process-private
#: interpreters win and the shared-memory arena makes result shipping a
#: plain memcpy.  This is the result-bytes half of the decision the old
#: cells-only ``PARALLEL_THRESHOLD_CELLS`` test miscalibrated.
PROCESS_MIN_RESULT_BYTES = 64 * 1024 * 1024

#: Backend names -> the numeric code recorded in ``build_stats``
#: (every stats value must be a float; the string name lives on
#: ``CostTables.backend``).
BACKEND_CODES = {"serial": 0.0, "threads": 1.0, "processes": 2.0}

#: Extra parallel attempts after a pool failure before the serial
#: fallback, and the backoff slept before each retry.
PARALLEL_BUILD_RETRIES = 1
PARALLEL_RETRY_BACKOFF_SECONDS = 0.25

#: Longest uninterrupted slice of a retry-backoff sleep; the run's
#: checkpoint (deadline / cancellation) is polled between slices.
BACKOFF_POLL_SECONDS = 0.05

_log = logging.getLogger(__name__)


def _interruptible_sleep(seconds: float,
                         checkpoint: Callable[..., None] | None) -> None:
    """Sleep in short slices, polling the run checkpoint between them.

    A retry backoff must not outlive the run: a SIGINT or a blown
    deadline during the sleep surfaces at the next poll (within
    `BACKOFF_POLL_SECONDS`) instead of after the full backoff.
    """
    if checkpoint is None:
        time.sleep(seconds)
        return
    deadline = time.perf_counter() + seconds
    while True:
        checkpoint(phase="tables")
        remaining = deadline - time.perf_counter()
        if remaining <= 0:
            return
        time.sleep(min(BACKOFF_POLL_SECONDS, remaining))

# Per-worker state installed by the pool initializer (inherited cheaply on
# fork, re-pickled once per worker on spawn) so tasks only ship indices.
# When a shared-memory arena is active the worker also holds its mapping
# and ships back *nothing* — the matrix is written in place.
_WORKER: dict[str, object] = {}


def _init_worker(model: "CostModel", graph: CompGraph, space: ConfigSpace,
                 arena_name: str | None = None,
                 arena_manifest: dict | None = None) -> None:
    _WORKER["model"] = model
    _WORKER["graph"] = graph
    _WORKER["space"] = space
    _WORKER.pop("arena", None)
    if arena_name is not None:
        from .shm import ShmArena

        _WORKER["arena"] = ShmArena.attach(arena_name, arena_manifest)


def _node_task(name: str) -> tuple[str, np.ndarray | None]:
    model: CostModel = _WORKER["model"]          # type: ignore[assignment]
    graph: CompGraph = _WORKER["graph"]          # type: ignore[assignment]
    space: ConfigSpace = _WORKER["space"]        # type: ignore[assignment]
    out = model.layer_cost(graph.node(name), space.configs(name))
    arena = _WORKER.get("arena")
    if arena is not None:
        arena.write(("lc", name), out)           # type: ignore[attr-defined]
        return name, None
    return name, out


def _edge_task(index: int) -> tuple[int, np.ndarray | None]:
    model: CostModel = _WORKER["model"]          # type: ignore[assignment]
    graph: CompGraph = _WORKER["graph"]          # type: ignore[assignment]
    space: ConfigSpace = _WORKER["space"]        # type: ignore[assignment]
    e = graph.edges[index]
    out = model.edge_bytes_matrix(
        graph, e, space.configs(e.src), space.configs(e.dst))
    arena = _WORKER.get("arena")
    if arena is not None:
        arena.write(("tx", index), out)          # type: ignore[attr-defined]
        return index, None
    return index, out


def _mem_task(name: str) -> tuple[str, np.ndarray | None]:
    graph: CompGraph = _WORKER["graph"]          # type: ignore[assignment]
    space: ConfigSpace = _WORKER["space"]        # type: ignore[assignment]
    out = _node_memory_table(graph.node(name), space.configs(name))
    arena = _WORKER.get("arena")
    if arena is not None:
        arena.write(("mem", name), out)          # type: ignore[attr-defined]
        return name, None
    return name, out


def _node_memory_table(op, configs: np.ndarray) -> np.ndarray:
    """One node's per-config worst-device memory bytes ``[K]``.

    The frontier DP's second objective axis (`repro.analysis.memory`),
    built through the same jobs/cache/shm data plane as the cost tables.
    """
    from ..analysis.memory import MemoryModel

    return np.ascontiguousarray(
        MemoryModel().node_bytes(op, configs), dtype=np.float64)


def _parse_jobs(jobs: int | str | None) -> tuple[str, int]:
    """Normalize every ``jobs=`` spelling to ``(mode, requested_workers)``.

    Accepted spellings:

    * ``None`` — serial (the default);
    * ``int n`` — auto-select a backend with at most ``n`` workers
      (``0`` = all cores; negative is an error);
    * ``"serial"`` — force the single-process reference path;
    * ``"auto"`` / ``"auto:N"`` — explicit auto-selection;
    * ``"threads"`` / ``"threads:N"`` — force the thread backend;
    * ``"processes"`` / ``"processes:N"`` — force the shared-memory
      process backend (used by tests/benchmarks to exercise the pool
      even where auto-selection would stay serial).

    An omitted or zero count means "all cores".
    """
    if jobs is None:
        return "serial", 1
    if isinstance(jobs, int) and not isinstance(jobs, bool):
        if jobs < 0:
            raise ValueError(f"jobs={jobs} must be >= 0 (0 = all cores)")
        return "auto", (jobs or (os.cpu_count() or 1))
    if isinstance(jobs, str):
        spec = jobs.strip().lower()
        mode, _, count = spec.partition(":")
        if mode not in ("serial", "auto", "threads", "processes"):
            raise ValueError(
                f"jobs={jobs!r}: expected an int, 'serial', or "
                "'auto'/'threads'/'processes' with an optional ':N' count")
        if mode == "serial":
            if count:
                raise ValueError(f"jobs={jobs!r}: 'serial' takes no count")
            return "serial", 1
        if count:
            try:
                n = int(count)
            except ValueError:
                raise ValueError(
                    f"jobs={jobs!r}: worker count must be an integer") \
                    from None
            if n < 0:
                raise ValueError(f"jobs={jobs!r}: worker count must be >= 0")
        else:
            n = 0
        return mode, (n or (os.cpu_count() or 1))
    raise ValueError(f"jobs={jobs!r}: expected None, an int, or a "
                     "'serial'/'auto'/'threads'/'processes[:N]' string")


def allreduce_bytes(volume_bytes, group_size):
    """Per-device bytes moved by a ring all-reduce of ``volume_bytes``.

    ``2 · v · (m - 1) / m`` (reduce-scatter + all-gather).  Vectorized;
    returns zeros where the group size is 1.
    """
    v = np.asarray(volume_bytes, dtype=np.float64)
    m = np.asarray(group_size, dtype=np.float64)
    return np.where(m > 1, 2.0 * v * (m - 1.0) / np.maximum(m, 1.0), 0.0)


class CostModel:
    """Evaluates ``t_l`` and ``t_x`` for a given machine.

    Parameters
    ----------
    machine:
        Supplies the FLOP-to-byte ratio ``r``.
    include_grad_sync / include_reduction / include_extra:
        Ablation switches disabling individual internal-communication
        terms of ``t_l`` (used by the ablation benchmarks to show which
        term drives each strategy decision).
    """

    #: FLOPs charged per parameter in the update phase (momentum SGD:
    #: read gradient + momentum, two multiply-adds, write back).
    UPDATE_FLOPS_PER_PARAM = 4.0

    def __init__(self, machine: MachineSpec, *, include_grad_sync: bool = True,
                 include_reduction: bool = True, include_extra: bool = True) -> None:
        self.machine = machine
        self.r = machine.flop_byte_ratio
        self.include_grad_sync = include_grad_sync
        self.include_reduction = include_reduction
        self.include_extra = include_extra

    # -- layer cost t_l ------------------------------------------------------

    def layer_comm_bytes(self, op: OpSpec, configs: np.ndarray) -> np.ndarray:
        """Internal communication bytes per device, vectorized over [K, d]."""
        configs = np.asarray(configs, dtype=np.int64)
        total = np.zeros(configs.shape[:-1], dtype=np.float64)

        # Partial-sum reduction over contracted dims (forward), plus the
        # matching gradient broadcast on the backward pass -> 2x.
        if self.include_reduction and op.reduction_dims and op.outputs:
            red_idx = [op.dim_index(d) for d in op.reduction_dims]
            m = np.prod(configs[..., red_idx], axis=-1, dtype=np.int64)
            out_shard = op.primary_output.shard_volume(op, configs) * DTYPE_BYTES
            total += 2.0 * allreduce_bytes(out_shard, m)

        # Gradient all-reduce across parameter replication groups.
        if self.include_grad_sync:
            for spec in op.inputs.values():
                if not spec.is_param:
                    continue
                rho = spec.replication(op, configs)
                g_shard = spec.grad_sync_volume(op, configs) * DTYPE_BYTES
                total += allreduce_bytes(g_shard, rho)

        if self.include_extra:
            total += op.extra_comm_bytes(configs)
        return total

    def update_flops(self, op: OpSpec, configs: np.ndarray) -> np.ndarray:
        """Per-device update-phase FLOPs (the paper's third training phase).

        Proportional to the largest parameter shard a device holds —
        unsplit giant tables (embeddings) pay for their full size every
        step, which is part of why PaSE shards them (Table II).
        """
        configs = np.asarray(configs, dtype=np.int64)
        total = np.zeros(configs.shape[:-1], dtype=np.float64)
        for spec in op.inputs.values():
            if spec.is_param:
                total += spec.shard_volume(op, configs)
        return total * self.UPDATE_FLOPS_PER_PARAM

    def layer_cost(self, op: OpSpec, configs: np.ndarray) -> np.ndarray:
        """t_l in FLOP units, vectorized over configurations [K, d] -> [K]."""
        configs = np.asarray(configs, dtype=np.int64)
        parts = np.prod(configs, axis=-1, dtype=np.int64)
        compute = op.flops / parts + self.update_flops(op, configs)
        return compute + self.r * self.layer_comm_bytes(op, configs)

    # -- transfer cost t_x ----------------------------------------------------

    @staticmethod
    def _overlap_volume(shape: np.ndarray, splits_u: np.ndarray,
                        splits_v: np.ndarray) -> np.ndarray:
        """Best-case aligned overlap of producer/consumer block shards.

        Along each tensor axis the overlap of a 1/a block with a 1/b block
        is at most ``ceil(extent / max(a, b))`` elements; a greedy
        locality-maximizing device assignment (Section II) achieves the
        product bound for the best-aligned device.
        """
        su = splits_u[:, None, :]
        sv = splits_v[None, :, :]
        joint = np.maximum(su, sv)
        return np.prod(shard_extent(shape, joint), axis=-1, dtype=np.int64)

    def transfer_bytes_matrix(self, src: OpSpec, out_spec: TensorSpec,
                              dst: OpSpec, in_spec: TensorSpec,
                              configs_u: np.ndarray,
                              configs_v: np.ndarray) -> np.ndarray:
        """t_x in bytes over the full configuration cross-product.

        Returns ``[K_u, K_v]``: forward deficit (consumer need minus
        overlap) plus backward deficit (producer grad need minus overlap),
        each taken at the *worst* device (the paper's ``max_d``).

        Replication matters for the worst device: when the consumer
        replicates the tensor across more devices than the producer keeps
        copies (``ρ_v > ρ_u``), some consumer replica cannot be co-located
        with any holder of its block and must receive its full need — the
        aligned overlap only helps when every replica finds a resident
        copy (and symmetrically for gradients flowing back).
        """
        cu = np.asarray(configs_u, dtype=np.int64)
        cv = np.asarray(configs_v, dtype=np.int64)
        shape = np.asarray(out_spec.shape(src), dtype=np.int64)
        if shape.size == 0:
            return np.zeros((cu.shape[0], cv.shape[0]), dtype=np.float64)
        splits_u = out_spec.splits(src, cu)
        splits_v = in_spec.splits(dst, cv)
        held = np.prod(shard_extent(shape, splits_u), axis=-1, dtype=np.int64)
        need = np.prod(shard_extent(shape, splits_v), axis=-1, dtype=np.int64)
        ov = self._overlap_volume(shape, splits_u, splits_v)
        # Replication factors: devices per distinct block of the tensor.
        rep_u = np.prod(cu, axis=-1) // np.maximum(np.prod(splits_u, axis=-1), 1)
        rep_v = np.prod(cv, axis=-1) // np.maximum(np.prod(splits_v, axis=-1), 1)
        starved_fwd = rep_v[None, :] > rep_u[:, None]
        starved_bwd = rep_u[:, None] > rep_v[None, :]
        fwd = np.where(starved_fwd, need[None, :],
                       np.maximum(need[None, :] - ov, 0))
        bwd = np.where(starved_bwd, held[:, None],
                       np.maximum(held[:, None] - ov, 0))
        # Every transferred byte occupies both endpoints' links (the
        # sender streams what the receiver ingests), so each direction's
        # worst-device deficit is charged twice.
        return 2.0 * (fwd + bwd).astype(np.float64) * DTYPE_BYTES

    def edge_bytes_matrix(self, graph: CompGraph, edge: Edge,
                          configs_u: np.ndarray, configs_v: np.ndarray) -> np.ndarray:
        src, dst = graph.node(edge.src), graph.node(edge.dst)
        return self.transfer_bytes_matrix(
            src, src.outputs[edge.src_port], dst, dst.inputs[edge.dst_port],
            configs_u, configs_v)

    # -- table construction --------------------------------------------------

    @staticmethod
    def table_work_cells(graph: CompGraph, space: ConfigSpace) -> int:
        """Total cells the tables will hold: ``Σ_v K_v + Σ_e K_u · K_v``.

        Used both as the parallelization threshold and as a size proxy in
        build statistics.
        """
        cells = sum(space.size(op.name) for op in graph)
        cells += sum(space.size(e.src) * space.size(e.dst) for e in graph.edges)
        return int(cells)

    def _resolve_backend(self, jobs: int | str | None, work_cells: int,
                         n_tasks: int) -> tuple[str, int]:
        """Pick ``(backend, workers)`` for one build.

        Forced spellings (``"threads[:N]"`` / ``"processes[:N]"``) are
        honored as long as there is more than one task to fan out —
        regardless of core count, so tests can exercise the pool paths
        on single-core machines.  ``"auto"`` (and plain integers) apply
        the calibrated rule:

        * serial when fewer than `PARALLEL_THRESHOLD_CELLS` table cells
          or fewer than two usable workers (``min(requested, cores,
          tasks)``) — dispatch overhead dominates;
        * processes when the result payload (``work_cells * 8`` bytes)
          reaches `PROCESS_MIN_RESULT_BYTES` — enough work to amortize
          per-worker forks, with the shm arena making result shipping a
          memcpy;
        * threads otherwise — the vectorized kernels release the GIL,
          and threads pay neither fork nor any result copy.
        """
        mode, requested = _parse_jobs(jobs)
        cap = max(n_tasks, 1)
        if mode == "serial":
            return "serial", 1
        if mode in ("threads", "processes"):
            workers = min(requested, cap)
            return (mode, workers) if workers > 1 else ("serial", 1)
        workers = min(requested, os.cpu_count() or 1, cap)
        if workers <= 1 or work_cells < PARALLEL_THRESHOLD_CELLS:
            return "serial", 1
        if work_cells * 8 >= PROCESS_MIN_RESULT_BYTES:
            return "processes", workers
        return "threads", workers

    def _arena_plan(self, graph: CompGraph, space: ConfigSpace,
                    memory: bool = False) -> dict:
        """Shared-memory layout for one build: every table array's slot.

        Planned entirely from the configuration space — no cost needs to
        be computed to size the arena.
        """
        plan: dict = {}
        for op in graph:
            plan[("lc", op.name)] = ((space.size(op.name),), np.float64)
        for i, e in enumerate(graph.edges):
            plan[("tx", i)] = ((space.size(e.src), space.size(e.dst)),
                               np.float64)
        if memory:
            for op in graph:
                plan[("mem", op.name)] = ((space.size(op.name),), np.float64)
        return plan

    def build_tables(self, graph: CompGraph, space: ConfigSpace, *,
                     ctx: "object | None" = None,
                     jobs: int | str | None = UNSET,
                     cache: "object | None" = UNSET,
                     checkpoint: Callable[..., None] | None = UNSET,
                     memory: bool = False,
                     ) -> "CostTables":
        """Precompute `CostTables` for one (graph, machine, p) instance.

        Parameters
        ----------
        ctx:
            A `repro.runtime.RunContext` supplying ``jobs``, ``cache``,
            the cooperative checkpoint, and the observability pair.  The
            loose ``jobs=`` / ``cache=`` / ``checkpoint=`` keywords below
            are **deprecated** spellings of the same knobs (bit-identical
            behaviour, `DeprecationWarning`); mixing them with ``ctx=``
            is an error.
        jobs:
            Parallelism for the per-node / per-edge matrix construction.
            ``None`` (default) stays serial; an int ``n`` auto-selects a
            backend with at most ``n`` workers (``0`` = all cores); the
            string spellings ``"serial"``, ``"auto[:N]"``,
            ``"threads[:N]"``, and ``"processes[:N]"`` force a backend
            (see `_resolve_backend` for the auto rule, which weighs
            measured work cells *and* estimated result bytes).  The
            process backend writes its matrices into a
            `repro.core.shm.ShmArena` — workers ship offsets, not
            pickles.  Every backend is bit-identical to the serial path:
            workers compute exactly the arrays the serial loop would,
            and the parent accumulates them in the serial iteration
            order.  A broken pool (worker killed, fork failure, shm
            exhaustion) is retried `PARALLEL_BUILD_RETRIES` times with
            backoff and then *degrades* to the serial path — still
            bit-identical, recorded in ``build_stats["degraded"]`` —
            instead of crashing the run.
        cache:
            Optional `repro.core.tablecache.TableCache`.  On a digest hit
            the stored arrays are loaded and no matrix is constructed; on
            a miss the freshly built tables are stored — unless the build
            degraded, in which case the store is skipped (and logged):
            a build that needed a fallback should never be the one that
            populates a long-lived cache.
        checkpoint:
            Optional cooperative cancellation hook
            (`repro.runtime.make_checkpoint`), polled between per-node /
            per-edge tasks and around pool attempts; it aborts the build
            by raising.  An aborted build never reaches the cache store.
        memory:
            Also build per-node per-config memory tables
            (``CostTables.mem``, worst-device peak bytes from
            `repro.analysis.memory.MemoryModel.node_bytes`) on the same
            jobs / cache / shm data plane as the LC/TX tables.  The
            frontier search requires them; scalar searches never pay for
            them.  Flipping this changes the cache digest, so scalar and
            memory-carrying table sets never alias in a `TableCache`.

        The returned tables carry ``build_stats`` (seconds, cache hit,
        worker count, table cells, degradation flags) which the searchers
        surface in ``SearchResult.stats``.
        """
        legacy = [name for name, val in (("jobs", jobs), ("cache", cache),
                                         ("checkpoint", checkpoint))
                  if val is not UNSET]
        if legacy:
            if ctx is not None:
                reject_ctx_conflict("CostModel.build_tables", legacy)
            warn_deprecated_kwargs("CostModel.build_tables", legacy)
        jobs = None if jobs is UNSET else jobs
        cache = None if cache is UNSET else cache
        checkpoint = None if checkpoint is UNSET else checkpoint
        if ctx is not None:
            jobs = ctx.jobs
            cache = ctx.cache
            checkpoint = ctx.make_checkpoint()
        tracer = tracer_of(ctx)
        metrics = metrics_of(ctx)

        t0 = time.perf_counter()
        work_cells = self.table_work_cells(graph, space)
        with tracer.span("tables.build", cells=work_cells) as span:
            tables = self._build_tables_inner(
                graph, space, jobs, cache, checkpoint, work_cells, t0,
                memory)
            stats = tables.build_stats
            span.set(cache_hit=bool(stats["cache_hit"]),
                     jobs=int(stats["jobs"]),
                     backend=tables.backend,
                     degraded=bool(stats["degraded"]),
                     seconds_build=stats["build_seconds"])
        if stats["cache_hit"]:
            metrics.counter("table_cache_hits_total",
                            "table-cache digest hits").inc()
        else:
            if cache is not None:
                metrics.counter("table_cache_misses_total",
                                "table-cache digest misses").inc()
            metrics.counter("table_build_cells_total",
                            "cost-table cells constructed").inc(work_cells)
            if stats["build_seconds"] > 0:
                metrics.gauge(
                    "table_build_cells_per_second",
                    "cost-table construction throughput").set(
                        work_cells / stats["build_seconds"])
            metrics.counter("table_pool_retries_total",
                            "parallel table-build pool retries").inc(
                                stats["parallel_retries"])
            if stats.get("shm_bytes"):
                metrics.gauge(
                    "table_shm_bytes",
                    "shared-memory arena bytes of the last parallel "
                    "table build").set(stats["shm_bytes"])
        return tables

    def _build_tables_inner(self, graph: CompGraph, space: ConfigSpace,
                            jobs: int | str | None, cache: "object | None",
                            checkpoint: Callable[..., None] | None,
                            work_cells: int, t0: float,
                            memory: bool = False) -> "CostTables":
        digest = None
        if cache is not None:
            from .tablecache import table_digest

            digest = table_digest(graph, space, self, memory=memory)
            hit = cache.load(digest, graph, space, self.machine)
            if hit is not None:
                hit.build_stats = {
                    "build_seconds": time.perf_counter() - t0,
                    "cache_hit": 1.0,
                    "jobs": 1.0,
                    "cells": float(work_cells),
                    "result_bytes": float(work_cells * 8),
                    "backend": BACKEND_CODES["serial"],
                    "shm_bytes": 0.0,
                    "degraded": 0.0,
                    "parallel_retries": 0.0,
                }
                return hit
        n_tasks = len(graph) + len(graph.edges)
        backend, workers = self._resolve_backend(jobs, work_cells, n_tasks)
        retries = 0
        degraded_reason = None
        shm_bytes = 0
        if backend == "processes":
            from .shm import plan_nbytes

            shm_bytes = plan_nbytes(self._arena_plan(graph, space, memory))
        if backend != "serial":
            lc, edge_mats, mem, retries, degraded_reason = \
                self._build_arrays_hardened(graph, space, backend, workers,
                                            checkpoint, memory)
        else:
            lc, edge_mats, mem = self._build_arrays_serial(
                graph, space, checkpoint, memory)
        pair_tx: dict[tuple[str, str], np.ndarray] = {}
        for e, raw in zip(graph.edges, edge_mats):
            mat = raw * self.r
            key, flip = _canonical(e.src, e.dst)
            if flip:
                mat = mat.T
            if key in pair_tx:
                pair_tx[key] = pair_tx[key] + mat
            else:
                pair_tx[key] = mat
        tables = CostTables(graph=graph, space=space, machine=self.machine,
                            lc=lc, pair_tx=pair_tx, mem=mem)
        if degraded_reason is not None:
            backend, workers, shm_bytes = "serial", 1, 0
        tables.backend = backend
        tables.build_stats = {
            "build_seconds": time.perf_counter() - t0,
            "cache_hit": 0.0,
            "jobs": float(workers),
            "cells": float(work_cells),
            "result_bytes": float(work_cells * 8),
            "backend": BACKEND_CODES[backend],
            "shm_bytes": float(shm_bytes),
            "degraded": 0.0 if degraded_reason is None else 1.0,
            "parallel_retries": float(retries),
        }
        if degraded_reason is not None:
            tables.degraded_reason = degraded_reason
        if cache is not None and digest is not None:
            if degraded_reason is not None:
                _log.warning(
                    "not caching tables %s: build degraded to serial after "
                    "pool failure (%s)", digest[:12], degraded_reason)
            else:
                cache.store(digest, tables)
        return tables

    def _build_arrays_serial(
            self, graph: CompGraph, space: ConfigSpace,
            checkpoint: Callable[..., None] | None = None,
            memory: bool = False,
    ) -> tuple[dict[str, np.ndarray], list[np.ndarray],
               dict[str, np.ndarray] | None]:
        """The reference single-process build (also the degraded path)."""
        n_tasks = len(graph) + len(graph.edges)
        lc: dict[str, np.ndarray] = {}
        for k, op in enumerate(graph):
            if checkpoint is not None:
                checkpoint(phase="tables", step=k, total=n_tasks)
            lc[op.name] = self.layer_cost(op, space.configs(op.name))
        edge_mats = []
        for k, e in enumerate(graph.edges):
            if checkpoint is not None:
                checkpoint(phase="tables", step=len(graph) + k, total=n_tasks)
            edge_mats.append(self.edge_bytes_matrix(
                graph, e, space.configs(e.src), space.configs(e.dst)))
        mem = None
        if memory:
            mem = {op.name: _node_memory_table(op, space.configs(op.name))
                   for op in graph}
        return lc, edge_mats, mem

    def _build_arrays_hardened(
            self, graph: CompGraph, space: ConfigSpace, backend: str,
            workers: int, checkpoint: Callable[..., None] | None = None,
            memory: bool = False,
    ) -> tuple[dict[str, np.ndarray], list[np.ndarray],
               dict[str, np.ndarray] | None, int, str | None]:
        """Parallel build with retry-then-serial degradation.

        A dead worker (OOM-killed, segfaulted, SIGKILLed) surfaces as
        `BrokenProcessPool`; pool setup itself can raise `OSError`
        (fork/pipe/shm exhaustion).  Both are retried with backoff, then
        the bit-identical serial path takes over.  Returns ``(lc,
        edge_mats, mem, retries_used, degraded_reason)``.
        """
        from concurrent.futures.process import BrokenProcessPool

        last_error: BaseException | None = None
        for attempt in range(1 + PARALLEL_BUILD_RETRIES):
            if checkpoint is not None:
                checkpoint(phase="tables")
            if attempt:
                _interruptible_sleep(
                    PARALLEL_RETRY_BACKOFF_SECONDS * attempt, checkpoint)
            try:
                if backend == "threads":
                    lc, edge_mats, mem = self._build_arrays_threads(
                        graph, space, workers, memory)
                else:
                    lc, edge_mats, mem = self._build_arrays_parallel(
                        graph, space, workers, memory)
                return lc, edge_mats, mem, attempt, None
            except (BrokenProcessPool, OSError) as err:
                last_error = err
                _log.warning(
                    "parallel table build attempt %d/%d failed (%s: %s)",
                    attempt + 1, 1 + PARALLEL_BUILD_RETRIES,
                    type(err).__name__, err)
        reason = f"{type(last_error).__name__}: {last_error}"
        _log.warning("parallel table build degraded to serial after "
                     "%d attempts (%s)", 1 + PARALLEL_BUILD_RETRIES, reason)
        lc, edge_mats, mem = self._build_arrays_serial(
            graph, space, checkpoint, memory)
        return lc, edge_mats, mem, PARALLEL_BUILD_RETRIES, reason

    def _build_arrays_threads(
            self, graph: CompGraph, space: ConfigSpace, workers: int,
            memory: bool = False,
    ) -> tuple[dict[str, np.ndarray], list[np.ndarray],
               dict[str, np.ndarray] | None]:
        """Fan the matrix builds over a thread pool (zero-copy, no fork).

        The heavy lifting is vectorized numpy, which releases the GIL
        inside its kernels; results are ordinary in-process arrays, so
        nothing is shipped at all.  ``Executor.map`` preserves input
        order, keeping the caller's accumulation identical to serial.
        """
        from concurrent.futures import ThreadPoolExecutor

        ops = list(graph)
        mem = None
        with ThreadPoolExecutor(max_workers=workers) as pool:
            lc_arrays = list(pool.map(
                lambda op: self.layer_cost(op, space.configs(op.name)), ops))
            edge_mats = list(pool.map(
                lambda e: self.edge_bytes_matrix(
                    graph, e, space.configs(e.src), space.configs(e.dst)),
                graph.edges))
            if memory:
                mem_arrays = list(pool.map(
                    lambda op: _node_memory_table(
                        op, space.configs(op.name)), ops))
                mem = {op.name: arr for op, arr in zip(ops, mem_arrays)}
        return ({op.name: arr for op, arr in zip(ops, lc_arrays)},
                edge_mats, mem)

    def _build_arrays_parallel(
            self, graph: CompGraph, space: ConfigSpace, workers: int,
            memory: bool = False,
    ) -> tuple[dict[str, np.ndarray], list[np.ndarray],
               dict[str, np.ndarray] | None]:
        """Fan the matrix builds over a process pool + shared-memory arena.

        Workers write each matrix directly into its planned arena slot
        and ship back only the key — no result pickling.  The parent
        adopts every array (one memcpy each) and unlinks the arena in a
        ``finally``, so the segment never outlives the build, whatever
        the failure mode.  Returns the layer-cost dict plus the
        *unscaled* edge matrices in ``graph.edges`` order, so the
        caller's accumulation is identical to the serial path.
        """
        from concurrent.futures import ProcessPoolExecutor

        from .shm import ShmArena

        names = [op.name for op in graph]
        n_edges = len(graph.edges)
        # OSError here (shm exhausted) flows into the hardened retry ->
        # serial degradation, like any other pool-setup failure.
        arena = ShmArena.create(self._arena_plan(graph, space, memory))
        mem = None
        try:
            with ProcessPoolExecutor(
                    max_workers=workers, initializer=_init_worker,
                    initargs=(self, graph, space, arena.name,
                              arena.manifest)) as pool:
                list(pool.map(_node_task, names))
                list(pool.map(_edge_task, range(n_edges)))
                if memory:
                    list(pool.map(_mem_task, names))
            lc = {name: arena.adopt(("lc", name)) for name in names}
            edge_mats = [arena.adopt(("tx", i)) for i in range(n_edges)]
            if memory:
                mem = {name: arena.adopt(("mem", name)) for name in names}
        finally:
            arena.destroy()
        return lc, edge_mats, mem


def _canonical(u: str, v: str) -> tuple[tuple[str, str], bool]:
    """Canonical unordered pair key; ``flip`` True if (v, u) is canonical."""
    return ((u, v), False) if u <= v else ((v, u), True)


@dataclass
class CostTables:
    """Shared ranking oracle: precomputed per-node and per-pair costs.

    Attributes
    ----------
    lc:
        Node name -> ``[K_v]`` layer costs (FLOP units).
    pair_tx:
        Canonical node pair -> ``[K_u, K_v]`` transfer costs already scaled
        by ``r`` (FLOP units); multiple edges between a pair are summed.
    derived:
        True for tables sliced or transformed from another instance
        (e.g. resilience coarsening) rather than built from the model.
        Derived tables are never stored in the on-disk cache — their
        digest would describe the *original* space, poisoning later hits.
    build_stats:
        Construction telemetry from :meth:`CostModel.build_tables`
        (``build_seconds``, ``cache_hit``, ``jobs``, ``cells``,
        ``result_bytes``, ``backend`` code, ``shm_bytes``); empty for
        tables assembled by hand.
    backend:
        Name of the build backend that produced the arrays
        (``"serial"``/``"threads"``/``"processes"``; degraded builds
        report ``"serial"`` — the path that actually ran).  The numeric
        twin lives in ``build_stats["backend"]`` (`BACKEND_CODES`).
    """

    graph: CompGraph
    space: ConfigSpace
    machine: MachineSpec
    lc: dict[str, np.ndarray]
    pair_tx: dict[tuple[str, str], np.ndarray]
    #: Optional per-node per-config worst-device memory bytes ``[K_v]``
    #: (same layout as ``lc``), present only when the tables were built
    #: with ``memory=True`` — the frontier search's second objective.
    mem: dict[str, np.ndarray] | None = None
    derived: bool = False
    backend: str = field(default="serial", repr=False)
    build_stats: dict[str, float] = field(default_factory=dict, repr=False)
    #: Human-readable reason when the parallel build fell back to serial
    #: (None for clean builds); surfaced in the hardened runtime's report.
    degraded_reason: str | None = field(default=None, repr=False)
    _nbr_cache: dict[str, tuple[str, ...]] = field(default_factory=dict, repr=False)

    def tx(self, u: str, v: str) -> np.ndarray:
        """Transfer-cost matrix oriented as ``[K_u, K_v]``."""
        key, flip = _canonical(u, v)
        mat = self.pair_tx[key]
        return mat.T if flip else mat

    def has_pair(self, u: str, v: str) -> bool:
        return _canonical(u, v)[0] in self.pair_tx

    def pairs(self) -> tuple[tuple[str, str], ...]:
        return tuple(self.pair_tx)

    def strategy_cost(self, indices: dict[str, int]) -> float:
        """F(G, φ) for a strategy given as node -> configuration index."""
        missing = set(self.lc) - set(indices)
        if missing:
            raise StrategyError(f"strategy missing nodes: {sorted(missing)[:5]}")
        extra = set(indices) - set(self.lc)
        if extra:
            raise StrategyError(f"strategy names unknown nodes: {sorted(extra)[:5]}")
        # Accumulate in table order, not ``indices`` insertion order, so
        # equal strategies cost bit-identically however they were built.
        total = 0.0
        for name, arr in self.lc.items():
            total += float(arr[indices[name]])
        for (u, v), mat in self.pair_tx.items():
            total += float(mat[indices[u], indices[v]])
        return total

    def node_cost(self, name: str, k: int) -> float:
        return float(self.lc[name][k])

    def pair_cost(self, u: str, v: str, ku: int, kv: int) -> float:
        return float(self.tx(u, v)[ku, kv])

    def neighbors(self, name: str) -> tuple[str, ...]:
        if name not in self._nbr_cache:
            self._nbr_cache[name] = self.graph.neighbors(name)
        return self._nbr_cache[name]

    def nbytes(self) -> int:
        """Memory footprint of the precomputed tables."""
        total = sum(a.nbytes for a in self.lc.values())
        total += sum(a.nbytes for a in self.pair_tx.values())
        if self.mem is not None:
            total += sum(a.nbytes for a in self.mem.values())
        return total

    def work_cells(self) -> int:
        """Cells actually held: ``Σ_v K_v + Σ_pair K_u · K_v``.

        Unlike :meth:`CostModel.table_work_cells` this counts the stored
        arrays, so it reflects dominance pruning and chain contraction on
        derived tables.
        """
        return int(sum(a.shape[0] for a in self.lc.values())
                   + sum(m.size for m in self.pair_tx.values()))
