"""The analytic cost model of Equation (1).

``F(G, φ) = Σ_v t_l(v, φ, r)  +  Σ_(u,v)∈E  r · t_x(u, v, φ)``

*Layer cost* ``t_l`` (FLOP units, per worst device):

* compute: total training FLOPs of the layer divided by the number of
  devices the configuration uses;
* partial-sum reduction: splitting contracted dims ``m``-ways leaves each
  device with a partial output that is combined by an all-reduce over the
  ``m``-group (and the matching gradient broadcast on the backward pass);
* parameter-gradient all-reduce: dims *not* appearing in a parameter
  tensor's axes replicate that parameter; its gradients are all-reduced
  across the replication group every step (the classic data-parallelism
  synchronization cost);
* operator-specific extra communication (e.g. convolution halo exchange).

*Transfer cost* ``t_x`` (bytes, per worst device pair): the volume the
consumer needs minus the best-case aligned overlap with what the producer
holds, in both directions (activations forward, gradients backward), which
makes it edge-direction symmetric as required by the paper (footnote 2).

All per-node and per-edge costs are precomputed **vectorized over entire
configuration tables** into `CostTables`; the dynamic program, brute force,
MCMC comparator, and reports all rank strategies with these shared arrays.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .._compat import UNSET, reject_ctx_conflict, warn_deprecated_kwargs
from ..obs.profile import metrics_of, tracer_of
from ..ops.base import OpSpec
from .configs import ConfigSpace
from .dims import shard_extent
from .exceptions import StrategyError
from .graph import CompGraph, Edge
from .machine import MachineSpec
from .tensors import DTYPE_BYTES, TensorSpec

__all__ = ["CostModel", "CostTables", "allreduce_bytes",
           "PARALLEL_THRESHOLD_CELLS"]

#: Minimum total table cells (Σ_v K_v + Σ_e K_u·K_v) before a requested
#: process pool is actually used; below it fork/pickle overhead dominates
#: and construction stays serial.
PARALLEL_THRESHOLD_CELLS = 200_000

#: Extra parallel attempts after a pool failure before the serial
#: fallback, and the backoff slept before each retry.
PARALLEL_BUILD_RETRIES = 1
PARALLEL_RETRY_BACKOFF_SECONDS = 0.25

#: Longest uninterrupted slice of a retry-backoff sleep; the run's
#: checkpoint (deadline / cancellation) is polled between slices.
BACKOFF_POLL_SECONDS = 0.05

_log = logging.getLogger(__name__)


def _interruptible_sleep(seconds: float,
                         checkpoint: Callable[..., None] | None) -> None:
    """Sleep in short slices, polling the run checkpoint between them.

    A retry backoff must not outlive the run: a SIGINT or a blown
    deadline during the sleep surfaces at the next poll (within
    `BACKOFF_POLL_SECONDS`) instead of after the full backoff.
    """
    if checkpoint is None:
        time.sleep(seconds)
        return
    deadline = time.perf_counter() + seconds
    while True:
        checkpoint(phase="tables")
        remaining = deadline - time.perf_counter()
        if remaining <= 0:
            return
        time.sleep(min(BACKOFF_POLL_SECONDS, remaining))

# Per-worker state installed by the pool initializer (inherited cheaply on
# fork, re-pickled once per worker on spawn) so tasks only ship indices.
_WORKER: dict[str, object] = {}


def _init_worker(model: "CostModel", graph: CompGraph, space: ConfigSpace) -> None:
    _WORKER["model"] = model
    _WORKER["graph"] = graph
    _WORKER["space"] = space


def _node_task(name: str) -> tuple[str, np.ndarray]:
    model: CostModel = _WORKER["model"]          # type: ignore[assignment]
    graph: CompGraph = _WORKER["graph"]          # type: ignore[assignment]
    space: ConfigSpace = _WORKER["space"]        # type: ignore[assignment]
    return name, model.layer_cost(graph.node(name), space.configs(name))


def _edge_task(index: int) -> tuple[int, np.ndarray]:
    model: CostModel = _WORKER["model"]          # type: ignore[assignment]
    graph: CompGraph = _WORKER["graph"]          # type: ignore[assignment]
    space: ConfigSpace = _WORKER["space"]        # type: ignore[assignment]
    e = graph.edges[index]
    return index, model.edge_bytes_matrix(
        graph, e, space.configs(e.src), space.configs(e.dst))


def allreduce_bytes(volume_bytes, group_size):
    """Per-device bytes moved by a ring all-reduce of ``volume_bytes``.

    ``2 · v · (m - 1) / m`` (reduce-scatter + all-gather).  Vectorized;
    returns zeros where the group size is 1.
    """
    v = np.asarray(volume_bytes, dtype=np.float64)
    m = np.asarray(group_size, dtype=np.float64)
    return np.where(m > 1, 2.0 * v * (m - 1.0) / np.maximum(m, 1.0), 0.0)


class CostModel:
    """Evaluates ``t_l`` and ``t_x`` for a given machine.

    Parameters
    ----------
    machine:
        Supplies the FLOP-to-byte ratio ``r``.
    include_grad_sync / include_reduction / include_extra:
        Ablation switches disabling individual internal-communication
        terms of ``t_l`` (used by the ablation benchmarks to show which
        term drives each strategy decision).
    """

    #: FLOPs charged per parameter in the update phase (momentum SGD:
    #: read gradient + momentum, two multiply-adds, write back).
    UPDATE_FLOPS_PER_PARAM = 4.0

    def __init__(self, machine: MachineSpec, *, include_grad_sync: bool = True,
                 include_reduction: bool = True, include_extra: bool = True) -> None:
        self.machine = machine
        self.r = machine.flop_byte_ratio
        self.include_grad_sync = include_grad_sync
        self.include_reduction = include_reduction
        self.include_extra = include_extra

    # -- layer cost t_l ------------------------------------------------------

    def layer_comm_bytes(self, op: OpSpec, configs: np.ndarray) -> np.ndarray:
        """Internal communication bytes per device, vectorized over [K, d]."""
        configs = np.asarray(configs, dtype=np.int64)
        total = np.zeros(configs.shape[:-1], dtype=np.float64)

        # Partial-sum reduction over contracted dims (forward), plus the
        # matching gradient broadcast on the backward pass -> 2x.
        if self.include_reduction and op.reduction_dims and op.outputs:
            red_idx = [op.dim_index(d) for d in op.reduction_dims]
            m = np.prod(configs[..., red_idx], axis=-1, dtype=np.int64)
            out_shard = op.primary_output.shard_volume(op, configs) * DTYPE_BYTES
            total += 2.0 * allreduce_bytes(out_shard, m)

        # Gradient all-reduce across parameter replication groups.
        if self.include_grad_sync:
            for spec in op.inputs.values():
                if not spec.is_param:
                    continue
                rho = spec.replication(op, configs)
                g_shard = spec.grad_sync_volume(op, configs) * DTYPE_BYTES
                total += allreduce_bytes(g_shard, rho)

        if self.include_extra:
            total += op.extra_comm_bytes(configs)
        return total

    def update_flops(self, op: OpSpec, configs: np.ndarray) -> np.ndarray:
        """Per-device update-phase FLOPs (the paper's third training phase).

        Proportional to the largest parameter shard a device holds —
        unsplit giant tables (embeddings) pay for their full size every
        step, which is part of why PaSE shards them (Table II).
        """
        configs = np.asarray(configs, dtype=np.int64)
        total = np.zeros(configs.shape[:-1], dtype=np.float64)
        for spec in op.inputs.values():
            if spec.is_param:
                total += spec.shard_volume(op, configs)
        return total * self.UPDATE_FLOPS_PER_PARAM

    def layer_cost(self, op: OpSpec, configs: np.ndarray) -> np.ndarray:
        """t_l in FLOP units, vectorized over configurations [K, d] -> [K]."""
        configs = np.asarray(configs, dtype=np.int64)
        parts = np.prod(configs, axis=-1, dtype=np.int64)
        compute = op.flops / parts + self.update_flops(op, configs)
        return compute + self.r * self.layer_comm_bytes(op, configs)

    # -- transfer cost t_x ----------------------------------------------------

    @staticmethod
    def _overlap_volume(shape: np.ndarray, splits_u: np.ndarray,
                        splits_v: np.ndarray) -> np.ndarray:
        """Best-case aligned overlap of producer/consumer block shards.

        Along each tensor axis the overlap of a 1/a block with a 1/b block
        is at most ``ceil(extent / max(a, b))`` elements; a greedy
        locality-maximizing device assignment (Section II) achieves the
        product bound for the best-aligned device.
        """
        su = splits_u[:, None, :]
        sv = splits_v[None, :, :]
        joint = np.maximum(su, sv)
        return np.prod(shard_extent(shape, joint), axis=-1, dtype=np.int64)

    def transfer_bytes_matrix(self, src: OpSpec, out_spec: TensorSpec,
                              dst: OpSpec, in_spec: TensorSpec,
                              configs_u: np.ndarray,
                              configs_v: np.ndarray) -> np.ndarray:
        """t_x in bytes over the full configuration cross-product.

        Returns ``[K_u, K_v]``: forward deficit (consumer need minus
        overlap) plus backward deficit (producer grad need minus overlap),
        each taken at the *worst* device (the paper's ``max_d``).

        Replication matters for the worst device: when the consumer
        replicates the tensor across more devices than the producer keeps
        copies (``ρ_v > ρ_u``), some consumer replica cannot be co-located
        with any holder of its block and must receive its full need — the
        aligned overlap only helps when every replica finds a resident
        copy (and symmetrically for gradients flowing back).
        """
        cu = np.asarray(configs_u, dtype=np.int64)
        cv = np.asarray(configs_v, dtype=np.int64)
        shape = np.asarray(out_spec.shape(src), dtype=np.int64)
        if shape.size == 0:
            return np.zeros((cu.shape[0], cv.shape[0]), dtype=np.float64)
        splits_u = out_spec.splits(src, cu)
        splits_v = in_spec.splits(dst, cv)
        held = np.prod(shard_extent(shape, splits_u), axis=-1, dtype=np.int64)
        need = np.prod(shard_extent(shape, splits_v), axis=-1, dtype=np.int64)
        ov = self._overlap_volume(shape, splits_u, splits_v)
        # Replication factors: devices per distinct block of the tensor.
        rep_u = np.prod(cu, axis=-1) // np.maximum(np.prod(splits_u, axis=-1), 1)
        rep_v = np.prod(cv, axis=-1) // np.maximum(np.prod(splits_v, axis=-1), 1)
        starved_fwd = rep_v[None, :] > rep_u[:, None]
        starved_bwd = rep_u[:, None] > rep_v[None, :]
        fwd = np.where(starved_fwd, need[None, :],
                       np.maximum(need[None, :] - ov, 0))
        bwd = np.where(starved_bwd, held[:, None],
                       np.maximum(held[:, None] - ov, 0))
        # Every transferred byte occupies both endpoints' links (the
        # sender streams what the receiver ingests), so each direction's
        # worst-device deficit is charged twice.
        return 2.0 * (fwd + bwd).astype(np.float64) * DTYPE_BYTES

    def edge_bytes_matrix(self, graph: CompGraph, edge: Edge,
                          configs_u: np.ndarray, configs_v: np.ndarray) -> np.ndarray:
        src, dst = graph.node(edge.src), graph.node(edge.dst)
        return self.transfer_bytes_matrix(
            src, src.outputs[edge.src_port], dst, dst.inputs[edge.dst_port],
            configs_u, configs_v)

    # -- table construction --------------------------------------------------

    @staticmethod
    def table_work_cells(graph: CompGraph, space: ConfigSpace) -> int:
        """Total cells the tables will hold: ``Σ_v K_v + Σ_e K_u · K_v``.

        Used both as the parallelization threshold and as a size proxy in
        build statistics.
        """
        cells = sum(space.size(op.name) for op in graph)
        cells += sum(space.size(e.src) * space.size(e.dst) for e in graph.edges)
        return int(cells)

    def _resolve_jobs(self, jobs: int | None, work_cells: int,
                      n_tasks: int) -> int:
        """Worker-process count actually used (1 == stay serial)."""
        if jobs is None:
            return 1
        if jobs < 0:
            raise ValueError(f"jobs={jobs} must be >= 0 (0 = all cores)")
        workers = jobs if jobs else (os.cpu_count() or 1)
        if workers <= 1 or work_cells < PARALLEL_THRESHOLD_CELLS:
            return 1
        return min(workers, max(n_tasks, 1))

    def build_tables(self, graph: CompGraph, space: ConfigSpace, *,
                     ctx: "object | None" = None,
                     jobs: int | None = UNSET,
                     cache: "object | None" = UNSET,
                     checkpoint: Callable[..., None] | None = UNSET,
                     ) -> "CostTables":
        """Precompute `CostTables` for one (graph, machine, p) instance.

        Parameters
        ----------
        ctx:
            A `repro.runtime.RunContext` supplying ``jobs``, ``cache``,
            the cooperative checkpoint, and the observability pair.  The
            loose ``jobs=`` / ``cache=`` / ``checkpoint=`` keywords below
            are **deprecated** spellings of the same knobs (bit-identical
            behaviour, `DeprecationWarning`); mixing them with ``ctx=``
            is an error.
        jobs:
            Worker processes for the per-node / per-edge matrix
            construction.  ``None`` (default) stays serial, ``0`` uses all
            cores, ``n >= 2`` uses at most ``n``.  Small problems (fewer
            than `PARALLEL_THRESHOLD_CELLS` total table cells) stay serial
            regardless — fork/pickle overhead would dominate.  The result
            is bit-identical to the serial path: workers compute exactly
            the arrays the serial loop would, and the parent accumulates
            them in the serial iteration order.  A broken pool (worker
            killed, fork failure) is retried `PARALLEL_BUILD_RETRIES`
            times with backoff and then *degrades* to the serial path —
            still bit-identical, recorded in ``build_stats["degraded"]``
            — instead of crashing the run.
        cache:
            Optional `repro.core.tablecache.TableCache`.  On a digest hit
            the stored arrays are loaded and no matrix is constructed; on
            a miss the freshly built tables are stored — unless the build
            degraded, in which case the store is skipped (and logged):
            a build that needed a fallback should never be the one that
            populates a long-lived cache.
        checkpoint:
            Optional cooperative cancellation hook
            (`repro.runtime.make_checkpoint`), polled between per-node /
            per-edge tasks and around pool attempts; it aborts the build
            by raising.  An aborted build never reaches the cache store.

        The returned tables carry ``build_stats`` (seconds, cache hit,
        worker count, table cells, degradation flags) which the searchers
        surface in ``SearchResult.stats``.
        """
        legacy = [name for name, val in (("jobs", jobs), ("cache", cache),
                                         ("checkpoint", checkpoint))
                  if val is not UNSET]
        if legacy:
            if ctx is not None:
                reject_ctx_conflict("CostModel.build_tables", legacy)
            warn_deprecated_kwargs("CostModel.build_tables", legacy)
        jobs = None if jobs is UNSET else jobs
        cache = None if cache is UNSET else cache
        checkpoint = None if checkpoint is UNSET else checkpoint
        if ctx is not None:
            jobs = ctx.jobs
            cache = ctx.cache
            checkpoint = ctx.make_checkpoint()
        tracer = tracer_of(ctx)
        metrics = metrics_of(ctx)

        t0 = time.perf_counter()
        work_cells = self.table_work_cells(graph, space)
        with tracer.span("tables.build", cells=work_cells) as span:
            tables = self._build_tables_inner(
                graph, space, jobs, cache, checkpoint, work_cells, t0)
            stats = tables.build_stats
            span.set(cache_hit=bool(stats["cache_hit"]),
                     jobs=int(stats["jobs"]),
                     degraded=bool(stats["degraded"]),
                     seconds_build=stats["build_seconds"])
        if stats["cache_hit"]:
            metrics.counter("table_cache_hits_total",
                            "table-cache digest hits").inc()
        else:
            if cache is not None:
                metrics.counter("table_cache_misses_total",
                                "table-cache digest misses").inc()
            metrics.counter("table_build_cells_total",
                            "cost-table cells constructed").inc(work_cells)
            if stats["build_seconds"] > 0:
                metrics.gauge(
                    "table_build_cells_per_second",
                    "cost-table construction throughput").set(
                        work_cells / stats["build_seconds"])
            metrics.counter("table_pool_retries_total",
                            "parallel table-build pool retries").inc(
                                stats["parallel_retries"])
        return tables

    def _build_tables_inner(self, graph: CompGraph, space: ConfigSpace,
                            jobs: int | None, cache: "object | None",
                            checkpoint: Callable[..., None] | None,
                            work_cells: int, t0: float) -> "CostTables":
        digest = None
        if cache is not None:
            from .tablecache import table_digest

            digest = table_digest(graph, space, self)
            hit = cache.load(digest, graph, space, self.machine)
            if hit is not None:
                hit.build_stats = {
                    "build_seconds": time.perf_counter() - t0,
                    "cache_hit": 1.0,
                    "jobs": 1.0,
                    "cells": float(work_cells),
                    "degraded": 0.0,
                    "parallel_retries": 0.0,
                }
                return hit
        n_tasks = len(graph) + len(graph.edges)
        workers = self._resolve_jobs(jobs, work_cells, n_tasks)
        retries = 0
        degraded_reason = None
        if workers > 1:
            lc, edge_mats, retries, degraded_reason = \
                self._build_arrays_hardened(graph, space, workers, checkpoint)
        else:
            lc, edge_mats = self._build_arrays_serial(graph, space, checkpoint)
        pair_tx: dict[tuple[str, str], np.ndarray] = {}
        for e, raw in zip(graph.edges, edge_mats):
            mat = raw * self.r
            key, flip = _canonical(e.src, e.dst)
            if flip:
                mat = mat.T
            if key in pair_tx:
                pair_tx[key] = pair_tx[key] + mat
            else:
                pair_tx[key] = mat
        tables = CostTables(graph=graph, space=space, machine=self.machine,
                            lc=lc, pair_tx=pair_tx)
        tables.build_stats = {
            "build_seconds": time.perf_counter() - t0,
            "cache_hit": 0.0,
            "jobs": 1.0 if degraded_reason is not None else float(workers),
            "cells": float(work_cells),
            "degraded": 0.0 if degraded_reason is None else 1.0,
            "parallel_retries": float(retries),
        }
        if degraded_reason is not None:
            tables.degraded_reason = degraded_reason
        if cache is not None and digest is not None:
            if degraded_reason is not None:
                _log.warning(
                    "not caching tables %s: build degraded to serial after "
                    "pool failure (%s)", digest[:12], degraded_reason)
            else:
                cache.store(digest, tables)
        return tables

    def _build_arrays_serial(
            self, graph: CompGraph, space: ConfigSpace,
            checkpoint: Callable[..., None] | None = None,
    ) -> tuple[dict[str, np.ndarray], list[np.ndarray]]:
        """The reference single-process build (also the degraded path)."""
        n_tasks = len(graph) + len(graph.edges)
        lc: dict[str, np.ndarray] = {}
        for k, op in enumerate(graph):
            if checkpoint is not None:
                checkpoint(phase="tables", step=k, total=n_tasks)
            lc[op.name] = self.layer_cost(op, space.configs(op.name))
        edge_mats = []
        for k, e in enumerate(graph.edges):
            if checkpoint is not None:
                checkpoint(phase="tables", step=len(graph) + k, total=n_tasks)
            edge_mats.append(self.edge_bytes_matrix(
                graph, e, space.configs(e.src), space.configs(e.dst)))
        return lc, edge_mats

    def _build_arrays_hardened(
            self, graph: CompGraph, space: ConfigSpace, workers: int,
            checkpoint: Callable[..., None] | None = None,
    ) -> tuple[dict[str, np.ndarray], list[np.ndarray], int, str | None]:
        """Parallel build with retry-then-serial degradation.

        A dead worker (OOM-killed, segfaulted, SIGKILLed) surfaces as
        `BrokenProcessPool`; pool setup itself can raise `OSError`
        (fork/pipe exhaustion).  Both are retried with backoff, then the
        bit-identical serial path takes over.  Returns ``(lc, edge_mats,
        retries_used, degraded_reason)``.
        """
        from concurrent.futures.process import BrokenProcessPool

        last_error: BaseException | None = None
        for attempt in range(1 + PARALLEL_BUILD_RETRIES):
            if checkpoint is not None:
                checkpoint(phase="tables")
            if attempt:
                _interruptible_sleep(
                    PARALLEL_RETRY_BACKOFF_SECONDS * attempt, checkpoint)
            try:
                lc, edge_mats = self._build_arrays_parallel(
                    graph, space, workers)
                return lc, edge_mats, attempt, None
            except (BrokenProcessPool, OSError) as err:
                last_error = err
                _log.warning(
                    "parallel table build attempt %d/%d failed (%s: %s)",
                    attempt + 1, 1 + PARALLEL_BUILD_RETRIES,
                    type(err).__name__, err)
        reason = f"{type(last_error).__name__}: {last_error}"
        _log.warning("parallel table build degraded to serial after "
                     "%d attempts (%s)", 1 + PARALLEL_BUILD_RETRIES, reason)
        lc, edge_mats = self._build_arrays_serial(graph, space, checkpoint)
        return lc, edge_mats, PARALLEL_BUILD_RETRIES, reason

    def _build_arrays_parallel(
            self, graph: CompGraph, space: ConfigSpace, workers: int,
    ) -> tuple[dict[str, np.ndarray], list[np.ndarray]]:
        """Fan the per-node / per-edge matrix builds over a process pool.

        Returns the layer-cost dict plus the *unscaled* edge matrices in
        ``graph.edges`` order, so the caller's accumulation is identical
        to the serial path.
        """
        from concurrent.futures import ProcessPoolExecutor

        names = [op.name for op in graph]
        n_edges = len(graph.edges)
        with ProcessPoolExecutor(
                max_workers=workers, initializer=_init_worker,
                initargs=(self, graph, space)) as pool:
            node_out = dict(pool.map(_node_task, names))
            edge_out = dict(pool.map(_edge_task, range(n_edges)))
        lc = {name: node_out[name] for name in names}
        return lc, [edge_out[i] for i in range(n_edges)]


def _canonical(u: str, v: str) -> tuple[tuple[str, str], bool]:
    """Canonical unordered pair key; ``flip`` True if (v, u) is canonical."""
    return ((u, v), False) if u <= v else ((v, u), True)


@dataclass
class CostTables:
    """Shared ranking oracle: precomputed per-node and per-pair costs.

    Attributes
    ----------
    lc:
        Node name -> ``[K_v]`` layer costs (FLOP units).
    pair_tx:
        Canonical node pair -> ``[K_u, K_v]`` transfer costs already scaled
        by ``r`` (FLOP units); multiple edges between a pair are summed.
    derived:
        True for tables sliced or transformed from another instance
        (e.g. resilience coarsening) rather than built from the model.
        Derived tables are never stored in the on-disk cache — their
        digest would describe the *original* space, poisoning later hits.
    build_stats:
        Construction telemetry from :meth:`CostModel.build_tables`
        (``build_seconds``, ``cache_hit``, ``jobs``, ``cells``); empty for
        tables assembled by hand.
    """

    graph: CompGraph
    space: ConfigSpace
    machine: MachineSpec
    lc: dict[str, np.ndarray]
    pair_tx: dict[tuple[str, str], np.ndarray]
    derived: bool = False
    build_stats: dict[str, float] = field(default_factory=dict, repr=False)
    #: Human-readable reason when the parallel build fell back to serial
    #: (None for clean builds); surfaced in the hardened runtime's report.
    degraded_reason: str | None = field(default=None, repr=False)
    _nbr_cache: dict[str, tuple[str, ...]] = field(default_factory=dict, repr=False)

    def tx(self, u: str, v: str) -> np.ndarray:
        """Transfer-cost matrix oriented as ``[K_u, K_v]``."""
        key, flip = _canonical(u, v)
        mat = self.pair_tx[key]
        return mat.T if flip else mat

    def has_pair(self, u: str, v: str) -> bool:
        return _canonical(u, v)[0] in self.pair_tx

    def pairs(self) -> tuple[tuple[str, str], ...]:
        return tuple(self.pair_tx)

    def strategy_cost(self, indices: dict[str, int]) -> float:
        """F(G, φ) for a strategy given as node -> configuration index."""
        missing = set(self.lc) - set(indices)
        if missing:
            raise StrategyError(f"strategy missing nodes: {sorted(missing)[:5]}")
        extra = set(indices) - set(self.lc)
        if extra:
            raise StrategyError(f"strategy names unknown nodes: {sorted(extra)[:5]}")
        # Accumulate in table order, not ``indices`` insertion order, so
        # equal strategies cost bit-identically however they were built.
        total = 0.0
        for name, arr in self.lc.items():
            total += float(arr[indices[name]])
        for (u, v), mat in self.pair_tx.items():
            total += float(mat[indices[u], indices[v]])
        return total

    def node_cost(self, name: str, k: int) -> float:
        return float(self.lc[name][k])

    def pair_cost(self, u: str, v: str, ku: int, kv: int) -> float:
        return float(self.tx(u, v)[ku, kv])

    def neighbors(self, name: str) -> tuple[str, ...]:
        if name not in self._nbr_cache:
            self._nbr_cache[name] = self.graph.neighbors(name)
        return self._nbr_cache[name]

    def nbytes(self) -> int:
        """Memory footprint of the precomputed tables."""
        total = sum(a.nbytes for a in self.lc.values())
        total += sum(a.nbytes for a in self.pair_tx.values())
        return total

    def work_cells(self) -> int:
        """Cells actually held: ``Σ_v K_v + Σ_pair K_u · K_v``.

        Unlike :meth:`CostModel.table_work_cells` this counts the stored
        arrays, so it reflects dominance pruning and chain contraction on
        derived tables.
        """
        return int(sum(a.shape[0] for a in self.lc.values())
                   + sum(m.size for m in self.pair_tx.values()))
