"""Broadcast helpers shared by the tensorized dynamic programs.

DP tables are numpy arrays with one axis per dependent-set vertex (axis
length = that vertex's configuration count).  Summing the recurrence terms
is then a broadcast add of arrays whose axes are *subsets* of the target
axes; minimization over the candidate-configuration axis is chunked so the
transient cost array never exceeds a cell budget (HPC guide: vectorize the
hot loop, stay easy on memory).
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

import numpy as np

from . import kernels

__all__ = ["aligned_term", "chunked_min_argmin"]


def aligned_term(arr: np.ndarray, axes: Sequence[int],
                 full_axes: Sequence[int]) -> np.ndarray:
    """View ``arr`` so it broadcasts against an array over ``full_axes``.

    Parameters
    ----------
    arr:
        Term array with one axis per entry of ``axes`` (in that order).
    axes:
        Vertex positions labelling ``arr``'s axes; must be a subset of
        ``full_axes``.
    full_axes:
        Vertex positions labelling the target array's axes.

    Returns
    -------
    numpy.ndarray
        ``arr`` transposed into ``full_axes`` order with singleton axes
        inserted for the missing positions (a view — no copy).
    """
    full_axes = tuple(full_axes)
    axes = tuple(axes)
    if arr.ndim != len(axes):
        raise ValueError(f"term has {arr.ndim} axes but {len(axes)} labels")
    missing = set(axes) - set(full_axes)
    if missing:
        raise ValueError(f"term axes {sorted(missing)} not in target axes")
    rank = {ax: t for t, ax in enumerate(full_axes)}
    perm = sorted(range(len(axes)), key=lambda t: rank[axes[t]])
    if perm != list(range(len(axes))):
        arr = arr.transpose(perm)
    shape = [1] * len(full_axes)
    for t, ax in enumerate(sorted(axes, key=rank.get)):
        shape[rank[ax]] = arr.shape[t]
    return arr.reshape(shape)


def chunked_min_argmin(
    terms: Iterable[tuple[np.ndarray, tuple[int, ...]]],
    full_axes: tuple[int, ...],
    cfg_axis: int,
    cfg_count: int,
    table_shape: tuple[int, ...],
    chunk_cells: int,
    deadline: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Minimize a broadcast sum of terms over the configuration axis.

    Conceptually computes ``cost = Σ aligned(term)`` over
    ``full_axes = table_axes + (cfg_axis,)`` and returns
    ``(cost.min(-1), cost.argmin(-1))`` — but evaluated in chunks along the
    configuration axis so the transient array stays within ``chunk_cells``
    cells.

    Parameters
    ----------
    terms:
        ``(array, axes)`` pairs; axes are vertex positions, subsets of
        ``full_axes``.  Terms whose axes include ``cfg_axis`` are sliced
        per chunk.
    full_axes:
        Table axes followed by the configuration axis.
    cfg_axis:
        Position label of the candidate vertex (last entry of full_axes).
    cfg_count:
        Number of candidate configurations K_i.
    table_shape:
        Shape over the table axes (full_axes minus cfg_axis).
    chunk_cells:
        Max transient cells per chunk evaluation.
    deadline:
        Optional ``time.perf_counter()`` value; raises `TimeoutError` when
        a chunk boundary passes it (big chunked tables can take unbounded
        time while still fitting in memory).
    """
    if full_axes[-1] != cfg_axis:
        raise ValueError("cfg_axis must be the last of full_axes")
    terms = list(terms)
    table_cells = int(np.prod(table_shape, dtype=np.int64)) if table_shape else 1
    chunk = max(1, min(cfg_count, chunk_cells // max(table_cells, 1)))

    best: np.ndarray | None = None
    best_arg: np.ndarray | None = None
    # One transient buffer reused across every chunk *and* across calls
    # (the per-vertex DP used to allocate up to chunk_cells of float64
    # per vertex, spending more time page-faulting than adding).  Per
    # output cell the addition sequence ((t0 + t1) + t2)... is unchanged,
    # so results stay bit-identical.
    buf = kernels._WS.take("dp_acc", table_shape + (chunk,), np.float64)
    for c0 in range(0, cfg_count, chunk):
        if deadline is not None and time.perf_counter() > deadline:
            raise TimeoutError("chunked DP evaluation passed its deadline")
        c1 = min(cfg_count, c0 + chunk)
        acc = buf[..., :c1 - c0]
        first = True
        for arr, axes in terms:
            if cfg_axis in axes:
                sl = [slice(None)] * arr.ndim
                sl[axes.index(cfg_axis)] = slice(c0, c1)
                piece = arr[tuple(sl)]
            else:
                piece = arr
            view = aligned_term(piece, axes, full_axes)
            if first:
                np.copyto(acc, view)
                first = False
            else:
                np.add(acc, view, out=acc)
        if first:
            acc.fill(0.0)
        # Fused min/argmin: one argmin scan + a gather recovers the min
        # (bit-identical to separate min + argmin, numpy tie-break).
        cand, arg32 = kernels.last_axis_min_argmin(acc)
        if best is None:
            # Sole / first chunk: adopt directly (cand < inf everywhere;
            # both outputs are fresh arrays, not workspace views).
            best = cand
            best_arg = arg32
        else:
            arg = arg32 + c0
            better = cand < best
            best = np.where(better, cand, best)
            best_arg = np.where(better, arg, best_arg)
    if best is None:  # pragma: no cover - cfg_count >= 1 always
        best = np.full(table_shape, np.inf, dtype=np.float64)
        best_arg = np.zeros(table_shape, dtype=np.int32)
    return best, best_arg
