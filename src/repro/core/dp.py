"""FINDBESTSTRATEGY (paper, Fig. 4) — the tensorized dynamic program.

Implements recurrence (4):

``R(i, φ) = min_C [ H(i, φ ∪ {(v_i, C)}) + Σ_{X(j) ∈ S(i)} R(j, φ'') ]``

where ``H(i, ·)`` is the layer cost of ``v_i`` plus its transfer costs to
neighbors later in the sequence, ``S(i)`` are the connected subsets of
``v_i``, and tables are keyed by substrategies of the dependent set
``D(i)``.

Representation: the DP table of vertex ``i`` is a numpy array with one
axis per vertex of ``D(i)`` (axis length = that vertex's configuration
count).  All ``Φ_|D(i)`` substrategies are processed per candidate
configuration as one broadcast expression (chunked along the candidate
axis), which keeps the exponential inner loop out of the Python
interpreter entirely.

The memory the paper's Table I reports as "OOM" for the breadth-first
ordering is modelled by a byte budget: before materializing a table the
DP accounts its cells and raises `SearchResourceError` when the budget
would be exceeded.
"""

from __future__ import annotations

import contextlib
import os
import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .._compat import UNSET, reject_ctx_conflict, warn_deprecated_kwargs
from ..obs.profile import current_metrics, current_tracer
from .configs import ConfigSpace
from .costmodel import CostTables
from .exceptions import SearchResourceError
from .graph import CompGraph
from .sequencer import SequencedGraph, generate_seq
from .strategy import SearchResult, Strategy
from . import kernels
from ._tensorops import chunked_min_argmin

__all__ = ["find_best_strategy", "dp_table_profile", "DEFAULT_MEMORY_BUDGET"]

#: Default DP memory budget (bytes).  Generous enough for every
#: GENERATESEQ-ordered benchmark in the paper; the breadth-first ordering
#: blows through it on InceptionV3 and Transformer exactly as Table I's
#: OOM entries indicate.
DEFAULT_MEMORY_BUDGET = 2 << 30

#: Max cells of the transient cost array per chunk (64 MiB of float64).
DEFAULT_CHUNK_CELLS = 8_000_000

#: Auto-bypass threshold for ``reduce=True``: the reduction runs only
#: when the predicted plain-DP work (``Σ_i K_i·Π_{d∈D(i)} K_d`` cells,
#: from `dp_table_profile`) exceeds this multiple of the cost tables'
#: own cells (`CostTables.work_cells`).  Reduction reads every table
#: cell a small number of times, so its wall-clock scales with the
#: table mass; the DP's scales with the dependent-set blowup.  When the
#: ratio is small the DP is already near its lower bound and reduction
#: can only add time (AlexNet/RNNLM chains sit at ratio ~1 at every p;
#: the branchy models pay off from ~10^2 up).  Both predictors are
#: exact integers — the bypass decision is deterministic for a given
#: problem, never a wall-clock race.
DEFAULT_REDUCE_BYPASS_RATIO = 64.0

#: Environment override for the auto-bypass ratio (a float; ``0``
#: disables bypassing, i.e. ``reduce=True`` behaves like ``"always"``).
REDUCE_BYPASS_ENV_VAR = "PASE_REDUCE_BYPASS_RATIO"


def _resolve_reduce_mode(reduce: "bool | str") -> str:
    """Normalize the ``reduce`` flag to ``"off"``/``"auto"``/``"always"``."""
    if reduce is False or reduce is None:
        return "off"
    if reduce is True:
        return "auto"
    if reduce in ("off", "never", "auto", "always"):
        return "off" if reduce == "never" else reduce
    raise ValueError(
        f"reduce must be a bool, 'auto', 'always', 'never' or 'off'; "
        f"got {reduce!r}")


def _bypass_ratio(override: float | None) -> float:
    """Effective auto-bypass ratio: explicit kwarg > env var > default."""
    if override is not None:
        return float(override)
    raw = os.environ.get(REDUCE_BYPASS_ENV_VAR)
    if raw:
        try:
            return float(raw)
        except ValueError:
            raise ValueError(
                f"{REDUCE_BYPASS_ENV_VAR} must be a float, got {raw!r}"
            ) from None
    return DEFAULT_REDUCE_BYPASS_RATIO


@dataclass
class _VertexRecord:
    """Stored DP state for one sequenced vertex."""

    axes: tuple[int, ...]          # D(i) positions labelling table axes
    table: np.ndarray | None       # min-cost over substrategies of D(i)
    argmin: np.ndarray             # best config index of v_i per cell
    children: tuple[int, ...]      # max position j of each component in S(i)


def find_best_strategy(
    graph: CompGraph,
    space: ConfigSpace,
    tables: CostTables,
    *,
    order: Sequence[str] | None = None,
    memory_budget: int = DEFAULT_MEMORY_BUDGET,
    chunk_cells: int = DEFAULT_CHUNK_CELLS,
    method_name: str = "pase-dp",
    reduce: "bool | str" = False,
    reduce_bypass_ratio: float | None = None,
    objective: str = "cost",
    kernel: str | None = None,
    ctx: "object | None" = None,
    checkpoint: Callable[..., None] | None = UNSET,
) -> SearchResult:
    """Find the minimum-cost strategy under the cost oracle ``tables``.

    Parameters
    ----------
    graph, space, tables:
        The computation graph, its configuration space, and the
        precomputed cost tables (all for the same ``p`` and machine).
    order:
        Vertex ordering; defaults to GENERATESEQ.  Passing a
        breadth-first or random ordering reproduces the paper's baselines
        — recurrence (4) is valid for any ordering (Theorem 1), only the
        table sizes change.
    memory_budget:
        Byte budget for live DP tables plus the transient cost array;
        exceeding it raises `SearchResourceError` (Table I's "OOM").
    reduce:
        Run the exactness-preserving search-space reduction (dominance
        pruning + chain contraction, `repro.core.reduction`) first, solve
        the reduced problem, and expand the optimum back to the original
        space.  The returned cost is re-evaluated on the original tables;
        ``stats`` gains the ``reduction_*`` counters.  ``True`` (or
        ``"auto"``) applies the work-ratio auto-bypass: when the
        predicted plain-DP cells are below ``reduce_bypass_ratio`` times
        `CostTables.work_cells` the reduction is skipped (it could only
        add wall-clock) and the plain DP runs, with
        ``stats["reduction_bypassed"] == 1.0``.  ``"always"`` disables
        the bypass (tests pin reduction behavior with it); ``"never"``/
        ``"off"`` are spellings of ``False``.
    reduce_bypass_ratio:
        Auto-bypass threshold override (see
        `DEFAULT_REDUCE_BYPASS_RATIO`); falls back to the
        ``PASE_REDUCE_BYPASS_RATIO`` environment variable, then the
        default.  ``0`` makes ``"auto"`` behave like ``"always"``.
    objective:
        ``"cost"`` (default) runs the scalar DP exactly as before —
        same code path, bit-identical results.  ``"frontier"`` (or
        ``"frontier:eps=<float>"``) dispatches to the Pareto-frontier
        DP (`repro.core.frontier.find_frontier_strategy`): the result's
        ``.frontier`` carries every non-dominated (cost, peak-bytes)
        pair and ``strategy``/``cost`` its min-cost point, bit-identical
        to the scalar optimum.
    kernel:
        Compute backend for the hot kernels for the duration of this
        search: ``"numpy"`` (default), ``"numba"`` (compiled; falls back
        to numpy with a logged warning when numba is missing), or
        ``"auto"``.  ``None`` inherits the process-wide selection
        (`repro.core.kernels.set_backend` / ``PASE_KERNEL``).
    ctx:
        A `repro.runtime.RunContext` supplying the cooperative
        checkpoint (composed from its budget/cancellation/journal) and
        the observability pair, which is activated for the duration of
        the search so reduction rounds and per-vertex spans land in the
        caller's trace.
    checkpoint:
        **Deprecated** spelling of the same cooperative hook: a callable
        polled once per DP vertex (and per reduction round when
        ``reduce`` is on) with ``phase``/``step``/``total`` keywords.
        It aborts the search by raising — e.g. `DeadlineExceededError`
        or `RunInterrupted` — always between vertices, never mid-table,
        so no partial state escapes.  Pass ``ctx=`` instead.

    Returns
    -------
    SearchResult
        With ``stats`` containing ``cells`` (DP cells evaluated),
        ``peak_bytes``, ``max_dependent`` (M), and ``k_max`` (K).
    """
    if checkpoint is not UNSET:
        if ctx is not None:
            reject_ctx_conflict("find_best_strategy", ["checkpoint"])
        warn_deprecated_kwargs("find_best_strategy", ["checkpoint"])
    else:
        checkpoint = None
    observed = contextlib.nullcontext()
    if ctx is not None:
        checkpoint = ctx.make_checkpoint()
        observed = ctx.observe()
        if kernel is None:
            kernel = getattr(ctx, "kernel", None)
    with observed, kernels.use(kernel):
        if objective != "cost":
            from .frontier import find_frontier_strategy, parse_objective

            obj = parse_objective(objective)
            if not obj.is_frontier:  # "cost" spelled oddly, e.g. " cost "
                obj = None
            if obj is not None:
                return find_frontier_strategy(
                    graph, space, tables, eps=obj.eps, order=order,
                    memory_budget=memory_budget, chunk_cells=chunk_cells,
                    method_name=method_name, reduce=reduce,
                    reduce_bypass_ratio=reduce_bypass_ratio,
                    checkpoint=checkpoint)
        return _find_best_strategy(
            graph, space, tables, order=order, memory_budget=memory_budget,
            chunk_cells=chunk_cells, method_name=method_name, reduce=reduce,
            reduce_bypass_ratio=reduce_bypass_ratio, checkpoint=checkpoint)


def _find_best_strategy(
    graph: CompGraph,
    space: ConfigSpace,
    tables: CostTables,
    *,
    order: Sequence[str] | None,
    memory_budget: int,
    chunk_cells: int,
    method_name: str,
    reduce: "bool | str" = False,
    reduce_bypass_ratio: float | None = None,
    checkpoint: Callable[..., None] | None = None,
    seq: SequencedGraph | None = None,
) -> SearchResult:
    """The implementation behind the public shim: legacy kwargs already
    resolved, the observability pair taken from the ambient context.
    ``seq`` short-circuits sequencing when the caller already built it
    (the auto-bypass path predicts DP work from the sequenced graph and
    hands it down, so a bypassed search pays only the predictor)."""
    t0 = time.perf_counter()
    mode = _resolve_reduce_mode(reduce)
    bypassed = False
    if mode == "auto":
        # Predict the plain DP's work from the sequenced graph.  Both
        # sides of the comparison are exact integers, so the decision is
        # deterministic for a given problem — never a wall-clock race.
        seq = SequencedGraph.build(
            graph, generate_seq(graph) if order is None else order)
        ratio = _bypass_ratio(reduce_bypass_ratio)
        predicted_dp_cells = sum(dp_table_profile(seq, space))
        # When the DP is already near the tables' own size, reduction —
        # which reads at least that many cells — can only add
        # wall-clock.  Fall through to the plain DP, reusing ``seq``.
        bypassed = predicted_dp_cells < ratio * tables.work_cells()
    if mode != "off" and not bypassed:
        from .reduction import reduce_problem

        red = reduce_problem(graph, space, tables, checkpoint=checkpoint)
        sub_order = order
        if order is not None:
            live = set(red.survivors)
            sub_order = tuple(n for n in order if n in live)
        inner = _find_best_strategy(
            red.reduced_graph, red.reduced_space, red.reduced_tables,
            order=sub_order, memory_budget=memory_budget,
            chunk_cells=chunk_cells, method_name=method_name,
            checkpoint=checkpoint)
        return red.expand_result(inner, elapsed=time.perf_counter() - t0)
    if seq is None:
        if order is None:
            order = generate_seq(graph)
        seq = SequencedGraph.build(graph, order)
    n = len(seq)
    if n == 0:
        # Fully-contracted problems legitimately reach the DP with zero
        # vertices; report real (all-zero) counters so downstream stats
        # processing never special-cases the empty problem.
        stats = {"cells": 0.0, "peak_bytes": 0.0, "max_dependent": 0.0,
                 "k_max": 0.0, "vertices": 0.0}
        if bypassed:
            stats["reduction_bypassed"] = 1.0
        for key, val in tables.build_stats.items():
            stats[f"table_{key}"] = float(val)
        return SearchResult(Strategy({}), 0.0, time.perf_counter() - t0,
                            method_name, stats=stats)

    ksize = np.array([space.size(name) for name in seq.order], dtype=np.int64)
    records: list[_VertexRecord | None] = [None] * n
    live_bytes = 0
    peak_bytes = 0
    cells_evaluated = 0
    tracer = current_tracer()

    with tracer.span("dp", vertices=n, method=method_name) as dp_span:
        for i in range(n):
            if checkpoint is not None:
                checkpoint(phase="dp", step=i, total=n)
            with tracer.span("dp.vertex",
                             name=seq.name(i) if tracer.enabled else ""):
                dep = seq.dep[i]
                comps = seq.connected_subsets(i)
                children = tuple(max(c) for c in comps)
                full_axes = dep + (i,)
                table_shape = tuple(int(ksize[d]) for d in dep)
                table_cells = int(np.prod(table_shape, dtype=np.int64)) if dep else 1

                # -- memory accounting (tables are float64 + int32 argmin) --------
                needed = table_cells * 12 + min(table_cells * int(ksize[i]), chunk_cells) * 8
                if live_bytes + needed > memory_budget:
                    raise SearchResourceError(
                        f"DP table for vertex {seq.name(i)!r} needs {needed} bytes "
                        f"({live_bytes} live, budget {memory_budget}); |D(i)|={len(dep)}",
                        requested_bytes=live_bytes + needed, budget_bytes=memory_budget)
                # The transient high-water mark for this vertex: everything live
                # before it, plus the new table/argmin and the chunked cost array
                # (both inside `needed` — counting them again after the
                # ``live_bytes`` update below would double-charge the table).
                peak_bytes = max(peak_bytes, live_bytes + needed)

                terms: list[tuple[np.ndarray, tuple[int, ...]]] = []
                terms.append((tables.lc[seq.name(i)], (i,)))
                for u in seq.later_neighbors(i):
                    mat = tables.tx(seq.name(i), seq.name(u))  # [K_i, K_u]
                    terms.append((mat, (i, u)))
                for j in children:
                    rec = records[j]
                    assert rec is not None and rec.table is not None, \
                        f"child table {j} consumed twice"
                    terms.append((rec.table, rec.axes))

                table, argmin = chunked_min_argmin(
                    terms, full_axes, i, int(ksize[i]), table_shape, chunk_cells)
                cells_evaluated += table_cells * int(ksize[i])

                # Child tables are consulted exactly once; free them.
                for j in children:
                    rec = records[j]
                    assert rec is not None and rec.table is not None
                    live_bytes -= rec.table.nbytes
                    rec.table = None

                records[i] = _VertexRecord(axes=dep, table=table, argmin=argmin,
                                           children=children)
                live_bytes += table.nbytes + argmin.nbytes

        # -- total cost: sum of the (scalar) root tables -----------------------
        roots = seq.roots()
        total = 0.0
        for rt in roots:
            rec = records[rt]
            assert rec is not None and rec.table is not None and rec.table.shape == ()
            total += float(rec.table)

        # -- back-substitution (Fig. 4's v.cfg extraction), iterative ----------
        chosen: dict[int, int] = {}
        stack = list(roots)
        while stack:
            i = stack.pop()
            rec = records[i]
            assert rec is not None
            idx = tuple(chosen[d] for d in rec.axes)
            chosen[i] = int(rec.argmin[idx])
            stack.extend(rec.children)
        assert len(chosen) == n, "extraction did not reach every vertex"

        dp_span.set(cells=cells_evaluated, peak_bytes=peak_bytes)

    indices = {seq.name(i): k for i, k in chosen.items()}
    strategy = Strategy.from_indices(space, indices)
    elapsed = time.perf_counter() - t0
    stats = {
        "cells": float(cells_evaluated),
        "peak_bytes": float(peak_bytes),
        "max_dependent": float(seq.max_dependent_size),
        "k_max": float(space.max_size),
        "vertices": float(n),
    }
    if bypassed:
        # reduce="auto" decided the reduction could not pay for itself
        # on this problem; the plain DP ran instead.
        stats["reduction_bypassed"] = 1.0
    # Surface the table-construction phase (build seconds, cache hit,
    # worker count) alongside the DP's own counters.
    for key, val in tables.build_stats.items():
        stats[f"table_{key}"] = float(val)
    metrics = current_metrics()
    metrics.counter("dp_cells_total", "DP cells evaluated").inc(cells_evaluated)
    metrics.counter("dp_vertices_total", "DP vertices solved").inc(n)
    if elapsed > 0:
        metrics.gauge("dp_cells_per_second",
                      "DP cell throughput").set(cells_evaluated / elapsed)
    return SearchResult(
        strategy=strategy,
        cost=total,
        elapsed=elapsed,
        method=method_name,
        stats=stats,
    )


def dp_table_profile(seq: SequencedGraph, space: ConfigSpace) -> list[int]:
    """Cells of each vertex's DP cost array, ``Π_{d ∈ D(i)} K_d · K_i``.

    A cheap predictor of the DP's time/memory for an ordering — this is
    the quantity GENERATESEQ minimizes and the Section III-C analysis
    reports (``K^{M+1}`` combinations per vertex).
    """
    sizes = []
    for i in range(len(seq)):
        cells = space.size(seq.name(i))
        for d in seq.dep[i]:
            cells *= space.size(seq.name(d))
        sizes.append(int(cells))
    return sizes
