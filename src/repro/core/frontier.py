"""Pareto-frontier dynamic program: cost × per-device memory (TensorOpt).

The scalar DP (`repro.core.dp`) answers "the one fastest strategy"; the
production question (PAPERS.md, TensorOpt) is the *frontier* of
(step time, per-device memory) tradeoffs — you pick a point after you
know the cluster's memory headroom.  This module runs the same
recurrence (4) over the same sequenced orderings, but each DP state
carries a pruned set of non-dominated ``(cost, peak_bytes)`` pairs
instead of a scalar min.

Exactness and bit-identity contracts
------------------------------------

* The frontier is **exact**: only dominated pairs are pruned (strict
  partial order, deterministic lexicographic tie-break), unless the
  optional ``eps`` coarsening knob is set, in which case within each
  state at most one point per geometric memory bucket of width
  ``(1 + eps)`` survives (the min-cost point is always exact).
* The frontier's **min-cost point carries a cost bit-identical to the
  scalar DP optimum**: per cell the cost accumulation ``((lc + tx…) +
  child₁) + child₂`` uses the scalar DP's exact association and float
  addition is monotone, so each state's min-cost point is the exact
  scalar table value.  (Its *strategy* is a min-cost witness — among
  exact cost ties the prune deterministically keeps the lowest-memory
  one, which need not be the scalar argmin's first-occurrence pick.)

Representation: the point table of vertex ``i`` is CSR over the cells
of its dependent set ``D(i)`` — ``offsets [cells+1]``, per-point
``cost``/``mem`` float64, the vertex's own configuration index ``k``,
and one back-pointer column per consumed child (the point index inside
the child's projected cell).  Children are merged one at a time as a
per-cell Minkowski sum followed by a grouped Pareto prune, all
vectorized (`pareto_prune` is a lexsort plus one segmented running-min
— no Python-level per-cell loop).

Memory is accounted against the same byte budget as the scalar DP and
exceeded budgets raise `SearchResourceError` (Table I's "OOM").
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from ..obs.profile import current_metrics, current_tracer
from .configs import ConfigSpace
from .costmodel import CostTables
from .dp import (DEFAULT_CHUNK_CELLS, DEFAULT_MEMORY_BUDGET, _bypass_ratio,
                 _resolve_reduce_mode, dp_table_profile)
from .exceptions import SearchResourceError, StrategyError
from .graph import CompGraph
from .sequencer import SequencedGraph, generate_seq
from .strategy import FrontierPoint, SearchResult, Strategy
from ._tensorops import aligned_term

__all__ = ["Objective", "parse_objective", "find_frontier_strategy",
           "pareto_prune", "brute_force_frontier", "memory_tables",
           "strategy_peak_bytes"]


@dataclass(frozen=True)
class Objective:
    """A parsed search objective: scalar cost or the Pareto frontier."""

    kind: str        # "cost" | "frontier"
    eps: float = 0.0

    @property
    def is_frontier(self) -> bool:
        return self.kind == "frontier"

    @property
    def canonical(self) -> str:
        """The canonical string spelling (what fingerprints embed)."""
        if self.kind == "cost":
            return "cost"
        if self.eps > 0.0:
            return f"frontier:eps={self.eps:g}"
        return "frontier"


def parse_objective(objective: "str | Objective") -> Objective:
    """Parse an objective spelling: ``"cost"``, ``"frontier"``, or
    ``"frontier:eps=<float>"`` (a non-negative coarsening knob)."""
    if isinstance(objective, Objective):
        return objective
    if not isinstance(objective, str):
        raise ValueError(
            f"objective must be a string, got {type(objective).__name__}")
    text = objective.strip()
    if text == "cost":
        return Objective("cost")
    if text == "frontier":
        return Objective("frontier")
    if text.startswith("frontier:"):
        eps = 0.0
        for part in text[len("frontier:"):].split(","):
            key, sep, val = part.partition("=")
            if key.strip() != "eps" or not sep:
                raise ValueError(
                    f"unknown frontier option {part.strip()!r} in "
                    f"{objective!r}; expected 'frontier:eps=<float>'")
            try:
                eps = float(val)
            except ValueError:
                raise ValueError(
                    f"frontier eps must be a float, got {val!r}") from None
            if not math.isfinite(eps) or eps < 0.0:
                raise ValueError(
                    f"frontier eps must be finite and >= 0, got {eps!r}")
        return Objective("frontier", eps)
    raise ValueError(
        f"unknown objective {objective!r}; expected 'cost', 'frontier', "
        f"or 'frontier:eps=<float>'")


def memory_tables(graph: CompGraph, space: ConfigSpace,
                  ) -> dict[str, np.ndarray]:
    """Per-node per-config memory tables, ``name -> float64 [K]`` bytes.

    The second objective axis: `MemoryModel.node_bytes` vectorized over
    each node's enumerated configurations — parameter shards with
    optimizer state, activation shards, and communication buffers.
    """
    from ..analysis.memory import MemoryModel

    mm = MemoryModel()
    return {name: np.ascontiguousarray(
                mm.node_bytes(graph.node(name), tab), dtype=np.float64)
            for name, tab in space.tables.items()}


def strategy_peak_bytes(graph: CompGraph, space: ConfigSpace,
                        strategy: Strategy, *,
                        mem_tables: "Mapping[str, np.ndarray] | None" = None,
                        ) -> float:
    """One strategy's peak bytes — the frontier's second axis, priced the
    way the frontier DP prices it (``Σ_v mem[v][k_v]``), so a scalar
    run's synthesized length-1 frontier is comparable to a real one."""
    if mem_tables is None:
        mem_tables = memory_tables(graph, space)
    idx = strategy.to_indices(space)
    return float(sum(float(mem_tables[n][k]) for n, k in idx.items()))


# ---------------------------------------------------------------------------
# Grouped Pareto prune
# ---------------------------------------------------------------------------

def pareto_prune(gid: np.ndarray, cost: np.ndarray, mem: np.ndarray, *,
                 eps: float = 0.0) -> np.ndarray:
    """Indices of the non-dominated points of each group, vectorized.

    Within each group (DP cell), point ``j`` is dropped when some point
    ``i`` has ``cost[i] <= cost[j]`` and ``mem[i] <= mem[j]`` — strict
    somewhere, with the deterministic tie-break that among exactly-equal
    pairs the earliest original index survives.

    Returns int64 indices into the inputs, ordered by (group, ascending
    cost, ascending mem); within a group the survivors' memory is
    strictly decreasing, and the group's first survivor is its min-cost
    point (min-memory among exact cost ties).

    With ``eps > 0``, survivors are additionally coarsened to one point
    per geometric memory bucket of width ``(1 + eps)`` — the kept point
    is the bucket's min-cost one, and each group's overall min-cost
    point is always exact.

    Exact in every float comparison: the segmented running-min runs on
    dense integer ranks of ``mem``, so no group-offset arithmetic ever
    perturbs a comparison.
    """
    n = int(cost.shape[0])
    if n == 0:
        return np.empty(0, dtype=np.int64)
    gid = np.asarray(gid, dtype=np.int64)
    if n > 1 and np.any(gid[1:] < gid[:-1]):
        raise ValueError("pareto_prune requires nondecreasing group ids")

    # O(n) pre-filter, no sort: each group's min-cost point (min-memory
    # among its cost ties, value (gmin, m*)) dominates every point with
    # mem >= m* other than its own exact duplicates.  Survivors are the
    # actual frontier candidates — typically a tiny fraction — and only
    # they pay the exact sort-based prune below.
    gstart = np.empty(n, dtype=bool)
    gstart[0] = True
    gstart[1:] = gid[1:] != gid[:-1]
    starts = np.flatnonzero(gstart)
    counts = np.diff(np.append(starts, n))
    gmin = np.minimum.reduceat(cost, starts)
    on_min = cost == np.repeat(gmin, counts)
    m_star = np.minimum.reduceat(np.where(on_min, mem, np.inf), starts)
    m_star_p = np.repeat(m_star, counts)
    cand = (mem < m_star_p) | (on_min & (mem == m_star_p))
    idx0 = np.flatnonzero(cand)
    if idx0.shape[0] == starts.shape[0]:
        # Exactly one candidate per group: already the frontier, already
        # in canonical (group, cost) order — and trivially eps-coarse.
        return idx0

    g2 = gid[idx0]
    c2 = cost[idx0]
    m2 = mem[idx0]
    k = int(idx0.shape[0])
    # For nonnegative floats the IEEE bit pattern is order- (and
    # equality-) preserving as int64, and numpy's stable sort on int64
    # is a radix sort — much faster than float mergesort.  ``+ 0.0``
    # normalizes -0.0; fall back to float keys on negative input.
    if np.min(c2) >= 0.0 and np.min(m2) >= 0.0:
        ck = (c2 + 0.0).view(np.int64)
        mk = (m2 + 0.0).view(np.int64)
    else:
        ck, mk = c2, m2
    # Stable (group, cost, mem) order built as three composed stable
    # argsorts — exactly np.lexsort((mk, ck, g2)), but the dense memory
    # ranks fall out of the first pass for free.  Exact ties keep
    # ascending original index, so within a group the first point is
    # its min-cost point and a cost-tie class leads with its min-memory
    # member (the forward scan drops the rest).
    o1 = np.argsort(mk, kind="stable")
    ms = mk[o1]
    ranks = np.empty(k, dtype=np.int64)
    step = np.empty(k, dtype=np.int64)
    step[0] = 0
    np.cumsum(ms[1:] != ms[:-1], out=step[1:])
    ranks[o1] = step
    o2 = o1[np.argsort(ck[o1], kind="stable")]
    order = o2[np.argsort(g2[o2], kind="stable")]
    g = g2[order]
    g2start = np.empty(k, dtype=bool)
    g2start[0] = True
    g2start[1:] = g[1:] != g[:-1]
    gdense = np.cumsum(g2start) - 1
    ngroups = int(gdense[-1]) + 1
    # Encode (group, mem rank) so a single running min is a *segmented*
    # one: strictly decreasing per-group offsets make every
    # earlier-group value larger than any current-group value.
    base = np.int64(k + 1)
    enc = ranks[order] + (np.int64(ngroups) - 1 - gdense) * base
    run = np.minimum.accumulate(enc)
    keep = np.empty(k, dtype=bool)
    keep[0] = True
    keep[1:] = enc[1:] < run[:-1]
    if eps > 0.0:
        kidx = np.flatnonzero(keep)
        km = m2[order[kidx]]
        kg = gdense[kidx]
        bucket = np.floor(np.log(np.maximum(km, 1.0))
                          / math.log1p(eps)).astype(np.int64)
        first = np.empty(kidx.shape[0], dtype=bool)
        first[0] = True
        first[1:] = (kg[1:] != kg[:-1]) | (bucket[1:] != bucket[:-1])
        keep = np.zeros(k, dtype=bool)
        keep[kidx[first]] = True
    return idx0[order[keep]]


# ---------------------------------------------------------------------------
# Point tables
# ---------------------------------------------------------------------------

@dataclass
class _PointRecord:
    """Stored frontier state for one sequenced vertex (CSR point table)."""

    axes: tuple[int, ...]        # D(i) positions labelling the cells
    offsets: np.ndarray          # int64 [cells + 1]
    cost: np.ndarray | None      # float64 [P]; freed once consumed
    mem: np.ndarray | None       # float64 [P]; freed once consumed
    k: np.ndarray                # int32 [P] — v_i's config per point
    childpt: np.ndarray          # int32 [P, n_children] — child point index
    children: tuple[int, ...]

    def value_bytes(self) -> int:
        cost = self.cost.nbytes if self.cost is not None else 0
        mem = self.mem.nbytes if self.mem is not None else 0
        return cost + mem

    def nbytes(self) -> int:
        return (self.offsets.nbytes + self.value_bytes()
                + self.k.nbytes + self.childpt.nbytes)


class _Ledger:
    """Byte accounting against the DP memory budget (Table I's OOM)."""

    def __init__(self, budget: int) -> None:
        self.live = 0
        self.peak = 0
        self.budget = int(budget)

    def check(self, extra: int, what: str) -> None:
        if self.live + extra > self.budget:
            raise SearchResourceError(
                f"frontier DP needs {extra} bytes for {what} "
                f"({self.live} live, budget {self.budget})",
                requested_bytes=self.live + extra, budget_bytes=self.budget)
        self.peak = max(self.peak, self.live + extra)

    def add(self, nbytes: int) -> None:
        self.live += nbytes
        self.peak = max(self.peak, self.live)

    def sub(self, nbytes: int) -> None:
        self.live -= nbytes


def _projection(child_axes: tuple[int, ...], full_axes: tuple[int, ...],
                full_shape: tuple[int, ...]) -> np.ndarray:
    """Child-cell flat id (C-order over ``child_axes``) per full cell."""
    out = np.zeros(full_shape, dtype=np.int64)
    mult = 1
    for ax in reversed(child_axes):
        t = full_axes.index(ax)
        coord = np.arange(full_shape[t], dtype=np.int64) * mult
        shape = [1] * len(full_shape)
        shape[t] = full_shape[t]
        out += coord.reshape(shape)
        mult *= full_shape[t]
    return out.reshape(-1)


def _accumulate_terms(terms, full_axes: tuple[int, ...],
                      out: np.ndarray) -> None:
    """``out = Σ aligned(term)`` with the scalar DP's exact association."""
    first = True
    for arr, axes in terms:
        view = aligned_term(arr, axes, full_axes)
        if first:
            np.copyto(out, view)
            first = False
        else:
            np.add(out, view, out=out)
    if first:
        out.fill(0.0)


def _merge_child(acc, child_offsets: np.ndarray, child_cost: np.ndarray,
                 child_mem: np.ndarray, proj: np.ndarray, *, eps: float,
                 pair_chunk: int, ledger: _Ledger,
                 group_of_cell: np.ndarray | None = None,
                 group_size: int = 1,
                 n_groups: int = 0,
                 k_of_cell: np.ndarray | None = None):
    """Minkowski-sum one child into the accumulated point set, pruned.

    ``acc`` is ``(offsets, cost, mem, childpt)`` CSR over the parent's
    full cells; the child's cell per full cell is ``proj``.  Candidate
    order within a cell is (accumulated point asc, child point asc) —
    both sides are cost-sorted, so the (0, 0) combination is the
    min-cost candidate and the stable prune keeps it first (float
    addition is monotone), preserving the scalar DP's accumulation.

    Fast path: when either side is a singleton in every cell (and no
    coarsening is requested), the sum is one frontier shifted by a
    constant — already non-dominated and cost-sorted — so the prune is
    skipped entirely.

    Fused candidate-axis reduction: with ``group_of_cell`` set (the
    parent's last child merge), the prune groups by the *dependent-set*
    cell — each run of ``group_size`` consecutive full cells — instead
    of the full cell, performing the DP's reduction over the vertex's
    own configuration axis in the same pass.  The returned CSR is then
    over the ``n_groups`` dependent-set cells and a fifth array gives
    each point's own-config index (``k_of_cell`` gathered).
    """
    offsets, cost_a, mem_a, childpt = acc
    n_cells = offsets.shape[0] - 1
    counts_a = np.diff(offsets)
    counts_b = np.diff(child_offsets)[proj]
    pair = counts_a * counts_b
    pair_off = np.zeros(n_cells + 1, dtype=np.int64)
    np.cumsum(pair, out=pair_off[1:])
    fused = group_of_cell is not None
    skip_prune = (not fused and eps == 0.0
                  and (int(counts_a.max(initial=0)) <= 1
                       or int(counts_b.max(initial=0)) <= 1))

    out_cost: list[np.ndarray] = []
    out_mem: list[np.ndarray] = []
    out_childpt: list[np.ndarray] = []
    out_cells: list[np.ndarray] = []
    out_k: list[np.ndarray] = []
    start = 0
    while start < n_cells:
        end = int(np.searchsorted(pair_off, pair_off[start] + pair_chunk,
                                  side="right")) - 1
        end = min(n_cells, max(end, start + 1))
        if fused:
            # Chunks must not split a dependent-set cell's group.
            end = min(n_cells, max(start + group_size,
                                   (end // group_size) * group_size))
        total = int(pair_off[end] - pair_off[start])
        # Transient per candidate: cost+mem (16) + index arrays (~56).
        ledger.check(total * 72, "a frontier merge chunk")
        # Candidate construction by repeats (no integer div/mod): each
        # accumulated point of the chunk expands to its cell's
        # child-point count, child points in ascending local order.
        cell_of_a = np.repeat(np.arange(start, end, dtype=np.int64),
                              counts_a[start:end])
        cbp = counts_b[cell_of_a]
        n_a = cell_of_a.shape[0]
        bs = np.zeros(n_a, dtype=np.int64)
        np.cumsum(cbp[:-1], out=bs[1:])
        b_local = np.arange(total, dtype=np.int64) - np.repeat(bs, cbp)
        a0, a1 = int(offsets[start]), int(offsets[end])
        a_idx = np.repeat(np.arange(a0, a1, dtype=np.int64), cbp)
        b_idx = np.repeat(child_offsets[proj[cell_of_a]], cbp) + b_local
        ncost = np.repeat(cost_a[a0:a1], cbp) + child_cost[b_idx]
        nmem = np.repeat(mem_a[a0:a1], cbp) + child_mem[b_idx]
        cell_of = np.repeat(cell_of_a, cbp)
        if skip_prune:
            out_cost.append(ncost)
            out_mem.append(nmem)
            out_childpt.append(np.concatenate(
                [childpt[a_idx], b_local[:, None].astype(np.int32)], axis=1))
            out_cells.append(cell_of)
        else:
            gid = group_of_cell[cell_of] if fused else cell_of
            kept = pareto_prune(gid, ncost, nmem, eps=eps)
            out_cost.append(ncost[kept])
            out_mem.append(nmem[kept])
            out_childpt.append(np.concatenate(
                [childpt[a_idx[kept]], b_local[kept, None].astype(np.int32)],
                axis=1))
            if fused:
                out_cells.append(gid[kept])
                out_k.append(k_of_cell[cell_of[kept]])
            else:
                out_cells.append(cell_of[kept])
        start = end

    n_out = n_groups if fused else n_cells
    cost_n = np.concatenate(out_cost) if out_cost else np.empty(0)
    mem_n = np.concatenate(out_mem) if out_mem else np.empty(0)
    childpt_n = (np.concatenate(out_childpt)
                 if out_childpt else np.empty((0, childpt.shape[1] + 1),
                                              dtype=np.int32))
    cells_n = (np.concatenate(out_cells)
               if out_cells else np.empty(0, dtype=np.int64))
    off_n = np.zeros(n_out + 1, dtype=np.int64)
    np.cumsum(np.bincount(cells_n, minlength=n_out), out=off_n[1:])
    if fused:
        k_n = (np.concatenate(out_k) if out_k
               else np.empty(0, dtype=np.int32))
        return off_n, cost_n, mem_n, childpt_n, k_n
    return off_n, cost_n, mem_n, childpt_n


# ---------------------------------------------------------------------------
# The frontier DP
# ---------------------------------------------------------------------------

def find_frontier_strategy(
    graph: CompGraph,
    space: ConfigSpace,
    tables: CostTables,
    *,
    eps: float = 0.0,
    order: Sequence[str] | None = None,
    memory_budget: int = DEFAULT_MEMORY_BUDGET,
    chunk_cells: int = DEFAULT_CHUNK_CELLS,
    method_name: str = "pase-dp",
    reduce: "bool | str" = False,
    reduce_bypass_ratio: float | None = None,
    checkpoint: Callable[..., None] | None = None,
    mem_tables: "Mapping[str, np.ndarray] | None" = None,
) -> SearchResult:
    """Compute the exact (cost, peak-bytes) Pareto frontier of a problem.

    Same contract as `repro.core.dp.find_best_strategy` (ordering,
    budgets, checkpoints, reduction modes), but the returned
    `SearchResult` carries the full non-dominated frontier in
    ``.frontier`` (ascending cost) with ``strategy``/``cost`` set to its
    min-cost point — bit-identical to the scalar DP optimum.

    ``reduce`` runs the memory-aware reduction first: dominance pruning
    gains the memory column (exact for both axes) and chain contraction
    is auto-disabled (its min-fold is scalar-objective), with
    ``reduction_*`` stats recording which rules ran.  ``mem_tables``
    overrides the per-node memory tables (``tables.mem`` or
    `memory_tables` otherwise).
    """
    t0 = time.perf_counter()
    if not math.isfinite(eps) or eps < 0.0:
        raise ValueError(f"eps must be finite and >= 0, got {eps!r}")
    mode = _resolve_reduce_mode(reduce)
    if mem_tables is None:
        mem_tables = getattr(tables, "mem", None)
        if mem_tables is None:
            mem_tables = memory_tables(graph, space)

    bypassed = False
    seq: SequencedGraph | None = None
    if mode == "auto":
        seq = SequencedGraph.build(
            graph, generate_seq(graph) if order is None else order)
        ratio = _bypass_ratio(reduce_bypass_ratio)
        predicted_dp_cells = sum(dp_table_profile(seq, space))
        bypassed = predicted_dp_cells < ratio * tables.work_cells()
    if mode != "off" and not bypassed:
        from .reduction import reduce_problem

        red = reduce_problem(graph, space, tables, memory=mem_tables,
                             checkpoint=checkpoint)
        sub_order = order
        if order is not None:
            live = set(red.survivors)
            sub_order = tuple(n for n in order if n in live)
        reduced_mem = {
            n: np.ascontiguousarray(
                np.asarray(mem_tables[n], dtype=np.float64)[
                    red.config_maps[n]])
            for n in red.survivors}
        inner = find_frontier_strategy(
            red.reduced_graph, red.reduced_space, red.reduced_tables,
            eps=eps, order=sub_order, memory_budget=memory_budget,
            chunk_cells=chunk_cells, method_name=method_name,
            checkpoint=checkpoint, mem_tables=reduced_mem)
        return _expand_frontier_result(red, inner,
                                       elapsed=time.perf_counter() - t0)

    if seq is None:
        if order is None:
            order = generate_seq(graph)
        seq = SequencedGraph.build(graph, order)
    n = len(seq)
    method = f"{method_name}+frontier"
    if n == 0:
        stats = {"cells": 0.0, "peak_bytes": 0.0, "max_dependent": 0.0,
                 "k_max": 0.0, "vertices": 0.0, "frontier_points": 1.0,
                 "frontier_max_state_points": 0.0,
                 "frontier_eps": float(eps), "frontier_cells": 0.0}
        if bypassed:
            stats["reduction_bypassed"] = 1.0
        for key, val in tables.build_stats.items():
            stats[f"table_{key}"] = float(val)
        strat = Strategy({})
        return SearchResult(strat, 0.0, time.perf_counter() - t0, method,
                            stats=stats,
                            frontier=(FrontierPoint(0.0, 0.0, strat),))

    ksize = np.array([space.size(name) for name in seq.order], dtype=np.int64)
    mem_by_pos = [np.ascontiguousarray(
        np.asarray(mem_tables[seq.name(i)], dtype=np.float64))
        for i in range(n)]
    records: list[_PointRecord | None] = [None] * n
    ledger = _Ledger(memory_budget)
    cells_evaluated = 0
    max_state_points = 0
    tracer = current_tracer()

    with tracer.span("frontier", vertices=n, method=method_name) as f_span:
        for i in range(n):
            if checkpoint is not None:
                checkpoint(phase="frontier", step=i, total=n)
            with tracer.span("frontier.vertex",
                             name=seq.name(i) if tracer.enabled else ""):
                dep = seq.dep[i]
                comps = seq.connected_subsets(i)
                children = tuple(max(c) for c in comps)
                full_axes = dep + (i,)
                K = int(ksize[i])
                table_shape = tuple(int(ksize[d]) for d in dep)
                table_cells = (int(np.prod(table_shape, dtype=np.int64))
                               if dep else 1)
                full_shape = table_shape + (K,)
                n_full = table_cells * K

                # H(i, ·): per full cell the vertex's layer cost plus
                # transfers to later neighbors, scalar association.
                ledger.check(n_full * 28, f"vertex {seq.name(i)!r} H table")
                H = np.empty(full_shape, dtype=np.float64)
                terms: list[tuple[np.ndarray, tuple[int, ...]]] = []
                terms.append((tables.lc[seq.name(i)], (i,)))
                for u in seq.later_neighbors(i):
                    terms.append((tables.tx(seq.name(i), seq.name(u)),
                                  (i, u)))
                _accumulate_terms(terms, full_axes, H)
                cells_evaluated += n_full

                # One seed point per full cell: (H, own memory).
                acc = (np.arange(n_full + 1, dtype=np.int64),
                       H.reshape(-1),
                       np.ascontiguousarray(np.broadcast_to(
                           mem_by_pos[i], (table_cells, K)).reshape(-1)),
                       np.empty((n_full, 0), dtype=np.int32))
                ledger.add(n_full * 24 + acc[0].nbytes)

                # Merge children in the scalar DP's term order; the last
                # merge's prune is fused with the reduction over the
                # vertex's own configuration axis (grouped by
                # dependent-set cell), so the union of the K per-cell
                # candidate sets is never re-pruned in a second pass.
                k_arr = None
                for t, j in enumerate(children):
                    rec = records[j]
                    assert rec is not None and rec.cost is not None, \
                        f"child point table {j} consumed twice"
                    proj = _projection(rec.axes, full_axes, full_shape)
                    old_bytes = (acc[0].nbytes + acc[1].nbytes
                                 + acc[2].nbytes + acc[3].nbytes)
                    if t == len(children) - 1:
                        merged = _merge_child(
                            acc, rec.offsets, rec.cost, rec.mem, proj,
                            eps=eps, pair_chunk=chunk_cells, ledger=ledger,
                            group_of_cell=np.repeat(
                                np.arange(table_cells, dtype=np.int64), K),
                            group_size=K, n_groups=table_cells,
                            k_of_cell=np.tile(
                                np.arange(K, dtype=np.int32), table_cells))
                        acc = merged[:4]
                        k_arr = merged[4]
                    else:
                        acc = _merge_child(acc, rec.offsets, rec.cost,
                                           rec.mem, proj, eps=eps,
                                           pair_chunk=chunk_cells,
                                           ledger=ledger)
                    ledger.sub(old_bytes)
                    ledger.add(acc[0].nbytes + acc[1].nbytes
                               + acc[2].nbytes + acc[3].nbytes)
                    # Values are consulted exactly once; free them (the
                    # k/childpt arrays stay for back-substitution).
                    ledger.sub(rec.value_bytes())
                    rec.cost = None
                    rec.mem = None

                if k_arr is None:
                    # No children: reduce the seed directly — union the K
                    # per-cell singletons of each dependent-set cell.
                    offsets, cost_a, mem_a, childpt = acc
                    counts = np.diff(offsets)
                    k_of = np.repeat(
                        np.tile(np.arange(K, dtype=np.int32), table_cells),
                        counts)
                    gid = np.repeat(
                        np.arange(table_cells, dtype=np.int64),
                        counts.reshape(table_cells, K).sum(axis=1))
                    kept = pareto_prune(gid, cost_a, mem_a, eps=eps)
                    rec_off = np.zeros(table_cells + 1, dtype=np.int64)
                    np.cumsum(np.bincount(gid[kept], minlength=table_cells),
                              out=rec_off[1:])
                    rec = _PointRecord(
                        axes=dep, offsets=rec_off,
                        cost=np.ascontiguousarray(cost_a[kept]),
                        mem=np.ascontiguousarray(mem_a[kept]),
                        k=np.ascontiguousarray(k_of[kept]),
                        childpt=np.ascontiguousarray(childpt[kept]),
                        children=children)
                else:
                    rec_off, cost_a, mem_a, childpt = acc
                    offsets = rec_off
                    rec = _PointRecord(
                        axes=dep, offsets=rec_off,
                        cost=np.ascontiguousarray(cost_a),
                        mem=np.ascontiguousarray(mem_a),
                        k=np.ascontiguousarray(k_arr),
                        childpt=np.ascontiguousarray(childpt),
                        children=children)
                ledger.sub(offsets.nbytes + cost_a.nbytes + mem_a.nbytes
                           + childpt.nbytes)
                ledger.add(rec.nbytes())
                records[i] = rec
                if rec.cost is not None and rec.cost.size:
                    max_state_points = max(
                        max_state_points,
                        int(np.diff(rec.offsets).max()))

        # -- total frontier: Minkowski sum of the root tables -------------
        roots = seq.roots()
        facc = (np.array([0, 1], dtype=np.int64),
                np.zeros(1, dtype=np.float64),
                np.zeros(1, dtype=np.float64),
                np.empty((1, 0), dtype=np.int32))
        proj1 = np.zeros(1, dtype=np.int64)
        for rt in roots:
            rec = records[rt]
            assert rec is not None and rec.cost is not None \
                and rec.offsets.shape[0] == 2
            facc = _merge_child(facc, rec.offsets, rec.cost, rec.mem, proj1,
                                eps=eps, pair_chunk=chunk_cells,
                                ledger=ledger)
            ledger.sub(rec.value_bytes())
            rec.cost = None
            rec.mem = None

        # -- back-substitution: one full strategy per frontier point ------
        _, fcost, fmem, rootpt = facc
        n_points = int(fcost.shape[0])
        points: list[FrontierPoint] = []
        for pidx in range(n_points):
            chosen: dict[int, int] = {}
            stack = [(rt, int(rootpt[pidx, t]))
                     for t, rt in enumerate(roots)]
            while stack:
                v, local = stack.pop()
                rec = records[v]
                assert rec is not None
                flat = 0
                for ax in rec.axes:
                    flat = flat * int(ksize[ax]) + chosen[ax]
                g = int(rec.offsets[flat]) + local
                chosen[v] = int(rec.k[g])
                for t, j in enumerate(rec.children):
                    stack.append((j, int(rec.childpt[g, t])))
            assert len(chosen) == n, "extraction did not reach every vertex"
            indices = {seq.name(v): k for v, k in chosen.items()}
            points.append(FrontierPoint(
                cost=float(fcost[pidx]), peak_bytes=float(fmem[pidx]),
                strategy=Strategy.from_indices(space, indices)))

        f_span.set(cells=cells_evaluated, peak_bytes=ledger.peak,
                   points=n_points)

    elapsed = time.perf_counter() - t0
    stats = {
        "cells": float(cells_evaluated),
        "peak_bytes": float(ledger.peak),
        "max_dependent": float(seq.max_dependent_size),
        "k_max": float(space.max_size),
        "vertices": float(n),
        "frontier_points": float(n_points),
        "frontier_max_state_points": float(max_state_points),
        "frontier_eps": float(eps),
        "frontier_cells": float(cells_evaluated),
    }
    if bypassed:
        stats["reduction_bypassed"] = 1.0
    for key, val in tables.build_stats.items():
        stats[f"table_{key}"] = float(val)
    metrics = current_metrics()
    metrics.counter("dp_cells_total", "DP cells evaluated").inc(
        cells_evaluated)
    metrics.counter("frontier_points_total",
                    "Pareto-frontier points returned").inc(n_points)
    best = points[0]
    return SearchResult(strategy=best.strategy, cost=best.cost,
                        elapsed=elapsed, method=method, stats=stats,
                        frontier=tuple(points))


def _expand_frontier_result(red, inner: SearchResult, *,
                            elapsed: float) -> SearchResult:
    """Lift every frontier point of a reduced-space result back to the
    original space (memory-aware reduction never contracts, so only the
    per-node config back-maps apply; memory values are unchanged)."""
    points = []
    for pt in inner.frontier:
        reduced_idx = pt.strategy.to_indices(red.reduced_space)
        full_idx = red.expand_indices(reduced_idx)
        cost = red.tables.strategy_cost(full_idx)
        predicted = pt.cost + red.base_cost
        if not math.isclose(cost, predicted, rel_tol=1e-6, abs_tol=1e-6):
            raise StrategyError(
                f"frontier reduction exactness violated: expanded cost "
                f"{cost!r} != reduced cost {pt.cost!r} + base "
                f"{red.base_cost!r}")
        points.append(FrontierPoint(
            cost=cost, peak_bytes=pt.peak_bytes,
            strategy=Strategy.from_indices(red.space, full_idx)))
    best = points[0]
    lifted = SearchResult(
        strategy=best.strategy, cost=best.cost, elapsed=elapsed,
        method=f"{inner.method}+reduce", stats=dict(inner.stats),
        frontier=tuple(points))
    return lifted.with_stats(**red.stats)


def brute_force_frontier(graph: CompGraph, space: ConfigSpace,
                         tables: CostTables, *,
                         mem_tables: "Mapping[str, np.ndarray] | None" = None,
                         ) -> tuple[FrontierPoint, ...]:
    """Exhaustive (cost, peak-bytes) frontier — the test oracle.

    Enumerates every strategy of the space (exponential: small graphs
    only), prices each with `CostTables.strategy_cost` and the memory
    tables, and prunes to the non-dominated set.
    """
    import itertools

    if mem_tables is None:
        mem_tables = memory_tables(graph, space)
    names = list(space.tables)
    sizes = [space.size(nm) for nm in names]
    combos = list(itertools.product(*[range(s) for s in sizes]))
    costs = np.empty(len(combos), dtype=np.float64)
    mems = np.empty(len(combos), dtype=np.float64)
    for t, combo in enumerate(combos):
        idx = dict(zip(names, combo))
        costs[t] = tables.strategy_cost(idx)
        mems[t] = sum(float(mem_tables[nm][k]) for nm, k in idx.items())
    kept = pareto_prune(np.zeros(len(combos), dtype=np.int64), costs, mems)
    return tuple(
        FrontierPoint(cost=float(costs[j]), peak_bytes=float(mems[j]),
                      strategy=Strategy.from_indices(
                          space, dict(zip(names, combos[j]))))
        for j in kept)
