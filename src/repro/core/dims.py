"""Named iteration-space dimensions and shard arithmetic.

Every operator in a computation graph carries an *iteration space*: an
ordered tuple of named dimensions (paper, Section II).  A parallelization
configuration splits each dimension into an integral number of equal (up to
ceil-rounding) parts.  This module provides the `Dim` value type and the
vectorized shard-volume arithmetic shared by the cost model and the cluster
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .exceptions import ConfigError

__all__ = ["Dim", "shard_extent", "shard_volume", "ceil_div"]


@dataclass(frozen=True, slots=True)
class Dim:
    """A named iteration-space dimension.

    Attributes
    ----------
    name:
        Short identifier used in configurations and reports (``"b"`` for
        batch, ``"n"`` for out-channels, ...). Names are unique within an
        operator's iteration space but freely reused across operators.
    size:
        Extent of the dimension (number of iteration points along it).
    splittable:
        Whether a configuration may split this dimension.  Filter kernel
        dimensions of convolutions, for example, are marked unsplittable:
        splitting a 3x3 stencil across devices is never profitable and
        excluding it keeps the configuration space close to the counts the
        paper reports (Section III-C).
    """

    name: str
    size: int
    splittable: bool = True

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ConfigError(f"dimension {self.name!r} has size {self.size}; must be >= 1")


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division for positive operands."""
    return -(-a // b)


def shard_extent(size, split):
    """Per-device extent of a dimension of ``size`` split ``split`` ways.

    Shards are equal up to ceil-rounding; the cost model always accounts the
    *largest* shard because Equation (1)'s per-device terms take the worst
    device.  Works elementwise on numpy arrays.
    """
    return -(-np.asarray(size) // np.asarray(split))


def shard_volume(shape, splits) -> np.ndarray:
    """Volume (element count) of the largest shard of a tensor.

    Parameters
    ----------
    shape:
        1-D array-like of ``m`` axis extents.
    splits:
        Array of split factors with trailing axis of length ``m``; leading
        axes broadcast (e.g. ``[K, m]`` evaluates ``K`` configurations at
        once, ``[K_u, K_v, m]`` a full configuration cross-product).

    Returns
    -------
    numpy.ndarray
        ``prod(ceil(shape / splits), axis=-1)`` with shape ``splits.shape[:-1]``.
    """
    shape = np.asarray(shape, dtype=np.int64)
    splits = np.asarray(splits, dtype=np.int64)
    if shape.ndim != 1:
        raise ConfigError("shape must be one-dimensional")
    if splits.shape[-1] != shape.shape[0]:
        raise ConfigError(
            f"splits trailing axis {splits.shape[-1]} != tensor rank {shape.shape[0]}")
    if splits.size and splits.min() < 1:
        raise ConfigError("split factors must be positive")
    return np.prod(shard_extent(shape, splits), axis=-1, dtype=np.int64)
