"""The frozen `SearchResult.stats` key schema.

Every searcher annotates its result with counters, and until PR 5 the
key names were folklore — exporters and tests grepped the codebase to
learn them.  `STATS_KEYS` is now the single registry: every key a
searcher may emit, with its meaning; `SearchResult.with_stats` validates
against it, so a typo'd or ad-hoc key fails at the merge site instead of
silently producing a column nobody reads.

Extending the schema is deliberate: add the key **here** (with a
description) in the same change that starts emitting it.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["STATS_KEYS", "STATS_KEY_PREFIXES", "validate_stats_keys"]

#: Every bare stats key a searcher may emit, with its meaning.
STATS_KEYS: dict[str, str] = {
    # -- tensorized / breadth-first DP (repro.core.dp, repro.core.naive)
    "cells": "DP (or brute-force) cost cells evaluated",
    "peak_bytes": "high-water mark of live DP table bytes",
    "max_dependent": "largest dependent-set size M of the ordering",
    "k_max": "largest per-node configuration count K",
    "vertices": "sequenced vertices the DP solved",
    # -- MCMC comparator (repro.baselines.mcmc)
    "iterations": "MCMC iterations executed",
    "proposals": "MCMC proposals evaluated (incl. rejected)",
    "best_iter": "iteration at which the best strategy was found",
    # -- random search (repro.baselines.random_search)
    "samples": "random strategies sampled",
    # -- resilient ladder (repro.resilience.runner)
    "resilience_retries": "degradation-ladder rungs past the initial attempt",
}

#: Namespaced families spliced onto results by phase telemetry.  A key
#: ``<prefix><field>`` is valid when ``<field>`` names an entry of the
#: family's source dict: ``table_*`` mirrors
#: ``CostTables.build_stats`` and ``reduction_*`` the counters of
#: `repro.core.reduction.reduce_problem`.
STATS_KEY_PREFIXES: dict[str, str] = {
    "table_": "cost-table construction telemetry (CostTables.build_stats)",
    "reduction_": ("search-space reduction counters (reduce_problem), plus "
                   "reduction_bypassed: 1.0 when reduce='auto' skipped the "
                   "reduction because the predicted plain-DP work was below "
                   "the bypass ratio, 0.0 when the reduction ran"),
    "frontier_": ("Pareto-frontier DP counters (repro.core.frontier): "
                  "frontier_points (final non-dominated points), "
                  "frontier_max_state_points (largest per-state frontier "
                  "seen), frontier_eps (epsilon-coarsening knob, 0.0 = "
                  "exact), frontier_cells (point-bearing DP cells)"),
}


def validate_stats_keys(keys: Iterable[str]) -> None:
    """Raise ``ValueError`` on any key outside the frozen schema."""
    unknown = [k for k in keys
               if k not in STATS_KEYS
               and not any(k.startswith(p) for p in STATS_KEY_PREFIXES)]
    if unknown:
        raise ValueError(
            f"unknown SearchResult.stats key(s) {sorted(unknown)}; the "
            "schema is frozen — register new keys in "
            "repro.core.stats.STATS_KEYS")
