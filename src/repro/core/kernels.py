"""Pluggable compute backends for the two hot search kernels.

The wall-clock of the whole strategy search is dominated by two inner
loops:

* the **DP chunk reduction** — min/argmin over the candidate-configuration
  axis of the broadcast cost sum (`repro.core._tensorops.chunked_min_argmin`);
* the **reduction fold** — the TensorOpt-style min-plus contraction
  ``min_k A[i, k] + B[k, j]`` with argmin records, plus the dominance
  keep-mask, in `repro.core.reduction`.

This module is the single dispatch point for both.  Two backends:

``numpy``
    The default.  Pure-numpy implementations tuned so every reduction
    runs over the **last, contiguous** axis (a transposed layout for the
    min-plus fold) and the min is recovered from the argmin by a gather
    instead of a second full scan.
``numba``
    Optional ``@njit``-compiled loops (fused add+min+argmin single pass;
    early-exit dominance checks).  Selected with ``--kernel numba`` /
    ``PASE_KERNEL=numba``; when numba is not importable the numpy
    backend is used instead and a warning is logged once — never an
    ImportError at search time.

Both backends are **bit-identical by construction**: every scalar
addition keeps the numpy path's association order and every min/argmin
keeps numpy's first-minimum tie-break, pinned by the parity tests in
``tests/core/test_kernels.py``.

Backend selection (highest precedence first): an explicit
:func:`use`/:func:`set_backend` call (the `RunContext.kernel` field and
the CLI ``--kernel`` flag land here), the ``PASE_KERNEL`` environment
variable, then the ``numpy`` default.  ``auto`` resolves to ``numba``
when importable, else ``numpy``.
"""

from __future__ import annotations

import logging
import os
import threading
from contextlib import contextmanager

import numpy as np

__all__ = [
    "BACKENDS",
    "KERNEL_ENV_VAR",
    "available_backends",
    "get_backend",
    "set_backend",
    "resolve_backend",
    "use",
    "numba_available",
    "last_axis_min_argmin",
    "min_plus_fold",
    "dominance_mask",
]

#: Accepted backend names (``auto`` resolves at call time).
BACKENDS = ("numpy", "numba", "auto")

#: Environment variable consulted when no explicit backend was set.
KERNEL_ENV_VAR = "PASE_KERNEL"

_log = logging.getLogger(__name__)

#: Explicitly-selected backend (None = fall back to env var / default).
_SELECTED: list[str | None] = [None]

#: Lazily-built numba kernel table; False once the import failed.
_NUMBA_KERNELS: dict | None | bool = None


def numba_available() -> bool:
    """True when the numba backend can actually compile kernels."""
    return _numba_kernels() is not None


def available_backends() -> tuple[str, ...]:
    """The concrete backends usable in this process."""
    return ("numpy", "numba") if numba_available() else ("numpy",)


def get_backend() -> str:
    """The concrete backend kernels will dispatch to right now."""
    return resolve_backend(None)


def set_backend(name: str | None) -> str:
    """Select the process-wide backend; returns the concrete resolution.

    ``None`` clears the explicit selection (env var / default applies
    again).  An unknown name raises ``ValueError``; ``numba`` without
    numba installed *resolves* to numpy with a logged warning rather
    than raising, so a ``--kernel numba`` run degrades gracefully.
    """
    if name is not None and name not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; choose from {BACKENDS}")
    _SELECTED[0] = name
    return resolve_backend(None)


@contextmanager
def use(name: str | None):
    """Scoped :func:`set_backend` — restores the previous selection."""
    if name is None:
        yield get_backend()
        return
    prev = _SELECTED[0]
    set_backend(name)
    try:
        yield get_backend()
    finally:
        _SELECTED[0] = prev


def resolve_backend(name: str | None) -> str:
    """Resolve a requested backend name to a concrete one.

    Precedence when ``name`` is None: explicit :func:`set_backend` >
    ``PASE_KERNEL`` env var > ``numpy``.
    """
    if name is None:
        name = _SELECTED[0]
    if name is None:
        name = os.environ.get(KERNEL_ENV_VAR) or "numpy"
    if name not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; choose from {BACKENDS}")
    if name == "auto":
        return "numba" if numba_available() else "numpy"
    if name == "numba" and not numba_available():
        _warn_numba_missing()
        return "numpy"
    return name


_WARNED = [False]


def _warn_numba_missing() -> None:
    if not _WARNED[0]:
        _WARNED[0] = True
        _log.warning("kernel backend 'numba' requested but numba is not "
                     "importable; falling back to the numpy backend")


# ---------------------------------------------------------------------------
# Scratch buffers
# ---------------------------------------------------------------------------

class _Workspace(threading.local):
    """Per-thread scratch arrays, grown geometrically and reused.

    The hot kernels are called thousands of times per search with
    similar transient sizes; a fresh ``np.empty`` each call keeps the
    allocator mmap'ing and page-faulting multi-megabyte blocks (measured
    ~3x the arithmetic cost on the reduction fold).  Buffers are only
    ever *written through* ``out=`` before being read, so reuse cannot
    leak values between calls.
    """

    def __init__(self) -> None:
        self._bufs: dict[str, np.ndarray] = {}

    def get(self, name: str, cells: int, dtype) -> np.ndarray:
        buf = self._bufs.get(name)
        if buf is None or buf.size < cells:
            buf = np.empty(int(cells * 1.25) + 16, dtype=dtype)
            self._bufs[name] = buf
        return buf

    def take(self, name: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        cells = 1
        for s in shape:
            cells *= int(s)
        return self.get(name, cells, dtype)[:cells].reshape(shape)


_WS = _Workspace()


# ---------------------------------------------------------------------------
# Kernel: fused min/argmin over the last (contiguous) axis
# ---------------------------------------------------------------------------

def last_axis_min_argmin(a: np.ndarray, *, backend: str | None = None
                         ) -> tuple[np.ndarray, np.ndarray]:
    """``(a.min(-1), a.argmin(-1))`` in one logical pass.

    Returns ``(vals float64[...], args int32[...])`` with numpy's
    first-minimum tie-break.  The numpy path recovers the min from the
    argmin by a gather (one scan + one gather instead of two scans); the
    numba path fuses everything into a single loop.
    """
    if a.shape[-1] == 0:
        raise ValueError("cannot reduce over an empty last axis")
    if resolve_backend(backend) == "numba":
        kern = _numba_kernels()
        if kern is not None:
            flat = np.ascontiguousarray(a.reshape(-1, a.shape[-1]))
            vals, args = kern["last_axis"](flat)
            return (vals.reshape(a.shape[:-1]),
                    args.reshape(a.shape[:-1]))
    args64 = a.argmin(axis=-1)
    vals = np.take_along_axis(a, args64[..., None], axis=-1)[..., 0]
    return vals, args64.astype(np.int32)


# ---------------------------------------------------------------------------
# Kernel: min-plus fold (tropical matmul) with argmin records
# ---------------------------------------------------------------------------

def min_plus_fold(a: np.ndarray, bt: np.ndarray, *,
                  chunk_cells: int, backend: str | None = None
                  ) -> tuple[np.ndarray, np.ndarray]:
    """``folded[i, j] = min_t a[i, t] + bt[j, t]`` with its argmin.

    The tropical matrix product behind chain contraction, with the
    second operand already **transposed** (``bt[j, t]``) so the inner
    reduction runs over the last, contiguous axis of both operands.
    Returns ``(folded float64[m, n], arg int32[m, n])``; ties resolve to
    the smallest ``t`` (numpy argmin order).  The numpy path evaluates
    the ``[rows, n, t]`` cube in row blocks so the transient stays
    within ``chunk_cells`` cells.
    """
    m, k = a.shape
    n, k2 = bt.shape
    if k != k2:
        raise ValueError(f"inner axes disagree: {a.shape} vs {bt.shape}")
    if k == 1:
        # One middle configuration: the fold is a broadcast add.
        folded = a[:, 0][:, None] + bt[:, 0][None, :]
        return folded, np.zeros((m, n), dtype=np.int32)
    if resolve_backend(backend) == "numba":
        kern = _numba_kernels()
        if kern is not None:
            return kern["min_plus"](np.ascontiguousarray(a),
                                    np.ascontiguousarray(bt))
    folded = np.empty((m, n), dtype=np.float64)
    arg = np.empty((m, n), dtype=np.int32)
    rows = max(1, min(m, chunk_cells // max(k * n, 1)))
    for a0 in range(0, m, rows):
        a1 = min(m, a0 + rows)
        cube = _WS.take("fold_cube", (a1 - a0, n, k), np.float64)
        np.add(a[a0:a1, None, :], bt[None, :, :], out=cube)  # [rows, n, t]
        args64 = cube.argmin(axis=-1)
        folded[a0:a1] = np.take_along_axis(
            cube, args64[..., None], axis=-1)[..., 0]
        arg[a0:a1] = args64
    return folded, arg


# ---------------------------------------------------------------------------
# Kernel: dominance keep-mask over profile rows
# ---------------------------------------------------------------------------

#: First pair-pass column batch of the numpy dominance kernel; batches
#: double from here so cheap early columns shrink the pair list before
#: any wide gather runs.
_DOMINANCE_SPAN0 = 32


def dominance_mask(prof: np.ndarray, *, chunk_cells: int,
                   backend: str | None = None) -> np.ndarray:
    """Keep-mask over the rows of a cost profile ``[K, C]``.

    Row ``j`` is dropped when some row ``i`` satisfies elementwise
    ``prof[i] <= prof[j]`` and is either strictly smaller somewhere or,
    on an exact tie, has ``i < j`` (so row 0 survives any all-equal
    class).  Dominators do not need to survive themselves — the "beats"
    relation is a strict partial order, so every dropped row keeps a
    surviving witness.

    The numpy path seeds candidate pairs from two cheap necessary
    conditions — the layer-cost column (column 0, checked exactly) and
    the profile **row sum** (elementwise ``<=`` implies ``<=`` row sums;
    float pairwise summation is monotone over a fixed tree shape, so the
    implication survives rounding) — then verifies survivors against the
    remaining columns in doubling batches of fancy-indexed gathers.
    Every gather transient is bounded by ``chunk_cells`` cells; the
    ``[K, K]`` boolean relation itself is output-sized.
    """
    prof = np.ascontiguousarray(prof, dtype=np.float64)
    k, c = prof.shape
    if k <= 1 or c == 0:
        return np.ones(k, dtype=bool)
    if resolve_backend(backend) == "numba":
        kern = _numba_kernels()
        if kern is not None:
            return kern["dominance"](prof)
    # -- seed: row-sum filter (necessary) + column 0 (exact) ---------------
    s = prof.sum(axis=1)
    le = s[:, None] <= s[None, :]
    le &= prof[:, 0][:, None] <= prof[None, :, 0]
    if c > 1:
        # -- verify surviving candidate pairs on the remaining columns ----
        pairs = np.flatnonzero(le)
        ii, jj = np.divmod(pairs, k)
        c0 = 1
        span = _DOMINANCE_SPAN0
        while c0 < c and pairs.size:
            span = max(1, min(c - c0, span, chunk_cells // pairs.size))
            sub = prof[:, c0:c0 + span]
            ok = (sub[ii] <= sub[jj]).all(axis=-1)
            pairs = pairs[ok]
            ii = ii[ok]
            jj = jj[ok]
            c0 += span
            span *= 2
        le = np.zeros((k, k), dtype=bool)
        le.flat[pairs] = True
    idx = np.arange(k)
    beats = le & (~le.T | (idx[:, None] < idx[None, :]))
    return ~beats.any(axis=0)


# ---------------------------------------------------------------------------
# The numba backend (compiled lazily, cached per process)
# ---------------------------------------------------------------------------

def _numba_kernels() -> dict | None:
    """Compile (once) and return the numba kernel table, or None."""
    global _NUMBA_KERNELS
    if _NUMBA_KERNELS is False:
        return None
    if isinstance(_NUMBA_KERNELS, dict):
        return _NUMBA_KERNELS
    try:
        import numba
    except ImportError:
        _NUMBA_KERNELS = False
        return None

    @numba.njit(cache=True)
    def _last_axis(a):  # pragma: no cover - compiled
        rows, n = a.shape
        vals = np.empty(rows, dtype=np.float64)
        args = np.empty(rows, dtype=np.int32)
        for r in range(rows):
            best = a[r, 0]
            arg = 0
            for t in range(1, n):
                v = a[r, t]
                if v < best:
                    best = v
                    arg = t
            vals[r] = best
            args[r] = arg
        return vals, args

    @numba.njit(cache=True)
    def _min_plus(a, bt):  # pragma: no cover - compiled
        m, k = a.shape
        n = bt.shape[0]
        folded = np.empty((m, n), dtype=np.float64)
        arg = np.empty((m, n), dtype=np.int32)
        for i in range(m):
            for j in range(n):
                best = a[i, 0] + bt[j, 0]
                at = 0
                for t in range(1, k):
                    v = a[i, t] + bt[j, t]
                    if v < best:
                        best = v
                        at = t
                folded[i, j] = best
                arg[i, j] = at
        return folded, arg

    @numba.njit(cache=True)
    def _dominance(prof):  # pragma: no cover - compiled
        k, c = prof.shape
        keep = np.ones(k, dtype=np.bool_)
        for j in range(k):
            for i in range(k):
                if i == j:
                    continue
                le = True
                ge = True
                for t in range(c):
                    if prof[i, t] > prof[j, t]:
                        le = False
                        break
                    if prof[i, t] < prof[j, t]:
                        ge = False
                if le and ((not ge) or i < j):
                    keep[j] = False
                    break
        return keep

    _NUMBA_KERNELS = {
        "last_axis": _last_axis,
        "min_plus": _min_plus,
        "dominance": _dominance,
    }
    return _NUMBA_KERNELS
