"""Computation graphs: weakly connected DAGs of operators joined by tensors.

Nodes are `OpSpec` instances; each directed edge carries one tensor from a
producer output port to a consumer input port, with positional axis
correspondence (axis ``k`` of the source tensor feeds axis ``k`` of the
destination tensor, hence their extents must match).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import networkx as nx

from ..ops.base import OpSpec
from .exceptions import GraphError

__all__ = ["Edge", "CompGraph"]


@dataclass(frozen=True, slots=True)
class Edge:
    """A tensor flowing from ``src``'s output port to ``dst``'s input port."""

    src: str
    src_port: str
    dst: str
    dst_port: str

    @property
    def key(self) -> tuple[str, str]:
        return (self.src, self.dst)


class CompGraph:
    """A DNN computation graph.

    Parameters
    ----------
    nodes:
        Operators; names must be unique.
    edges:
        Tensor flows; both endpoints must exist and the connected tensor
        ports must have identical shapes.

    Notes
    -----
    The strategy search treats the graph as *undirected* (the paper's
    neighbor sets and transfer costs are edge-direction agnostic); the
    direction is retained for topological scheduling in the cluster
    simulator and for cost attribution in reports.
    """

    def __init__(self, nodes: Iterable[OpSpec] = (), edges: Iterable[Edge] = ()) -> None:
        self._nodes: dict[str, OpSpec] = {}
        self._edges: list[Edge] = []
        self._succ: dict[str, list[Edge]] = {}
        self._pred: dict[str, list[Edge]] = {}
        for op in nodes:
            self.add_node(op)
        for e in edges:
            self.add_edge(e)

    # -- construction --------------------------------------------------------

    def add_node(self, op: OpSpec) -> OpSpec:
        if op.name in self._nodes:
            raise GraphError(f"duplicate node name {op.name!r}")
        self._nodes[op.name] = op
        self._succ[op.name] = []
        self._pred[op.name] = []
        return op

    def add_edge(self, edge: Edge) -> Edge:
        src = self._nodes.get(edge.src)
        dst = self._nodes.get(edge.dst)
        if src is None or dst is None:
            raise GraphError(f"edge {edge} references unknown node")
        if edge.src == edge.dst:
            raise GraphError(f"self-loop on {edge.src!r}")
        try:
            out_spec = src.outputs[edge.src_port]
        except KeyError:
            raise GraphError(f"{edge.src!r} has no output port {edge.src_port!r}") from None
        try:
            in_spec = dst.inputs[edge.dst_port]
        except KeyError:
            raise GraphError(f"{edge.dst!r} has no input port {edge.dst_port!r}") from None
        if in_spec.is_param:
            raise GraphError(f"edge {edge} targets parameter port {edge.dst_port!r}")
        s_out, s_in = out_spec.shape(src), in_spec.shape(dst)
        if s_out != s_in:
            raise GraphError(
                f"shape mismatch on {edge.src}->{edge.dst}: {s_out} vs {s_in}")
        self._edges.append(edge)
        self._succ[edge.src].append(edge)
        self._pred[edge.dst].append(edge)
        return edge

    def connect(self, src: str, dst: str, *, src_port: str = "out",
                dst_port: str = "in") -> Edge:
        """Convenience wrapper around :meth:`add_edge`."""
        return self.add_edge(Edge(src, src_port, dst, dst_port))

    # -- queries ---------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[OpSpec]:
        return iter(self._nodes.values())

    @property
    def node_names(self) -> tuple[str, ...]:
        return tuple(self._nodes)

    @property
    def edges(self) -> tuple[Edge, ...]:
        return tuple(self._edges)

    def node(self, name: str) -> OpSpec:
        try:
            return self._nodes[name]
        except KeyError:
            raise GraphError(f"unknown node {name!r}") from None

    def out_edges(self, name: str) -> tuple[Edge, ...]:
        return tuple(self._succ[name])

    def in_edges(self, name: str) -> tuple[Edge, ...]:
        return tuple(self._pred[name])

    def neighbors(self, name: str) -> tuple[str, ...]:
        """Undirected neighbor set N(v), deduplicated, in insertion order."""
        seen: dict[str, None] = {}
        for e in self._pred[name]:
            seen.setdefault(e.src)
        for e in self._succ[name]:
            seen.setdefault(e.dst)
        return tuple(seen)

    def degree(self, name: str) -> int:
        return len(self.neighbors(name))

    def edges_between(self, u: str, v: str) -> tuple[Edge, ...]:
        """All edges joining u and v, in either direction."""
        return tuple(e for e in self._succ[u] if e.dst == v) + \
            tuple(e for e in self._succ[v] if e.dst == u)

    # -- structure ---------------------------------------------------------------

    def topological_order(self) -> tuple[str, ...]:
        """Kahn topological order; raises `GraphError` on cycles."""
        indeg = {n: len(self._pred[n]) for n in self._nodes}
        ready = [n for n, d in indeg.items() if d == 0]
        order: list[str] = []
        while ready:
            n = ready.pop()
            order.append(n)
            for e in self._succ[n]:
                indeg[e.dst] -= 1
                if indeg[e.dst] == 0:
                    ready.append(e.dst)
        if len(order) != len(self._nodes):
            raise GraphError("computation graph contains a cycle")
        return tuple(order)

    def weakly_connected_components(self) -> list[set[str]]:
        seen: set[str] = set()
        comps: list[set[str]] = []
        for start in self._nodes:
            if start in seen:
                continue
            comp: set[str] = set()
            stack = [start]
            while stack:
                n = stack.pop()
                if n in comp:
                    continue
                comp.add(n)
                stack.extend(m for m in self.neighbors(n) if m not in comp)
            seen |= comp
            comps.append(comp)
        return comps

    def is_weakly_connected(self) -> bool:
        return len(self) == 0 or len(self.weakly_connected_components()) == 1

    def validate(self) -> None:
        """Full structural validation: acyclic and weakly connected."""
        self.topological_order()
        if not self.is_weakly_connected():
            raise GraphError("computation graph is not weakly connected")

    def induced_subgraph(self, names: Iterable[str]) -> "CompGraph":
        """The subgraph on ``names`` with all edges between them.

        Input ports whose producer falls outside the subset simply lose
        their edge (they become graph inputs).  The result may be a
        forest; the strategy searchers handle that.
        """
        keep = set(names)
        missing = keep - set(self._nodes)
        if missing:
            raise GraphError(f"unknown nodes in subgraph: {sorted(missing)[:5]}")
        sub = CompGraph(self._nodes[n] for n in self._nodes if n in keep)
        for e in self._edges:
            if e.src in keep and e.dst in keep:
                sub.add_edge(e)
        return sub

    # -- export -------------------------------------------------------------------

    def to_networkx(self) -> nx.MultiDiGraph:
        """Export to a networkx MultiDiGraph (for analysis/plotting)."""
        g = nx.MultiDiGraph()
        for name, op in self._nodes.items():
            g.add_node(name, kind=op.kind, rank=op.rank,
                       points=op.iteration_points)
        for e in self._edges:
            vol = self._nodes[e.src].outputs[e.src_port].volume(self._nodes[e.src])
            g.add_edge(e.src, e.dst, src_port=e.src_port, dst_port=e.dst_port,
                       volume=vol)
        return g

    def stats(self) -> dict[str, float]:
        """Summary statistics used by the Section III-C analysis."""
        degrees = [self.degree(n) for n in self._nodes]
        return {
            "nodes": len(self._nodes),
            "edges": len(self._edges),
            "max_degree": max(degrees, default=0),
            "nodes_degree_ge_5": sum(1 for d in degrees if d >= 5),
            "total_flops": float(sum(op.flops for op in self)),
            "total_params": int(sum(op.param_volume() for op in self)),
        }
