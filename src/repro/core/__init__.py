"""Core of the PaSE reproduction: graphs, costs, orderings, and the DP."""

from .configs import ConfigSpace, batch_split_config, enumerate_configs, serial_config
from .costmodel import CostModel, CostTables, allreduce_bytes
from .dims import Dim, ceil_div, shard_extent, shard_volume
from .dp import DEFAULT_MEMORY_BUDGET, dp_table_profile, find_best_strategy
from .exceptions import (
    ConfigError,
    FaultPlanError,
    GraphError,
    PaseError,
    SearchResourceError,
    SimulationError,
    StrategyError,
)
from .graph import CompGraph, Edge
from .machine import GTX1080TI, RTX2080TI, UNIT_BALANCE, MachineSpec
from .naive import brute_force_strategy, naive_bf_strategy
from .reduction import ReducedProblem, reduce_problem
from .sequencer import (
    SequencedGraph,
    breadth_first_seq,
    generate_seq,
    random_seq,
)
from .stats import STATS_KEYS, STATS_KEY_PREFIXES, validate_stats_keys
from .strategy import SearchResult, Strategy
from .tablecache import TableCache, table_digest
from .tensors import DTYPE_BYTES, TensorSpec

__all__ = [
    "CompGraph",
    "ConfigSpace",
    "CostModel",
    "CostTables",
    "DEFAULT_MEMORY_BUDGET",
    "DTYPE_BYTES",
    "Dim",
    "Edge",
    "FaultPlanError",
    "GTX1080TI",
    "MachineSpec",
    "PaseError",
    "ConfigError",
    "GraphError",
    "RTX2080TI",
    "ReducedProblem",
    "STATS_KEYS",
    "STATS_KEY_PREFIXES",
    "SearchResourceError",
    "SearchResult",
    "SequencedGraph",
    "SimulationError",
    "Strategy",
    "StrategyError",
    "TableCache",
    "TensorSpec",
    "UNIT_BALANCE",
    "allreduce_bytes",
    "batch_split_config",
    "breadth_first_seq",
    "brute_force_strategy",
    "ceil_div",
    "dp_table_profile",
    "enumerate_configs",
    "find_best_strategy",
    "generate_seq",
    "naive_bf_strategy",
    "random_seq",
    "reduce_problem",
    "serial_config",
    "shard_extent",
    "shard_volume",
    "table_digest",
    "validate_stats_keys",
]
