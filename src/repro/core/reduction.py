"""Exact search-space reduction: dominance pruning + chain contraction.

Runs between cost-table construction and the dynamic program and shrinks
the DP's two exponential drivers — the per-node configuration count ``K``
and the vertex count ``n`` — *without* changing the optimum:

* **Configuration dominance pruning.**  Configuration ``c`` of node ``v``
  is dropped when some ``c'`` has ``lc[c'] <= lc[c]`` and, on every edge
  incident to ``v``, elementwise row domination ``tx[c', :] <= tx[c, :]``
  — strict somewhere, with a deterministic lexicographic tie-break so
  that among exactly-equal rows the lowest index (row 0, the serial
  configuration) survives.  Any strategy using ``c`` can swap in ``c'``
  without increasing any term of Equation (1), so at least one optimum
  survives the prune.

* **Linear-chain contraction.**  A vertex ``w`` with at most two distinct
  pair-neighbors is eliminated by folding ``lc[w] + tx`` into a reduced
  edge matrix via a min-over-``K_w`` contraction (TensorOpt-style node
  elimination): ``tx'(u, v)[k_u, k_v] = min_{k_w} (lc[w][k_w] +
  tx(u, w)[k_u, k_w] + tx(w, v)[k_w, k_v])``, accumulated onto any
  existing ``(u, v)`` matrix.  The per-cell argmin is recorded so the
  reduced-space optimum expands back to a full `Strategy` with identical
  cost.  Degree-1 vertices fold into their neighbor's ``lc`` and
  degree-0 vertices into a constant, so long elementwise/activation
  chains disappear entirely.

Both rules are iterated to a fixed point (contraction creates new edges
that enable more dominance and vice versa).  The result is a
`ReducedProblem`: a reduced configuration space, projected cost tables
(marked ``derived`` so the on-disk table cache refuses them), index
back-maps for the surviving nodes, and the elimination records needed to
expand a reduced strategy.

Exactness bookkeeping for the expansion: each elimination record's table
is indexed by its dependency axes *in the dependency's reduced space at
that moment*; later dominance prunes of a still-live dependency slice the
recorded axis, so at the end every axis is either in the dependency's
final reduced space (if it survived) or in its own elimination-time space
(if it was eliminated later — in which case expanding in reverse
elimination order supplies exactly that index).

Performance: the fixed point runs in **vectorized** form by default —
the dominance keep-mask and the contraction fold dispatch through
`repro.core.kernels` (last-axis contiguous reductions, candidate-pair
gathers, optional numba backend), and a dirty-set worklist skips nodes
whose cost profile is untouched since their last prune (re-pruning an
unchanged profile provably keeps every row, so skipping is exact).  The
pre-vectorization per-vertex code is retained verbatim behind
``vectorized=False`` / :func:`dominance_keep_mask_reference` as the
bit-identity oracle for the property tests.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from . import kernels
from .configs import ConfigSpace
from .costmodel import CostTables, _canonical
from .exceptions import StrategyError
from .graph import CompGraph
from .strategy import SearchResult, Strategy

__all__ = ["ReducedProblem", "ReducedGraphView", "reduce_problem",
           "dominance_keep_mask", "dominance_keep_mask_reference"]

#: Transient-cell budget for the vectorized dominance comparison and the
#: chain-contraction cube (keeps peak extra memory in the tens of MiB).
_REDUCTION_CHUNK_CELLS = 4_000_000


class ReducedGraphView:
    """Adjacency-only stand-in for `CompGraph` over the surviving nodes.

    Chain contraction creates edges between nodes that share no tensor, so
    the reduced topology cannot be expressed as a `CompGraph` (whose edges
    carry typed ports).  The DP only consults ``node_names`` and
    ``neighbors``, which this view provides.
    """

    def __init__(self, node_names: Sequence[str],
                 neighbors: Mapping[str, Iterable[str]]) -> None:
        self._names = tuple(node_names)
        self._nbrs = {n: tuple(neighbors.get(n, ())) for n in self._names}

    @property
    def node_names(self) -> tuple[str, ...]:
        return self._names

    def neighbors(self, name: str) -> tuple[str, ...]:
        return self._nbrs[name]

    def degree(self, name: str) -> int:
        return len(self._nbrs[name])

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._nbrs


@dataclass
class _ElimRecord:
    """One contracted vertex: how to recover its optimal configuration.

    ``table`` holds the argmin over the eliminated vertex's (reduced)
    configurations, with one axis per entry of ``deps``; ``sel`` maps the
    vertex's elimination-time reduced index back to its original index.
    """

    node: str
    deps: tuple[str, ...]
    table: np.ndarray  # int32, shape = deps' reduced sizes (0-d for deps=())
    sel: np.ndarray    # elimination-time reduced index -> original index


@dataclass
class ReducedProblem:
    """A search problem shrunk by exactness-preserving reduction.

    Attributes
    ----------
    graph, space, tables:
        The *original* problem (the expansion target).
    reduced_graph, reduced_space, reduced_tables:
        The shrunk problem the DP actually runs on.  ``reduced_tables``
        is marked ``derived`` so the table cache refuses to store it.
    base_cost:
        Constant folded out of the objective by degree-0 eliminations.
    config_maps:
        Surviving node -> int64 array mapping reduced configuration index
        to original index.
    stats:
        ``reduction_*`` counters (configs/vertices/cells removed, rounds,
        seconds) surfaced through ``SearchResult.stats``.
    """

    graph: CompGraph
    space: ConfigSpace
    tables: CostTables
    reduced_graph: ReducedGraphView
    reduced_space: ConfigSpace
    reduced_tables: CostTables
    base_cost: float
    config_maps: dict[str, np.ndarray]
    elims: tuple[_ElimRecord, ...]
    stats: dict[str, float] = field(default_factory=dict)

    @property
    def survivors(self) -> tuple[str, ...]:
        return self.reduced_graph.node_names

    def expand_indices(self, reduced: Mapping[str, int]) -> dict[str, int]:
        """Map a reduced-space strategy to original configuration indices
        for *every* node of the original graph."""
        missing = set(self.survivors) - set(reduced)
        if missing:
            raise StrategyError(
                f"reduced strategy missing nodes: {sorted(missing)[:5]}")
        cur: dict[str, int] = {n: int(reduced[n]) for n in self.survivors}
        # Reverse elimination order: a record's dependencies were either
        # never eliminated (final reduced index, axes kept sliced) or
        # eliminated later (their record, processed first, supplies their
        # elimination-time index — the space this record's axis is in).
        for rec in reversed(self.elims):
            idx = tuple(cur[d] for d in rec.deps)
            cur[rec.node] = int(rec.table[idx])
        by_elim = {rec.node: rec for rec in self.elims}
        out: dict[str, int] = {}
        for name in self.space.tables:  # original node order
            rec = by_elim.get(name)
            if rec is None:
                out[name] = int(self.config_maps[name][cur[name]])
            else:
                out[name] = int(rec.sel[cur[name]])
        return out

    def expand_result(self, inner: SearchResult, *,
                      elapsed: float | None = None) -> SearchResult:
        """Lift a reduced-space `SearchResult` back to the original space.

        The returned cost is re-evaluated on the *original* tables (one
        exact pass), and checked against the reduced optimum plus the
        folded constant — the exactness invariant of the whole engine.
        """
        reduced_idx = inner.strategy.to_indices(self.reduced_space)
        full_idx = self.expand_indices(reduced_idx)
        cost = self.tables.strategy_cost(full_idx)
        predicted = inner.cost + self.base_cost
        if not math.isclose(cost, predicted, rel_tol=1e-6, abs_tol=1e-6):
            raise StrategyError(
                f"reduction exactness violated: expanded cost {cost!r} != "
                f"reduced cost {inner.cost!r} + base {self.base_cost!r}")
        lifted = SearchResult(
            strategy=Strategy.from_indices(self.space, full_idx),
            cost=cost,
            elapsed=inner.elapsed if elapsed is None else elapsed,
            method=f"{inner.method}+reduce",
            stats=dict(inner.stats),
        )
        return lifted.with_stats(**self.stats)


# ---------------------------------------------------------------------------
# Dominance pruning
# ---------------------------------------------------------------------------

def dominance_keep_mask(profile: np.ndarray, *,
                        chunk_cells: int = _REDUCTION_CHUNK_CELLS
                        ) -> np.ndarray:
    """Boolean keep-mask over the rows of a cost ``profile`` ``[K, C]``.

    Row ``j`` is dropped when some row ``i`` is elementwise ``<=`` and
    either strictly smaller somewhere or (on exact ties) ``i < j``.  The
    "beats" relation is a strict partial order, so every dropped row has
    a surviving dominator and at least one optimum survives; the
    lexicographic tie-break makes row 0 survive any all-equal class.

    Dispatches to `repro.core.kernels.dominance_mask`: one ``<=`` cube
    over a seed block of columns (``>=`` is its transpose, never
    materialized), then the surviving candidate pairs alone are checked
    against the remaining columns via fancy-indexed gathers — with every
    transient bounded by ``chunk_cells`` cells, including the ``K*C >
    chunk_cells`` regime the pre-vectorization implementation silently
    exceeded.  Bit-identical to :func:`dominance_keep_mask_reference`.
    """
    return kernels.dominance_mask(profile, chunk_cells=chunk_cells)


def dominance_keep_mask_reference(profile: np.ndarray, *,
                                  chunk_cells: int = _REDUCTION_CHUNK_CELLS
                                  ) -> np.ndarray:
    """The pre-vectorization keep-mask, retained as the parity oracle."""
    prof = np.ascontiguousarray(profile, dtype=np.float64)
    k, c = prof.shape
    if k <= 1:
        return np.ones(k, dtype=bool)
    dominated = np.zeros(k, dtype=bool)
    rows_i = np.arange(k)[:, None]
    chunk = max(1, chunk_cells // max(k * c, 1))
    for j0 in range(0, k, chunk):
        j1 = min(k, j0 + chunk)
        block = prof[j0:j1]                                   # [c0, C]
        le = (prof[:, None, :] <= block[None, :, :]).all(-1)  # [K, c0]
        ge = (prof[:, None, :] >= block[None, :, :]).all(-1)
        beats = le & (~ge | (rows_i < np.arange(j0, j1)[None, :]))
        dominated[j0:j1] |= beats.any(axis=0)
    return ~dominated


# ---------------------------------------------------------------------------
# The reduction engine
# ---------------------------------------------------------------------------

class _Reducer:
    """Mutable reduction state iterated to a fixed point.

    ``vectorized`` selects the kernel-dispatched fast path plus the
    dirty-set worklist; ``False`` replays the pre-vectorization
    per-vertex code exactly (the parity oracle for the property tests).
    Both paths visit nodes in the same order and produce bit-identical
    ``lc``/``tx``/``sel``/``elims``/``base_cost``: the worklist only
    skips prunes that provably keep every row (a node's survivors are
    mutually non-dominated, so re-pruning an unchanged profile is a
    no-op), and every kernel preserves scalar association and argmin
    tie-break.
    """

    def __init__(self, graph: CompGraph, space: ConfigSpace,
                 tables: CostTables, *, vectorized: bool = True,
                 memory: "Mapping[str, np.ndarray] | None" = None) -> None:
        self.space = space
        self.vectorized = vectorized
        self.order = tuple(space.tables)  # deterministic node order
        self.lc: dict[str, np.ndarray] = {
            n: np.array(tables.lc[n], dtype=np.float64) for n in self.order}
        #: Per-node per-config memory columns (frontier objective): when
        #: set, dominance must respect *both* axes — a config survives
        #: unless some other config beats it on cost everywhere *and* on
        #: memory, so every (cost, peak-bytes) frontier value survives.
        self.mem: dict[str, np.ndarray] | None = None
        if memory is not None:
            self.mem = {n: np.ascontiguousarray(memory[n], dtype=np.float64)
                        for n in self.order}
        self.tx: dict[tuple[str, str], np.ndarray] = {
            key: np.array(mat, dtype=np.float64)
            for key, mat in tables.pair_tx.items()}
        self.adj: dict[str, set[str]] = {n: set() for n in self.order}
        for (u, v) in self.tx:
            self.adj[u].add(v)
            self.adj[v].add(u)
        self.sel: dict[str, np.ndarray] = {
            n: np.arange(space.size(n), dtype=np.int64) for n in self.order}
        self.elims: list[_ElimRecord] = []
        self.base_cost = 0.0
        self.configs_removed = 0
        #: Nodes whose profile (lc column or an incident tx matrix) may
        #: have changed since their last dominance prune.
        self.dirty: set[str] = set(self.order)

    # -- helpers -----------------------------------------------------------

    def _mat(self, u: str, v: str) -> np.ndarray:
        """Transfer matrix oriented ``[K_u, K_v]``."""
        key, flip = _canonical(u, v)
        mat = self.tx[key]
        return mat.T if flip else mat

    def _set_mat(self, u: str, v: str, mat: np.ndarray) -> None:
        key, flip = _canonical(u, v)
        self.tx[key] = mat.T if flip else mat

    def _drop_pair(self, u: str, v: str) -> None:
        del self.tx[_canonical(u, v)[0]]
        self.adj[u].discard(v)
        self.adj[v].discard(u)

    def _slice_records(self, name: str, keep: np.ndarray) -> None:
        """Keep pending elimination tables aligned with a pruned axis."""
        for rec in self.elims:
            for ax, dep in enumerate(rec.deps):
                if dep == name:
                    rec.table = np.compress(keep, rec.table, axis=ax)

    # -- dominance ---------------------------------------------------------

    def prune_node(self, name: str) -> bool:
        """Dominance-prune one node's configurations; True if any dropped."""
        self.dirty.discard(name)
        k = self.lc[name].shape[0]
        if k <= 1:
            return False
        cols = [self.lc[name][:, None]]
        if self.mem is not None:
            cols.append(self.mem[name][:, None])
        for u in sorted(self.adj[name]):
            cols.append(self._mat(name, u))
        mask_fn = (dominance_keep_mask if self.vectorized
                   else dominance_keep_mask_reference)
        keep = mask_fn(np.concatenate(cols, axis=1))
        if keep.all():
            return False
        self.configs_removed += int(k - keep.sum())
        self.lc[name] = self.lc[name][keep]
        if self.mem is not None:
            self.mem[name] = self.mem[name][keep]
        self.sel[name] = self.sel[name][keep]
        for u in self.adj[name]:
            self._set_mat(name, u, self._mat(name, u)[keep])
            # u's profile lost columns -> previously-kept rows may now
            # be dominated; revisit it.
            self.dirty.add(u)
        self._slice_records(name, keep)
        return True

    # -- contraction -------------------------------------------------------

    def eliminate_node(self, name: str) -> bool:
        """Contract one degree-<=2 node; True on success."""
        nbrs = sorted(self.adj[name])
        lc_w = self.lc[name]
        if len(nbrs) == 0:
            arg = np.int32(np.argmin(lc_w)) if lc_w.size else np.int32(0)
            self.base_cost += float(lc_w[arg]) if lc_w.size else 0.0
            table: np.ndarray = np.array(arg, dtype=np.int32)
            deps: tuple[str, ...] = ()
        elif len(nbrs) == 1:
            u = nbrs[0]
            prof = self._mat(u, name) + lc_w[None, :]        # [K_u, K_w]
            if self.vectorized:
                vals, table = kernels.last_axis_min_argmin(prof)
            else:
                table = prof.argmin(axis=1).astype(np.int32)
                vals = prof.min(axis=1)
            self.lc[u] = self.lc[u] + vals
            self._drop_pair(u, name)
            deps = (u,)
        else:
            u, v = nbrs
            mat_uw = self._mat(u, name)                      # [K_u, K_w]
            mat_wv = self._mat(name, v)                      # [K_w, K_v]
            if self.vectorized:
                # Pre-fold lc[w] into the (w, v) side and transpose so the
                # kernel reduces over the last, contiguous axis; the scalar
                # association stays uw + (lc + wv), as in the reference.
                bt = np.ascontiguousarray((lc_w[:, None] + mat_wv).T)
                folded, table = kernels.min_plus_fold(
                    mat_uw, bt, chunk_cells=_REDUCTION_CHUNK_CELLS)
            else:
                folded, table = _min_over_middle(lc_w, mat_uw, mat_wv)
            self._drop_pair(u, name)
            self._drop_pair(name, v)
            if v in self.adj[u]:
                self._set_mat(u, v, self._mat(u, v) + folded)
            else:
                self._set_mat(u, v, folded)
                self.adj[u].add(v)
                self.adj[v].add(u)
            deps = (u, v)
        self.elims.append(_ElimRecord(
            node=name, deps=deps, table=table, sel=self.sel[name].copy()))
        del self.lc[name], self.sel[name], self.adj[name]
        self.dirty.discard(name)
        for u in nbrs:
            # The neighbor absorbed lc/edge mass; its profile changed.
            self.dirty.add(u)
        return True

    # -- accounting --------------------------------------------------------

    def work_cells(self) -> int:
        """Live table cells: ``Σ K_v + Σ K_u · K_v`` over surviving nodes."""
        return int(sum(a.shape[0] for a in self.lc.values())
                   + sum(m.size for m in self.tx.values()))


def _min_over_middle(lc_w: np.ndarray, mat_uw: np.ndarray,
                     mat_wv: np.ndarray,
                     chunk_cells: int = _REDUCTION_CHUNK_CELLS
                     ) -> tuple[np.ndarray, np.ndarray]:
    """``min/argmin over k_w`` of ``lc_w + tx(u,w) + tx(w,v)``, chunked.

    Returns ``(folded [K_u, K_v], argmin [K_u, K_v] int32)``; the cube is
    evaluated in row-chunks of ``K_u`` so the transient stays within
    ``chunk_cells`` cells.
    """
    ku, kw = mat_uw.shape
    kv = mat_wv.shape[1]
    folded = np.empty((ku, kv), dtype=np.float64)
    arg = np.empty((ku, kv), dtype=np.int32)
    rows = max(1, chunk_cells // max(kw * kv, 1))
    mid = lc_w[None, :, None] + mat_wv[None, :, :]           # [1, K_w, K_v]
    for a0 in range(0, ku, rows):
        a1 = min(ku, a0 + rows)
        cube = mat_uw[a0:a1, :, None] + mid                  # [rows, K_w, K_v]
        folded[a0:a1] = cube.min(axis=1)
        arg[a0:a1] = cube.argmin(axis=1)
    return folded, arg


def reduce_problem(graph: CompGraph, space: ConfigSpace, tables: CostTables,
                   *, dominance: bool = True, contraction: bool = True,
                   max_rounds: int = 64, vectorized: bool = True,
                   memory: "Mapping[str, np.ndarray] | None" = None,
                   checkpoint: "Callable[..., None] | None" = None,
                   ctx: "object | None" = None,
                   ) -> ReducedProblem:
    """Shrink a search problem by dominance pruning and chain contraction.

    Iterates both rules to a fixed point (or ``max_rounds``).  The
    reduction is exactness-preserving: the reduced problem's optimum plus
    ``base_cost`` equals the original optimum, and
    :meth:`ReducedProblem.expand_indices` recovers a witnessing strategy.
    Runs *after* any table-cache lookup, so cached tables stay canonical.
    ``vectorized=False`` replays the pre-kernel per-vertex implementation
    (the parity oracle; bit-identical output, much slower).
    ``memory`` switches the reduction to the frontier objective: per-node
    per-config memory columns (``name -> float64 [K]``) join the
    dominance profile so pruning respects *both* axes, and chain
    contraction — whose min-fold is scalar-objective and would collapse
    the memory axis — is auto-disabled; the stats record both decisions
    (``reduction_memory_aware`` / ``reduction_contraction_disabled``).
    ``checkpoint`` (`repro.runtime.make_checkpoint`) is polled once per
    fixed-point round; it aborts by raising, always between rounds.  A
    `repro.runtime.RunContext` passed as ``ctx`` supplies the checkpoint
    (and its observability pair) instead.
    """
    from ..obs.profile import metrics_of, tracer_of

    if ctx is not None:
        checkpoint = ctx.make_checkpoint()
    tracer = tracer_of(ctx)
    t0 = time.perf_counter()
    contraction_disabled = bool(contraction and memory is not None)
    if memory is not None:
        contraction = False
    red = _Reducer(graph, space, tables, vectorized=vectorized,
                   memory=memory)
    cells_before = red.work_cells()
    n_before = len(red.order)

    rounds = 0
    changed = True
    with tracer.span("reduction", cells_before=cells_before) as red_span:
        while changed and rounds < max_rounds:
            if checkpoint is not None:
                checkpoint(phase="reduction", step=rounds, total=max_rounds)
            changed = False
            rounds += 1
            with tracer.span("reduction.round", round=rounds):
                if dominance:
                    for name in list(red.lc):
                        if vectorized and name not in red.dirty:
                            # Untouched since its last prune: survivors
                            # are pairwise non-dominated, so re-pruning
                            # keeps every row.  Skipping is exact.
                            continue
                        changed |= red.prune_node(name)
                if contraction:
                    for name in [n for n in red.order if n in red.lc]:
                        if len(red.adj[name]) <= 2:
                            changed |= red.eliminate_node(name)
        red_span.set(rounds=rounds, cells_after=red.work_cells())
    metrics_of(ctx).counter(
        "reduction_rounds_total", "search-space reduction rounds").inc(rounds)

    survivors = tuple(n for n in red.order if n in red.lc)
    reduced_space = space.restrict({n: red.sel[n] for n in survivors})
    reduced_tables = CostTables(
        graph=graph, space=reduced_space, machine=tables.machine,
        lc={n: red.lc[n] for n in survivors},
        pair_tx=dict(red.tx), derived=True)
    reduced_tables.build_stats = dict(tables.build_stats)
    reduced_graph = ReducedGraphView(
        survivors, {n: sorted(red.adj[n]) for n in survivors})

    cells_after = red.work_cells()
    stats = {
        "reduction_seconds": time.perf_counter() - t0,
        "reduction_rounds": float(rounds),
        "reduction_configs_removed": float(red.configs_removed),
        "reduction_vertices_removed": float(n_before - len(survivors)),
        "reduction_cells_removed": float(cells_before - cells_after),
        "reduction_cells_before": float(cells_before),
        "reduction_cells_after": float(cells_after),
        "reduction_bypassed": 0.0,
    }
    if memory is not None:
        stats["reduction_memory_aware"] = 1.0
        stats["reduction_contraction_disabled"] = (
            1.0 if contraction_disabled else 0.0)
    return ReducedProblem(
        graph=graph, space=space, tables=tables,
        reduced_graph=reduced_graph, reduced_space=reduced_space,
        reduced_tables=reduced_tables, base_cost=red.base_cost,
        config_maps={n: red.sel[n] for n in survivors},
        elims=tuple(red.elims), stats=stats)
