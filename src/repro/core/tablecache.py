"""Content-addressed on-disk cache for precomputed `CostTables`.

Every search entry point pays `CostModel.build_tables` before a single DP
cell is evaluated, and the same (graph, machine, p, mode) instance is
rebuilt by experiment drivers thousands of times across runs.  TensorOpt
and FlexFlow both treat cost-profile construction as a cacheable artifact;
this module does the same for PaSE's tables.

**Cache key.**  :func:`table_digest` hashes a canonical description of
everything the table contents depend on:

* graph structure and op shapes — per node: name, kind, dims
  (name/size/splittable), aliases, every tensor port's axes / param flag /
  scale / sparse-gradient count, reduction dims, FLOP model; plus the full
  edge list with ports;
* the `MachineSpec` (rates, topology breakdown, p2p);
* the configuration space — ``p``, enumeration mode, **and the raw bytes
  of every node's configuration table** (so pruned or custom spaces get
  their own entries);
* the `CostModel` ablation flags and update-phase constant;
* a format version, bumped whenever the stored layout changes.

Any change to any of these yields a different digest, which *is* the
invalidation rule: stale entries are never read, only eventually evicted
by the size cap.

**Storage.**  One ``<digest>.npz`` per entry holding every ``lc`` and
``pair_tx`` array plus a JSON manifest; writes go through a temp file +
``os.replace`` so concurrent builders never observe a torn entry.  The
cache is bounded by ``max_bytes``; storing past the cap evicts the
least-recently-used entries (by file mtime — hits re-touch their entry).

**Concurrency.**  Entry writes are already atomic, but eviction (and
quarantine, and ``clear``) delete files, and a fleet sweep points many
worker processes at one shared cache directory.  Every mutating sweep
over the directory therefore runs under an exclusive ``flock`` on
``<root>/.lock`` — held only for the scan/delete, never while a table is
being serialized — and treats an entry vanishing mid-scan as already
evicted, not an error.  The lock is released by the kernel if its holder
dies, so a SIGKILLed worker can never wedge the cache.

**Corruption.**  The manifest carries a sha256 over every stored array's
raw bytes (`payload_checksum`), verified on load.  An entry that fails
to parse, fails its checksum, or does not match the live configuration
space is **quarantined** — moved to a ``corrupt/`` subdirectory and
counted in ``TableCache.quarantined`` — and reported as a plain miss, so
a truncated or bit-flipped file costs one rebuild, never a crash, while
the evidence is kept for inspection instead of silently deleted.

Tables marked ``derived`` (e.g. resilience coarsening slices) are refused
by :meth:`TableCache.store`: their digest would describe the original
space and poison later lookups.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import logging
import os
import tempfile
import weakref
import zipfile
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

import numpy as np

from .configs import ConfigSpace
from .graph import CompGraph
from .machine import MachineSpec

if TYPE_CHECKING:  # pragma: no cover
    from .costmodel import CostModel, CostTables

__all__ = ["TableCache", "table_digest", "DEFAULT_CACHE_BYTES",
           "CACHE_DIR_ENV", "CACHE_BYTES_ENV"]

#: Stored-layout version; bump to invalidate every existing entry.
#: v2 added the manifest payload checksum.
_FORMAT_VERSION = 2

_log = logging.getLogger(__name__)

#: Default size cap for the cache directory (bytes).
DEFAULT_CACHE_BYTES = 1 << 30

#: Environment overrides for the cache directory and size cap.
CACHE_DIR_ENV = "PASE_TABLE_CACHE_DIR"
CACHE_BYTES_ENV = "PASE_TABLE_CACHE_BYTES"

#: Kill-switch for mmap'd warm hits: set to ``0`` to force the eager
#: (copying) loader everywhere.
CACHE_MMAP_ENV = "PASE_TABLE_MMAP"

#: Separator joining pair keys in the manifest (never appears in names).
_PAIR_SEP = "\x1f"

#: Process-wide memo of *verified* mmap'd entries, keyed by
#: ``(path, inode, size, digest)``.  A persistent fleet worker hits
#: the same cache file once per task; re-mapping and re-checksumming
#: identical bytes every time is pure waste, so the parsed read-only
#: views are kept until the file changes (any rewrite lands via
#: ``os.replace``, whose temp file carries a fresh inode) or the memo
#: fills up.  The inode — not mtime — identifies the bytes, because the
#: cache's own LRU touch rewrites mtime on every hit.  Only mmap reads
#: are memoized: their arrays are immutable views, safe to hand to any
#: number of callers.
_MMAP_MEMO: dict = {}
_MMAP_MEMO_MAX = 16

#: Identity-keyed memo for `table_digest`: hashing the full enumerated
#: configuration space costs ~1ms, and a fleet worker digests the same
#: memoized ``(graph, space)`` pair on every task (once for the cache
#: lookup, once for the run fingerprint).  Entries are validated by
#: weakref before use, so a recycled ``id()`` can never alias a dead
#: object's digest.  Mutating a graph/space in place after digesting it
#: is not supported (they are build-once values everywhere in the repo).
_DIGEST_MEMO: dict = {}
_DIGEST_MEMO_MAX = 32


def _payload_checksum(arrays) -> str:
    """sha256 over the stored arrays' dtype/shape/raw bytes, in manifest
    order — the integrity check `TableCache.load` verifies.

    Contiguous arrays hash straight off their buffer (no ``tobytes``
    copy), so verifying a multi-MB mmap'd entry touches the pages once
    and allocates nothing; the digest is identical either way.
    """
    h = hashlib.sha256()
    for arr in arrays:
        a = arr if (isinstance(arr, np.ndarray) and arr.flags.c_contiguous) \
            else np.ascontiguousarray(arr)
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.data)
    return h.hexdigest()


def _tensor_desc(spec) -> list:
    return [list(spec.axes), bool(spec.is_param), float(spec.scale),
            spec.sparse_grad_elements]


def _node_desc(op) -> list:
    return [
        op.name,
        op.kind,
        [[d.name, d.size, bool(d.splittable)] for d in op.dims],
        sorted((a, [p, s]) for a, (p, s) in op.aliases.items()),
        sorted((port, _tensor_desc(s)) for port, s in op.inputs.items()),
        sorted((port, _tensor_desc(s)) for port, s in op.outputs.items()),
        sorted(op.reduction_dims),
        float(op.flops_per_point),
        op.flops_fwd_override,
    ]


def table_digest(graph: CompGraph, space: ConfigSpace,
                 model: "CostModel", *, memory: bool = False) -> str:
    """Stable hex digest identifying one table-construction instance.

    ``memory=True`` describes a build that also carries per-node memory
    tables (``CostTables.mem``); it folds a marker plus the memory
    model's constants into the digest so memory-carrying entries never
    alias scalar ones.  ``memory=False`` digests are byte-identical to
    what this function produced before the flag existed — every cached
    scalar entry and journal key stays valid.
    """
    model_key = (model.machine.name, model.machine.peak_flops,
                 model.machine.intra_node_bw, model.machine.inter_node_bw,
                 model.machine.devices_per_node, model.machine.p2p,
                 bool(model.include_grad_sync), bool(model.include_reduction),
                 bool(model.include_extra), float(model.UPDATE_FLOPS_PER_PARAM))
    memo_key = (id(graph), id(space), model_key, bool(memory))
    hit = _DIGEST_MEMO.get(memo_key)
    if hit is not None:
        wr_graph, wr_space, digest = hit
        if wr_graph() is graph and wr_space() is space:
            return digest
        del _DIGEST_MEMO[memo_key]
    h = hashlib.sha256()
    desc = {
        "version": _FORMAT_VERSION,
        "nodes": [_node_desc(op) for op in graph],
        "edges": [[e.src, e.src_port, e.dst, e.dst_port]
                  for e in graph.edges],
        "machine": [model.machine.name, model.machine.peak_flops,
                    model.machine.intra_node_bw, model.machine.inter_node_bw,
                    model.machine.devices_per_node, model.machine.p2p],
        "model": [bool(model.include_grad_sync),
                  bool(model.include_reduction),
                  bool(model.include_extra),
                  float(model.UPDATE_FLOPS_PER_PARAM)],
        "space": [space.p, space.mode],
    }
    if memory:
        # Added only when True: scalar digests stay byte-identical to the
        # pre-flag format (v2 cache entries and resume keys never churn).
        from ..analysis.memory import DEFAULT_OPTIMIZER_STATE_FACTOR

        desc["memory"] = [True, float(DEFAULT_OPTIMIZER_STATE_FACTOR)]
    h.update(json.dumps(desc, sort_keys=True).encode())
    # Hash the enumerated configurations themselves so pruned/custom
    # spaces never collide with the stock enumeration for the same p/mode.
    for name in sorted(space.tables):
        tab = np.ascontiguousarray(space.tables[name], dtype=np.int64)
        h.update(name.encode())
        h.update(str(tab.shape).encode())
        h.update(tab.tobytes())
    digest = h.hexdigest()
    try:
        while len(_DIGEST_MEMO) >= _DIGEST_MEMO_MAX:
            _DIGEST_MEMO.pop(next(iter(_DIGEST_MEMO)))
        _DIGEST_MEMO[memo_key] = (weakref.ref(graph), weakref.ref(space),
                                  digest)
    except TypeError:  # non-weakref-able objects: just skip the memo
        pass
    return digest


class TableCache:
    """A bounded on-disk store of `CostTables` arrays keyed by digest.

    Parameters
    ----------
    root:
        Cache directory.  Defaults to ``$PASE_TABLE_CACHE_DIR`` or
        ``~/.cache/pase/tables``.  Created lazily on first store.
    max_bytes:
        Size cap; least-recently-used entries are evicted when a store
        pushes the directory past it.  Defaults to
        ``$PASE_TABLE_CACHE_BYTES`` or 1 GiB.
    """

    def __init__(self, root: str | os.PathLike | None = None, *,
                 max_bytes: int | None = None) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or \
                Path.home() / ".cache" / "pase" / "tables"
        self.root = Path(root)
        if max_bytes is None:
            env = os.environ.get(CACHE_BYTES_ENV)
            max_bytes = int(env) if env else DEFAULT_CACHE_BYTES
        if max_bytes <= 0:
            raise ValueError(f"max_bytes={max_bytes} must be positive")
        self.max_bytes = int(max_bytes)
        #: Entries quarantined by this instance (corrupt/truncated files).
        self.quarantined = 0

    # -- paths ---------------------------------------------------------------

    def path_for(self, digest: str) -> Path:
        return self.root / f"{digest}.npz"

    @property
    def corrupt_dir(self) -> Path:
        return self.root / "corrupt"

    def entries(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return iter(())
        return iter(sorted(self.root.glob("*.npz")))

    def total_bytes(self) -> int:
        total = 0
        for p in self.entries():
            try:
                total += p.stat().st_size
            except OSError:  # deleted by a concurrent evictor
                continue
        return total

    # -- cross-process exclusion ---------------------------------------------

    @contextlib.contextmanager
    def _lock(self):
        """Exclusive ``flock`` on ``<root>/.lock`` for directory mutation.

        Blocks until acquired; auto-released when the fd closes *or* the
        holding process dies, so no crash can leave the cache locked.
        No-op where ``fcntl`` is unavailable (single-process platforms).
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.root / ".lock", os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)

    # -- store / load --------------------------------------------------------

    def store(self, digest: str, tables: "CostTables") -> Path | None:
        """Persist one entry; returns its path, or None when refused.

        Derived tables (coarsened/sliced copies) are refused — their
        digest describes the original configuration space.
        """
        if tables.derived:
            return None
        self.root.mkdir(parents=True, exist_ok=True)
        node_names = list(tables.lc)
        pair_keys = list(tables.pair_tx)
        mem_names = list(tables.mem) if tables.mem is not None else None
        payload = [tables.lc[n] for n in node_names] + \
            [tables.pair_tx[k] for k in pair_keys]
        if mem_names is not None:
            payload += [tables.mem[n] for n in mem_names]
        manifest = {
            "version": _FORMAT_VERSION,
            "digest": digest,
            "nodes": node_names,
            "pairs": [_PAIR_SEP.join(k) for k in pair_keys],
            "payload_checksum": _payload_checksum(payload),
        }
        if mem_names is not None:
            manifest["mem_nodes"] = mem_names
        arrays = {"manifest": np.array(json.dumps(manifest))}
        for i, name in enumerate(node_names):
            arrays[f"lc_{i}"] = tables.lc[name]
        for i, key in enumerate(pair_keys):
            arrays[f"tx_{i}"] = tables.pair_tx[key]
        if mem_names is not None:
            for i, name in enumerate(mem_names):
                arrays[f"mem_{i}"] = tables.mem[name]
        path = self.path_for(digest)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **arrays)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self.evict(keep=path)
        return path

    def load(self, digest: str, graph: CompGraph, space: ConfigSpace,
             machine: MachineSpec, *,
             mmap: bool | None = None) -> "CostTables | None":
        """Reconstruct `CostTables` for a digest, or None on a miss.

        The caller supplies the live graph/space/machine objects (the
        digest guarantees they describe the stored arrays).  A corrupt,
        truncated, checksum-failing, or incompatible entry is quarantined
        to ``corrupt/`` and reported as a miss — the caller rebuilds; the
        run never crashes on a bad cache file.

        Warm hits default to **mmap'd zero-copy views** (``mmap=None``
        honors `CACHE_MMAP_ENV`): the entry's arrays are served read-only
        straight off one shared mapping of the file, so a fleet of
        workers hitting the same entry shares pages instead of each
        copying multi-MB payloads — nothing in the pipeline writes table
        arrays in place (writers copy first, e.g. the reduction's
        ``np.array(...)`` adoption).  Anything the mmap reader cannot
        serve falls back to the eager copying loader, whose verdict
        (including quarantine) is authoritative.
        """
        from .costmodel import CostTables

        path = self.path_for(digest)
        if not path.is_file():
            return None
        if mmap is None:
            mmap = os.environ.get(CACHE_MMAP_ENV, "1") != "0"
        memo_key = verified = None
        if mmap:
            try:
                st = path.stat()
                memo_key = (str(path), st.st_ino, st.st_size, digest)
                verified = _MMAP_MEMO.get(memo_key)
            except OSError:
                return None  # raced an eviction: a plain miss
        if verified is not None:
            manifest, lc, pair_tx, mem = verified
        else:
            loaded = None
            from_mmap = False
            if mmap:
                try:
                    loaded = self._read_mmap(path)
                    from_mmap = True
                except (OSError, ValueError, KeyError, EOFError,
                        zipfile.BadZipFile, json.JSONDecodeError):
                    loaded = None  # let the eager loader classify the file
            try:
                if loaded is None:
                    loaded = self._read_eager(path)
                manifest, lc, pair_tx, mem = loaded
                if manifest.get("version") != _FORMAT_VERSION or \
                        manifest.get("digest") != digest:
                    raise ValueError("manifest mismatch")
                payload = list(lc.values()) + list(pair_tx.values())
                if mem is not None:
                    payload += list(mem.values())
                if _payload_checksum(payload) != \
                        manifest.get("payload_checksum"):
                    raise ValueError("payload checksum mismatch")
            except (OSError, ValueError, KeyError, EOFError,
                    zipfile.BadZipFile, json.JSONDecodeError) as err:
                self._quarantine(path, reason=str(err))
                return None
            if from_mmap and memo_key is not None:
                while len(_MMAP_MEMO) >= _MMAP_MEMO_MAX:
                    _MMAP_MEMO.pop(next(iter(_MMAP_MEMO)))
                _MMAP_MEMO[memo_key] = (manifest, lc, pair_tx, mem)
        if set(lc) != set(space.tables) or \
                any(lc[n].shape[0] != space.size(n) for n in lc):
            self._quarantine(path, reason="stored shapes do not match the "
                             "live configuration space")
            return None
        os.utime(path)  # LRU touch
        return CostTables(graph=graph, space=space, machine=machine,
                          lc=lc, pair_tx=pair_tx, mem=mem)

    @staticmethod
    def _read_mmap(path: Path):
        """Zero-copy read: ``(manifest, lc, pair_tx, mem)`` as read-only
        views over one shared mapping of the entry (POSIX keeps the
        mapping valid even if the file is later evicted)."""
        from .shm import open_npz_mmap

        data = open_npz_mmap(path)
        manifest = json.loads(str(data["manifest"]))
        lc = {name: data[f"lc_{i}"]
              for i, name in enumerate(manifest["nodes"])}
        pair_tx = {}
        for i, joined in enumerate(manifest["pairs"]):
            u, v = joined.split(_PAIR_SEP)
            pair_tx[(u, v)] = data[f"tx_{i}"]
        mem = None
        if "mem_nodes" in manifest:
            mem = {name: data[f"mem_{i}"]
                   for i, name in enumerate(manifest["mem_nodes"])}
        return manifest, lc, pair_tx, mem

    @staticmethod
    def _read_eager(path: Path):
        """Copying read: ``(manifest, lc, pair_tx, mem)`` as owned arrays."""
        with np.load(path, allow_pickle=False) as data:
            manifest = json.loads(str(data["manifest"]))
            lc = {name: data[f"lc_{i}"]
                  for i, name in enumerate(manifest["nodes"])}
            pair_tx = {}
            for i, joined in enumerate(manifest["pairs"]):
                u, v = joined.split(_PAIR_SEP)
                pair_tx[(u, v)] = data[f"tx_{i}"]
            mem = None
            if "mem_nodes" in manifest:
                mem = {name: data[f"mem_{i}"]
                       for i, name in enumerate(manifest["mem_nodes"])}
        return manifest, lc, pair_tx, mem

    def _quarantine(self, path: Path, *, reason: str) -> None:
        """Move a bad entry to ``corrupt/`` (counted, never re-read).

        ``entries()`` only globs the cache root, so quarantined files are
        invisible to hits and eviction; they persist for inspection until
        someone clears the subdirectory.
        """
        self.quarantined += 1
        _log.warning("quarantining corrupt table-cache entry %s (%s)",
                     path.name, reason)
        try:
            with self._lock():
                self.corrupt_dir.mkdir(parents=True, exist_ok=True)
                os.replace(path, self.corrupt_dir / path.name)
        except OSError:
            path.unlink(missing_ok=True)

    # -- maintenance ---------------------------------------------------------

    def evict(self, keep: Path | None = None) -> list[Path]:
        """Delete least-recently-used entries until under ``max_bytes``.

        ``keep`` (typically the entry just written) is evicted only after
        every other entry is gone.  The whole scan-and-delete runs under
        the cache lock so concurrent writers never double-evict or trip
        over each other's deletions.
        """
        with self._lock():
            return self._evict_locked(keep)

    def _evict_locked(self, keep: Path | None) -> list[Path]:
        entries = []
        for p in self.entries():
            try:
                entries.append((p, p.stat()))
            except OSError:  # vanished between glob and stat
                continue
        total = sum(st.st_size for _, st in entries)
        if total <= self.max_bytes:
            return []
        entries.sort(key=lambda e: (e[0] == keep, e[1].st_mtime))
        removed: list[Path] = []
        for p, st in entries:
            if total <= self.max_bytes:
                break
            p.unlink(missing_ok=True)
            total -= st.st_size
            removed.append(p)
        return removed

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        with self._lock():
            n = 0
            for p in self.entries():
                p.unlink(missing_ok=True)
                n += 1
            return n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TableCache {self.root} cap={self.max_bytes}>"
