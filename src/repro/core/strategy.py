"""Parallelization strategies: node -> configuration maps, plus results.

A `Strategy` assigns every node of a computation graph one valid
parallelization configuration (paper, Section II).  Strategies are the
common currency of the library: the DP, the baselines, the MCMC
comparator, and the cluster simulator all produce or consume them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping

from .configs import ConfigSpace
from .costmodel import CostTables
from .exceptions import StrategyError
from .graph import CompGraph

__all__ = ["Strategy", "FrontierPoint", "SearchResult"]


@dataclass(frozen=True)
class Strategy:
    """An immutable node-name -> configuration-tuple mapping."""

    assignment: Mapping[str, tuple[int, ...]]

    def __post_init__(self) -> None:
        frozen = {n: tuple(int(x) for x in c) for n, c in self.assignment.items()}
        object.__setattr__(self, "assignment", frozen)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_indices(cls, space: ConfigSpace, indices: Mapping[str, int]) -> "Strategy":
        return cls({n: space.config(n, k) for n, k in indices.items()})

    @classmethod
    def serial(cls, graph: CompGraph) -> "Strategy":
        return cls({op.name: (1,) * op.rank for op in graph})

    # -- accessors -------------------------------------------------------------

    def __getitem__(self, node: str) -> tuple[int, ...]:
        try:
            return self.assignment[node]
        except KeyError:
            raise StrategyError(f"strategy has no configuration for node {node!r}") from None

    def __contains__(self, node: str) -> bool:
        return node in self.assignment

    def __len__(self) -> int:
        return len(self.assignment)

    def nodes(self) -> tuple[str, ...]:
        return tuple(self.assignment)

    def degree(self, node: str) -> int:
        """Number of devices the node's configuration uses."""
        d = 1
        for c in self[node]:
            d *= c
        return d

    def max_devices(self) -> int:
        return max((self.degree(n) for n in self.assignment), default=1)

    # -- validation / evaluation ------------------------------------------------

    def validate(self, graph: CompGraph, p: int) -> None:
        """Check completeness, arity, and the ``prod <= p`` constraint."""
        for op in graph:
            cfg = self[op.name]
            if len(cfg) != op.rank:
                raise StrategyError(
                    f"node {op.name!r}: configuration arity {len(cfg)} != rank {op.rank}")
            prod = 1
            for c, dim in zip(cfg, op.dims):
                if c < 1:
                    raise StrategyError(f"node {op.name!r}: split {c} < 1")
                if c > dim.size:
                    raise StrategyError(
                        f"node {op.name!r}: split {c} exceeds dim {dim.name!r}={dim.size}")
                if c > 1 and not dim.splittable:
                    raise StrategyError(
                        f"node {op.name!r}: dim {dim.name!r} is not splittable")
                prod *= c
            if prod > p:
                raise StrategyError(
                    f"node {op.name!r}: configuration {cfg} uses {prod} > p={p} devices")
        extra = set(self.assignment) - set(graph.node_names)
        if extra:
            raise StrategyError(f"strategy names unknown nodes: {sorted(extra)[:5]}")

    def to_indices(self, space: ConfigSpace) -> dict[str, int]:
        return {n: space.index_of(n, c) for n, c in self.assignment.items()}

    def cost(self, tables: CostTables) -> float:
        """F(G, φ) under a precomputed cost oracle."""
        return tables.strategy_cost(self.to_indices(tables.space))

    def breakdown(self, tables: CostTables) -> dict[str, float]:
        """Per-node layer cost plus per-pair transfer cost (FLOP units)."""
        idx = self.to_indices(tables.space)
        out: dict[str, float] = {}
        for n, k in idx.items():
            out[n] = float(tables.lc[n][k])
        for (u, v), mat in tables.pair_tx.items():
            out[f"{u}<->{v}"] = float(mat[idx[u], idx[v]])
        return out

    # -- presentation -------------------------------------------------------------

    def format_table(self, graph: CompGraph, *, only_parallel: bool = False) -> str:
        """Render in the layout of the paper's Table II."""
        rows = [("Layer", "Dimensions", "Configuration")]
        for op in graph:
            cfg = self[op.name]
            if only_parallel and all(c == 1 for c in cfg):
                continue
            rows.append((op.name, "".join(op.dim_names), str(cfg)))
        widths = [max(len(r[i]) for r in rows) for i in range(3)]
        lines = ["  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip() for r in rows]
        lines.insert(1, "-" * (sum(widths) + 4))
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps({n: list(c) for n, c in sorted(self.assignment.items())},
                          indent=2)

    @classmethod
    def from_json(cls, text: str) -> "Strategy":
        data = json.loads(text)
        return cls({n: tuple(c) for n, c in data.items()})


@dataclass(frozen=True)
class FrontierPoint:
    """One non-dominated (cost, per-device memory) point of a search.

    Attributes
    ----------
    cost:
        Analytic cost F(G, φ) of ``strategy`` in FLOP units.
    peak_bytes:
        Per-device memory footprint of ``strategy`` in bytes (parameter
        shards with optimizer state, activation shards, and
        communication buffers — `repro.analysis.memory.MemoryModel`).
    strategy:
        The strategy realizing this tradeoff.
    """

    cost: float
    peak_bytes: float
    strategy: Strategy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FrontierPoint cost={self.cost:.4g} "
                f"peak_bytes={self.peak_bytes:.4g}>")


@dataclass
class SearchResult:
    """Outcome of one strategy search.

    Attributes
    ----------
    strategy:
        The best strategy found.
    cost:
        Its analytic cost F(G, φ) in FLOP units.
    elapsed:
        Wall-clock search seconds.
    stats:
        Searcher-specific counters (DP cells evaluated, MCMC iterations,
        table bytes, ...).
    frontier:
        Non-dominated (cost, peak-bytes) points, sorted by ascending
        cost.  Length 1 for scalar-objective runs (the optimum itself),
        the full Pareto frontier for ``objective="frontier"`` runs —
        downstream code never branches on run type.
    """

    strategy: Strategy
    cost: float
    elapsed: float
    method: str
    stats: dict[str, float] = field(default_factory=dict)
    frontier: tuple[FrontierPoint, ...] = ()

    def with_stats(self, **extra: float) -> "SearchResult":
        """Copy of this result with ``extra`` merged into ``stats``.

        Used to splice phase telemetry (table construction, search-space
        reduction) onto a search outcome without mutating the original.
        Keys are validated against the frozen schema
        (`repro.core.stats.STATS_KEYS`) so exporters and tests never
        have to guess key names.
        """
        from .stats import validate_stats_keys

        validate_stats_keys(extra)
        merged = dict(self.stats)
        merged.update(extra)
        return SearchResult(strategy=self.strategy, cost=self.cost,
                            elapsed=self.elapsed, method=self.method,
                            stats=merged, frontier=self.frontier)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SearchResult {self.method}: cost={self.cost:.4g} "
                f"elapsed={self.elapsed:.3f}s>")
