"""Cluster topology: devices, nodes, link classes and bandwidths."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.exceptions import SimulationError
from ..core.machine import MachineSpec

__all__ = ["LinkKind", "ClusterTopology"]


class LinkKind(enum.Enum):
    """Classes of device-to-device paths."""

    LOCAL = "local"          # same device (no transfer)
    INTRA_P2P = "intra_p2p"  # same node, peer-to-peer PCIe
    INTRA_HOST = "intra_host"  # same node, staged through host memory
    INTER = "inter"          # across nodes, InfiniBand


@dataclass(frozen=True)
class ClusterTopology:
    """``p`` devices packed into ``machine.devices_per_node``-GPU nodes.

    Devices are numbered consecutively; device ``d`` lives on node
    ``d // devices_per_node``.  The greedy placement's low-device-first
    bias therefore also packs cooperating shards into as few nodes as
    possible, as the paper's Mesh-TensorFlow runs do.
    """

    machine: MachineSpec
    p: int

    def __post_init__(self) -> None:
        if self.p < 1:
            raise SimulationError(f"cluster needs >= 1 device, got {self.p}")

    @property
    def num_nodes(self) -> int:
        return self.machine.nodes_for(self.p)

    def node_of(self, dev: int) -> int:
        if not 0 <= dev < self.p:
            raise SimulationError(f"device {dev} outside 0..{self.p - 1}")
        return dev // self.machine.devices_per_node

    def link_kind(self, a: int, b: int) -> LinkKind:
        if a == b:
            return LinkKind.LOCAL
        if self.node_of(a) == self.node_of(b):
            return LinkKind.INTRA_P2P if self.machine.p2p else LinkKind.INTRA_HOST
        return LinkKind.INTER

    def bandwidth(self, a: int, b: int) -> float:
        """Bytes/s of the path between two devices (inf for local)."""
        kind = self.link_kind(a, b)
        if kind is LinkKind.LOCAL:
            return float("inf")
        if kind is LinkKind.INTER:
            return self.machine.inter_node_bw
        bw = self.machine.intra_node_bw
        # Host-staged copies traverse PCIe twice (device->host->device).
        return bw if self.machine.p2p else bw / 2.0

    def transfer_time(self, nbytes: float, a: int, b: int) -> float:
        if a == b or nbytes <= 0:
            return 0.0
        return nbytes / self.bandwidth(a, b)
