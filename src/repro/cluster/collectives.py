"""Collective-communication timing models (ring algorithms).

Collectives are modelled at the granularity the simulator needs: one busy
interval per participating NIC whose duration is the ring schedule's
completion time.  Ring bandwidth is bottlenecked by the slowest link
between consecutive ring members (devices ordered by id, so intra-node
neighbors come first).
"""

from __future__ import annotations

from typing import Sequence

from .topology import ClusterTopology

__all__ = ["group_bottleneck_bw", "ring_allreduce_time", "ring_allgather_time",
           "ring_reduce_scatter_time", "alltoall_time", "RING_CHANNELS"]

#: Concurrent ring channels (NCCL-style duplex/multi-ring execution);
#: collective times divide by this.
RING_CHANNELS = 2.0


def group_bottleneck_bw(topo: ClusterTopology, devices: Sequence[int]) -> float:
    """Slowest link bandwidth along the ring over ``devices`` (sorted)."""
    devs = sorted(set(int(d) for d in devices))
    if len(devs) < 2:
        return float("inf")
    ring = devs + [devs[0]]
    return min(topo.bandwidth(a, b) for a, b in zip(ring, ring[1:]))


def ring_allreduce_time(topo: ClusterTopology, nbytes: float,
                        devices: Sequence[int]) -> float:
    """Completion time of a ring all-reduce of ``nbytes`` per device."""
    m = len(set(int(d) for d in devices))
    if m < 2 or nbytes <= 0:
        return 0.0
    bw = group_bottleneck_bw(topo, devices)
    return 2.0 * nbytes * (m - 1) / m / bw / RING_CHANNELS


def ring_reduce_scatter_time(topo: ClusterTopology, nbytes: float,
                             devices: Sequence[int]) -> float:
    m = len(set(int(d) for d in devices))
    if m < 2 or nbytes <= 0:
        return 0.0
    return nbytes * (m - 1) / m / group_bottleneck_bw(topo, devices) / RING_CHANNELS


def ring_allgather_time(topo: ClusterTopology, nbytes: float,
                        devices: Sequence[int]) -> float:
    """Gather ``nbytes`` shards from every device to every device."""
    m = len(set(int(d) for d in devices))
    if m < 2 or nbytes <= 0:
        return 0.0
    return nbytes * (m - 1) / m / group_bottleneck_bw(topo, devices) / RING_CHANNELS


def alltoall_time(topo: ClusterTopology, nbytes: float,
                  devices: Sequence[int]) -> float:
    """Exchange distinct ``nbytes / m`` blocks between all pairs.

    Unlike the all-gather — where the *same* shard rotates around the
    ring and every step's transfer is useful to every later recipient —
    an all-to-all moves a distinct block per (source, destination) pair.
    Each device injects ``nbytes · (m-1)/m`` of its own data, but a block
    headed ``k`` hops away occupies ``k`` ring links on its way: summing
    ``m`` sources × distances ``1..m-1`` and dividing over the ``m``
    links, every link forwards ``nbytes · (m-1)/2`` bytes across the
    ``m-1`` ring steps (``nbytes/2`` per step, not ``nbytes/m``).  The
    schedule therefore costs a factor ``m/2`` over the all-gather, and
    coincides with it at ``m = 2`` where every block is a direct
    neighbor exchange.
    """
    m = len(set(int(d) for d in devices))
    if m < 2 or nbytes <= 0:
        return 0.0
    return nbytes * (m - 1) / 2.0 / group_bottleneck_bw(topo, devices) / RING_CHANNELS
