"""Collective-communication timing models (ring algorithms).

Collectives are modelled at the granularity the simulator needs: one busy
interval per participating NIC whose duration is the ring schedule's
completion time.  Ring bandwidth is bottlenecked by the slowest link
between consecutive ring members (devices ordered by id, so intra-node
neighbors come first).
"""

from __future__ import annotations

from typing import Sequence

from .topology import ClusterTopology

__all__ = ["group_bottleneck_bw", "ring_allreduce_time", "ring_allgather_time",
           "ring_reduce_scatter_time", "alltoall_time", "RING_CHANNELS"]

#: Concurrent ring channels (NCCL-style duplex/multi-ring execution);
#: collective times divide by this.
RING_CHANNELS = 2.0


def group_bottleneck_bw(topo: ClusterTopology, devices: Sequence[int]) -> float:
    """Slowest link bandwidth along the ring over ``devices`` (sorted)."""
    devs = sorted(set(int(d) for d in devices))
    if len(devs) < 2:
        return float("inf")
    ring = devs + [devs[0]]
    return min(topo.bandwidth(a, b) for a, b in zip(ring, ring[1:]))


def ring_allreduce_time(topo: ClusterTopology, nbytes: float,
                        devices: Sequence[int]) -> float:
    """Completion time of a ring all-reduce of ``nbytes`` per device."""
    m = len(set(int(d) for d in devices))
    if m < 2 or nbytes <= 0:
        return 0.0
    bw = group_bottleneck_bw(topo, devices)
    return 2.0 * nbytes * (m - 1) / m / bw / RING_CHANNELS


def ring_reduce_scatter_time(topo: ClusterTopology, nbytes: float,
                             devices: Sequence[int]) -> float:
    m = len(set(int(d) for d in devices))
    if m < 2 or nbytes <= 0:
        return 0.0
    return nbytes * (m - 1) / m / group_bottleneck_bw(topo, devices) / RING_CHANNELS


def ring_allgather_time(topo: ClusterTopology, nbytes: float,
                        devices: Sequence[int]) -> float:
    """Gather ``nbytes`` shards from every device to every device."""
    m = len(set(int(d) for d in devices))
    if m < 2 or nbytes <= 0:
        return 0.0
    return nbytes * (m - 1) / m / group_bottleneck_bw(topo, devices) / RING_CHANNELS


def alltoall_time(topo: ClusterTopology, nbytes: float,
                  devices: Sequence[int]) -> float:
    """Exchange distinct ``nbytes / m`` blocks between all pairs."""
    m = len(set(int(d) for d in devices))
    if m < 2 or nbytes <= 0:
        return 0.0
    return nbytes * (m - 1) / m / group_bottleneck_bw(topo, devices) / RING_CHANNELS
