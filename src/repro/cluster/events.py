"""A list-scheduling discrete-event engine.

Tasks form a DAG; each task occupies one or more *resources* (per-device
compute streams, per-device NICs) for its whole duration.  The scheduler
releases tasks as their dependencies finish and commits them in
earliest-ready order, serializing tasks that share a resource — the
standard list-scheduling approximation of a real runtime's stream queues.
Communication/computation overlap falls out naturally because NICs and
compute streams are distinct resources.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..core.exceptions import SimulationError
from .trace import TraceRecord

__all__ = ["Task", "ListScheduler"]


@dataclass
class Task:
    """One schedulable unit of work.

    Attributes
    ----------
    tid:
        Unique integer id (assigned by the scheduler on add).
    kind:
        Category tag (``"fwd"``, ``"bwd"``, ``"xfer"``, ``"reduce"``,
        ``"gradsync"``, ``"halo"``); used by traces and reports.
    label:
        Human-readable description (node name etc.).
    resources:
        Resource keys this task occupies, e.g. ``("gpu", 3)``/``("nic", 3)``.
    duration:
        Busy seconds.
    deps:
        Ids of tasks that must finish first.
    """

    kind: str
    label: str
    resources: tuple[tuple[str, int], ...]
    duration: float
    deps: tuple[int, ...] = ()
    tid: int = -1


@dataclass
class ListScheduler:
    """Greedy earliest-ready list scheduler over shared resources."""

    tasks: list[Task] = field(default_factory=list)

    def add(self, task: Task) -> int:
        """Register a task; returns its id (usable as a dependency)."""
        task.tid = len(self.tasks)
        if task.duration < 0:
            raise SimulationError(f"task {task.label!r} has negative duration")
        for dep in task.deps:
            if not 0 <= dep < task.tid:
                raise SimulationError(
                    f"task {task.label!r} depends on unknown/future task {dep}")
        self.tasks.append(task)
        return task.tid

    def run(self, faults=None) -> tuple[float, list[TraceRecord]]:
        """Schedule everything; returns (makespan, per-task trace).

        ``faults``, when given, is a perturbation hook with an
        ``apply(task, start, duration) -> (start, duration)`` method
        (see `repro.resilience.faults.FaultInjector`) called once per
        task right before it is committed — fail-stop blackouts push the
        start, stragglers/degraded links/transient retries stretch the
        duration.  Running with ``faults=None`` is the healthy baseline.
        """
        n = len(self.tasks)
        if n == 0:
            return 0.0, []
        indeg = [len(t.deps) for t in self.tasks]
        dependents: list[list[int]] = [[] for _ in range(n)]
        for t in self.tasks:
            for dep in t.deps:
                dependents[dep].append(t.tid)

        resource_free: dict[tuple[str, int], float] = {}
        finish = [0.0] * n
        ready_at = [0.0] * n
        trace: list[TraceRecord] = []
        # Heap of (ready_time, tid) for tasks whose deps are all done.
        heap: list[tuple[float, int]] = [
            (0.0, t.tid) for t in self.tasks if indeg[t.tid] == 0
        ]
        heapq.heapify(heap)
        done = 0
        makespan = 0.0
        while heap:
            ready, tid = heapq.heappop(heap)
            task = self.tasks[tid]
            start = ready
            for r in task.resources:
                start = max(start, resource_free.get(r, 0.0))
            duration = task.duration
            if faults is not None:
                start, duration = faults.apply(task, start, duration)
            end = start + duration
            for r in task.resources:
                resource_free[r] = end
            finish[tid] = end
            makespan = max(makespan, end)
            trace.append(TraceRecord(tid=tid, kind=task.kind, label=task.label,
                                     resources=task.resources, start=start, end=end))
            done += 1
            for nxt in dependents[tid]:
                indeg[nxt] -= 1
                ready_at[nxt] = max(ready_at[nxt], end)
                if indeg[nxt] == 0:
                    heapq.heappush(heap, (ready_at[nxt], nxt))
        if done != n:
            raise SimulationError("task graph contains a dependency cycle")
        return makespan, trace
