"""Execute one training step of a parallelized graph on a simulated cluster.

For a given (graph, strategy, placement, machine) this builds the full
task DAG of a training step —

* forward compute per shard, with inter-layer transfers assembled from
  block overlaps (preferring local/intra-node copies, as the greedy
  placement intends),
* partial-sum all-reduces where configurations split contracted dims,
* backward compute with mirrored gradient transfers,
* parameter-gradient all-reduces across replication groups (which overlap
  with the remaining backward compute, exactly the effect the analytic
  cost model ignores and the paper's Mesh-TensorFlow runs exploit),
* operator-specific extra communication (convolution halos, recurrent
  boundary handoffs),

— and schedules it on per-device compute and NIC resources.  The makespan
is the step time; throughput is ``batch / step_time``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..assignment.blocks import block_overlap, tensor_blocks
from ..assignment.greedy import Placement, greedy_placement
from ..core.exceptions import SimulationError
from ..core.graph import CompGraph
from ..core.machine import MachineSpec
from ..core.strategy import Strategy
from ..core.tensors import DTYPE_BYTES
from ..ops.base import OpSpec
from .collectives import ring_allreduce_time
from .events import ListScheduler, Task
from .topology import ClusterTopology
from .trace import TraceRecord, busy_time_by_kind, utilization

__all__ = ["SimulationReport", "simulate_step"]

#: Fraction of peak FLOPS a training kernel typically achieves.
DEFAULT_COMPUTE_EFFICIENCY = 0.35

#: Optimizer FLOPs per parameter (matches `repro.core.costmodel.CostModel`).
UPDATE_FLOPS_PER_PARAM = 4.0


@dataclass
class SimulationReport:
    """Outcome of one simulated training step.

    When the step ran under a fault plan, ``baseline_step_time`` holds
    the fault-free makespan of the same task DAG and ``fault_events``
    the perturbations applied (see `repro.resilience.faults`).
    """

    step_time: float
    throughput: float
    batch: int
    p: int
    machine: str
    task_count: int
    busy_by_kind: dict[str, float]
    device_utilization: dict[tuple[str, int], float]
    trace: list[TraceRecord] = field(default_factory=list, repr=False)
    baseline_step_time: float | None = None
    fault_events: list = field(default_factory=list, repr=False)

    @property
    def fault_slowdown(self) -> float:
        """Faulted over fault-free step time (1.0 for healthy runs)."""
        if not self.baseline_step_time:
            return 1.0
        return self.step_time / self.baseline_step_time

    def summary(self) -> str:
        busy = ", ".join(f"{k}={v:.3g}s" for k, v in self.busy_by_kind.items())
        text = (f"{self.machine} p={self.p}: step={self.step_time * 1e3:.2f} ms, "
                f"{self.throughput:.1f} samples/s ({busy})")
        if self.baseline_step_time is not None:
            text += (f" [faulted: {self.fault_slowdown:.2f}x over "
                     f"{self.baseline_step_time * 1e3:.2f} ms healthy, "
                     f"{len(self.fault_events)} fault events]")
        return text


def _infer_batch(graph: CompGraph) -> int:
    for op in graph:
        if op.has_dim("b") and op.resolve_dim("b") == "b":
            return op.dim_size("b")
    raise SimulationError("no node with a batch dim 'b'; pass batch explicitly")


def _distinct_blocks(blocks: np.ndarray) -> list[tuple[int, list[int]]]:
    """Group shard indices by identical block intervals.

    Returns ``(representative, members)`` per distinct block — replicas
    (e.g. reduction-split copies) collapse into one group.
    """
    groups: dict[bytes, list[int]] = {}
    for j in range(blocks.shape[0]):
        groups.setdefault(blocks[j].tobytes(), []).append(j)
    return [(members[0], members) for members in groups.values()]


def _shard_groups(shards: np.ndarray, varying: list[int]) -> list[list[int]]:
    """Group shard row indices by their coordinates on the non-``varying``
    dims; members of a group differ only along ``varying`` dims."""
    if shards.shape[1] == 0:
        return [list(range(shards.shape[0]))]
    keep = [i for i in range(shards.shape[1]) if i not in varying]
    keys = shards[:, keep] if keep else np.zeros((shards.shape[0], 0), dtype=np.int64)
    groups: dict[bytes, list[int]] = {}
    for j in range(shards.shape[0]):
        groups.setdefault(keys[j].tobytes(), []).append(j)
    return list(groups.values())


def _single_config(cfg: tuple[int, ...]) -> np.ndarray:
    return np.asarray(cfg, dtype=np.int64).reshape(1, -1)


class _StepBuilder:
    """Accumulates the task DAG for one training step."""

    def __init__(self, graph: CompGraph, strategy: Strategy,
                 placement: Placement, topo: ClusterTopology,
                 efficiency: float) -> None:
        self.graph = graph
        self.strategy = strategy
        self.placement = placement
        self.topo = topo
        self.flops_rate = topo.machine.peak_flops * efficiency
        self.sched = ListScheduler()
        # Per node: task id whose completion makes each shard's output
        # (fwd) / input-gradient (bwd) available.
        self.fwd_ready: dict[str, list[int]] = {}
        self.bwd_ready: dict[str, list[int]] = {}
        self.order = graph.topological_order()

    # -- helpers -----------------------------------------------------------

    def _edge_overlaps(self, e) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(overlap [P_dst, P_src], src blocks, dst blocks) for an edge."""
        src_op = self.graph.node(e.src)
        dst_op = self.graph.node(e.dst)
        src_blocks = tensor_blocks(src_op, src_op.outputs[e.src_port],
                                   self.strategy[e.src],
                                   self.placement.shards[e.src])
        dst_blocks = tensor_blocks(dst_op, dst_op.inputs[e.dst_port],
                                   self.strategy[e.dst],
                                   self.placement.shards[e.dst])
        ov = block_overlap(dst_blocks, src_blocks)
        return ov, src_blocks, dst_blocks

    def _pick_source(self, holders: list[int], src_devs: np.ndarray,
                     dst_dev: int) -> int:
        """Prefer a local holder, then fastest link, then lowest device."""
        best, best_bw = holders[0], -1.0
        for j in holders:
            d = int(src_devs[j])
            if d == dst_dev:
                return j
            bw = self.topo.bandwidth(d, dst_dev)
            if bw > best_bw:
                best, best_bw = j, bw
        return best

    def _gather_transfers(self, ov: np.ndarray, src_blocks: np.ndarray,
                          src_devs: np.ndarray, dst_devs: np.ndarray,
                          ready: list[int], kind: str, label: str,
                          dedup_src: bool) -> list[list[int]]:
        """Create transfer tasks moving overlapped bytes to each dst shard.

        Returns, per destination shard, the dependency ids its compute
        task must wait for (transfer tasks plus local producers' ready
        tasks).  ``dedup_src=True`` collapses replicated source blocks and
        picks the best-placed copy (forward activations); ``False`` keeps
        every source (backward gradients, which sum over consumers).
        """
        if dedup_src:
            src_groups = _distinct_blocks(src_blocks)
        else:
            src_groups = [(j, [j]) for j in range(src_blocks.shape[0])]
        deps_per_dst: list[list[int]] = []
        for i in range(ov.shape[0]):
            dst_dev = int(dst_devs[i])
            bytes_by_src: dict[int, float] = {}
            dep_by_src: dict[int, set[int]] = {}
            local_deps: set[int] = set()
            for _, members in src_groups:
                holders = [j for j in members if ov[i, j] > 0]
                if not holders:
                    continue
                j = self._pick_source(holders, src_devs, dst_dev)
                src_dev = int(src_devs[j])
                if src_dev == dst_dev:
                    local_deps.add(ready[j])
                else:
                    nbytes = float(ov[i, j]) * DTYPE_BYTES
                    bytes_by_src[src_dev] = bytes_by_src.get(src_dev, 0.0) + nbytes
                    dep_by_src.setdefault(src_dev, set()).add(ready[j])
            deps = list(local_deps)
            for src_dev, nbytes in bytes_by_src.items():
                t = self.sched.add(Task(
                    kind=kind,
                    label=f"{label}->dev{dst_dev}",
                    resources=(("tx", src_dev), ("rx", dst_dev)),
                    duration=self.topo.transfer_time(nbytes, src_dev, dst_dev),
                    deps=tuple(sorted(dep_by_src[src_dev])),
                ))
                deps.append(t)
            deps_per_dst.append(deps)
        return deps_per_dst

    def _extra_comm_tasks(self, op: OpSpec, cfg: tuple[int, ...],
                          devs: np.ndarray, deps: list[list[int]],
                          phase: str) -> list[int | None]:
        """Halo/handoff NIC tasks per shard; None when the op has none."""
        per_dev_bytes = float(op.extra_comm_bytes(_single_config(cfg))[0]) / 2.0
        n = devs.shape[0]
        if per_dev_bytes <= 0 or n < 2:
            return [None] * n
        tasks: list[int | None] = []
        for s in range(n):
            peer = int(devs[(s + 1) % n])
            dur = self.topo.transfer_time(per_dev_bytes, int(devs[s]), peer)
            tasks.append(self.sched.add(Task(
                kind="halo",
                label=f"{phase}-halo {op.name}[{s}]",
                resources=(("tx", int(devs[s])), ("rx", int(devs[s]))),
                duration=dur,
                deps=tuple(deps[s]),
            )))
        return tasks

    # -- forward ---------------------------------------------------------------

    def build_forward(self) -> None:
        for name in self.order:
            op = self.graph.node(name)
            cfg = self.strategy[name]
            shards = self.placement.shards[name]
            devs = self.placement.devices[name]
            n = shards.shape[0]
            fwd_time = op.fwd_flops / n / self.flops_rate

            deps: list[list[int]] = [[] for _ in range(n)]
            for e in self.graph.in_edges(name):
                ov, src_blocks, _ = self._edge_overlaps(e)
                edge_deps = self._gather_transfers(
                    ov, src_blocks, self.placement.devices[e.src], devs,
                    self.fwd_ready[e.src], "xfer", f"fwd {e.src}->{name}",
                    dedup_src=True)
                for i in range(n):
                    deps[i].extend(edge_deps[i])

            halos = self._extra_comm_tasks(op, cfg, devs, deps, "fwd")
            ready: list[int] = []
            for s in range(n):
                d = tuple(sorted(set(deps[s]) | ({halos[s]} if halos[s] is not None else set())))
                ready.append(self.sched.add(Task(
                    kind="fwd", label=f"fwd {name}[{s}]",
                    resources=(("gpu", int(devs[s])),),
                    duration=fwd_time, deps=d)))

            # Partial-sum all-reduce over reduction-dim splits.
            red_idx = [op.dim_index(r) for r in op.reduction_dims]
            m = int(np.prod([cfg[i] for i in red_idx], dtype=np.int64)) if red_idx else 1
            if m > 1 and op.outputs:
                out_bytes = float(op.primary_output.shard_volume(
                    op, _single_config(cfg))[0]) * DTYPE_BYTES
                for group in _shard_groups(shards, red_idx):
                    if len(group) < 2:
                        continue
                    gdevs = [int(devs[s]) for s in group]
                    dur = ring_allreduce_time(self.topo, out_bytes, gdevs)
                    gdeps = tuple(sorted(ready[s] for s in group))
                    for s in group:
                        ready[s] = self.sched.add(Task(
                            kind="reduce", label=f"reduce {name}[{s}]",
                            resources=(("tx", int(devs[s])), ("rx", int(devs[s]))),
                            duration=dur, deps=gdeps))
            self.fwd_ready[name] = ready

    # -- backward -----------------------------------------------------------------

    def build_backward(self) -> None:
        for name in reversed(self.order):
            op = self.graph.node(name)
            cfg = self.strategy[name]
            shards = self.placement.shards[name]
            devs = self.placement.devices[name]
            n = shards.shape[0]
            bwd_time = max(op.flops - op.fwd_flops, 0.0) / n / self.flops_rate

            deps: list[list[int]] = [[] for _ in range(n)]
            out_edges = self.graph.out_edges(name)
            if not out_edges:
                # Loss nodes: backward starts once their forward is done.
                for s in range(n):
                    deps[s].append(self.fwd_ready[name][s])
            for e in out_edges:
                # Gradients flow consumer -> producer with the same block
                # overlaps, but every consumer contributes (sum), so only
                # consumer-side replicas are deduplicated.
                ov, _, dst_blocks = self._edge_overlaps(e)
                edge_deps = self._gather_transfers(
                    ov.T, dst_blocks, self.placement.devices[e.dst], devs,
                    self.bwd_ready[e.dst], "xfer", f"bwd {e.dst}->{name}",
                    dedup_src=True)
                for s in range(n):
                    deps[s].extend(edge_deps[s])

            halos = self._extra_comm_tasks(op, cfg, devs, deps, "bwd")
            ready: list[int] = []
            for s in range(n):
                d = set(deps[s])
                if halos[s] is not None:
                    d.add(halos[s])
                ready.append(self.sched.add(Task(
                    kind="bwd", label=f"bwd {name}[{s}]",
                    resources=(("gpu", int(devs[s])),),
                    duration=bwd_time, deps=tuple(sorted(d)))))
            self.bwd_ready[name] = ready

            # Parameter-gradient all-reduce across replication groups;
            # overlaps with the rest of the backward pass (NIC resource).
            sync_of_shard: list[list[int]] = [[] for _ in range(n)]
            param_shard_volume = 0.0
            for spec in op.inputs.values():
                if not spec.is_param:
                    continue
                param_shard_volume += float(
                    spec.shard_volume(op, _single_config(cfg))[0])
                covered = {op.resolve_dim(a) for a in spec.axes} - {None}
                varying = [i for i, dim in enumerate(op.dims)
                           if dim.name not in covered]
                rho = int(np.prod([cfg[i] for i in varying], dtype=np.int64)) \
                    if varying else 1
                if rho < 2:
                    continue
                w_bytes = float(spec.grad_sync_volume(op, _single_config(cfg))[0]) \
                    * DTYPE_BYTES
                for group in _shard_groups(shards, varying):
                    if len(group) < 2:
                        continue
                    gdevs = [int(devs[s]) for s in group]
                    dur = ring_allreduce_time(self.topo, w_bytes, gdevs)
                    gdeps = tuple(sorted(ready[s] for s in group))
                    for s in group:
                        sync_of_shard[s].append(self.sched.add(Task(
                            kind="gradsync", label=f"gradsync {name}[{s}]",
                            resources=(("tx", int(devs[s])), ("rx", int(devs[s]))),
                            duration=dur, deps=gdeps)))

            # Update phase: each device applies the optimizer to the
            # parameter shards it holds, once its gradients are combined.
            if param_shard_volume > 0:
                upd_time = param_shard_volume * UPDATE_FLOPS_PER_PARAM \
                    / self.flops_rate
                for s in range(n):
                    d = tuple(sorted(sync_of_shard[s])) if sync_of_shard[s] \
                        else (ready[s],)
                    self.sched.add(Task(
                        kind="update", label=f"update {name}[{s}]",
                        resources=(("gpu", int(devs[s])),),
                        duration=upd_time, deps=d))


def simulate_step(
    graph: CompGraph,
    strategy: Strategy,
    machine: MachineSpec,
    p: int,
    *,
    placement: Placement | None = None,
    efficiency: float = DEFAULT_COMPUTE_EFFICIENCY,
    batch: int | None = None,
    keep_trace: bool = False,
    faults=None,
) -> SimulationReport:
    """Simulate one training step; see module docstring.

    Parameters
    ----------
    placement:
        Shard-to-device map; defaults to the greedy locality placement.
    efficiency:
        Achieved fraction of peak FLOPS for compute kernels.
    batch:
        Global batch size for throughput; inferred from the graph's batch
        dim when omitted.
    keep_trace:
        Retain the full per-task trace in the report (large).
    faults:
        Optional `repro.resilience.faults.FaultPlan`.  The step is first
        scheduled fault-free (fixing the baseline makespan that relative
        fault times resolve against), then re-scheduled with the plan's
        perturbations injected; the report carries both makespans plus
        the applied fault events.
    """
    strategy.validate(graph, p)
    if placement is None:
        placement = greedy_placement(graph, strategy, p)
    placement.validate(graph)
    topo = ClusterTopology(machine, p)
    batch = batch if batch is not None else _infer_batch(graph)

    builder = _StepBuilder(graph, strategy, placement, topo, efficiency)
    builder.build_forward()
    builder.build_backward()
    makespan, trace = builder.sched.run()
    if makespan <= 0:
        raise SimulationError("simulated step has zero duration")

    baseline = None
    fault_events: list = []
    if faults is not None and not faults.is_empty():
        from ..resilience.faults import FaultInjector

        baseline = makespan
        injector = FaultInjector(faults.resolve(baseline), p)
        makespan, trace = builder.sched.run(faults=injector)
        fault_events = injector.events

    return SimulationReport(
        step_time=makespan,
        throughput=batch / makespan,
        batch=batch,
        p=p,
        machine=machine.name,
        task_count=len(builder.sched.tasks),
        busy_by_kind=busy_time_by_kind(trace),
        device_utilization=utilization(trace, makespan),
        trace=trace if keep_trace else [],
        baseline_step_time=baseline,
        fault_events=fault_events,
    )
