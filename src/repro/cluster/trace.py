"""Simulation traces and utilization summaries."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

__all__ = ["TraceRecord", "utilization", "busy_time_by_kind",
           "render_gantt", "critical_path", "critical_path_by_kind"]


@dataclass(frozen=True)
class TraceRecord:
    """One scheduled task occurrence."""

    tid: int
    kind: str
    label: str
    resources: tuple[tuple[str, int], ...]
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def utilization(trace: list[TraceRecord], makespan: float) -> dict[tuple[str, int], float]:
    """Busy fraction per resource over the step."""
    busy: dict[tuple[str, int], float] = defaultdict(float)
    for rec in trace:
        for r in rec.resources:
            busy[r] += rec.duration
    if makespan <= 0:
        return {r: 0.0 for r in busy}
    return {r: min(1.0, t / makespan) for r, t in sorted(busy.items())}


def busy_time_by_kind(trace: list[TraceRecord]) -> dict[str, float]:
    """Total task-seconds per task kind (compute vs transfer vs sync)."""
    out: dict[str, float] = defaultdict(float)
    for rec in trace:
        out[rec.kind] += rec.duration
    return dict(sorted(out.items()))


_KIND_GLYPH = {"fwd": "F", "bwd": "B", "xfer": "x", "reduce": "r",
               "gradsync": "g", "update": "u", "halo": "h"}


def render_gantt(trace: list[TraceRecord], makespan: float, *,
                 width: int = 80, resources: list[tuple[str, int]] | None = None
                 ) -> str:
    """An ASCII Gantt chart of a simulated step, one row per resource.

    Each column is ``makespan / width`` seconds; the glyph is the task
    kind occupying most of that column's span (``F`` fwd, ``B`` bwd,
    ``x`` transfer, ``r`` partial-sum reduce, ``g`` gradient sync,
    ``u`` update, ``h`` halo; ``.`` idle).
    """
    if makespan <= 0 or width < 1:
        return ""
    if resources is None:
        seen: dict[tuple[str, int], None] = {}
        for rec in trace:
            for r in rec.resources:
                seen.setdefault(r)
        resources = sorted(seen)
    rows: dict[tuple[str, int], list[dict[str, float]]] = {
        r: [dict() for _ in range(width)] for r in resources
    }
    scale = width / makespan
    for rec in trace:
        lo = int(rec.start * scale)
        hi = max(lo + 1, int(rec.end * scale) if rec.end < makespan else width)
        for r in rec.resources:
            if r not in rows:
                continue
            for col in range(lo, min(hi, width)):
                cell = rows[r][col]
                cell[rec.kind] = cell.get(rec.kind, 0.0) + rec.duration
    lines = []
    label_w = max(len(f"{k}{i}") for k, i in resources)
    for r in resources:
        chars = []
        for cell in rows[r]:
            if not cell:
                chars.append(".")
            else:
                kind = max(cell.items(), key=lambda kv: kv[1])[0]
                chars.append(_KIND_GLYPH.get(kind, "?"))
        lines.append(f"{r[0]}{r[1]}".ljust(label_w) + " |" + "".join(chars) + "|")
    return "\n".join(lines)


def critical_path(trace: list[TraceRecord]) -> list[TraceRecord]:
    """The chain of tasks that determines the makespan.

    Walks backwards from the last-finishing task, at each step following
    the predecessor (dependency or same-resource occupant) whose finish
    time equals the current task's start — the task it actually waited
    for.  The returned chain is ordered by start time; summing durations
    by kind shows *why* a step is as long as it is (compute-bound vs
    transfer-bound vs sync-bound).
    """
    if not trace:
        return []
    by_end: dict[float, list[TraceRecord]] = {}
    for rec in trace:
        by_end.setdefault(round(rec.end, 15), []).append(rec)
    cur = max(trace, key=lambda r: (r.end, r.duration))
    chain = [cur]
    eps = 1e-12
    while cur.start > eps:
        key = round(cur.start, 15)
        preds = by_end.get(key, [])
        preds = [p for p in preds if p is not cur and p.end <= cur.start + eps]
        if not preds:
            # No exact-fit predecessor: the task was ready early and its
            # start was resource-delayed by something that finished just
            # before — fall back to the latest finisher before our start.
            preds = [p for p in trace
                     if p.end <= cur.start + eps and p is not cur]
            if not preds:
                break
            cur = max(preds, key=lambda r: r.end)
        else:
            # Prefer a predecessor sharing a resource or plausibly a dep.
            shared = [p for p in preds
                      if set(p.resources) & set(cur.resources)]
            cur = (shared or preds)[0]
        chain.append(cur)
    chain.reverse()
    return chain


def critical_path_by_kind(trace: list[TraceRecord]) -> dict[str, float]:
    """Seconds on the critical path per task kind."""
    out: dict[str, float] = defaultdict(float)
    for rec in critical_path(trace):
        out[rec.kind] += rec.duration
    return dict(sorted(out.items()))
