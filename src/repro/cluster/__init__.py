"""Discrete-event multi-node GPU cluster simulator.

This package is the stand-in for the paper's physical testbeds (8-GPU
1080Ti and 2080Ti nodes over InfiniBand, running Mesh-TensorFlow): it
executes a parallelized computation graph — forward, backward, gradient
synchronization — over per-device compute and NIC resources with
hierarchical link bandwidths, *allowing communication/computation overlap*
(which the analytic cost model deliberately ignores).  Figure 6's measured
speedups are regenerated on top of it.
"""

from .topology import ClusterTopology, LinkKind
from .collectives import ring_allreduce_time, ring_allgather_time, group_bottleneck_bw
from .events import ListScheduler, Task
from .simulator import SimulationReport, simulate_step
from .trace import (TraceRecord, critical_path, critical_path_by_kind,
                    render_gantt, utilization)

__all__ = [
    "ClusterTopology",
    "LinkKind",
    "ListScheduler",
    "SimulationReport",
    "Task",
    "TraceRecord",
    "render_gantt",
    "critical_path",
    "critical_path_by_kind",
    "group_bottleneck_bw",
    "ring_allgather_time",
    "ring_allreduce_time",
    "simulate_step",
    "utilization",
]
