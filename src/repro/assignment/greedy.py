"""Greedy locality-maximizing shard-to-device assignment (paper Section II).

Once a strategy fixes every node's configuration, each node's shards must
land on physical devices.  The paper observes that a greedy assignment
maximizing ``|A(v, d, φ) ∩ A(u, d, φ)|`` — placing each shard where the
largest share of its input bytes already lives — works well in practice;
this module implements exactly that, processing nodes in topological order
and scoring every (shard, device) pair by the input-block overlap with the
already-placed producers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import SimulationError
from ..core.graph import CompGraph
from ..core.strategy import Strategy
from .blocks import block_overlap, shard_indices, tensor_blocks

__all__ = ["Placement", "greedy_placement"]


@dataclass
class Placement:
    """Shard-to-device maps for every node of a parallelized graph.

    Attributes
    ----------
    devices:
        Node -> int64 array ``[P_v]`` of device ids, indexed by shard.
    shards:
        Node -> int64 array ``[P_v, d]`` of shard multi-indices.
    p:
        Total device count.
    """

    devices: dict[str, np.ndarray]
    shards: dict[str, np.ndarray]
    p: int

    def device_of(self, node: str, shard: int) -> int:
        return int(self.devices[node][shard])

    def validate(self, graph: CompGraph) -> None:
        for op in graph:
            if op.name not in self.devices:
                raise SimulationError(f"node {op.name!r} has no placement")
            dev = self.devices[op.name]
            if len(np.unique(dev)) != dev.shape[0]:
                raise SimulationError(f"node {op.name!r} maps two shards to one device")
            if dev.min(initial=0) < 0 or dev.max(initial=0) >= self.p:
                raise SimulationError(f"node {op.name!r} uses devices outside 0..{self.p - 1}")


def greedy_placement(graph: CompGraph, strategy: Strategy, p: int) -> Placement:
    """Assign every shard of every node to a device.

    Nodes are processed in topological order.  A node with no placed
    producers takes devices ``0..P_v-1`` in shard order; otherwise each
    (shard, device) pair is scored by the total input bytes of that shard
    already resident on that device, and pairs are committed greedily in
    descending score.
    """
    devices: dict[str, np.ndarray] = {}
    shards: dict[str, np.ndarray] = {}

    for name in graph.topological_order():
        op = graph.node(name)
        cfg = strategy[name]
        idx = shard_indices(cfg)
        n_shards = idx.shape[0]
        if n_shards > p:
            raise SimulationError(
                f"node {name!r}: {n_shards} shards exceed {p} devices")

        score = np.zeros((n_shards, p), dtype=np.float64)
        for e in graph.in_edges(name):
            if e.src not in devices:
                continue
            src_op = graph.node(e.src)
            out_spec = src_op.outputs[e.src_port]
            in_spec = op.inputs[e.dst_port]
            src_blocks = tensor_blocks(src_op, out_spec, strategy[e.src],
                                       shards[e.src])
            dst_blocks = tensor_blocks(op, in_spec, cfg, idx)
            ov = block_overlap(dst_blocks, src_blocks)  # [n_shards, P_u]
            np.add.at(score.T, devices[e.src], ov.T)

        assigned = np.full(n_shards, -1, dtype=np.int64)
        if not score.any():
            assigned[:] = np.arange(n_shards)
        else:
            taken = np.zeros(p, dtype=bool)
            # Commit (shard, device) pairs in descending overlap order.
            order = np.argsort(score, axis=None)[::-1]
            placed = 0
            for flat in order:
                s, d = divmod(int(flat), p)
                if assigned[s] >= 0 or taken[d]:
                    continue
                assigned[s] = d
                taken[d] = True
                placed += 1
                if placed == n_shards:
                    break
            # Zero-score leftovers: lowest free devices.
            if placed < n_shards:
                free = np.flatnonzero(~taken)
                holes = np.flatnonzero(assigned < 0)
                assigned[holes] = free[: holes.shape[0]]
        devices[name] = assigned
        shards[name] = idx

    return Placement(devices=devices, shards=shards, p=p)
