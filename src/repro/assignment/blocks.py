"""Shard-block geometry: which tensor elements a device holds or needs.

A parallelization configuration block-partitions each tensor of a node:
shard ``(i_1, ..., i_d)`` owns, along every tensor axis, the half-open
interval induced by the split of the iteration dim that axis resolves to.
These intervals drive the greedy device placement (overlap maximization)
and the cluster simulator's transfer volumes — the concrete realization of
the paper's ``A(v, d, φ)`` sets.
"""

from __future__ import annotations

import numpy as np

from ..core.dims import ceil_div
from ..core.tensors import TensorSpec
from ..ops.base import OpSpec

__all__ = ["shard_indices", "axis_block", "tensor_blocks", "block_overlap"]


def shard_indices(config: tuple[int, ...]) -> np.ndarray:
    """All shard multi-indices of a configuration, shape ``[P, d]``.

    Row-major (last dim fastest), so shard 0 is the all-zeros corner.
    """
    if not config:
        return np.zeros((1, 0), dtype=np.int64)
    grids = np.indices(config).reshape(len(config), -1).T
    return np.ascontiguousarray(grids, dtype=np.int64)


def axis_block(size: int, split: int, idx) -> tuple[np.ndarray, np.ndarray]:
    """Half-open interval(s) ``[start, stop)`` of block ``idx`` along an axis.

    Blocks are ceil-sized, so trailing blocks may be smaller or empty.
    Vectorized over ``idx``.
    """
    idx = np.asarray(idx, dtype=np.int64)
    ext = ceil_div(size, split)
    start = np.minimum(idx * ext, size)
    stop = np.minimum(start + ext, size)
    return start, stop


def tensor_blocks(op: OpSpec, spec: TensorSpec, config: tuple[int, ...],
                  shards: np.ndarray) -> np.ndarray:
    """Block intervals of a tensor for every shard.

    Returns ``[P, n_axes, 2]`` (start, stop per axis).  Alias axes follow
    their primary dim's split; fixed alias axes span the full extent.
    """
    p = shards.shape[0]
    out = np.zeros((p, len(spec.axes), 2), dtype=np.int64)
    for a, axis in enumerate(spec.axes):
        size = op.dim_size(axis)
        primary = op.resolve_dim(axis)
        if primary is None:
            out[:, a, 0] = 0
            out[:, a, 1] = size
        else:
            di = op.dim_index(primary)
            start, stop = axis_block(size, config[di], shards[:, di])
            out[:, a, 0] = start
            out[:, a, 1] = stop
    return out


def block_overlap(blocks_a: np.ndarray, blocks_b: np.ndarray) -> np.ndarray:
    """Pairwise overlap volumes of two block sets.

    Parameters
    ----------
    blocks_a, blocks_b:
        ``[P_a, n_axes, 2]`` and ``[P_b, n_axes, 2]`` interval arrays over
        the *same* tensor axes.

    Returns
    -------
    numpy.ndarray
        ``[P_a, P_b]`` element-count overlaps.
    """
    if blocks_a.shape[1] != blocks_b.shape[1]:
        raise ValueError("block sets cover different tensor ranks")
    if blocks_a.shape[1] == 0:
        return np.ones((blocks_a.shape[0], blocks_b.shape[0]), dtype=np.int64)
    lo = np.maximum(blocks_a[:, None, :, 0], blocks_b[None, :, :, 0])
    hi = np.minimum(blocks_a[:, None, :, 1], blocks_b[None, :, :, 1])
    return np.prod(np.maximum(hi - lo, 0), axis=-1, dtype=np.int64)
