"""Shard-to-device placement (paper Section II: greedy locality assignment)."""

from .blocks import axis_block, shard_indices, tensor_blocks, block_overlap
from .greedy import Placement, greedy_placement

__all__ = [
    "Placement",
    "axis_block",
    "block_overlap",
    "greedy_placement",
    "shard_indices",
    "tensor_blocks",
]
