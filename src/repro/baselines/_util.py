"""Small shared helpers for baseline strategy generators."""

from __future__ import annotations

__all__ = ["pow2_floor", "split_dim"]


def pow2_floor(x: int) -> int:
    """Largest power of two <= x (1 for x < 1)."""
    if x < 1:
        return 1
    return 1 << (int(x).bit_length() - 1)


def split_dim(op, dim: str, amount: int) -> int:
    """A valid power-of-two split of ``dim``: capped by its extent."""
    return pow2_floor(min(amount, op.dim_size(dim)))
