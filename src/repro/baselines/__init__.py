"""Baseline and comparator strategy generators.

* data parallelism — the standard practice PaSE is measured against;
* expert-designed strategies — OWT for CNNs, data+pipeline for RNNs, the
  Mesh-TensorFlow hybrid for Transformer (Section IV);
* a FlexFlow-style MCMC search over the same configuration space
  (the paper's state-of-the-art comparator, rebuilt on our cost oracle);
* uniform random search (a sanity floor).
"""

from .data_parallel import data_parallel_strategy
from .expert import (
    auto_expert_strategy,
    mesh_tf_transformer_expert,
    owt_strategy,
    rnn_pipeline_expert,
)
from .mcmc import MCMCOptions, mcmc_search
from .random_search import random_search

__all__ = [
    "MCMCOptions",
    "auto_expert_strategy",
    "data_parallel_strategy",
    "mcmc_search",
    "mesh_tf_transformer_expert",
    "owt_strategy",
    "random_search",
    "rnn_pipeline_expert",
]
