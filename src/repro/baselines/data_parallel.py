"""Pure data parallelism: split every layer's batch dim ``p`` ways."""

from __future__ import annotations

from ..core.exceptions import StrategyError
from ..core.graph import CompGraph
from ..core.strategy import Strategy
from ..obs.profile import profiled
from ._util import pow2_floor

__all__ = ["data_parallel_strategy"]


@profiled("baseline.data_parallel")
def data_parallel_strategy(graph: CompGraph, p: int, *,
                           batch_dim: str = "b") -> Strategy:
    """The standard baseline: each device gets a full model replica and a
    ``1/p`` batch shard.

    The split is capped to the largest power of two not exceeding the
    batch extent (data parallelism cannot use more devices than samples);
    all other dims stay unsplit.
    """
    assignment: dict[str, tuple[int, ...]] = {}
    for op in graph:
        if not op.has_dim(batch_dim) or op.resolve_dim(batch_dim) != batch_dim:
            raise StrategyError(
                f"node {op.name!r} has no primary batch dim {batch_dim!r}")
        cfg = [1] * op.rank
        cfg[op.dim_index(batch_dim)] = pow2_floor(min(p, op.dim_size(batch_dim)))
        assignment[op.name] = tuple(cfg)
    return Strategy(assignment)
