"""Expert-designed parallelization strategies (paper Section IV).

* :func:`owt_strategy` — Krizhevsky's "one weird trick": data parallelism
  for convolutional layers, parameter parallelism (out-channel split) for
  fully-connected layers.  Used for AlexNet and InceptionV3.
* :func:`rnn_pipeline_expert` — the GNMT-style data+pipeline hybrid:
  RNN layers spread across device groups (the layer dim of the fused LSTM
  vertex), each group data-parallel; embedding/projection data-parallel.
* :func:`mesh_tf_transformer_expert` — the Mesh-TensorFlow hybrid for
  Transformer: batch split ``m``-way on every layer, model dims (vocab,
  heads, feed-forward hidden) split ``n``-way, ``m·n = p``.
* :func:`auto_expert_strategy` — dispatch on graph contents, matching the
  paper's per-benchmark choices.
"""

from __future__ import annotations

from ..core.exceptions import StrategyError
from ..core.graph import CompGraph
from ..core.strategy import Strategy
from ..obs.profile import profiled
from ._util import pow2_floor, split_dim

__all__ = [
    "owt_strategy",
    "rnn_pipeline_expert",
    "mesh_tf_transformer_expert",
    "auto_expert_strategy",
]

#: Layer kinds OWT treats as "convolutional" (data parallel).
_CONVISH = {"conv2d", "maxpool", "avgpool", "lrn", "batchnorm", "dropout",
            "concat", "identity"}


def _dp_config(op, p: int) -> tuple[int, ...]:
    cfg = [1] * op.rank
    cfg[op.dim_index("b")] = split_dim(op, "b", p)
    return tuple(cfg)


def owt_strategy(graph: CompGraph, p: int) -> Strategy:
    """One weird trick [Krizhevsky 2014] for CNNs.

    Convolutional layers (and their elementwise companions) use data
    parallelism; fully-connected layers switch to parameter parallelism by
    splitting the out-channel dim only — which, as Section IV-C notes,
    incurs the inter-FC all-gather that PaSE's alternating splits avoid.
    """
    assignment: dict[str, tuple[int, ...]] = {}
    for op in graph:
        if op.kind == "fc":
            cfg = [1] * op.rank
            out_axis = op.primary_output.axes[-1]
            cfg[op.dim_index(out_axis)] = split_dim(op, out_axis, p)
            assignment[op.name] = tuple(cfg)
        elif op.kind in ("softmax", "softmax_xent"):
            cfg = [1] * op.rank
            class_axis = op.primary_output.axes[-1]
            cfg[op.dim_index(class_axis)] = split_dim(op, class_axis, p)
            assignment[op.name] = tuple(cfg)
        elif op.kind in _CONVISH or op.kind.startswith(("act_", "ew_")):
            assignment[op.name] = _dp_config(op, p)
        else:
            raise StrategyError(f"OWT does not cover layer kind {op.kind!r}")
    return Strategy(assignment)


def rnn_pipeline_expert(graph: CompGraph, p: int) -> Strategy:
    """GNMT-style data+pipeline hybrid [Wu et al. 2016] for RNN LMs.

    The fused LSTM vertex splits its layer dim fully (one pipeline stage
    per layer group) and data-parallelizes the batch across the remaining
    devices; the embedding, projection, and softmax are data-parallel.
    """
    assignment: dict[str, tuple[int, ...]] = {}
    for op in graph:
        if op.kind == "lstm":
            layers = split_dim(op, "l", p)
            cfg = [1] * op.rank
            cfg[op.dim_index("l")] = layers
            cfg[op.dim_index("b")] = split_dim(op, "b", p // layers)
            assignment[op.name] = tuple(cfg)
        else:
            assignment[op.name] = _dp_config(op, p)
    return Strategy(assignment)


def mesh_tf_transformer_expert(graph: CompGraph, p: int,
                               model_split: int | None = None) -> Strategy:
    """The Mesh-TensorFlow hybrid [Shazeer et al. 2018] for Transformer.

    A 2-D mesh ``m x n`` with ``m·n = p``: the batch dim of every layer is
    split ``m``-way; the "model" dims — vocabulary (embedding, projection,
    softmax), attention heads, feed-forward hidden — are split ``n``-way.
    Default ``n`` is the largest power of two <= sqrt(p), the balanced
    mesh the paper's comparison uses.
    """
    if model_split is None:
        model_split = pow2_floor(max(1, int(p ** 0.5)))
    n = max(1, min(model_split, p))
    m = max(1, p // n)

    assignment: dict[str, tuple[int, ...]] = {}
    for op in graph:
        cfg = [1] * op.rank
        if op.has_dim("b") and op.resolve_dim("b") == "b":
            cfg[op.dim_index("b")] = split_dim(op, "b", m)
        if op.kind == "embedding":
            cfg[op.dim_index("v")] = split_dim(op, "v", n)
        elif op.kind == "attention":
            cfg[op.dim_index("h")] = split_dim(op, "h", n)
        elif op.kind == "feed_forward":
            cfg[op.dim_index("e")] = split_dim(op, "e", n)
        elif op.kind == "fc" and op.has_dim("v"):
            cfg[op.dim_index("v")] = split_dim(op, "v", n)
        elif op.kind in ("softmax", "softmax_xent") and op.has_dim("v"):
            cfg[op.dim_index("v")] = split_dim(op, "v", n)
        assignment[op.name] = tuple(cfg)
    return Strategy(assignment)


@profiled("baseline.expert")
def auto_expert_strategy(graph: CompGraph, p: int) -> Strategy:
    """Pick the expert strategy the paper uses for this kind of network.

    LSTM present -> GNMT data+pipeline; attention present -> Mesh-TF
    hybrid; otherwise OWT (CNNs/MLPs).
    """
    kinds = {op.kind for op in graph}
    if "lstm" in kinds:
        return rnn_pipeline_expert(graph, p)
    if "attention" in kinds:
        return mesh_tf_transformer_expert(graph, p)
    return owt_strategy(graph, p)
