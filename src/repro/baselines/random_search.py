"""Uniform random strategy search — a sanity floor for comparisons."""

from __future__ import annotations

import time

import numpy as np

from ..core.configs import ConfigSpace
from ..core.costmodel import CostTables
from ..core.graph import CompGraph
from ..core.strategy import SearchResult, Strategy
from ..obs.profile import profiled

__all__ = ["random_search"]


@profiled("baseline.random")
def random_search(
    graph: CompGraph,
    space: ConfigSpace,
    tables: CostTables,
    *,
    samples: int = 1_000,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> SearchResult:
    """Evaluate ``samples`` uniformly random strategies; return the best.

    Draws come from ``rng`` when given, else from a fresh generator
    seeded with ``seed`` (default 0) — same seed, same samples.
    """
    t0 = time.perf_counter()
    if rng is None:
        rng = np.random.default_rng(0 if seed is None else seed)
    names = list(graph.node_names)
    ksize = np.array([space.size(name) for name in names], dtype=np.int64)
    best_cost = np.inf
    best: dict[str, int] = {name: 0 for name in names}
    for _ in range(samples):
        draw = {name: int(rng.integers(k)) for name, k in zip(names, ksize)}
        cost = tables.strategy_cost(draw)
        if cost < best_cost:
            best_cost = cost
            best = draw
    return SearchResult(
        strategy=Strategy.from_indices(space, best),
        cost=float(best_cost),
        elapsed=time.perf_counter() - t0,
        method="random",
        stats={"samples": float(samples)},
    )
