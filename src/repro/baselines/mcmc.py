"""A FlexFlow-style MCMC strategy search (the paper's SOTA comparator).

FlexFlow [Jia et al. 2018] explores the parallelization space with a
Markov Chain Monte Carlo meta-heuristic: propose a random change to one
layer's configuration, accept it with probability
``min(1, exp(-Δcost / T))``, remember the best strategy seen.  The real
system microbenchmarks operators on GPUs; this rebuild uses the same
analytic cost oracle as every other searcher in the library (documented
substitution — the *search dynamics* and solution quality are what the
paper compares).

The stopping rule follows the paper's experimental setup (Section IV-A,
after [7, Section 6.2]): stop when the best discovered strategy has not
improved for half the search, or after 250,000 iterations; start from an
expert-designed strategy so the search can improve on it.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from ..core.configs import ConfigSpace
from ..core.costmodel import CostTables
from ..core.graph import CompGraph
from ..core.strategy import SearchResult, Strategy
from ..obs.profile import profiled

__all__ = ["MCMCOptions", "mcmc_search"]


@dataclass(frozen=True)
class MCMCOptions:
    """Tuning knobs for :func:`mcmc_search`.

    Attributes
    ----------
    max_iters:
        Hard iteration cap (paper: 250,000).
    min_iters:
        Run at least this many proposals before the no-improvement rule
        can fire.  The default keeps the search honest about exploring —
        FlexFlow's wall-clock cost relative to the DP (Table I) comes
        from exactly this exploration budget.
    temperature_frac:
        Proposal temperature as a fraction of the initial strategy cost;
        FlexFlow's acceptance is scale-free in the same way.
    """

    max_iters: int = 250_000
    min_iters: int = 50_000
    temperature_frac: float = 0.01
    time_budget: float | None = None


@profiled("baseline.mcmc")
def mcmc_search(
    graph: CompGraph,
    space: ConfigSpace,
    tables: CostTables,
    *,
    init: Strategy | None = None,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    options: MCMCOptions = MCMCOptions(),
) -> SearchResult:
    """Run the MCMC search and return the best strategy discovered.

    The proposal chain draws from ``rng`` when given, else from a fresh
    generator seeded with ``seed`` (default 0) — two runs with the same
    seed and inputs visit identical chains.
    """
    t0 = time.perf_counter()
    if rng is None:
        rng = np.random.default_rng(0 if seed is None else seed)
    names = list(graph.node_names)
    n = len(names)
    pos = {name: i for i, name in enumerate(names)}
    ksize = np.array([space.size(name) for name in names], dtype=np.int64)

    # Oriented neighbor transfer matrices per node for O(deg) delta eval.
    nbrs: list[list[tuple[int, np.ndarray]]] = [[] for _ in range(n)]
    for (u, v), _ in tables.pair_tx.items():
        iu, iv = pos[u], pos[v]
        nbrs[iu].append((iv, tables.tx(u, v)))
        nbrs[iv].append((iu, tables.tx(v, u)))
    lc = [tables.lc[name] for name in names]

    if init is None:
        state = np.zeros(n, dtype=np.int64)  # serial strategy
    else:
        idx = init.to_indices(space)
        state = np.array([idx[name] for name in names], dtype=np.int64)

    # Flattened gather views for full_cost: node costs come from one
    # fancy-indexed lookup into the concatenated lc arrays, edge costs
    # from one lookup into the concatenated raveled pair matrices
    # (flat index = offset + k_u * n_cols + k_v).
    lc_flat = np.concatenate(lc) if n else np.zeros(0)
    lc_off = np.concatenate([[0], np.cumsum(ksize[:-1])]).astype(np.int64) \
        if n else np.zeros(0, dtype=np.int64)
    mats = list(tables.pair_tx.values())
    eu = np.array([pos[u] for u, _ in tables.pair_tx], dtype=np.int64)
    ev = np.array([pos[v] for _, v in tables.pair_tx], dtype=np.int64)
    ecols = np.array([m.shape[1] for m in mats], dtype=np.int64)
    eoff = np.concatenate([[0], np.cumsum([m.size for m in mats])[:-1]]) \
        .astype(np.int64) if mats else np.zeros(0, dtype=np.int64)
    tx_flat = np.concatenate([m.ravel() for m in mats]) if mats else np.zeros(0)

    def full_cost(st: np.ndarray) -> float:
        total = float(lc_flat[lc_off + st].sum())
        if tx_flat.size:
            total += float(tx_flat[eoff + st[eu] * ecols + st[ev]].sum())
        return total

    cur_cost = full_cost(state)
    best_cost = cur_cost
    best_state = state.copy()
    best_iter = 0
    temperature = max(options.temperature_frac * cur_cost, 1e-30)

    it = 0
    evals = 0
    while it < options.max_iters:
        it += 1
        v = int(rng.integers(n))
        new_k = int(rng.integers(ksize[v]))
        old_k = int(state[v])
        if new_k == old_k:
            continue
        delta = float(lc[v][new_k] - lc[v][old_k])
        for u, mat in nbrs[v]:
            ku = state[u]
            delta += float(mat[new_k, ku] - mat[old_k, ku])
        evals += 1
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            state[v] = new_k
            cur_cost += delta
            if cur_cost < best_cost - 1e-9:
                best_cost = cur_cost
                best_state = state.copy()
                best_iter = it
        # Stopping rule: no improvement for half the search so far.
        if it >= options.min_iters and best_iter <= it // 2:
            break
        if options.time_budget is not None and it % 512 == 0 \
                and time.perf_counter() - t0 > options.time_budget:
            break

    # Re-evaluate exactly to wash out float accumulation.
    best_cost = full_cost(best_state)
    strategy = Strategy.from_indices(
        space, {names[i]: int(best_state[i]) for i in range(n)})
    return SearchResult(
        strategy=strategy,
        cost=best_cost,
        elapsed=time.perf_counter() - t0,
        method="flexflow-mcmc",
        stats={"iterations": float(it), "proposals": float(evals),
               "best_iter": float(best_iter)},
    )
