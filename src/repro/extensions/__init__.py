"""Extensions beyond the paper's core: the future-work and related-work
directions Sections V-VI sketch, made concrete.

* `pipeline` — PipeDream-style inter-batch pipeline stages composed with
  PaSE per stage (the complementary combination Section VI proposes);
* `export` — GShard/Mesh-TensorFlow-style sharding annotations from a
  found strategy (the hand-off Section II mentions).
"""

from .export import sharding_spec, to_gshard_json
from .pipeline import PipelineResult, partition_stages, pipeline_pase

__all__ = [
    "PipelineResult",
    "partition_stages",
    "pipeline_pase",
    "sharding_spec",
    "to_gshard_json",
]
