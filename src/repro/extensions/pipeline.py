"""PipeDream-style stage partitioning composed with PaSE.

Section VI of the paper: "the computation graph can be first split into
multiple stages using [PipeDream's] formulation to achieve inter-batch
pipeline parallelism, and the subgraphs from each stage can be further
parallelized with data+parameter parallelism using our approach."

This module implements that composition:

1. :func:`partition_stages` cuts the topological order into ``k``
   contiguous stages, minimizing the heaviest stage's analytic serial
   cost (the classic chain-partitioning DP PipeDream's planner solves);
2. :func:`pipeline_pase` gives each stage an equal share of the devices
   and runs FINDBESTSTRATEGY on each stage subgraph independently;
3. steady-state pipeline throughput is bounded by the slowest stage, so
   the combined estimate is ``batch / max_stage_cost`` in cost-model
   units (inter-stage activations transfer once per microbatch and are
   charged to the stage boundary).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.configs import ConfigSpace
from ..core.costmodel import CostModel
from ..core.dp import find_best_strategy
from ..core.exceptions import StrategyError
from ..core.graph import CompGraph
from ..core.machine import GTX1080TI, MachineSpec
from ..core.strategy import Strategy

__all__ = ["partition_stages", "pipeline_pase", "PipelineResult"]


def partition_stages(graph: CompGraph, k: int) -> list[list[str]]:
    """Split the topological order into ``k`` contiguous stages minimizing
    the maximum per-stage serial FLOPs (min-max chain partitioning DP)."""
    if k < 1:
        raise StrategyError(f"stage count {k} must be >= 1")
    order = list(graph.topological_order())
    n = len(order)
    if k > n:
        raise StrategyError(f"cannot cut {n} nodes into {k} stages")
    weights = np.array([graph.node(name).flops for name in order])
    prefix = np.concatenate([[0.0], np.cumsum(weights)])

    # dp[j][i] = best max-stage-cost splitting the first i nodes into j stages.
    inf = float("inf")
    dp = np.full((k + 1, n + 1), inf)
    cut = np.zeros((k + 1, n + 1), dtype=np.int64)
    dp[0, 0] = 0.0
    for j in range(1, k + 1):
        for i in range(j, n + 1):
            # last stage covers (t, i]
            for t in range(j - 1, i):
                cost = max(dp[j - 1, t], prefix[i] - prefix[t])
                if cost < dp[j, i]:
                    dp[j, i] = cost
                    cut[j, i] = t
    stages: list[list[str]] = []
    i = n
    for j in range(k, 0, -1):
        t = int(cut[j, i])
        stages.append(order[t:i])
        i = t
    stages.reverse()
    return stages


@dataclass
class PipelineResult:
    """Outcome of a pipeline+PaSE composition."""

    stages: list[list[str]]
    strategies: list[Strategy]
    stage_costs: list[float]
    devices_per_stage: int
    combined: Strategy

    @property
    def bottleneck_cost(self) -> float:
        """Steady-state step cost = the slowest stage's cost."""
        return max(self.stage_costs)

    @property
    def pipeline_efficiency(self) -> float:
        """Mean stage cost over bottleneck cost (1.0 = perfectly balanced)."""
        return float(np.mean(self.stage_costs) / self.bottleneck_cost)


def pipeline_pase(graph: CompGraph, p: int, stages: int, *,
                  machine: MachineSpec = GTX1080TI,
                  mode: str = "pow2", jobs: int | None = None,
                  cache: "object | None" = None,
                  reduce: bool = False) -> PipelineResult:
    """Partition into pipeline stages, then run PaSE within each stage.

    Each stage receives ``p // stages`` devices (must divide evenly) and
    is searched independently — exactly the composition Section VI
    proposes.  The returned ``combined`` strategy concatenates the
    per-stage assignments and is valid for the whole graph at the
    per-stage device count.  ``jobs``/``cache`` are forwarded to each
    stage's `CostModel.build_tables` (every stage subgraph gets its own
    cache entry — the digest covers the induced structure); ``reduce``
    runs the search-space reduction ahead of each per-stage DP — stage
    subgraphs are mostly chains, where contraction shines.
    """
    if stages < 1 or p % stages != 0:
        raise StrategyError(f"p={p} must split evenly into {stages} stages")
    per_stage = p // stages
    parts = partition_stages(graph, stages)
    cm = CostModel(machine)
    from ..runtime.context import RunContext

    ctx = RunContext(jobs=jobs, cache=cache)
    strategies: list[Strategy] = []
    costs: list[float] = []
    merged: dict[str, tuple[int, ...]] = {}
    for part in parts:
        sub = graph.induced_subgraph(part)
        space = ConfigSpace.build(sub, per_stage, mode=mode)
        tables = cm.build_tables(sub, space, ctx=ctx)
        res = find_best_strategy(sub, space, tables, reduce=reduce)
        strategies.append(res.strategy)
        costs.append(res.cost)
        merged.update(res.strategy.assignment)
    combined = Strategy(merged)
    combined.validate(graph, per_stage)
    return PipelineResult(stages=parts, strategies=strategies,
                          stage_costs=costs, devices_per_stage=per_stage,
                          combined=combined)
