"""Export found strategies as sharding annotations.

Section II: "frameworks such as GShard can take user-specified
parallelization strategies, such as the ones computed by our approach, and
automatically perform efficient device assignment by simply aligning the
sharding decisions of adjacent layers."  This module emits that hand-off
format: per node, the iteration-space splits plus the induced per-tensor
axis shardings (the part a GShard/Mesh-TensorFlow integration consumes).
"""

from __future__ import annotations

import json

import numpy as np

from ..core.graph import CompGraph
from ..core.strategy import Strategy

__all__ = ["sharding_spec", "to_gshard_json"]


def sharding_spec(graph: CompGraph, strategy: Strategy) -> dict[str, dict]:
    """Structured sharding annotations for every node and tensor port.

    Returns, per node::

        {
          "kind": ...,
          "iteration_splits": {dim: factor, ...},       # non-trivial only
          "tensors": {port: {"shape": [...], "splits": [...],
                             "replication": int}, ...},
          "devices": int,
        }
    """
    out: dict[str, dict] = {}
    for op in graph:
        cfg = np.asarray(strategy[op.name], dtype=np.int64).reshape(1, -1)
        splits = {d.name: int(c) for d, c in zip(op.dims, cfg[0]) if c > 1}
        tensors: dict[str, dict] = {}
        for port, spec in {**op.inputs, **op.outputs}.items():
            tensors[port] = {
                "shape": list(spec.shape(op)),
                "splits": [int(s) for s in spec.splits(op, cfg)[0]],
                "replication": int(spec.replication(op, cfg)[0]),
                "param": spec.is_param,
            }
        out[op.name] = {
            "kind": op.kind,
            "iteration_splits": splits,
            "tensors": tensors,
            "devices": int(np.prod(cfg[0])),
        }
    return out


def to_gshard_json(graph: CompGraph, strategy: Strategy, *,
                   indent: int = 2) -> str:
    """JSON rendering of :func:`sharding_spec`."""
    return json.dumps(sharding_spec(graph, strategy), indent=indent,
                      sort_keys=True)
