"""InceptionV3 (Szegedy et al., 2015) — the paper's branchy CNN benchmark.

The inception modules split the activation into parallel convolution
towers and concatenate the results; the concat nodes (and the module
inputs feeding every tower) are the few high-degree vertices that make
breadth-first DP ordering explode while GENERATESEQ keeps dependent sets
at <= 3 (paper Fig. 5 and Section III-C).

The channel/spatial plan follows the canonical torchvision InceptionV3 on
299x299 inputs: stem -> 3xA(35x35) -> B -> 4xC(17x17) -> D -> 2xE(8x8) ->
pool -> FC -> softmax.  ``with_bn`` adds a BatchNorm + ReLU pair after
every convolution (the full 200+-node graph of the paper); the default
keeps the conv spine only, which preserves the degree structure with a
faster search.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.graph import CompGraph
from ..ops import Activation, BatchNorm, Concat, Conv2D, FullyConnected, Pool2D, \
    SoftmaxCrossEntropy
from .builder import GraphBuilder

__all__ = ["inception_v3"]


@dataclass
class _T:
    """A tensor handle while building: producing node, channels, spatial."""

    node: str
    ch: int
    hw: int


class _Net:
    def __init__(self, batch: int, with_bn: bool) -> None:
        self.b = GraphBuilder()
        self.batch = batch
        self.with_bn = with_bn
        self.n = 0

    def _name(self, tag: str) -> str:
        self.n += 1
        return f"{tag}_{self.n}"

    def conv(self, x: _T, out_ch: int, kernel, *, stride=1, padding="same") -> _T:
        name = self._name("conv")
        op = Conv2D(name, batch=self.batch, in_channels=x.ch, out_channels=out_ch,
                    in_hw=(x.hw, x.hw), kernel=kernel, stride=stride, padding=padding)
        self.b.add(op, inputs={"in": x.node})
        hw = op.dim_size("h")
        out = _T(name, out_ch, hw)
        if self.with_bn:
            bn = self._name("bn")
            self.b.add(BatchNorm(bn, batch=self.batch, channels=out_ch, hw=(hw, hw)),
                       inputs={"in": name})
            relu = self._name("relu")
            self.b.add(Activation(relu, dims=[("b", self.batch), ("c", out_ch),
                                              ("h", hw), ("w", hw)]),
                       inputs={"in": bn})
            out = _T(relu, out_ch, hw)
        return out

    def pool(self, x: _T, kernel: int, stride: int, *, padding="valid",
             kind="maxpool") -> _T:
        name = self._name(kind)
        op = Pool2D(name, batch=self.batch, channels=x.ch, in_hw=(x.hw, x.hw),
                    kernel=kernel, stride=stride, padding=padding, kind=kind)
        self.b.add(op, inputs={"in": x.node})
        return _T(name, x.ch, op.dim_size("h"))

    def concat(self, parts: list[_T]) -> _T:
        name = self._name("concat")
        hw = parts[0].hw
        assert all(p.hw == hw for p in parts)
        op = Concat(name, parts=[p.ch for p in parts], batch=self.batch, hw=(hw, hw))
        self.b.add(op, inputs={f"in{i}": p.node for i, p in enumerate(parts)})
        return _T(name, sum(p.ch for p in parts), hw)


def _module_a(net: _Net, x: _T, pool_ch: int) -> _T:
    b1 = net.conv(x, 64, 1)
    b2 = net.conv(net.conv(x, 48, 1), 64, 5)
    b3 = net.conv(net.conv(net.conv(x, 64, 1), 96, 3), 96, 3)
    b4 = net.conv(net.pool(x, 3, 1, padding="same", kind="avgpool"), pool_ch, 1)
    return net.concat([b1, b2, b3, b4])


def _module_b(net: _Net, x: _T) -> _T:
    b1 = net.conv(x, 384, 3, stride=2, padding="valid")
    b2 = net.conv(net.conv(net.conv(x, 64, 1), 96, 3), 96, 3,
                  stride=2, padding="valid")
    b3 = net.pool(x, 3, 2)
    return net.concat([b1, b2, b3])


def _module_c(net: _Net, x: _T, c7: int) -> _T:
    b1 = net.conv(x, 192, 1)
    b2 = net.conv(net.conv(net.conv(x, c7, 1), c7, (1, 7)), 192, (7, 1))
    t = net.conv(x, c7, 1)
    t = net.conv(t, c7, (7, 1))
    t = net.conv(t, c7, (1, 7))
    t = net.conv(t, c7, (7, 1))
    b3 = net.conv(t, 192, (1, 7))
    b4 = net.conv(net.pool(x, 3, 1, padding="same", kind="avgpool"), 192, 1)
    return net.concat([b1, b2, b3, b4])


def _module_d(net: _Net, x: _T) -> _T:
    b1 = net.conv(net.conv(x, 192, 1), 320, 3, stride=2, padding="valid")
    t = net.conv(x, 192, 1)
    t = net.conv(t, 192, (1, 7))
    t = net.conv(t, 192, (7, 1))
    b2 = net.conv(t, 192, 3, stride=2, padding="valid")
    b3 = net.pool(x, 3, 2)
    return net.concat([b1, b2, b3])


def _module_e(net: _Net, x: _T) -> _T:
    b1 = net.conv(x, 320, 1)
    t2 = net.conv(x, 384, 1)
    b2a = net.conv(t2, 384, (1, 3))
    b2b = net.conv(t2, 384, (3, 1))
    t3 = net.conv(net.conv(x, 448, 1), 384, 3)
    b3a = net.conv(t3, 384, (1, 3))
    b3b = net.conv(t3, 384, (3, 1))
    b4 = net.conv(net.pool(x, 3, 1, padding="same", kind="avgpool"), 192, 1)
    return net.concat([b1, b2a, b2b, b3a, b3b, b4])


def inception_v3(*, batch: int = 128, classes: int = 1000, image: int = 299,
                 with_bn: bool = False) -> CompGraph:
    """Build the InceptionV3 computation graph."""
    net = _Net(batch, with_bn)
    # Stem.
    x = _T("__input__", 3, image)
    first = Conv2D("stem_conv1", batch=batch, in_channels=3, out_channels=32,
                   in_hw=(image, image), kernel=3, stride=2, padding="valid")
    net.b.add(first)
    x = _T("stem_conv1", 32, first.dim_size("h"))
    if with_bn:
        hw = x.hw
        net.b.add(BatchNorm("stem_bn1", batch=batch, channels=32, hw=(hw, hw)),
                  inputs={"in": x.node})
        net.b.add(Activation("stem_relu1", dims=[("b", batch), ("c", 32),
                                                 ("h", hw), ("w", hw)]),
                  inputs={"in": "stem_bn1"})
        x = _T("stem_relu1", 32, hw)
    x = net.conv(x, 32, 3, padding="valid")
    x = net.conv(x, 64, 3, padding="same")
    x = net.pool(x, 3, 2)
    x = net.conv(x, 80, 1)
    x = net.conv(x, 192, 3, padding="valid")
    x = net.pool(x, 3, 2)

    # Inception modules.
    for pool_ch in (32, 64, 64):
        x = _module_a(net, x, pool_ch)
    x = _module_b(net, x)
    for c7 in (128, 160, 160, 192):
        x = _module_c(net, x, c7)
    x = _module_d(net, x)
    for _ in range(2):
        x = _module_e(net, x)

    # Classifier head.
    x = net.pool(x, x.hw, 1, kind="avgpool")
    net.b.add(FullyConnected("fc", batch=batch, in_dim=x.ch, out_dim=classes,
                             in_factors=(x.ch, 1, 1)),
              inputs={"in": x.node})
    net.b.add(SoftmaxCrossEntropy("softmax", batch=batch, classes=classes),
              inputs={"in": "fc"})
    return net.b.build()
