"""Fluent construction of computation graphs."""

from __future__ import annotations

from ..core.graph import CompGraph, Edge
from ..ops.base import OpSpec

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Incrementally build a `CompGraph`, tracking the most recent node.

    ``chain`` adds a node and wires its ``in`` port from the previous
    node's ``out`` port; ``add`` gives full control over wiring.
    """

    def __init__(self) -> None:
        self.graph = CompGraph()
        self._last: str | None = None

    @property
    def last(self) -> str:
        if self._last is None:
            raise ValueError("builder has no nodes yet")
        return self._last

    def add(self, op: OpSpec, *, inputs: dict[str, str | tuple[str, str]] | None = None,
            track: bool = True) -> str:
        """Add ``op``; ``inputs`` maps its input ports to producers.

        A producer is a node name (its ``out`` port) or ``(name, port)``.
        """
        self.graph.add_node(op)
        for port, src in (inputs or {}).items():
            if isinstance(src, tuple):
                src_name, src_port = src
            else:
                src_name, src_port = src, "out"
            self.graph.add_edge(Edge(src_name, src_port, op.name, port))
        if track:
            self._last = op.name
        return op.name

    def chain(self, op: OpSpec, *, port: str = "in", src: str | None = None) -> str:
        """Add ``op`` fed from ``src`` (default: the last tracked node)."""
        inputs = {}
        if self._last is not None or src is not None:
            inputs[port] = src if src is not None else self.last
        return self.add(op, inputs=inputs)

    def build(self) -> CompGraph:
        self.graph.validate()
        return self.graph
