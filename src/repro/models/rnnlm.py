"""RNNLM — a two-layer LSTM language model (Billion-Word benchmark).

As in the paper (Section IV-A), the entire recurrent stack — layers and
recurrent steps included — is represented as a *single* five-dimensional
vertex (``l, b, s, d, e``), which both reduces the graph to a path graph
and exposes intra-layer pipeline parallelism to the configuration space.
"""

from __future__ import annotations

from ..core.graph import CompGraph
from ..ops import Embedding, FullyConnected, LSTMStack, Softmax
from .builder import GraphBuilder

__all__ = ["rnnlm"]


def rnnlm(*, batch: int = 64, seq: int = 40, vocab: int = 131_072,
          embed: int = 1024, hidden: int = 2048, layers: int = 2) -> CompGraph:
    """Build the RNNLM computation graph (embedding -> LSTM -> FC -> softmax).

    Defaults follow the paper's setup: batch 64, a 2-layer LSTM, and
    FlexFlow's unroll length of 40 as the sequence extent.  The full
    Billion-Word vocabulary (~800k) would need a 6.5 GB projection matrix
    — more than an 11 GB GPU can replicate with activations and optimizer
    state — so the default uses the 128k shortlist size common for this
    benchmark; pass ``vocab=800_000`` for the unabridged shapes.
    """
    b = GraphBuilder()
    b.chain(Embedding("embedding", batch=batch, vocab=vocab, dim=embed, seq=seq))
    b.chain(LSTMStack("lstm", layers=layers, batch=batch, seq=seq,
                      in_dim=embed, hidden=hidden))
    # Projection back to the vocabulary; dims labelled b s v d as in Table II.
    b.chain(FullyConnected("projection", batch=batch, seq=seq, in_dim=hidden,
                           out_dim=vocab, names={"n": "v", "c": "d"}))
    b.chain(Softmax("softmax", batch=batch, classes=vocab, seq=seq,
                    class_name="v"))
    return b.build()
