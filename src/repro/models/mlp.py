"""A configurable multi-layer perceptron (quickstart / test model)."""

from __future__ import annotations

from typing import Sequence

from ..core.graph import CompGraph
from ..ops import FullyConnected, SoftmaxCrossEntropy
from .builder import GraphBuilder

__all__ = ["mlp"]


def mlp(*, batch: int = 64, in_dim: int = 784,
        hidden: Sequence[int] = (1024, 1024), classes: int = 10) -> CompGraph:
    """An MLP classifier: FC layers followed by softmax cross-entropy.

    The computation graph is a simple path graph — the easiest case for
    every searcher, handy for quickstarts and exact-ground-truth tests.
    """
    b = GraphBuilder()
    prev = in_dim
    for i, width in enumerate(hidden):
        b.chain(FullyConnected(f"fc{i + 1}", batch=batch, in_dim=prev, out_dim=width))
        prev = width
    b.chain(FullyConnected("fc_out", batch=batch, in_dim=prev, out_dim=classes))
    b.chain(SoftmaxCrossEntropy("softmax", batch=batch, classes=classes))
    return b.build()
