"""ResNet (He et al., 2016) — residual CNN, an extension benchmark.

Not part of the paper's evaluation suite, but a common target for OWT and
a structurally interesting case for the ordering machinery: residual adds
give every block input degree 3, between AlexNet's path graph and
InceptionV3's concat fan-outs.
"""

from __future__ import annotations

from ..core.graph import CompGraph
from ..ops import (
    Activation,
    BatchNorm,
    Conv2D,
    ElementwiseBinary,
    FullyConnected,
    Pool2D,
    SoftmaxCrossEntropy,
)
from .builder import GraphBuilder

__all__ = ["resnet50", "resnet_block_counts"]

#: Bottleneck-block counts per stage for the standard depths.
resnet_block_counts = {50: (3, 4, 6, 3), 101: (3, 4, 23, 3)}


class _Net:
    def __init__(self, batch: int, with_bn: bool) -> None:
        self.b = GraphBuilder()
        self.batch = batch
        self.with_bn = with_bn
        self.n = 0

    def name(self, tag: str) -> str:
        self.n += 1
        return f"{tag}{self.n}"

    def conv(self, src: str, in_ch: int, out_ch: int, hw: int, kernel: int,
             stride: int = 1) -> tuple[str, int]:
        cname = self.name("conv")
        op = Conv2D(cname, batch=self.batch, in_channels=in_ch,
                    out_channels=out_ch, in_hw=(hw, hw), kernel=kernel,
                    stride=stride, padding="same")
        self.b.add(op, inputs={"in": src})
        out_hw = op.dim_size("h")
        node = cname
        if self.with_bn:
            bn = self.name("bn")
            self.b.add(BatchNorm(bn, batch=self.batch, channels=out_ch,
                                 hw=(out_hw, out_hw)), inputs={"in": node})
            node = bn
        return node, out_hw


def resnet50(*, batch: int = 128, classes: int = 1000, image: int = 224,
             depth: int = 50, with_bn: bool = False) -> CompGraph:
    """Build a ResNet-50/101 computation graph (bottleneck blocks)."""
    blocks = resnet_block_counts[depth]
    net = _Net(batch, with_bn)
    b = net.b

    stem = Conv2D("stem", batch=batch, in_channels=3, out_channels=64,
                  in_hw=(image, image), kernel=7, stride=2, padding="same")
    b.add(stem)
    hw = stem.dim_size("h")
    pool = Pool2D("stem_pool", batch=batch, channels=64, in_hw=(hw, hw),
                  kernel=3, stride=2, padding="same")
    b.add(pool, inputs={"in": "stem"})
    hw = pool.dim_size("h")

    x, ch = "stem_pool", 64
    width = 64
    for stage, count in enumerate(blocks):
        out_ch = width * 4
        for i in range(count):
            stride = 2 if (stage > 0 and i == 0) else 1
            # Projection shortcut when shape changes.
            if ch != out_ch or stride != 1:
                shortcut, s_hw = net.conv(x, ch, out_ch, hw, 1, stride)
            else:
                shortcut, s_hw = x, hw
            y, _ = net.conv(x, ch, width, hw, 1, stride)
            y, _ = net.conv(y, width, width, hw // stride if stride > 1 else hw, 3)
            y, y_hw = net.conv(y, width, out_ch, hw // stride if stride > 1 else hw, 1)
            add = net.name("res")
            b.add(ElementwiseBinary(add, dims=[("b", batch), ("c", out_ch),
                                               ("h", y_hw), ("w", y_hw)]),
                  inputs={"in0": shortcut, "in1": y})
            relu = net.name("relu")
            b.add(Activation(relu, dims=[("b", batch), ("c", out_ch),
                                         ("h", y_hw), ("w", y_hw)]),
                  inputs={"in": add})
            x, ch, hw = relu, out_ch, y_hw
        width *= 2

    gap = Pool2D("gap", batch=batch, channels=ch, in_hw=(hw, hw),
                 kernel=hw, stride=1, kind="avgpool")
    b.add(gap, inputs={"in": x})
    b.add(FullyConnected("fc", batch=batch, in_dim=ch, out_dim=classes,
                         in_factors=(ch, 1, 1)), inputs={"in": "gap"})
    b.add(SoftmaxCrossEntropy("softmax", batch=batch, classes=classes),
          inputs={"in": "fc"})
    return b.build()
