"""Transformer (Vaswani et al., 2017) — the paper's NMT benchmark.

Encoder-decoder with fused multi-head attention and feed-forward vertices.
The encoder's final output feeds the cross-attention of *every* decoder
layer — the high-degree, long-live-range vertex the paper singles out as
the reason Transformer orderings cannot shrink dependent sets as well as
InceptionV3's (Section IV-A).
"""

from __future__ import annotations

from ..core.graph import CompGraph
from ..ops import (
    ElementwiseBinary,
    Embedding,
    FullyConnected,
    LayerNorm,
    MultiheadAttention,
    Softmax,
)
from .builder import GraphBuilder

__all__ = ["transformer"]


def transformer(*, batch: int = 64, seq: int = 64, vocab: int = 32_768,
                model_dim: int = 1024, heads: int = 16, ff_hidden: int = 4096,
                layers: int = 6, residuals: bool = True) -> CompGraph:
    """Build the Transformer NMT computation graph.

    Defaults are the "big" WMT EN-DE configuration (d_model 1024, 16
    heads, 4096-wide feed-forward, 6+6 layers) that the Mesh-TensorFlow
    hybrid the paper compares against targets.  ``layers`` counts encoder
    layers and decoder layers each.  ``residuals=False`` drops the
    elementwise residual adds, shrinking the graph for tests while keeping
    the cross-attention fan-out structure.
    """
    from ..ops.dense import FeedForward

    q_ch = model_dim // heads
    if q_ch * heads != model_dim:
        raise ValueError("model_dim must be divisible by heads")
    b = GraphBuilder()
    dims_bsd = [("b", batch), ("s", seq), ("d", model_dim)]

    def sublayer(tag: str, op_name: str, x: str, extra_inputs=None) -> str:
        """Wire sublayer ``op_name`` (already added) with residual + LN."""
        if residuals:
            add = f"{tag}_res"
            b.add(ElementwiseBinary(add, dims=dims_bsd),
                  inputs={"in0": x, "in1": op_name})
            src = add
        else:
            src = op_name
        ln = f"{tag}_ln"
        b.add(LayerNorm(ln, batch=batch, seq=seq, dim=model_dim), inputs={"in": src})
        return ln

    # -- encoder ------------------------------------------------------------
    b.chain(Embedding("src_embedding", batch=batch, vocab=vocab, dim=model_dim,
                      seq=seq))
    x = "src_embedding"
    for i in range(layers):
        attn = f"enc{i}_attn"
        b.add(MultiheadAttention(attn, batch=batch, seq=seq, heads=heads,
                                 q_channels=q_ch), inputs={"in": x})
        x = sublayer(f"enc{i}_a", attn, x)
        ff = f"enc{i}_ff"
        b.add(FeedForward(ff, batch=batch, seq=seq, model_dim=model_dim,
                          hidden=ff_hidden), inputs={"in": x})
        x = sublayer(f"enc{i}_f", ff, x)
    memory = x  # encoder output: feeds every decoder layer's cross-attention

    # -- decoder -----------------------------------------------------------
    b.add(Embedding("tgt_embedding", batch=batch, vocab=vocab, dim=model_dim,
                    seq=seq))
    x = "tgt_embedding"
    for i in range(layers):
        attn = f"dec{i}_self"
        b.add(MultiheadAttention(attn, batch=batch, seq=seq, heads=heads,
                                 q_channels=q_ch), inputs={"in": x})
        x = sublayer(f"dec{i}_s", attn, x)
        cross = f"dec{i}_cross"
        b.add(MultiheadAttention(cross, batch=batch, seq=seq, heads=heads,
                                 q_channels=q_ch, cross_seq=seq),
              inputs={"in": x, "memory": memory})
        x = sublayer(f"dec{i}_c", cross, x)
        ff = f"dec{i}_ff"
        b.add(FeedForward(ff, batch=batch, seq=seq, model_dim=model_dim,
                          hidden=ff_hidden), inputs={"in": x})
        x = sublayer(f"dec{i}_f", ff, x)

    # -- head ---------------------------------------------------------------
    b.add(FullyConnected("projection", batch=batch, seq=seq, in_dim=model_dim,
                         out_dim=vocab, names={"n": "v", "c": "d"}),
          inputs={"in": x})
    b.add(Softmax("softmax", batch=batch, classes=vocab, seq=seq, class_name="v"),
          inputs={"in": "projection"})
    return b.build()
