"""VGG-16 (Simonyan & Zisserman, 2015) — deep path-graph CNN extension.

Like AlexNet a pure path graph, but with a much larger conv/FC FLOP ratio;
useful for exercising OWT and the cost model on a second CNN shape.
"""

from __future__ import annotations

from ..core.graph import CompGraph
from ..ops import Activation, Conv2D, FullyConnected, Pool2D, SoftmaxCrossEntropy
from .builder import GraphBuilder

__all__ = ["vgg16"]

#: (convs, channels) per stage of VGG-16.
_STAGES = ((2, 64), (2, 128), (3, 256), (3, 512), (3, 512))


def vgg16(*, batch: int = 128, classes: int = 1000, image: int = 224,
          with_relu: bool = False) -> CompGraph:
    """Build the VGG-16 computation graph."""
    b = GraphBuilder()
    hw, ch = image, 3
    idx = 0
    for convs, width in _STAGES:
        for _ in range(convs):
            idx += 1
            b.chain(Conv2D(f"conv{idx}", batch=batch, in_channels=ch,
                           out_channels=width, in_hw=(hw, hw), kernel=3,
                           padding="same"))
            ch = width
            if with_relu:
                b.chain(Activation(f"relu{idx}", dims=[("b", batch),
                                                       ("c", ch),
                                                       ("h", hw), ("w", hw)]))
        b.chain(Pool2D(f"pool{idx}", batch=batch, channels=ch,
                       in_hw=(hw, hw), kernel=2))
        hw //= 2
    flat = ch * hw * hw
    b.chain(FullyConnected("fc1", batch=batch, in_dim=flat, out_dim=4096,
                           in_factors=(ch, hw, hw)))
    b.chain(FullyConnected("fc2", batch=batch, in_dim=4096, out_dim=4096))
    b.chain(FullyConnected("fc3", batch=batch, in_dim=4096, out_dim=classes))
    b.chain(SoftmaxCrossEntropy("softmax", batch=batch, classes=classes))
    return b.build()
