"""AlexNet (Krizhevsky et al., 2012) — the paper's path-graph benchmark.

Five convolution layers (with ReLU, two LRN, three max-pool) followed by
three fully-connected layers and a softmax, on 227x227 ImageNet inputs.
Each layer connects only to the next, so breadth-first and GENERATESEQ
orderings perform identically (Table I).
"""

from __future__ import annotations

from ..core.graph import CompGraph
from ..ops import (
    Activation,
    Conv2D,
    Dropout,
    FullyConnected,
    LocalResponseNorm,
    Pool2D,
    SoftmaxCrossEntropy,
)
from .builder import GraphBuilder

__all__ = ["alexnet"]


def alexnet(*, batch: int = 128, classes: int = 1000, image: int = 227,
            with_aux: bool = True) -> CompGraph:
    """Build the AlexNet computation graph.

    ``with_aux=False`` drops the ReLU/LRN/pool/dropout nodes, leaving only
    the five conv + three FC + softmax trainable spine (a smaller graph for
    unit tests; the spine alone already reproduces the Table II structure).
    """
    b = GraphBuilder()

    def act(name: str, channels: int, hw: int) -> None:
        if with_aux:
            b.chain(Activation(name, dims=[("b", batch), ("c", channels),
                                           ("h", hw), ("w", hw)]))

    # conv1: 96 kernels 11x11 stride 4 -> 55x55
    b.chain(Conv2D("conv1", batch=batch, in_channels=3, out_channels=96,
                   in_hw=(image, image), kernel=11, stride=4, padding="valid"))
    act("relu1", 96, 55)
    if with_aux:
        b.chain(LocalResponseNorm("lrn1", batch=batch, channels=96, hw=(55, 55)))
        b.chain(Pool2D("pool1", batch=batch, channels=96, in_hw=(55, 55),
                       kernel=3, stride=2))
    # conv2: 256 kernels 5x5 pad 2 -> 27x27
    hw2 = 27 if with_aux else 55
    b.chain(Conv2D("conv2", batch=batch, in_channels=96, out_channels=256,
                   in_hw=(hw2, hw2), kernel=5, stride=1, padding="same"))
    act("relu2", 256, hw2)
    if with_aux:
        b.chain(LocalResponseNorm("lrn2", batch=batch, channels=256, hw=(27, 27)))
        b.chain(Pool2D("pool2", batch=batch, channels=256, in_hw=(27, 27),
                       kernel=3, stride=2))
    # conv3-5 at 13x13
    hw3 = 13 if with_aux else hw2
    b.chain(Conv2D("conv3", batch=batch, in_channels=256, out_channels=384,
                   in_hw=(hw3, hw3), kernel=3, padding="same"))
    act("relu3", 384, hw3)
    b.chain(Conv2D("conv4", batch=batch, in_channels=384, out_channels=384,
                   in_hw=(hw3, hw3), kernel=3, padding="same"))
    act("relu4", 384, hw3)
    b.chain(Conv2D("conv5", batch=batch, in_channels=384, out_channels=256,
                   in_hw=(hw3, hw3), kernel=3, padding="same"))
    act("relu5", 256, hw3)
    if with_aux:
        b.chain(Pool2D("pool5", batch=batch, channels=256, in_hw=(13, 13),
                       kernel=3, stride=2))
    hw_fc = 6 if with_aux else hw3
    flat = 256 * hw_fc * hw_fc
    b.chain(FullyConnected("fc1", batch=batch, in_dim=flat, out_dim=4096,
                           in_factors=(256, hw_fc, hw_fc)))
    if with_aux:
        b.chain(Dropout("drop1", dims=[("b", batch), ("n", 4096)]))
    b.chain(FullyConnected("fc2", batch=batch, in_dim=4096, out_dim=4096))
    if with_aux:
        b.chain(Dropout("drop2", dims=[("b", batch), ("n", 4096)]))
    b.chain(FullyConnected("fc3", batch=batch, in_dim=4096, out_dim=classes))
    b.chain(SoftmaxCrossEntropy("softmax", batch=batch, classes=classes))
    return b.build()
