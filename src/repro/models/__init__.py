"""Model zoo: computation-graph builders for the paper's benchmarks.

The four evaluation benchmarks (Section IV) plus the DenseNet stress case
from the limitations discussion (Section V) and a small MLP used by the
examples and tests.  All builders return a validated `CompGraph` and take
the paper's default shapes as defaults (batch 128 for CNNs, 64 otherwise).
"""

from .builder import GraphBuilder
from .mlp import mlp
from .alexnet import alexnet
from .inception import inception_v3
from .rnnlm import rnnlm
from .transformer import transformer
from .densenet import densenet
from .resnet import resnet50
from .vgg import vgg16

__all__ = [
    "GraphBuilder",
    "alexnet",
    "densenet",
    "inception_v3",
    "mlp",
    "resnet50",
    "rnnlm",
    "transformer",
    "vgg16",
]

#: The paper's benchmark suite, name -> builder of the default-size model.
BENCHMARKS = {
    "alexnet": alexnet,
    "inception_v3": inception_v3,
    "rnnlm": rnnlm,
    "transformer": transformer,
}
