"""DenseNet-style dense block — the Section V stress case.

Every layer concatenates the outputs of *all* previous layers, so the
graph is uniformly dense: no vertex ordering can keep dependent sets
small, and the paper notes this as the known limitation of the approach.
The builder is used by the ablation benchmarks to demonstrate that
behaviour (dependent-set sizes grow linearly with block depth).
"""

from __future__ import annotations

from ..core.graph import CompGraph
from ..ops import Concat, Conv2D, FullyConnected, Pool2D, SoftmaxCrossEntropy
from .builder import GraphBuilder

__all__ = ["densenet"]


def densenet(*, batch: int = 32, classes: int = 100, image: int = 32,
             block_layers: int = 6, growth: int = 32,
             init_channels: int = 64) -> CompGraph:
    """Build a single-dense-block DenseNet classifier.

    ``block_layers`` controls graph density; the default 6 already defeats
    every ordering (max dependent set grows with depth).
    """
    b = GraphBuilder()
    b.chain(Conv2D("stem", batch=batch, in_channels=3, out_channels=init_channels,
                   in_hw=(image, image), kernel=3, padding="same"))
    hw = image
    feeds: list[tuple[str, int]] = [("stem", init_channels)]
    for i in range(block_layers):
        total = sum(ch for _, ch in feeds)
        if len(feeds) > 1:
            cat = f"cat{i}"
            b.add(Concat(cat, parts=[ch for _, ch in feeds], batch=batch,
                         hw=(hw, hw)),
                  inputs={f"in{k}": name for k, (name, _) in enumerate(feeds)})
            src = cat
        else:
            src = feeds[0][0]
        conv = f"conv{i}"
        b.add(Conv2D(conv, batch=batch, in_channels=total, out_channels=growth,
                     in_hw=(hw, hw), kernel=3, padding="same"),
              inputs={"in": src})
        feeds.append((conv, growth))
    total = sum(ch for _, ch in feeds)
    b.add(Concat("cat_final", parts=[ch for _, ch in feeds], batch=batch,
                 hw=(hw, hw)),
          inputs={f"in{k}": name for k, (name, _) in enumerate(feeds)})
    b.add(Pool2D("gap", batch=batch, channels=total, in_hw=(hw, hw),
                 kernel=hw, stride=1, kind="avgpool"),
          inputs={"in": "cat_final"})
    b.add(FullyConnected("fc", batch=batch, in_dim=total, out_dim=classes,
                         in_factors=(total, 1, 1)),
          inputs={"in": "gap"})
    b.add(SoftmaxCrossEntropy("softmax", batch=batch, classes=classes),
          inputs={"in": "fc"})
    return b.build()
