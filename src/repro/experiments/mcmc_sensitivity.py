"""MCMC initial-candidate sensitivity (paper Section IV, FlexFlow notes).

The paper motivates using expert strategies as FlexFlow's initial
candidates: "the efficiency of the strategy found by FlexFlow might also
vary depending on the initial candidate" and the meta-heuristic "could
get stuck in a local minima, returning a sub-optimal strategy".  This
experiment quantifies both effects on our MCMC comparator: final strategy
quality (relative to the DP optimum) across initial candidates and seeds.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..analysis.reporting import format_grid
from ..baselines import (
    MCMCOptions,
    auto_expert_strategy,
    data_parallel_strategy,
    mcmc_search,
)
from ..core.strategy import Strategy
from ..runtime import EXIT_DEADLINE, RunBudget
from .common import build_setup, search_with

__all__ = ["run_mcmc_sensitivity", "SensitivityRow", "main"]


@dataclass
class SensitivityRow:
    """Quality of one (init, seed) MCMC run, relative to the DP optimum."""

    benchmark: str
    init: str
    seed: int
    cost: float
    gap_vs_dp_optimum: float  # cost / optimum - 1
    iterations: int


def run_mcmc_sensitivity(*, benchmark: str = "transformer", p: int = 8,
                         seeds: Sequence[int] = (0, 1, 2),
                         max_iters: int = 50_000, jobs: int | None = None,
                         cache_dir: str | None = None,
                         reduce: bool = False,
                         budget: RunBudget | None = None
                         ) -> list[SensitivityRow]:
    """An expired ``budget`` deadline stops the sweep at the next
    (init, seed) MCMC run and returns the rows measured so far.
    """
    budget = (budget or RunBudget()).start()
    setup = build_setup(benchmark, p, jobs=jobs, cache_dir=cache_dir)
    optimum = search_with(setup, "ours", reduce=reduce).cost
    inits: dict[str, Strategy | None] = {
        "serial": None,
        "data_parallel": data_parallel_strategy(setup.graph, p),
        "expert": auto_expert_strategy(setup.graph, p),
    }
    rows: list[SensitivityRow] = []
    options = MCMCOptions(max_iters=max_iters, min_iters=max_iters // 5)
    for label, init in inits.items():
        for seed in seeds:
            if budget.expired:
                return rows
            res = mcmc_search(setup.graph, setup.space, setup.tables,
                              init=init, rng=np.random.default_rng(seed),
                              options=options)
            rows.append(SensitivityRow(
                benchmark=benchmark, init=label, seed=seed, cost=res.cost,
                gap_vs_dp_optimum=res.cost / optimum - 1.0,
                iterations=int(res.stats["iterations"])))
    return rows


def format_sensitivity(rows: Sequence[SensitivityRow]) -> str:
    grid = [[r.init, r.seed, f"{r.cost:.4e}",
             f"{100 * r.gap_vs_dp_optimum:+.2f}%", r.iterations]
            for r in rows]
    return format_grid(["init", "seed", "cost", "gap vs optimum", "iters"],
                       grid)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="transformer")
    parser.add_argument("--p", type=int, default=8)
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2],
                        help="RNG seeds, one MCMC run per seed and init")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for cost-table construction "
                        "(0 = all cores; default: serial)")
    parser.add_argument("--table-cache", metavar="DIR", default=None,
                        help="cache precomputed cost tables under DIR")
    parser.add_argument("--reduce", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="exact search-space reduction before the DP")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="stop the sweep at the next (init, seed) run "
                        "once this wall-clock budget expires (partial "
                        "results, exit code 5)")
    args = parser.parse_args(argv)
    budget = RunBudget(deadline=args.deadline).start()
    rows = run_mcmc_sensitivity(benchmark=args.benchmark, p=args.p,
                                seeds=tuple(args.seeds), jobs=args.jobs,
                                cache_dir=args.table_cache,
                                reduce=args.reduce, budget=budget)
    print(format_sensitivity(rows))
    if budget.expired:
        print(f"deadline of {args.deadline:.1f}s exceeded after "
              f"{len(rows)} row(s): partial results above")
        return EXIT_DEADLINE
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
