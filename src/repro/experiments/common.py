"""Shared experiment machinery: setups, method dispatch, caching."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..baselines import (
    MCMCOptions,
    auto_expert_strategy,
    data_parallel_strategy,
    mcmc_search,
    random_search,
)
from ..core.configs import ConfigSpace
from ..core.costmodel import CostModel, CostTables
from ..core.dp import find_best_strategy
from ..core.graph import CompGraph
from ..core.machine import GTX1080TI, MachineSpec
from ..core.naive import naive_bf_strategy
from ..core.strategy import SearchResult, Strategy
from ..models import BENCHMARKS

__all__ = ["BenchSetup", "build_setup", "search_with", "METHODS"]

#: Search/baseline method names accepted by :func:`search_with`.
METHODS = ("ours", "bf", "mcmc", "data_parallel", "expert", "random")


@dataclass
class BenchSetup:
    """One (benchmark, p, machine) problem instance with shared oracle."""

    name: str
    graph: CompGraph
    p: int
    machine: MachineSpec
    space: ConfigSpace
    tables: CostTables


@lru_cache(maxsize=32)
def _cached_setup(name: str, p: int, machine_name: str, mode: str,
                  jobs: int | None, cache_dir: str | None) -> BenchSetup:
    machine = {"1080Ti": GTX1080TI}.get(machine_name)
    if machine is None:
        from ..core.machine import RTX2080TI
        machine = RTX2080TI if machine_name == "2080Ti" else GTX1080TI
    graph = BENCHMARKS[name]()
    space = ConfigSpace.build(graph, p, mode=mode)
    cache = None
    if cache_dir is not None:
        from ..core.tablecache import TableCache
        cache = TableCache(cache_dir)
    from ..runtime.context import RunContext
    tables = CostModel(machine).build_tables(
        graph, space, ctx=RunContext(jobs=jobs, cache=cache))
    return BenchSetup(name=name, graph=graph, p=p, machine=machine,
                      space=space, tables=tables)


def build_setup(name: str, p: int, *, machine: MachineSpec = GTX1080TI,
                mode: str = "pow2", jobs: int | None = None,
                cache_dir: str | None = None) -> BenchSetup:
    """Build (and memoize) graph + config space + cost tables.

    ``jobs`` parallelizes the cost-table construction (0 = all cores);
    ``cache_dir`` enables the on-disk table cache rooted there.
    """
    return _cached_setup(name, p, machine.name, mode, jobs,
                         None if cache_dir is None else str(cache_dir))


def search_with(setup: BenchSetup, method: str, *, seed: int = 0,
                mcmc_options: MCMCOptions | None = None,
                bf_time_budget: float | None = 60.0,
                reduce: bool = False) -> SearchResult:
    """Run one search/baseline method on a setup.

    Baselines that are closed-form (data parallelism, expert) are wrapped
    in a `SearchResult` with near-zero elapsed time.  The breadth-first
    DP gets a time budget on top of its byte budget (both failure modes
    surface as `SearchResourceError`, Table I's OOM): on the branchy
    graphs it can grind through hours of chunked table evaluations before
    finally exceeding memory.  ``reduce`` turns on the exactness-
    preserving search-space reduction ahead of the DP (method "ours").
    """
    import time

    if method == "ours":
        return find_best_strategy(setup.graph, setup.space, setup.tables,
                                  reduce=reduce)
    if method == "bf":
        return naive_bf_strategy(setup.graph, setup.space, setup.tables,
                                 time_budget=bf_time_budget)
    if method == "mcmc":
        init = auto_expert_strategy(setup.graph, setup.p)
        return mcmc_search(setup.graph, setup.space, setup.tables, init=init,
                           rng=np.random.default_rng(seed),
                           options=mcmc_options or MCMCOptions())
    if method == "random":
        return random_search(setup.graph, setup.space, setup.tables,
                             rng=np.random.default_rng(seed))
    if method in ("data_parallel", "expert"):
        t0 = time.perf_counter()
        strat: Strategy = (data_parallel_strategy(setup.graph, setup.p)
                           if method == "data_parallel"
                           else auto_expert_strategy(setup.graph, setup.p))
        return SearchResult(
            strategy=strat,
            cost=strat.cost(setup.tables),
            elapsed=time.perf_counter() - t0,
            method=method,
        )
    raise ValueError(f"unknown method {method!r}; expected one of {METHODS}")
