"""Ablations for the design decisions DESIGN.md calls out.

* Ordering ablation — recurrence (4) is valid for any ordering (Theorem
  1); only table sizes change.  Compares GENERATESEQ, breadth-first, and
  random orderings on DP work (cells) and wall time at equal final cost.
* Configuration-granularity ablation — pow2 vs divisors vs all-factor
  enumeration: search-space size against solution quality.
* Cost-term ablation — disabling the gradient-sync / partial-sum /
  operator-extra communication terms shows which term drives each
  strategy decision (without gradient sync, data parallelism looks free
  and the searcher happily picks it).
"""

from __future__ import annotations

import numpy as np

from ..core.configs import ConfigSpace
from ..core.costmodel import CostModel
from ..core.dp import find_best_strategy
from ..core.exceptions import SearchResourceError
from ..core.graph import CompGraph
from ..core.machine import GTX1080TI, MachineSpec
from ..core.sequencer import breadth_first_seq, generate_seq, random_seq

__all__ = [
    "run_ordering_ablation",
    "run_config_mode_ablation",
    "run_costterm_ablation",
]


def run_ordering_ablation(graph: CompGraph, p: int, *,
                          machine: MachineSpec = GTX1080TI,
                          seed: int = 0,
                          memory_budget: int | None = None) -> dict[str, dict]:
    """DP under three orderings; same optimum, very different table sizes."""
    space = ConfigSpace.build(graph, p)
    tables = CostModel(machine).build_tables(graph, space)
    orders = {
        "generate_seq": generate_seq(graph),
        "breadth_first": breadth_first_seq(graph),
        "random": random_seq(graph, np.random.default_rng(seed)),
    }
    out: dict[str, dict] = {}
    for label, order in orders.items():
        kwargs = {} if memory_budget is None else {"memory_budget": memory_budget}
        try:
            res = find_best_strategy(graph, space, tables, order=order, **kwargs)
            out[label] = {"cost": res.cost, "elapsed": res.elapsed,
                          "cells": res.stats["cells"],
                          "max_dependent": res.stats["max_dependent"],
                          "oom": False}
        except SearchResourceError:
            out[label] = {"cost": None, "elapsed": None, "cells": None,
                          "max_dependent": None, "oom": True}
    return out


def run_config_mode_ablation(graph: CompGraph, p: int, *,
                             machine: MachineSpec = GTX1080TI) -> dict[str, dict]:
    """Best-strategy cost and search effort per enumeration mode."""
    out: dict[str, dict] = {}
    for mode in ("pow2", "divisors", "all"):
        space = ConfigSpace.build(graph, p, mode=mode)
        tables = CostModel(machine).build_tables(graph, space)
        res = find_best_strategy(graph, space, tables)
        out[mode] = {"cost": res.cost, "elapsed": res.elapsed,
                     "k_max": space.max_size,
                     "cells": res.stats["cells"]}
    return out


def run_costterm_ablation(graph: CompGraph, p: int, *,
                          machine: MachineSpec = GTX1080TI) -> dict[str, dict]:
    """Search with individual internal-communication terms disabled.

    Every ablated strategy is re-scored under the *full* model so the
    quality impact of the missing term is visible.
    """
    space = ConfigSpace.build(graph, p)
    full = CostModel(machine).build_tables(graph, space)
    variants = {
        "full": CostModel(machine),
        "no_grad_sync": CostModel(machine, include_grad_sync=False),
        "no_reduction": CostModel(machine, include_reduction=False),
        "no_extra": CostModel(machine, include_extra=False),
    }
    out: dict[str, dict] = {}
    for label, cm in variants.items():
        tables = cm.build_tables(graph, space)
        res = find_best_strategy(graph, space, tables)
        out[label] = {
            "ablated_cost": res.cost,
            "true_cost": res.strategy.cost(full),
            "strategy": res.strategy,
        }
    return out
