"""Table II: the best strategies found at p=32 for every benchmark.

Also verifies the qualitative structure Section IV-C describes:

* AlexNet: data parallelism on early convolutions; FC layers split along
  *both* channel dims with alternating factors, eliminating inter-FC
  all-gathers (unlike OWT's out-channel-only split);
* InceptionV3: data parallelism on early modules, hybrid splits late;
* RNNLM: vocabulary dim fully split on embedding/projection/softmax;
* Transformer: parameter parallelism on embedding/softmax, hybrid
  data+parameter on attention/feed-forward.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from ..core.machine import GTX1080TI
from ..core.strategy import Strategy
from ..runtime import EXIT_DEADLINE, RunBudget
from .common import build_setup, search_with

__all__ = ["run_table2", "strategy_structure_checks", "main"]

BENCH_ORDER = ("alexnet", "inception_v3", "rnnlm", "transformer")


def run_table2(*, p: int = 32, benchmarks: Sequence[str] = BENCH_ORDER,
               jobs: int | None = None, cache_dir: str | None = None,
               reduce: bool = False,
               budget: RunBudget | None = None) -> dict[str, Strategy]:
    """Best strategy per benchmark at ``p`` devices (1080Ti balance).

    An expired ``budget`` deadline stops the sweep at the next benchmark
    boundary and returns the strategies found so far.
    """
    budget = (budget or RunBudget()).start()
    out: dict[str, Strategy] = {}
    for bench in benchmarks:
        if budget.expired:
            return out
        setup = build_setup(bench, p, machine=GTX1080TI, jobs=jobs,
                            cache_dir=cache_dir)
        out[bench] = search_with(setup, "ours", reduce=reduce).strategy
    return out


def strategy_structure_checks(strategies: dict[str, Strategy],
                              p: int = 32) -> dict[str, bool]:
    """Section IV-C qualitative properties of the found strategies."""
    checks: dict[str, bool] = {}

    if "alexnet" in strategies:
        s = strategies["alexnet"]
        # Early convolutions lean on batch splits (spatial/filters unsplit).
        conv1 = s["conv1"]
        checks["alexnet_conv1_batch_dominant"] = conv1[0] >= p // 2 and all(
            c == 1 for c in conv1[2:4] + conv1[5:])
        # FC layers use parameter parallelism (no batch split).
        fc_cfgs = [s[n] for n in ("fc1", "fc2", "fc3") if n in s]
        checks["alexnet_fc_param_parallel"] = all(
            cfg[0] == 1 and cfg[1] * cfg[2] > 1 for cfg in fc_cfgs)
        if p >= 32:
            # With enough devices, both channel dims split (the pattern
            # that kills OWT's inter-FC all-gather, Section IV-C).
            checks["alexnet_fc_both_dims_split"] = all(
                cfg[1] > 1 and cfg[2] > 1 for cfg in fc_cfgs)

    if "rnnlm" in strategies:
        s = strategies["rnnlm"]
        emb, proj = s["embedding"], s["projection"]
        # The huge table layers are dominated by parameter parallelism:
        # the table is substantially sharded (vocab or embedding dim)
        # rather than replicated across a full batch split.  (Our cost
        # model rates v- and d-splits of the embedding within 0.2% of
        # each other and may add a small batch factor; the paper's
        # Table II shows the pure v-split.)
        checks["rnnlm_embedding_param_parallel"] = \
            emb[2] * emb[3] >= max(p // 4, 2) and emb[0] <= 4
        checks["rnnlm_projection_vocab_split"] = \
            proj[2] >= max(p // 4, 2) and proj[0] <= 4

    if "transformer" in strategies:
        s = strategies["transformer"]
        emb = s["src_embedding"]
        # Parameter parallelism dominates the embedding and projection
        # (their tables shard substantially; batch splits stay minor), as
        # in Table II.
        checks["transformer_embedding_param_parallel"] = \
            emb[2] * emb[3] >= max(p // 4, 2) and emb[0] <= 4
        proj = s["projection"]
        checks["transformer_projection_param_parallel"] = \
            proj[2] * proj[3] >= max(p // 4, 2) and proj[0] <= 4
        attn = [cfg for name, cfg in s.assignment.items()
                if name.endswith(("_attn", "_self"))]
        # Hybrid data+parameter parallelism on attention blocks.
        checks["transformer_attention_batch_split"] = all(
            cfg[0] > 1 for cfg in attn) if attn else False

    if "inception_v3" in strategies:
        s = strategies["inception_v3"]
        first_convs = [s[f"conv_{i}"] for i in range(1, 6) if f"conv_{i}" in s]
        checks["inception_early_data_parallel"] = all(
            cfg[0] == max(cfg) for cfg in first_convs) if first_convs else False
    return checks


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--p", type=int, default=32)
    parser.add_argument("--benchmarks", nargs="*", default=list(BENCH_ORDER))
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for cost-table construction "
                        "(0 = all cores; default: serial)")
    parser.add_argument("--table-cache", metavar="DIR", default=None,
                        help="cache precomputed cost tables under DIR")
    parser.add_argument("--reduce", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="exact search-space reduction before the DP")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="stop the sweep at the next benchmark boundary "
                        "once this wall-clock budget expires (partial "
                        "results, exit code 5)")
    args = parser.parse_args(argv)
    budget = RunBudget(deadline=args.deadline).start()
    strategies = run_table2(p=args.p, benchmarks=args.benchmarks,
                            jobs=args.jobs, cache_dir=args.table_cache,
                            reduce=args.reduce, budget=budget)
    for bench, strategy in strategies.items():
        setup = build_setup(bench, args.p, machine=GTX1080TI)
        print(f"== {bench} (p={args.p}) ==")
        print(strategy.format_table(setup.graph, only_parallel=True))
        print()
    for check, ok in strategy_structure_checks(strategies, args.p).items():
        print(f"{'PASS' if ok else 'FAIL'}  {check}")
    if budget.expired:
        print(f"deadline of {args.deadline:.1f}s exceeded after "
              f"{len(strategies)}/{len(args.benchmarks)} benchmark(s): "
              "partial results above")
        return EXIT_DEADLINE
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
