"""Table I: time taken by different algorithms to find strategies.

Columns per benchmark: BF (naive recurrence-(2) DP over a breadth-first
ordering — runs out of memory on InceptionV3 and Transformer), FlexFlow
(the MCMC comparator), and Ours (FINDBESTSTRATEGY over GENERATESEQ).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Sequence

from ..analysis.reporting import format_grid, format_time
from ..core.exceptions import SearchResourceError
from ..core.machine import GTX1080TI
from ..runtime import EXIT_DEADLINE, RunBudget
from .common import build_setup, search_with

__all__ = ["Table1Cell", "run_table1", "main", "DEFAULT_PS", "FULL_PS"]

#: Device counts for the default (CI-sized) sweep and the full paper sweep.
DEFAULT_PS: tuple[int, ...] = (4, 8, 16)
FULL_PS: tuple[int, ...] = (4, 8, 16, 32, 64)

BENCH_ORDER = ("alexnet", "inception_v3", "rnnlm", "transformer")
METHOD_ORDER = ("bf", "mcmc", "ours")
METHOD_LABEL = {"bf": "BF", "mcmc": "FlexFlow", "ours": "Ours"}


@dataclass
class Table1Cell:
    """One (benchmark, p, method) measurement."""

    benchmark: str
    p: int
    method: str
    seconds: float | None  # None == resource-budget exceeded ("OOM")
    cost: float | None

    @property
    def oom(self) -> bool:
        return self.seconds is None


def run_table1(*, benchmarks: Sequence[str] = BENCH_ORDER,
               ps: Sequence[int] = DEFAULT_PS,
               methods: Sequence[str] = METHOD_ORDER,
               seed: int = 0, jobs: int | None = None,
               cache_dir: str | None = None,
               reduce: bool = False,
               budget: RunBudget | None = None) -> list[Table1Cell]:
    """Time every (benchmark, p, method) combination.

    BF's state-space blow-ups surface as `SearchResourceError` and are
    recorded as OOM cells, matching the paper's entries.  ``jobs`` and
    ``cache_dir`` speed up cost-table construction only — the timed
    search phase is unaffected.  ``reduce`` runs the exact search-space
    reduction ahead of the "ours" DP (its seconds are part of the timed
    search, so the column stays honest).  An expired ``budget`` deadline
    stops the sweep at the next cell boundary and returns the cells
    measured so far (partial results, never a crash).
    """
    budget = (budget or RunBudget()).start()
    cells: list[Table1Cell] = []
    for bench in benchmarks:
        for p in ps:
            if budget.expired:
                return cells
            setup = build_setup(bench, p, machine=GTX1080TI, jobs=jobs,
                                cache_dir=cache_dir)
            for method in methods:
                if budget.expired:
                    return cells
                try:
                    res = search_with(setup, method, seed=seed,
                                      reduce=reduce)
                    cells.append(Table1Cell(bench, p, method,
                                            res.elapsed, res.cost))
                except SearchResourceError:
                    cells.append(Table1Cell(bench, p, method, None, None))
    return cells


def format_table1(cells: Sequence[Table1Cell]) -> str:
    benches = list(dict.fromkeys(c.benchmark for c in cells))
    methods = list(dict.fromkeys(c.method for c in cells))
    ps = sorted({c.p for c in cells})
    index = {(c.benchmark, c.p, c.method): c for c in cells}
    headers = ["p"] + [f"{b}/{METHOD_LABEL.get(m, m)}"
                       for b in benches for m in methods]
    rows = []
    for p in ps:
        row: list[object] = [p]
        for b in benches:
            for m in methods:
                cell = index.get((b, p, m))
                row.append("-" if cell is None else format_time(cell.seconds))
        rows.append(row)
    return format_grid(headers, rows)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help=f"sweep p={FULL_PS} (long) instead of {DEFAULT_PS}")
    parser.add_argument("--benchmarks", nargs="*", default=list(BENCH_ORDER))
    parser.add_argument("--seed", type=int, default=0,
                        help="RNG seed for the stochastic baselines (MCMC)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for cost-table construction "
                        "(0 = all cores; default: serial)")
    parser.add_argument("--table-cache", metavar="DIR", default=None,
                        help="cache precomputed cost tables under DIR")
    parser.add_argument("--reduce", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="exact search-space reduction before the DP")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="stop the sweep at the next cell boundary once "
                        "this wall-clock budget expires (partial table, "
                        "exit code 5)")
    args = parser.parse_args(argv)
    budget = RunBudget(deadline=args.deadline).start()
    cells = run_table1(benchmarks=args.benchmarks,
                       ps=FULL_PS if args.full else DEFAULT_PS,
                       seed=args.seed, jobs=args.jobs,
                       cache_dir=args.table_cache, reduce=args.reduce,
                       budget=budget)
    print(format_table1(cells))
    if budget.expired:
        print(f"deadline of {args.deadline:.1f}s exceeded after "
              f"{len(cells)} cell(s): partial results above")
        return EXIT_DEADLINE
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
