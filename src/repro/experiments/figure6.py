"""Figure 6: simulated training-throughput speedups over data parallelism.

For each benchmark, device count, and machine profile, the strategies of
interest (ours, expert, FlexFlow-MCMC) are searched/constructed, placed
with the greedy locality placer, executed on the discrete-event cluster
simulator, and reported as speedup over the data-parallel baseline —
Fig. 6a (1080Ti) and Fig. 6b (2080Ti).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Sequence

from ..analysis.reporting import format_speedup_table
from ..cluster.simulator import simulate_step
from ..core.machine import GTX1080TI, RTX2080TI, MachineSpec
from ..runtime import EXIT_DEADLINE, RunBudget
from .common import build_setup, search_with

__all__ = ["Figure6Point", "run_figure6", "main", "DEFAULT_PS"]

DEFAULT_PS: tuple[int, ...] = (4, 8, 16)
FULL_PS: tuple[int, ...] = (4, 8, 16, 32, 64)
BENCH_ORDER = ("alexnet", "inception_v3", "rnnlm", "transformer")
METHODS = ("expert", "mcmc", "ours")


@dataclass
class Figure6Point:
    """One bar of Fig. 6."""

    machine: str
    benchmark: str
    p: int
    method: str
    throughput: float
    speedup_over_dp: float


def run_figure6(*, benchmarks: Sequence[str] = BENCH_ORDER,
                ps: Sequence[int] = DEFAULT_PS,
                machines: Sequence[MachineSpec] = (GTX1080TI, RTX2080TI),
                methods: Sequence[str] = METHODS,
                seed: int = 0, jobs: int | None = None,
                cache_dir: str | None = None,
                reduce: bool = False,
                budget: RunBudget | None = None) -> list[Figure6Point]:
    """An expired ``budget`` deadline stops the sweep at the next
    (machine, benchmark, p) cell and returns the points measured so far.
    """
    budget = (budget or RunBudget()).start()
    points: list[Figure6Point] = []
    for machine in machines:
        for bench in benchmarks:
            for p in ps:
                if budget.expired:
                    return points
                setup = build_setup(bench, p, machine=machine, jobs=jobs,
                                    cache_dir=cache_dir)
                dp = search_with(setup, "data_parallel").strategy
                base = simulate_step(setup.graph, dp, machine, p)
                points.append(Figure6Point(machine.name, bench, p,
                                           "data_parallel",
                                           base.throughput, 1.0))
                for method in methods:
                    strat = search_with(setup, method, seed=seed,
                                        reduce=reduce).strategy
                    rep = simulate_step(setup.graph, strat, machine, p)
                    points.append(Figure6Point(
                        machine.name, bench, p, method, rep.throughput,
                        rep.throughput / base.throughput))
    return points


def as_table(points: Sequence[Figure6Point], machine: str) -> str:
    data: dict[str, dict[int, dict[str, float]]] = {}
    methods: list[str] = []
    for pt in points:
        if pt.machine != machine:
            continue
        data.setdefault(pt.benchmark, {}).setdefault(pt.p, {})[pt.method] = \
            pt.speedup_over_dp
        if pt.method not in methods:
            methods.append(pt.method)
    return format_speedup_table(data, methods)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help=f"sweep p={FULL_PS} (long) instead of {DEFAULT_PS}")
    parser.add_argument("--benchmarks", nargs="*", default=list(BENCH_ORDER))
    parser.add_argument("--seed", type=int, default=0,
                        help="RNG seed for the stochastic baselines (MCMC)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for cost-table construction "
                        "(0 = all cores; default: serial)")
    parser.add_argument("--table-cache", metavar="DIR", default=None,
                        help="cache precomputed cost tables under DIR")
    parser.add_argument("--reduce", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="exact search-space reduction before the DP")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="stop the sweep at the next (machine, "
                        "benchmark, p) cell once this wall-clock budget "
                        "expires (partial results, exit code 5)")
    args = parser.parse_args(argv)
    budget = RunBudget(deadline=args.deadline).start()
    points = run_figure6(benchmarks=args.benchmarks,
                         ps=FULL_PS if args.full else DEFAULT_PS,
                         seed=args.seed, jobs=args.jobs,
                         cache_dir=args.table_cache, reduce=args.reduce,
                         budget=budget)
    for machine in ("1080Ti", "2080Ti"):
        fig = "6a" if machine == "1080Ti" else "6b"
        print(f"== Figure {fig}: speedup over data parallelism ({machine}) ==")
        print(as_table(points, machine))
        print()
    if budget.expired:
        print(f"deadline of {args.deadline:.1f}s exceeded after "
              f"{len(points)} point(s): partial results above")
        return EXIT_DEADLINE
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
