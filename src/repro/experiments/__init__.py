"""Experiment harness: one driver per paper artifact.

* `table1` — strategy-search time, BF vs FlexFlow-MCMC vs PaSE.
* `table2` — best strategies at p=32 (per-layer configurations).
* `figure6` — simulated training-throughput speedups over data
  parallelism on the 1080Ti and 2080Ti cluster profiles.
* `graphstats` quantities (Fig. 5 / Section III-C) live in
  `repro.analysis`.
* `ablations` — ordering, configuration-granularity, and cost-model-term
  ablations for the design decisions DESIGN.md calls out.

Each module exposes ``run_*`` functions returning plain data plus a
``main()`` that prints the paper-style table; ``benchmarks/`` wraps them
for pytest-benchmark.
"""

from .common import BenchSetup, build_setup, search_with
from .table1 import Table1Cell, run_table1
from .table2 import run_table2
from .figure6 import run_figure6
from .ablations import run_config_mode_ablation, run_costterm_ablation, run_ordering_ablation
from .mcmc_sensitivity import run_mcmc_sensitivity

__all__ = [
    "BenchSetup",
    "Table1Cell",
    "build_setup",
    "run_config_mode_ablation",
    "run_costterm_ablation",
    "run_figure6",
    "run_mcmc_sensitivity",
    "run_ordering_ablation",
    "run_table1",
    "run_table2",
    "search_with",
]
