"""Graceful degradation for the strategy search.

`repro.core.dp.find_best_strategy` raises `SearchResourceError` the
moment a DP table would blow its byte budget — correct for reproducing
Table I's OOM entries, useless for a production planner that must return
*some* strategy.  :func:`resilient_find_best_strategy` wraps the DP in a
degradation ladder and records every rung in a `ResilienceReport`:

1. **as requested** — the caller's ordering / chunk size / budget;
2. **adaptive chunk reduction** — shrink the transient cost-array chunk
   (the ``min(cells, chunk) · 8`` term of the budget check) by 8x, then
   64x;
3. **ordering fallback** — if the caller forced a non-default ordering
   (e.g. the breadth-first baseline), fall back to GENERATESEQ, which
   minimizes dependent-set sizes and hence table bytes (Theorem 1 makes
   any ordering valid, so this degrades table size, not correctness);
4. **frontier-point selection** — only when the caller *tightened* the
   byte budget below the default: run the exact Pareto-frontier DP
   (`repro.core.frontier`) at the default budget and return the
   min-cost point whose ``peak_bytes`` fits the caller's budget
   (`repro.api.select_point`).  Unlike coarsening this is **exact** —
   the point is a true optimum under the memory cap, not an optimum of
   a pruned space — so it outranks coarsening on the ladder; its own
   `SearchResourceError` (frontier too big, or no point fits) falls
   through to the rung below;
5. **configuration-space coarsening** — repeatedly halve each node's
   configuration count, keeping the serial configuration plus the
   lowest-layer-cost candidates.  Table bytes scale as ``K^{|D(i)|}``,
   so each halving cuts them exponentially; the cost optimum is now over
   a pruned space (a documented approximation, reported as such).

Only when every rung fails does the final `SearchResourceError`
propagate, with the full retry chain attached as ``err.report``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.configs import ConfigSpace
from ..core.costmodel import CostTables
from ..core.dp import DEFAULT_CHUNK_CELLS, DEFAULT_MEMORY_BUDGET, \
    find_best_strategy
from ..core.exceptions import SearchResourceError
from ..core.graph import CompGraph
from ..core.strategy import SearchResult
from ..obs.profile import metrics_of, tracer_of

__all__ = ["AttemptRecord", "ResilienceReport", "coarsen_config_space",
           "resilient_find_best_strategy"]

#: Smallest transient chunk the ladder will try (cells).
MIN_CHUNK_CELLS = 4_096


@dataclass(frozen=True)
class AttemptRecord:
    """One rung of the degradation ladder."""

    stage: str                     # e.g. "initial", "chunk/8", "coarsen x2"
    detail: str                    # human-readable parameters
    elapsed: float                 # seconds spent on this attempt
    error: str | None = None       # None on success
    requested_bytes: int | None = None
    budget_bytes: int | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class ResilienceReport:
    """The retry chain of one resilient search."""

    attempts: list[AttemptRecord] = field(default_factory=list)
    succeeded: bool = False

    @property
    def degradations(self) -> tuple[str, ...]:
        """Stages tried after the caller's original request."""
        return tuple(a.stage for a in self.attempts[1:])

    @property
    def retries(self) -> int:
        return max(0, len(self.attempts) - 1)

    def summary(self) -> str:
        from ..analysis.reporting import format_resilience_report

        return format_resilience_report(self)


def coarsen_config_space(space: ConfigSpace, tables: CostTables,
                         factor: int = 2
                         ) -> tuple[ConfigSpace, CostTables]:
    """Shrink each node's configuration table by ``factor``.

    Keeps the serial configuration (row 0 — always feasible) plus the
    lowest-layer-cost candidates up to ``ceil(K / factor)`` per node,
    and slices the precomputed cost tables to match, so no cost is
    recomputed.  Strategies found in the coarsened space are valid in
    the original space (configurations are a subset) and their costs are
    directly comparable.
    """
    if factor < 2:
        raise ValueError(f"coarsening factor {factor} must be >= 2")
    keep: dict[str, np.ndarray] = {}
    new_cfg: dict[str, np.ndarray] = {}
    new_lc: dict[str, np.ndarray] = {}
    for name, tab in space.tables.items():
        k = tab.shape[0]
        k_new = max(1, -(-k // factor))
        best = np.argsort(tables.lc[name], kind="stable")[:k_new]
        idx = np.unique(np.concatenate(([0], best)))
        keep[name] = idx
        new_cfg[name] = tab[idx]
        new_lc[name] = tables.lc[name][idx]
    new_space = ConfigSpace(p=space.p, mode=space.mode, tables=new_cfg)
    new_pair = {
        (u, v): mat[np.ix_(keep[u], keep[v])]
        for (u, v), mat in tables.pair_tx.items()
    }
    # ``derived=True``: these tables are slices of another instance — the
    # on-disk table cache refuses to store them (their digest would
    # describe the original space and poison later lookups).
    new_tables = CostTables(graph=tables.graph, space=new_space,
                            machine=tables.machine, lc=new_lc,
                            pair_tx=new_pair, derived=True)
    return new_space, new_tables


def _frontier_select_attempt(
    graph: CompGraph,
    space: ConfigSpace,
    tables: CostTables,
    report: ResilienceReport,
    tracer,
    *,
    order: Sequence[str] | None,
    chunk_cells: int,
    memory_budget: int,
    method_name: str,
    ctx: "object | None",
    on_error,
) -> SearchResult | None:
    """One frontier-select rung: exact frontier at the *default* DP
    budget, then the min-cost point fitting the caller's budget.

    Returns the selected point as a `SearchResult` (its length-1
    ``frontier`` is the chosen point, so ``frontier[0].cost == cost``
    holds like everywhere else), or None after recording the failed
    attempt — both a too-big frontier DP and an unsatisfiable budget
    raise `SearchResourceError` and fall through to coarsening.
    """
    from ..api import select_point
    from ..core.frontier import find_frontier_strategy

    stage = "frontier-select"
    detail = (f"exact frontier @ default budget, "
              f"select peak_bytes<={memory_budget}")
    checkpoint = None if ctx is None else ctx.make_checkpoint()
    t0 = time.perf_counter()
    try:
        with tracer.span("resilience.attempt", stage=stage, detail=detail):
            fres = find_frontier_strategy(
                graph, space, tables, order=order,
                memory_budget=DEFAULT_MEMORY_BUDGET,
                chunk_cells=chunk_cells,
                method_name=f"{method_name}+frontier",
                checkpoint=checkpoint)
            point = select_point(fres.frontier, memory_budget)
    except SearchResourceError as err:
        report.attempts.append(AttemptRecord(
            stage=stage, detail=detail,
            elapsed=time.perf_counter() - t0, error=str(err),
            requested_bytes=err.requested_bytes,
            budget_bytes=err.budget_bytes))
        on_error.last_error = err
        return None
    report.attempts.append(AttemptRecord(
        stage=stage, detail=detail, elapsed=time.perf_counter() - t0))
    report.succeeded = True
    stats = dict(fres.stats)
    stats["resilience_retries"] = float(report.retries)
    stats["frontier_selected_peak_bytes"] = float(point.peak_bytes)
    return SearchResult(strategy=point.strategy, cost=point.cost,
                        elapsed=fres.elapsed, method=fres.method,
                        stats=stats, frontier=(point,))


def resilient_find_best_strategy(
    graph: CompGraph,
    space: ConfigSpace,
    tables: CostTables,
    *,
    order: Sequence[str] | None = None,
    memory_budget: int = DEFAULT_MEMORY_BUDGET,
    chunk_cells: int = DEFAULT_CHUNK_CELLS,
    coarsen_rounds: int = 3,
    method_name: str = "pase-dp-resilient",
    search_fn: Callable[..., SearchResult] = find_best_strategy,
    checkpoint: Callable[..., None] | None = None,
    ctx: "object | None" = None,
) -> tuple[SearchResult, ResilienceReport]:
    """Run the DP with graceful degradation instead of a hard failure.

    Returns the first successful `SearchResult` together with the
    `ResilienceReport` of every attempt.  When all rungs fail, the last
    `SearchResourceError` is re-raised with the report attached as
    ``err.report``.  ``ctx`` (a `repro.runtime.RunContext`) — or a bare
    ``checkpoint`` callable, which is wrapped into one — is forwarded
    into every rung's search, so a deadline or SIGINT stops the ladder
    mid-rung instead of grinding through the remaining ones.
    """
    if ctx is None and checkpoint is not None:
        from ..runtime.context import RunContext

        ctx = RunContext(checkpoint=checkpoint)
    tracer = tracer_of(ctx)
    report = ResilienceReport()

    def attempt(stage: str, detail: str, *, a_order, a_chunk,
                a_space, a_tables) -> SearchResult | None:
        t0 = time.perf_counter()
        extra = {} if ctx is None else {"ctx": ctx}
        try:
            with tracer.span("resilience.attempt", stage=stage,
                             detail=detail):
                result = search_fn(graph, a_space, a_tables, order=a_order,
                                   memory_budget=memory_budget,
                                   chunk_cells=a_chunk,
                                   method_name=method_name, **extra)
        except SearchResourceError as err:
            report.attempts.append(AttemptRecord(
                stage=stage, detail=detail,
                elapsed=time.perf_counter() - t0, error=str(err),
                requested_bytes=err.requested_bytes,
                budget_bytes=err.budget_bytes))
            attempt.last_error = err  # type: ignore[attr-defined]
            return None
        report.attempts.append(AttemptRecord(
            stage=stage, detail=detail,
            elapsed=time.perf_counter() - t0))
        report.succeeded = True
        result.stats["resilience_retries"] = float(report.retries)
        return result

    attempt.last_error = None  # type: ignore[attr-defined]

    def ladder() -> SearchResult:
        cur_chunk = chunk_cells
        cur_order = order
        cur_space, cur_tables = space, tables

        res = attempt("initial",
                      f"order={'caller' if order is not None else 'generateseq'} "
                      f"chunk={chunk_cells} budget={memory_budget}",
                      a_order=cur_order, a_chunk=cur_chunk,
                      a_space=cur_space, a_tables=cur_tables)
        if res is not None:
            return res

        # Rung 2: adaptive chunk-size reduction.
        for div in (8, 64):
            smaller = max(MIN_CHUNK_CELLS, chunk_cells // div)
            if smaller >= cur_chunk:
                continue
            cur_chunk = smaller
            res = attempt(f"chunk/{div}", f"chunk={cur_chunk}",
                          a_order=cur_order, a_chunk=cur_chunk,
                          a_space=cur_space, a_tables=cur_tables)
            if res is not None:
                return res

        # Rung 3: fall back from the caller's ordering to GENERATESEQ.
        if cur_order is not None:
            cur_order = None
            res = attempt("generateseq-order", "order=generateseq",
                          a_order=None, a_chunk=cur_chunk,
                          a_space=cur_space, a_tables=cur_tables)
            if res is not None:
                return res

        # Rung 4: exact frontier-point selection under the caller's
        # budget, read as a memory cap.  Only meaningful when the budget
        # was tightened below the default — at the default the frontier
        # DP has no extra headroom to trade for exactness.
        if memory_budget < DEFAULT_MEMORY_BUDGET:
            res = _frontier_select_attempt(
                graph, cur_space, cur_tables, report, tracer,
                order=cur_order, chunk_cells=cur_chunk,
                memory_budget=memory_budget, method_name=method_name,
                ctx=ctx, on_error=attempt)
            if res is not None:
                return res

        # Rung 5: configuration-space coarsening, halving K each round.
        for rnd in range(1, coarsen_rounds + 1):
            if cur_space.max_size <= 1:
                break
            cur_space, cur_tables = coarsen_config_space(cur_space, cur_tables)
            res = attempt(f"coarsen x{2 ** rnd}",
                          f"K_max={cur_space.max_size} "
                          f"cells={cur_space.total_cells()}",
                          a_order=cur_order, a_chunk=cur_chunk,
                          a_space=cur_space, a_tables=cur_tables)
            if res is not None:
                return res

        err = attempt.last_error  # type: ignore[attr-defined]
        assert isinstance(err, SearchResourceError)
        err.report = report  # type: ignore[attr-defined]
        raise err

    with tracer.span("resilience") as ladder_span:
        try:
            result = ladder()
        finally:
            ladder_span.set(attempts=len(report.attempts),
                            retries=report.retries,
                            succeeded=report.succeeded)
    metrics_of(ctx).counter(
        "resilience_retries_total",
        "degradation-ladder retries past the initial attempt").inc(
            report.retries)
    return result, report
