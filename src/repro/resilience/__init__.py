"""Fault-tolerant simulation and resilient strategy search.

Two halves:

* **fault-injected simulation** (`faults`, `checkpoint`) — declarative
  `FaultPlan`s (fail-stop, stragglers, link degradation, transient
  collective failures) honored by the cluster scheduler, plus
  checkpoint/restart cost modeling;
* **resilient planning** (`runner`, `replan`) — graceful degradation of
  the DP search under resource pressure, and elastic re-planning on the
  survivor set after device loss.
"""

from .checkpoint import CheckpointPolicy, effective_step_time, \
    young_daly_interval
from .faults import (
    DeviceFailure,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    LinkDegradation,
    Straggler,
    TransientFaults,
)
from .replan import ElasticReplanReport, elastic_replan
from .runner import (
    AttemptRecord,
    ResilienceReport,
    coarsen_config_space,
    resilient_find_best_strategy,
)

__all__ = [
    "AttemptRecord",
    "CheckpointPolicy",
    "DeviceFailure",
    "ElasticReplanReport",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "LinkDegradation",
    "ResilienceReport",
    "Straggler",
    "TransientFaults",
    "coarsen_config_space",
    "effective_step_time",
    "elastic_replan",
    "resilient_find_best_strategy",
    "young_daly_interval",
]
