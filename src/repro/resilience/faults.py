"""Declarative fault plans and their injection into the step scheduler.

Production clusters are not the fault-free machines the paper's search
assumes: devices fail-stop mid-step, thermal throttling turns a GPU into
a straggler, a flaky NIC halves a link's bandwidth, and collectives time
out and retry.  A `FaultPlan` describes such conditions declaratively;
a `FaultInjector` built from a (resolved) plan perturbs the
list-scheduler's task commitments:

* **fail-stop** — a device disappears at time *t* for ``downtime``
  seconds.  A task caught mid-flight on that device loses its partial
  work and re-executes from scratch once the device returns (the
  standard redo model of fail-stop recovery);
* **stragglers** — compute tasks on a slow device take ``slowdown``
  times longer;
* **link degradation** — NIC tasks (transfers, collective steps) through
  a degraded endpoint take ``factor`` times longer;
* **transient collective failures** — each collective task fails with a
  seeded per-attempt probability and pays backoff plus full
  re-execution per retry (NCCL-style timeout/retry behavior).

Plans serialize to/from JSON for ``pase simulate --faults plan.json``.
Times can be absolute seconds or, with ``relative_times``, fractions of
the fault-free makespan — convenient for "kill device 1 mid-step"
experiments that should not depend on the model's absolute step time.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, replace

import numpy as np

from ..core.exceptions import FaultPlanError

__all__ = ["DeviceFailure", "Straggler", "LinkDegradation",
           "TransientFaults", "FaultPlan", "FaultEvent", "FaultInjector"]

#: Task kinds that run on a device's compute stream (straggler-affected).
COMPUTE_KINDS = frozenset({"fwd", "bwd", "update"})

#: Task kinds that are collective synchronizations (transient-affected).
COLLECTIVE_KINDS = frozenset({"reduce", "gradsync"})


@dataclass(frozen=True)
class DeviceFailure:
    """Fail-stop loss of one device at ``time``, back after ``downtime``.

    With ``FaultPlan.relative_times`` both fields are fractions of the
    fault-free makespan, otherwise seconds.  ``downtime`` must be finite:
    permanent loss is modelled by elastic re-planning on the survivor
    set (`repro.resilience.replan`), not by an unbounded stall.
    """

    device: int
    time: float
    downtime: float = 0.5


@dataclass(frozen=True)
class Straggler:
    """A device whose compute runs ``slowdown`` (>= 1) times slower."""

    device: int
    slowdown: float


@dataclass(frozen=True)
class LinkDegradation:
    """A device whose NIC paths run ``factor`` (>= 1) times slower."""

    device: int
    factor: float


@dataclass(frozen=True)
class TransientFaults:
    """Seeded random collective failures with retry/backoff cost.

    Each collective task independently fails with ``probability`` per
    attempt, up to ``max_retries`` times; each failed attempt costs the
    task's full duration again plus ``backoff`` seconds.
    """

    probability: float
    backoff: float = 1e-3
    max_retries: int = 3
    seed: int = 0


@dataclass(frozen=True)
class FaultPlan:
    """A declarative set of fault conditions for one simulated step."""

    device_failures: tuple[DeviceFailure, ...] = ()
    stragglers: tuple[Straggler, ...] = ()
    link_degradations: tuple[LinkDegradation, ...] = ()
    transients: TransientFaults | None = None
    relative_times: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "device_failures", tuple(self.device_failures))
        object.__setattr__(self, "stragglers", tuple(self.stragglers))
        object.__setattr__(self, "link_degradations",
                           tuple(self.link_degradations))

    def is_empty(self) -> bool:
        return not (self.device_failures or self.stragglers
                    or self.link_degradations or self.transients)

    def failed_devices(self) -> tuple[int, ...]:
        """Devices that suffer a fail-stop somewhere in the plan."""
        return tuple(sorted({f.device for f in self.device_failures}))

    def validate(self, p: int) -> None:
        for f in self.device_failures:
            if not 0 <= f.device < p:
                raise FaultPlanError(
                    f"fail-stop device {f.device} outside 0..{p - 1}")
            if f.time < 0:
                raise FaultPlanError(f"fail-stop time {f.time} < 0")
            if not (f.downtime > 0 and math.isfinite(f.downtime)):
                raise FaultPlanError(
                    f"fail-stop downtime {f.downtime} must be finite and "
                    f"positive (model permanent loss via elastic re-planning)")
        for s in self.stragglers:
            if not 0 <= s.device < p:
                raise FaultPlanError(
                    f"straggler device {s.device} outside 0..{p - 1}")
            if s.slowdown < 1.0:
                raise FaultPlanError(
                    f"straggler slowdown {s.slowdown} < 1 (use 1 for none)")
        for l in self.link_degradations:
            if not 0 <= l.device < p:
                raise FaultPlanError(
                    f"link-degradation device {l.device} outside 0..{p - 1}")
            if l.factor < 1.0:
                raise FaultPlanError(
                    f"link-degradation factor {l.factor} < 1 (use 1 for none)")
        t = self.transients
        if t is not None:
            if not 0.0 <= t.probability < 1.0:
                raise FaultPlanError(
                    f"transient probability {t.probability} outside [0, 1)")
            if t.backoff < 0 or t.max_retries < 0:
                raise FaultPlanError("transient backoff/max_retries < 0")

    def resolve(self, makespan: float) -> "FaultPlan":
        """Convert relative fail-stop times to absolute seconds."""
        if not self.relative_times:
            return self
        if makespan <= 0:
            raise FaultPlanError(
                "cannot resolve relative fault times against a non-positive "
                "makespan")
        failures = tuple(
            replace(f, time=f.time * makespan, downtime=f.downtime * makespan)
            for f in self.device_failures)
        return replace(self, device_failures=failures, relative_times=False)

    # -- (de)serialization --------------------------------------------------

    def to_json(self) -> str:
        out = asdict(self)
        return json.dumps(out, indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        try:
            failures = tuple(DeviceFailure(**d)
                             for d in data.get("device_failures", ()))
            stragglers = tuple(Straggler(**d)
                               for d in data.get("stragglers", ()))
            links = tuple(LinkDegradation(**d)
                          for d in data.get("link_degradations", ()))
            t = data.get("transients")
            transients = TransientFaults(**t) if t else None
        except TypeError as err:
            raise FaultPlanError(f"malformed fault plan: {err}") from None
        return cls(device_failures=failures, stragglers=stragglers,
                   link_degradations=links, transients=transients,
                   relative_times=bool(data.get("relative_times", False)))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as err:
            raise FaultPlanError(f"fault plan is not valid JSON: {err}") from None
        if not isinstance(data, dict):
            raise FaultPlanError("fault plan JSON must be an object")
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return cls.from_json(fh.read())
        except OSError as err:
            raise FaultPlanError(f"cannot read fault plan {path!r}: {err}") \
                from None


@dataclass(frozen=True)
class FaultEvent:
    """One perturbation the injector applied to a scheduled task."""

    fault: str       # "failstop" | "straggler" | "link" | "transient"
    task: str        # task label
    device: int
    delay: float     # seconds added to the task's completion

    def describe(self) -> str:
        return (f"{self.fault:10s} dev{self.device} "
                f"+{self.delay * 1e3:.3f} ms  {self.task}")


class FaultInjector:
    """Applies a resolved `FaultPlan` to list-scheduler commitments.

    The scheduler calls :meth:`apply` once per task right before
    committing it; the injector returns the perturbed ``(start,
    duration)`` and records every perturbation in :attr:`events`.
    Transient-failure draws use a private seeded generator, so a given
    (task graph, plan) pair perturbs identically run-to-run.
    """

    def __init__(self, plan: FaultPlan, p: int) -> None:
        if plan.relative_times:
            raise FaultPlanError(
                "FaultInjector needs absolute times; call plan.resolve() first")
        plan.validate(p)
        self.plan = plan
        self._slow = {s.device: s.slowdown for s in plan.stragglers}
        self._link = {l.device: l.factor for l in plan.link_degradations}
        self._windows: dict[int, list[tuple[float, float]]] = {}
        for f in plan.device_failures:
            self._windows.setdefault(f.device, []).append(
                (f.time, f.time + f.downtime))
        for wins in self._windows.values():
            wins.sort()
        self._rng = (np.random.default_rng(plan.transients.seed)
                     if plan.transients is not None else None)
        self.events: list[FaultEvent] = []

    def apply(self, task, start: float, duration: float
              ) -> tuple[float, float]:
        """Perturb one task commitment; returns (start, duration)."""
        dur = duration
        # Straggler / degraded-link scaling (worst factor among resources).
        factor = 1.0
        slow_dev = -1
        for rk, dev in task.resources:
            f = (self._slow.get(dev, 1.0) if rk == "gpu"
                 else self._link.get(dev, 1.0))
            if f > factor:
                factor, slow_dev = f, dev
        if factor > 1.0 and dur > 0:
            self.events.append(FaultEvent(
                fault="straggler" if task.kind in COMPUTE_KINDS else "link",
                task=task.label, device=slow_dev,
                delay=dur * (factor - 1.0)))
            dur *= factor

        # Transient collective failures: retry with backoff, redo the work.
        t = self.plan.transients
        if t is not None and self._rng is not None and dur > 0 \
                and task.kind in COLLECTIVE_KINDS and t.probability > 0:
            retries = 0
            while retries < t.max_retries \
                    and self._rng.random() < t.probability:
                retries += 1
            if retries:
                extra = retries * (t.backoff + dur)
                self.events.append(FaultEvent(
                    fault="transient", task=task.label,
                    device=int(task.resources[0][1]), delay=extra))
                dur += extra

        # Fail-stop blackout windows: partial work is lost; the task
        # re-executes once every involved device is back.  Iterate to a
        # fixed point because pushing the start past one window can move
        # the task into another.
        moved = True
        while moved:
            moved = False
            for _, dev in task.resources:
                for t0, t1 in self._windows.get(dev, ()):
                    if start >= t1 or start + dur <= t0:
                        continue
                    self.events.append(FaultEvent(
                        fault="failstop", task=task.label, device=dev,
                        delay=t1 - start))
                    start = t1
                    moved = True
        return start, dur

    def lost_work(self) -> float:
        """Total seconds of task delay attributable to fail-stops."""
        return sum(e.delay for e in self.events if e.fault == "failstop")

    def delay_by_fault(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for e in self.events:
            out[e.fault] = out.get(e.fault, 0.0) + e.delay
        return dict(sorted(out.items()))
