"""Checkpoint/restart cost modeling.

Long training runs survive fail-stops by periodically writing a
checkpoint and, on failure, restoring the last one and redoing the lost
steps.  This module folds that protocol into an *effective* step time:

``eff = step + C / k + λ · (R + (k/2) · step + C/2)``

where ``C`` is the checkpoint write time, ``k`` the checkpoint interval
in steps, ``λ`` the expected failures per step (``1 / MTBF``), ``R`` the
restore time, and ``(k/2)·step + C/2`` the expected redo work (a failure
lands uniformly inside a checkpoint interval).  The classic Young/Daly
rule gives the ``k`` minimizing this waste; :func:`young_daly_interval`
computes it in steps so callers can compare their configured interval
against the optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.exceptions import FaultPlanError

__all__ = ["CheckpointPolicy", "effective_step_time", "young_daly_interval"]


@dataclass(frozen=True)
class CheckpointPolicy:
    """How often checkpoints are written and what they cost.

    Attributes
    ----------
    interval_steps:
        Steps between consecutive checkpoints.
    checkpoint_time:
        Seconds to serialize and write one checkpoint.
    restore_time:
        Seconds to load the last checkpoint and restart the job.
    """

    interval_steps: int = 100
    checkpoint_time: float = 0.5
    restore_time: float = 2.0

    def __post_init__(self) -> None:
        if self.interval_steps < 1:
            raise FaultPlanError(
                f"checkpoint interval {self.interval_steps} must be >= 1 step")
        if self.checkpoint_time < 0 or self.restore_time < 0:
            raise FaultPlanError("checkpoint/restore times must be >= 0")

    def overhead_per_step(self) -> float:
        """Amortized checkpoint-write seconds added to every step."""
        return self.checkpoint_time / self.interval_steps

    def expected_lost_work(self, step_time: float) -> float:
        """Expected redo seconds when a failure strikes mid-interval."""
        return 0.5 * (self.interval_steps * step_time + self.checkpoint_time)


def effective_step_time(step_time: float, policy: CheckpointPolicy,
                        failures_per_step: float = 0.0) -> float:
    """Step time including checkpoint overhead and expected failure waste.

    ``failures_per_step`` is ``1 / MTBF`` with the MTBF expressed in
    steps; zero gives the failure-free overhead (write amortization only).
    """
    if step_time <= 0:
        raise FaultPlanError(f"step time {step_time} must be positive")
    if failures_per_step < 0:
        raise FaultPlanError(f"failure rate {failures_per_step} < 0")
    waste = failures_per_step * (policy.restore_time
                                 + policy.expected_lost_work(step_time))
    return step_time + policy.overhead_per_step() + waste


def young_daly_interval(step_time: float, checkpoint_time: float,
                        mtbf_steps: float) -> int:
    """Young/Daly optimal checkpoint interval, in steps (>= 1).

    ``k* = sqrt(2 · C · M) / step`` with the MTBF ``M = mtbf_steps ·
    step`` — the interval balancing write overhead against redo work.
    """
    if step_time <= 0 or checkpoint_time < 0 or mtbf_steps <= 0:
        raise FaultPlanError("young_daly_interval needs positive step time "
                             "and MTBF and non-negative checkpoint time")
    mtbf_s = mtbf_steps * step_time
    k = math.sqrt(2.0 * checkpoint_time * mtbf_s) / step_time
    return max(1, round(k))
