"""Elastic re-planning after fail-stop device loss.

When a device fail-stops, the operator has two options:

* **continue degraded** — keep the old strategy and eat the fault plan's
  perturbations every step (the failed device stalling its shards, the
  stragglers, the flaky links);
* **re-plan elastically** — pay a one-time recovery cost (checkpoint
  restore + redo of the lost work + a fresh strategy search on the
  ``p - |failed|`` survivors) and then run healthy steps on the smaller
  cluster.

:func:`elastic_replan` prices both: it simulates the degraded step,
re-runs the (resilient) DP on the survivor count, simulates the
re-planned step, and reports the recovery cost plus the break-even step
count after which re-planning wins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.configs import ConfigSpace
from ..core.costmodel import CostModel
from ..core.dp import DEFAULT_MEMORY_BUDGET
from ..core.exceptions import FaultPlanError
from ..core.graph import CompGraph
from ..core.machine import MachineSpec
from ..core.strategy import Strategy
from .checkpoint import CheckpointPolicy
from .faults import FaultPlan
from .runner import ResilienceReport, resilient_find_best_strategy

__all__ = ["ElasticReplanReport", "elastic_replan"]


@dataclass
class ElasticReplanReport:
    """Degraded-vs-replanned comparison after fail-stop device loss."""

    failed_devices: tuple[int, ...]
    old_p: int
    new_p: int
    strategy: Strategy                 # best strategy on the survivors
    healthy_step_time: float           # old strategy, fault-free cluster
    degraded_step_time: float          # old strategy under the fault plan
    replanned_step_time: float         # new strategy on new_p devices
    search_elapsed: float              # re-planning search seconds
    restore_time: float                # checkpoint restore seconds
    lost_work: float                   # redo seconds (work since last ckpt)
    resilience: ResilienceReport

    @property
    def recovery_cost(self) -> float:
        """One-time seconds to switch: restore + redo + re-search."""
        return self.restore_time + self.lost_work + self.search_elapsed

    @property
    def breakeven_steps(self) -> float:
        """Steps after which re-planning beats continuing degraded."""
        gain = self.degraded_step_time - self.replanned_step_time
        if gain <= 0:
            return math.inf
        return self.recovery_cost / gain

    def summary(self) -> str:
        from ..analysis.reporting import format_replan_report

        return format_replan_report(self)


def elastic_replan(
    graph: CompGraph,
    strategy: Strategy,
    machine: MachineSpec,
    p: int,
    plan: FaultPlan,
    *,
    mode: str = "pow2",
    policy: CheckpointPolicy | None = None,
    memory_budget: int = DEFAULT_MEMORY_BUDGET,
) -> ElasticReplanReport:
    """Price continuing degraded vs re-planning on the survivor set.

    ``strategy`` is the strategy the cluster was running when ``plan``'s
    fail-stops struck; the plan must contain at least one device
    failure.  The survivor search runs through the resilient runner, so
    a tight ``memory_budget`` degrades gracefully rather than aborting
    the recovery.
    """
    from ..cluster import simulate_step

    failed = plan.failed_devices()
    if not failed:
        raise FaultPlanError("elastic re-planning needs at least one "
                             "fail-stop device failure in the plan")
    new_p = p - len(failed)
    if new_p < 1:
        raise FaultPlanError(
            f"all {p} devices failed; no survivors to re-plan on")

    degraded = simulate_step(graph, strategy, machine, p, faults=plan)
    assert degraded.baseline_step_time is not None

    space = ConfigSpace.build(graph, new_p, mode=mode)
    tables = CostModel(machine).build_tables(graph, space)
    result, resilience = resilient_find_best_strategy(
        graph, space, tables, memory_budget=memory_budget)
    replanned = simulate_step(graph, result.strategy, machine, new_p)

    # Work lost to the first fail-stop: everything since the last
    # checkpoint (expected mid-interval hit), or — without a checkpoint
    # policy — just the partial step the failure interrupted.
    resolved = plan.resolve(degraded.baseline_step_time)
    first_failure = min(f.time for f in resolved.device_failures)
    if policy is not None:
        lost = policy.expected_lost_work(degraded.baseline_step_time)
        restore = policy.restore_time
    else:
        lost = first_failure
        restore = 0.0

    return ElasticReplanReport(
        failed_devices=failed,
        old_p=p,
        new_p=new_p,
        strategy=result.strategy,
        healthy_step_time=degraded.baseline_step_time,
        degraded_step_time=degraded.step_time,
        replanned_step_time=replanned.step_time,
        search_elapsed=result.elapsed,
        restore_time=restore,
        lost_work=lost,
        resilience=resilience,
    )
