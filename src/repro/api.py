"""Stable high-level API for the PaSE reproduction.

Three concepts cover the common workflows:

`Problem`
    A bound problem instance — computation graph, configuration space,
    machine, and device count.  Build one from the benchmark zoo with
    :meth:`Problem.from_benchmark`, or wrap your own `CompGraph`.

`search`
    Run the full hardened search pipeline (table build → optional
    reduction → DP or baseline, optionally resilient) and return a
    `RunOutcome`.  All execution knobs — budgets, cancellation,
    journaling, observability — travel in a single optional
    `RunContext`.

`simulate`
    Price a strategy on the discrete-event cluster simulator and return
    a `SimulationReport`.

Quickstart::

    from repro.api import Problem, RunContext, search, simulate

    prob = Problem.from_benchmark("alexnet", p=8)
    outcome = search(prob)                       # tensorized DP
    print(outcome.result.cost)
    report = simulate(prob, outcome.result)      # step time / throughput
    print(report.throughput)

    # With observability:
    from repro.obs import Metrics, Tracer
    ctx = RunContext(tracer=Tracer("run.trace.jsonl"), metrics=Metrics())
    outcome = search(prob, ctx=ctx)
    ctx.metrics.dump("run.metrics.json")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .core.configs import ConfigSpace
from .core.costmodel import CostModel
from .core.exceptions import SearchResourceError
from .core.graph import CompGraph
from .core.machine import GTX1080TI, MachineSpec
from .core.strategy import FrontierPoint, SearchResult, Strategy
from .runtime.context import RunContext
from .runtime.run import RunOutcome, execute_search

__all__ = ["Problem", "RunContext", "RunOutcome", "FrontierPoint",
           "search", "select_point", "simulate"]


@dataclass(frozen=True)
class Problem:
    """One bound strategy-search problem instance.

    Attributes
    ----------
    graph:
        The computation graph to parallelize.
    space:
        Per-node configuration space (determines ``p`` and the
        enumeration mode).
    machine:
        Hardware model used for costs and simulation.
    """

    graph: CompGraph
    space: ConfigSpace
    machine: MachineSpec = GTX1080TI

    @classmethod
    def from_benchmark(cls, name: str, p: int, *,
                       machine: MachineSpec = GTX1080TI,
                       mode: str = "pow2") -> "Problem":
        """Instantiate a zoo benchmark (``repro.models.BENCHMARKS``).

        ``mode`` picks the configuration enumeration ("pow2",
        "divisors", or "all"; paper Section II uses powers of two).
        """
        from .models import BENCHMARKS

        try:
            factory = BENCHMARKS[name]
        except KeyError:
            raise ValueError(
                f"unknown benchmark {name!r}; expected one of "
                f"{sorted(BENCHMARKS)}") from None
        graph = factory()
        return cls(graph=graph,
                   space=ConfigSpace.build(graph, p, mode=mode),
                   machine=machine)

    @classmethod
    def from_graph(cls, graph: CompGraph, p: int, *,
                   machine: MachineSpec = GTX1080TI,
                   mode: str = "pow2") -> "Problem":
        """Bind a hand-built `CompGraph` to ``p`` devices."""
        return cls(graph=graph,
                   space=ConfigSpace.build(graph, p, mode=mode),
                   machine=machine)

    @property
    def p(self) -> int:
        """Device count the configuration space was built for."""
        return self.space.p

    def cost_model(self) -> CostModel:
        return CostModel(self.machine)

    def fingerprint(self, *, method: str = "ours", seed: int = 0,
                    reduce: "bool | str" = False, resilient: bool = False,
                    memory_budget: int | None = None,
                    order: Sequence[str] | None = None,
                    objective: str = "cost") -> str:
        """Stable content hash of one *(problem, search parameters)* cell.

        The sha256 hex digest of the canonical run fingerprint
        (`repro.runtime.run.run_fingerprint`) — the same key the
        crash-safe journal validates on ``--resume`` and the serve
        daemon coalesces and caches on.  It covers everything the
        search's **answer** depends on:

        * the computation graph (every node's op descriptor and every
          edge), the machine model, and the enumerated configuration
          space (``tables_digest``);
        * the search parameters: ``method``, ``seed``, the resolved
          ``reduce`` mode (plus the auto-bypass ratio when ``auto``),
          ``resilient``, the DP ``memory_budget``, and any caller
          ``order``;
        * the canonical ``objective`` — but only for frontier runs
          (fingerprint v3).  ``objective="cost"`` hashes the exact v2
          dict this method always hashed, so every pre-existing journal
          resume key and serve coalesce/cache key stays valid.

        Deliberately excluded: wall-clock deadlines, jobs/cache/kernel
        knobs, and the observability pair — those change how fast the
        answer arrives, not what it is.  Two problems with equal
        fingerprints return bit-identical `SearchResult`\\ s, which is
        exactly what makes request coalescing and cross-request result
        caching sound.
        """
        import hashlib
        import json

        from .core.dp import DEFAULT_MEMORY_BUDGET
        from .runtime.run import run_fingerprint

        fp = run_fingerprint(
            self.graph, self.space, self.cost_model(), method=method,
            seed=seed, reduce=reduce, resilient=resilient,
            memory_budget=(DEFAULT_MEMORY_BUDGET if memory_budget is None
                           else memory_budget),
            order=order, objective=objective)
        return hashlib.sha256(
            json.dumps(fp, sort_keys=True).encode()).hexdigest()


def search(problem: Problem, *,
           method: str = "ours",
           seed: int = 0,
           order: Sequence[str] | None = None,
           reduce: bool = False,
           objective: str = "cost",
           resilient: bool = False,
           resume: bool = False,
           ctx: RunContext | None = None) -> RunOutcome:
    """Search ``problem`` for its best parallelization strategy.

    Thin veneer over `repro.runtime.execute_search`: same semantics,
    same exceptions (`SearchResourceError`, `DeadlineExceededError`,
    `RunInterrupted`, ...), same journal/resume behavior — the
    `Problem` supplies the instance and the optional `RunContext`
    supplies every execution knob (budget, cancellation, journal,
    tracer, metrics, jobs, cache).

    ``objective="frontier"`` (or ``"frontier:eps=<float>"``) returns the
    full (cost, peak-bytes) Pareto frontier in ``outcome.result
    .frontier`` with ``strategy``/``cost`` its min-cost point —
    bit-identical to the scalar optimum.  ``objective="cost"`` (default)
    is the scalar pipeline, unchanged; its ``.frontier`` is a
    synthesized length-1 tuple, so downstream code can read
    ``.frontier`` uniformly.  Pick a deployable point under a device
    memory cap with `select_point`.
    """
    return execute_search(problem.graph, problem.space, problem.machine,
                          method=method, seed=seed, order=order,
                          reduce=reduce, objective=objective,
                          resilient=resilient, resume=resume, ctx=ctx)


def select_point(frontier: "Sequence[FrontierPoint]",
                 memory_budget: int | float | None) -> FrontierPoint:
    """The min-cost frontier point whose ``peak_bytes`` fits the budget.

    ``memory_budget=None`` (no cap) returns the min-cost point.  When no
    point fits, raises `SearchResourceError` carrying the smallest
    frontier footprint as ``requested_bytes`` — the caller knows exactly
    how much memory the cheapest feasible strategy would need.
    """
    if not frontier:
        raise ValueError("select_point: empty frontier")
    if memory_budget is None:
        return min(frontier, key=lambda pt: (pt.cost, pt.peak_bytes))
    fitting = [pt for pt in frontier
               if pt.peak_bytes <= float(memory_budget)]
    if not fitting:
        tightest = min(pt.peak_bytes for pt in frontier)
        raise SearchResourceError(
            f"no frontier point fits memory_budget={int(memory_budget)} "
            f"bytes; the smallest frontier footprint is "
            f"{tightest:.0f} bytes",
            requested_bytes=int(tightest),
            budget_bytes=int(memory_budget))
    return min(fitting, key=lambda pt: (pt.cost, pt.peak_bytes))


def simulate(problem: Problem,
             strategy: "Strategy | SearchResult | FrontierPoint", *,
             efficiency: float | None = None,
             batch: int | None = None,
             keep_trace: bool = False,
             faults=None):
    """Simulate one training step of ``strategy`` on ``problem``.

    Accepts a bare `Strategy`, a `SearchResult` (its ``.strategy`` is
    used), or a `FrontierPoint` straight off a frontier — so both
    ``simulate(prob, search(prob).result)`` and ``simulate(prob,
    select_point(outcome.result.frontier, budget))`` compose directly.
    Returns the simulator's `SimulationReport`.
    """
    from .cluster import simulate_step

    if isinstance(strategy, (SearchResult, FrontierPoint)):
        strategy = strategy.strategy
    kwargs: dict = {"batch": batch, "keep_trace": keep_trace,
                    "faults": faults}
    if efficiency is not None:
        kwargs["efficiency"] = efficiency
    return simulate_step(problem.graph, strategy, problem.machine,
                         problem.p, **kwargs)
