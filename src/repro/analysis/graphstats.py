"""Structural analysis of computation graphs (paper Section III-C, Fig. 5).

Reproduces the quantities the paper uses to motivate GENERATESEQ: degree
distribution of the graph, per-vertex configuration counts for different
device counts, and the dependent-set profiles of breadth-first vs
GENERATESEQ orderings (with the resulting ``K^{M+1}`` combination bounds).
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np

from ..core.configs import ConfigSpace
from ..core.graph import CompGraph
from ..core.sequencer import SequencedGraph, breadth_first_seq, generate_seq

__all__ = [
    "degree_histogram",
    "config_count_stats",
    "dependent_set_profile",
    "section_3c_report",
]


def degree_histogram(graph: CompGraph) -> dict[int, int]:
    """Undirected degree -> node count."""
    return dict(sorted(Counter(graph.degree(n) for n in graph.node_names).items()))


def config_count_stats(graph: CompGraph, p: int, *, mode: str = "pow2") -> dict[str, float]:
    """Min/median/max per-node configuration counts (the paper's K range)."""
    space = ConfigSpace.build(graph, p, mode=mode)
    counts = np.array([space.size(n) for n in graph.node_names])
    return {
        "p": p,
        "k_min": int(counts.min()),
        "k_median": float(np.median(counts)),
        "k_max": int(counts.max()),
    }


def dependent_set_profile(graph: CompGraph, order: Sequence[str]) -> dict[str, float]:
    """Dependent-set sizes along one ordering."""
    seq = SequencedGraph.build(graph, order)
    sizes = np.array([len(d) for d in seq.dep])
    return {
        "max": int(sizes.max(initial=0)),
        "mean": float(sizes.mean()) if sizes.size else 0.0,
        "count_ge_3": int((sizes >= 3).sum()),
    }


def section_3c_report(graph: CompGraph, *, ps: Sequence[int] = (8, 64),
                      mode: str = "pow2") -> dict[str, object]:
    """All Section III-C quantities for one graph.

    Includes the per-vertex combination bound ``K^{M+1}`` for both
    orderings — the number whose explosion makes breadth-first DP
    infeasible on InceptionV3.
    """
    degrees = degree_histogram(graph)
    n_lo = sum(c for d, c in degrees.items() if d < 5)
    n_hi = sum(c for d, c in degrees.items() if d >= 5)
    bf = dependent_set_profile(graph, breadth_first_seq(graph))
    gs = dependent_set_profile(graph, generate_seq(graph))
    configs = [config_count_stats(graph, p, mode=mode) for p in ps]
    k_small = configs[0]["k_max"]
    return {
        "nodes": len(graph),
        "edges": len(graph.edges),
        "nodes_degree_lt_5": n_lo,
        "nodes_degree_ge_5": n_hi,
        "configs": configs,
        "bf_max_dependent": bf["max"],
        "generateseq_max_dependent": gs["max"],
        "bf_combinations_bound": float(k_small) ** (bf["max"] + 1),
        "generateseq_combinations_bound": float(k_small) ** (gs["max"] + 1),
    }
