"""Per-device memory-footprint estimation for parallelization strategies.

Section II of the paper argues that minimizing the training-time objective
*indirectly* minimizes memory: per-device footprint is (i) parameter +
activation shards, which shrink with the layer's device count, plus (ii)
communication buffers, proportional to the communication volume the
objective already minimizes.  This module makes that claim measurable —
and `repro.core.configs.prune_configs_by_memory` turns it into a hard
constraint, rejecting configurations whose worst-device footprint exceeds
the device capacity (the reason pure data parallelism simply cannot train
large models, Section I).

The estimate per node and device:

* parameters: largest parameter shard (+ the same again for gradients and
  ``optimizer_state_factor`` x for momentum/Adam state);
* activations: input + output shards (training keeps activations for the
  backward pass);
* communication buffers: the layer's internal communication bytes plus its
  edge-transfer bytes under the strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.costmodel import CostModel
from ..core.graph import CompGraph
from ..core.machine import UNIT_BALANCE
from ..core.strategy import Strategy
from ..core.tensors import DTYPE_BYTES
from ..ops.base import OpSpec

__all__ = ["MemoryModel", "NodeMemory", "strategy_memory"]

#: Extra copies of every parameter shard held by the optimizer
#: (gradient + momentum for SGD-with-momentum).
DEFAULT_OPTIMIZER_STATE_FACTOR = 2.0


@dataclass(frozen=True)
class NodeMemory:
    """Worst-device memory bytes of one node under one configuration."""

    node: str
    params: float
    activations: float
    comm_buffers: float

    @property
    def total(self) -> float:
        return self.params + self.activations + self.comm_buffers


class MemoryModel:
    """Estimates worst-device memory per node, vectorized over configs."""

    def __init__(self, *, optimizer_state_factor: float =
                 DEFAULT_OPTIMIZER_STATE_FACTOR) -> None:
        self.optimizer_state_factor = optimizer_state_factor
        # Communication volumes reuse the cost model's byte accounting;
        # the machine balance is irrelevant for bytes, so unit balance.
        self._cm = CostModel(UNIT_BALANCE)

    def node_bytes(self, op: OpSpec, configs: np.ndarray) -> np.ndarray:
        """Worst-device bytes for each configuration ``[K, d] -> [K]``."""
        configs = np.asarray(configs, dtype=np.int64)
        params = np.zeros(configs.shape[:-1], dtype=np.float64)
        acts = np.zeros(configs.shape[:-1], dtype=np.float64)
        for spec in op.inputs.values():
            shard = spec.shard_volume(op, configs) * DTYPE_BYTES
            if spec.is_param:
                params += shard * (1.0 + self.optimizer_state_factor)
            else:
                acts += shard
        for spec in op.outputs.values():
            acts += spec.shard_volume(op, configs) * DTYPE_BYTES
        comm = self._cm.layer_comm_bytes(op, configs)
        return params + acts + comm

    def node_memory(self, graph: CompGraph, strategy: Strategy,
                    node: str) -> NodeMemory:
        op = graph.node(node)
        cfg = np.asarray(strategy[node], dtype=np.int64).reshape(1, -1)
        params = 0.0
        acts = 0.0
        for spec in op.inputs.values():
            shard = float(spec.shard_volume(op, cfg)[0]) * DTYPE_BYTES
            if spec.is_param:
                params += shard * (1.0 + self.optimizer_state_factor)
            else:
                acts += shard
        for spec in op.outputs.values():
            acts += float(spec.shard_volume(op, cfg)[0]) * DTYPE_BYTES
        comm = float(self._cm.layer_comm_bytes(op, cfg)[0])
        return NodeMemory(node=node, params=params, activations=acts,
                          comm_buffers=comm)


def strategy_memory(graph: CompGraph, strategy: Strategy, *,
                    optimizer_state_factor: float =
                    DEFAULT_OPTIMIZER_STATE_FACTOR) -> dict[str, NodeMemory]:
    """Per-node worst-device memory of a complete strategy.

    The per-device total is (approximately) the sum over nodes, since a
    training step keeps every layer's activations live until its backward
    pass.
    """
    mm = MemoryModel(optimizer_state_factor=optimizer_state_factor)
    return {n: mm.node_memory(graph, strategy, n) for n in graph.node_names}
