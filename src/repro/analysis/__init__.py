"""Graph/search analysis and report formatting (Tables I-II, Fig. 5/6)."""

from .graphstats import (
    config_count_stats,
    degree_histogram,
    dependent_set_profile,
    section_3c_report,
)
from .memory import MemoryModel, NodeMemory, strategy_memory
from .reporting import (
    format_bytes,
    format_frontier_plot,
    format_frontier_table,
    format_grid,
    format_reduction_stats,
    format_speedup_table,
    format_table_build_stats,
    format_time,
)

__all__ = [
    "MemoryModel",
    "NodeMemory",
    "config_count_stats",
    "degree_histogram",
    "dependent_set_profile",
    "format_bytes",
    "format_frontier_plot",
    "format_frontier_table",
    "format_grid",
    "format_reduction_stats",
    "format_speedup_table",
    "format_table_build_stats",
    "format_time",
    "section_3c_report",
    "strategy_memory",
]
