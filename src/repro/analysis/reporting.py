"""Plain-text table formatting for experiment reports."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_time", "format_grid", "format_speedup_table",
           "format_fault_table", "format_resilience_report",
           "format_replan_report", "format_table_build_stats",
           "format_reduction_stats", "format_run_report",
           "format_frontier_table", "format_frontier_plot",
           "format_bytes"]


def format_time(seconds: float | None) -> str:
    """Render seconds in the paper's Table I ``mins:secs.msecs`` format.

    ``None`` renders as ``OOM`` (resource-budget failures).
    """
    if seconds is None:
        return "OOM"
    mins, rem = divmod(max(seconds, 0.0), 60.0)
    return f"{int(mins)}:{rem:06.3f}"


def format_grid(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A padded, pipe-separated text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for j, row in enumerate(cells):
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if j == 0:
            lines.append("-+-".join("-" * w for w in widths))
    return "\n".join(lines)


def format_bytes(n: float) -> str:
    """Human-readable bytes (``1.50 GiB``), exact below 1 KiB."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.0f} {unit}" if unit == "B" \
                else f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_frontier_table(frontier: Sequence) -> str:
    """The Pareto frontier as a text table, one row per point.

    ``frontier`` is a sequence of `repro.core.strategy.FrontierPoint`
    in the search's native order (ascending cost / descending memory);
    the min-cost row — the scalar DP optimum — is marked.
    """
    if not frontier:
        return "frontier: empty"
    rows = []
    for i, pt in enumerate(frontier):
        rows.append([i, f"{pt.cost:.6e}", format_bytes(pt.peak_bytes),
                     "min-cost" if i == 0 else ""])
    return format_grid(["#", "cost (FLOP-eq)", "peak memory", ""], rows)


def format_frontier_plot(frontier: Sequence, *, width: int = 60,
                         height: int = 16) -> str:
    """ASCII scatter of the (cost, peak-bytes) frontier.

    Cost on the x axis, peak bytes on the y axis; ``*`` marks frontier
    points and ``o`` the min-cost point.  Degenerate (single-point or
    zero-range) frontiers collapse to a one-line summary rather than a
    misleading plot.
    """
    if not frontier:
        return "frontier: empty"
    costs = [pt.cost for pt in frontier]
    mems = [pt.peak_bytes for pt in frontier]
    c_lo, c_hi = min(costs), max(costs)
    m_lo, m_hi = min(mems), max(mems)
    if len(frontier) == 1 or c_hi <= c_lo or m_hi <= m_lo:
        return (f"frontier: {len(frontier)} point(s), cost {c_lo:.6e}, "
                f"peak {format_bytes(m_lo)}")
    grid = [[" "] * width for _ in range(height)]
    for pt in frontier:
        x = round((pt.cost - c_lo) / (c_hi - c_lo) * (width - 1))
        y = round((pt.peak_bytes - m_lo) / (m_hi - m_lo) * (height - 1))
        grid[height - 1 - y][x] = "*"
    x0 = round((frontier[0].cost - c_lo) / (c_hi - c_lo) * (width - 1))
    y0 = round((frontier[0].peak_bytes - m_lo) / (m_hi - m_lo) * (height - 1))
    grid[height - 1 - y0][x0] = "o"
    lines = [f"peak {format_bytes(m_hi)}"]
    lines += ["  |" + "".join(row) for row in grid]
    lines.append("  +" + "-" * width)
    lines.append(f"   cost {c_lo:.3e} .. {c_hi:.3e}, "
                 f"peak down to {format_bytes(m_lo)}   (o = min-cost)")
    return "\n".join(lines)


def format_table_build_stats(stats: Mapping[str, float]) -> str:
    """One-line summary of the cost-table construction phase.

    Accepts ``CostTables.build_stats`` (keys ``build_seconds``,
    ``cache_hit``, ``jobs``, ``cells``) or ``SearchResult.stats`` using
    the same keys under a ``table_`` prefix.
    """
    get = lambda k: stats.get(k, stats.get(f"table_{k}"))  # noqa: E731
    seconds = get("build_seconds")
    if seconds is None:
        return "cost tables: no build statistics"
    cells = get("cells")
    size = f", {cells / 1e6:.2f}M cells" if cells else ""
    if get("cache_hit"):
        return f"cost tables: {seconds:.3f}s (cache hit{size})"
    jobs = int(get("jobs") or 1)
    if jobs > 1:
        # The backend travels as a numeric code (build_stats is floats
        # only); see BACKEND_CODES in repro.core.costmodel.
        backend = {1.0: "threads", 2.0: "processes"}.get(
            get("backend"), "parallel")
        how = f"{backend} x{jobs}"
    else:
        how = "serial"
    note = " [DEGRADED: pool failed, serial fallback]" if get("degraded") \
        else ""
    return f"cost tables: {seconds:.3f}s ({how}{size}){note}"


def format_reduction_stats(stats: Mapping[str, float]) -> str:
    """One-line summary of the search-space reduction phase.

    Reads the ``reduction_*`` keys `repro.core.reduction.reduce_problem`
    reports through ``SearchResult.stats``; returns a disabled marker
    when they are absent (search ran without ``--reduce``) and a bypass
    marker when ``reduce="auto"`` predicted the plain DP to be cheaper
    than the reduction itself and skipped it.
    """
    if stats.get("reduction_bypassed"):
        return ("search-space reduction: bypassed (plain DP predicted "
                "cheaper; force with reduce='always')")
    seconds = stats.get("reduction_seconds")
    if seconds is None:
        return "search-space reduction: off"
    before = stats.get("reduction_cells_before") or 0.0
    removed = stats.get("reduction_cells_removed") or 0.0
    pct = f" ({100.0 * removed / before:.1f}% of table cells)" if before else ""
    return (f"search-space reduction: {seconds:.3f}s, "
            f"{int(stats.get('reduction_vertices_removed', 0))} vertices and "
            f"{int(stats.get('reduction_configs_removed', 0))} configs removed"
            f"{pct} in {int(stats.get('reduction_rounds', 0))} rounds")


def format_run_report(report) -> str:
    """Multi-line summary of a `repro.runtime.RunReport`.

    Shows how each pipeline phase ran (``journal`` = replayed from a
    resumed run's snapshot), every degradation event, and the overall
    verdict with the exit code the CLI maps the outcome to.  A healthy
    run reads ``completed with zero degradations``.
    """
    lines = []
    for ph in report.phases:
        lines.append(f"  {ph.name:10s} {ph.seconds:8.3f}s  {ph.status}")
    if report.degradations:
        lines.append("  degradations:")
        lines.extend(f"    - {d}" for d in report.degradations)
    verdict = {
        "ok": "completed with zero degradations" if not report.degradations
              else f"completed, {len(report.degradations)} degradation(s)",
        "deadline": "DEADLINE EXCEEDED",
        "interrupted": "INTERRUPTED (journal flushed; re-run with --resume)",
        "resource-error": "FAILED: resource budget exceeded",
    }.get(report.outcome, report.outcome)
    head = "run report"
    if report.resumed:
        head += " (resumed from journal)"
    tail = [f"{head}: {verdict} [exit code {report.exit_code}]"]
    if report.detail and report.outcome != "ok":
        tail.append(f"  reason: {report.detail}")
    if report.best_cost is not None and report.outcome != "ok":
        tail.append(f"  best cost so far: {report.best_cost:.6e}")
    if report.journal_path is not None:
        tail.append(f"  journal: {report.journal_path}")
    return "\n".join(lines + tail)


def format_fault_table(rows: Sequence[tuple[str, object]]) -> str:
    """Healthy-vs-faulted comparison, one row per method.

    ``rows`` pairs a method name with a faulted `SimulationReport`
    (``baseline_step_time`` set); faults' added delay is broken down by
    fault kind.
    """
    grid = []
    for method, rep in rows:
        by_fault: dict[str, float] = {}
        for e in rep.fault_events:
            by_fault[e.fault] = by_fault.get(e.fault, 0.0) + e.delay
        detail = ", ".join(f"{k}+{v * 1e3:.2f}ms"
                           for k, v in sorted(by_fault.items())) or "-"
        healthy = rep.baseline_step_time
        grid.append([
            method,
            f"{healthy * 1e3:.2f}" if healthy else "-",
            f"{rep.step_time * 1e3:.2f}",
            f"{rep.fault_slowdown:.2f}x",
            len(rep.fault_events),
            detail,
        ])
    return format_grid(
        ["method", "healthy ms", "faulted ms", "slowdown", "events", "delay by fault"],
        grid)


def format_resilience_report(report) -> str:
    """The retry chain of a resilient search as a text table."""
    rows = []
    for a in report.attempts:
        outcome = "ok" if a.ok else (a.error or "failed")
        rows.append([a.stage, a.detail, f"{a.elapsed:.3f}s", outcome])
    table = format_grid(["stage", "parameters", "elapsed", "outcome"], rows)
    verdict = ("completed after "
               f"{report.retries} degradation retr{'y' if report.retries == 1 else 'ies'}"
               if report.succeeded else "FAILED at every degradation rung")
    return f"{table}\nresilient search: {verdict}"


def format_replan_report(rep) -> str:
    """Degraded-vs-replanned summary for an `ElasticReplanReport`."""
    be = rep.breakeven_steps
    be_text = "never (degraded is no slower)" if be == float("inf") \
        else f"{be:.1f} steps"
    lines = [
        f"fail-stop on devices {list(rep.failed_devices)}: "
        f"p={rep.old_p} -> {rep.new_p} survivors",
        f"  healthy step   : {rep.healthy_step_time * 1e3:9.2f} ms",
        f"  degraded step  : {rep.degraded_step_time * 1e3:9.2f} ms "
        f"({rep.degraded_step_time / rep.healthy_step_time:.2f}x, keep old strategy)",
        f"  replanned step : {rep.replanned_step_time * 1e3:9.2f} ms "
        f"(new strategy on {rep.new_p} devices)",
        f"  recovery cost  : {rep.recovery_cost:9.3f} s "
        f"(restore {rep.restore_time:.3f} + lost work {rep.lost_work:.3f} "
        f"+ re-search {rep.search_elapsed:.3f})",
        f"  break-even     : {be_text}",
    ]
    return "\n".join(lines)


def format_speedup_table(
    data: Mapping[str, Mapping[int, Mapping[str, float]]],
    methods: Sequence[str],
) -> str:
    """Fig. 6-style table: per benchmark and device count, speedup over
    data parallelism per method."""
    rows = []
    for bench, by_p in data.items():
        for p, series in sorted(by_p.items()):
            rows.append([bench, p] + [f"{series.get(m, float('nan')):.2f}x"
                                      for m in methods])
    return format_grid(["benchmark", "p"] + list(methods), rows)
