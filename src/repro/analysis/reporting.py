"""Plain-text table formatting for experiment reports."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_time", "format_grid", "format_speedup_table"]


def format_time(seconds: float | None) -> str:
    """Render seconds in the paper's Table I ``mins:secs.msecs`` format.

    ``None`` renders as ``OOM`` (resource-budget failures).
    """
    if seconds is None:
        return "OOM"
    mins, rem = divmod(max(seconds, 0.0), 60.0)
    return f"{int(mins)}:{rem:06.3f}"


def format_grid(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A padded, pipe-separated text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for j, row in enumerate(cells):
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if j == 0:
            lines.append("-+-".join("-" * w for w in widths))
    return "\n".join(lines)


def format_speedup_table(
    data: Mapping[str, Mapping[int, Mapping[str, float]]],
    methods: Sequence[str],
) -> str:
    """Fig. 6-style table: per benchmark and device count, speedup over
    data parallelism per method."""
    rows = []
    for bench, by_p in data.items():
        for p, series in sorted(by_p.items()):
            rows.append([bench, p] + [f"{series.get(m, float('nan')):.2f}x"
                                      for m in methods])
    return format_grid(["benchmark", "p"] + list(methods), rows)
