"""PaSE — Parallelization Strategies for Efficient DNN Training.

A from-scratch reproduction of Elango, *PaSE* (IPDPS 2021): automatic
search for hybrid data+parameter parallelization strategies over DNN
computation graphs via a dependent-set-minimizing dynamic program, together
with the substrates its evaluation needs — an operator/model zoo, baseline
and expert strategy generators, a FlexFlow-style MCMC comparator, a greedy
device placer, and a discrete-event multi-node GPU cluster simulator.
"""

from . import api, core, obs, ops, resilience
from .api import Problem, search, simulate
from .core import (
    CompGraph,
    ConfigSpace,
    CostModel,
    CostTables,
    Dim,
    Edge,
    GTX1080TI,
    MachineSpec,
    PaseError,
    RTX2080TI,
    SearchResourceError,
    SearchResult,
    Strategy,
    TensorSpec,
    UNIT_BALANCE,
    brute_force_strategy,
    find_best_strategy,
    generate_seq,
    naive_bf_strategy,
)
from .runtime import RunContext

__version__ = "1.0.0"

__all__ = [
    "CompGraph",
    "ConfigSpace",
    "CostModel",
    "CostTables",
    "Dim",
    "Edge",
    "GTX1080TI",
    "MachineSpec",
    "PaseError",
    "Problem",
    "RTX2080TI",
    "RunContext",
    "SearchResourceError",
    "SearchResult",
    "Strategy",
    "TensorSpec",
    "UNIT_BALANCE",
    "__version__",
    "api",
    "brute_force_strategy",
    "core",
    "find_best_strategy",
    "generate_seq",
    "naive_bf_strategy",
    "obs",
    "ops",
    "resilience",
    "search",
    "simulate",
]
