"""Structured outcome of one hardened run, plus the CLI exit codes.

A `RunReport` answers, after any run — clean, degraded, interrupted, or
out of budget — exactly what happened: which phases ran (and which were
replayed from the journal), every silent-degradation event (pool worker
death, quarantined cache entries, resilience retries), and the best cost
known so far.  The acceptance bar for a healthy run is *zero* entries in
``degradations``.

Exit codes (documented in ``pase --help`` and the README):

====  =====================================================
code  meaning
====  =====================================================
0     success
1     unexpected internal error
2     usage error (argparse)
3     search resource budget exceeded (`SearchResourceError`)
4     cluster-simulation error (`SimulationError`)
5     wall-clock deadline exceeded (`DeadlineExceededError`)
6     interrupted by SIGINT/SIGTERM, journal flushed
      (`RunInterrupted`; resume with ``--resume``)
7     fleet sweep drained, but some tasks were quarantined
      after exhausting their retries (``pase sweep``)
====  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PhaseRecord", "RunReport", "EXIT_OK", "EXIT_ERROR",
           "EXIT_USAGE", "EXIT_RESOURCE", "EXIT_SIMULATION",
           "EXIT_DEADLINE", "EXIT_INTERRUPTED", "EXIT_QUARANTINED",
           "EXIT_CODES"]

EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2
EXIT_RESOURCE = 3
EXIT_SIMULATION = 4
EXIT_DEADLINE = 5
EXIT_INTERRUPTED = 6
EXIT_QUARANTINED = 7

#: Outcome label -> process exit code.
EXIT_CODES: dict[str, int] = {
    "ok": EXIT_OK,
    "resource-error": EXIT_RESOURCE,
    "deadline": EXIT_DEADLINE,
    "interrupted": EXIT_INTERRUPTED,
}


@dataclass(frozen=True)
class PhaseRecord:
    """One pipeline phase as it actually ran."""

    name: str                      # "tables", "reduction", "search"
    seconds: float
    status: str                    # "ok", "journal", "degraded", ...


@dataclass
class RunReport:
    """What one hardened run did, degraded, and left behind."""

    outcome: str = "ok"            # key of `EXIT_CODES`
    phases: list[PhaseRecord] = field(default_factory=list)
    degradations: list[str] = field(default_factory=list)
    resumed: bool = False
    journal_path: str | None = None
    best_cost: float | None = None
    detail: str | None = None      # e.g. the terminating error message

    @property
    def exit_code(self) -> int:
        return EXIT_CODES.get(self.outcome, EXIT_ERROR)

    @property
    def clean(self) -> bool:
        """True when nothing degraded anywhere in the run."""
        return self.outcome == "ok" and not self.degradations

    def add_phase(self, name: str, seconds: float,
                  status: str = "ok") -> None:
        self.phases.append(PhaseRecord(name, seconds, status))

    def degrade(self, message: str) -> None:
        self.degradations.append(message)

    def summary(self) -> str:
        from ..analysis.reporting import format_run_report

        return format_run_report(self)
