"""Wall-clock / memory budgets and cooperative cancellation.

FlexFlow's MCMC baseline is explicitly time-budgeted and TensorOpt frames
strategy search as running under resource constraints; PaSE's DP is exact
but its runtime must be just as predictable.  A `RunBudget` bounds one
run's wall-clock time and DP memory; a `Cancellation` token carries the
SIGINT/SIGTERM request from the signal handler to the working code.

Neither object preempts anything.  The pipeline polls them at
*cooperative checkpoints* — between table-build tasks, reduction rounds,
and DP vertices — via :func:`make_checkpoint`, so a run always stops at a
phase boundary with its journal consistent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..core.dp import DEFAULT_MEMORY_BUDGET
from ..core.exceptions import DeadlineExceededError, RunInterrupted

if TYPE_CHECKING:  # pragma: no cover
    from .journal import SearchJournal

__all__ = ["RunBudget", "Cancellation", "make_checkpoint"]


@dataclass
class RunBudget:
    """Resource envelope for one hardened run.

    Parameters
    ----------
    deadline:
        Wall-clock seconds the whole pipeline may take; ``None`` means
        unbounded.  Measured from :meth:`start` (called automatically by
        the first :meth:`check`).
    memory_budget:
        DP byte budget forwarded to `find_best_strategy` (Table I's
        "OOM" accounting).
    """

    deadline: float | None = None
    memory_budget: int = DEFAULT_MEMORY_BUDGET
    started: float | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline < 0:
            raise ValueError(f"deadline={self.deadline} must be >= 0")
        if self.memory_budget <= 0:
            raise ValueError(
                f"memory_budget={self.memory_budget} must be positive")

    def start(self) -> "RunBudget":
        """Anchor the deadline clock (idempotent)."""
        if self.started is None:
            self.started = time.perf_counter()
        return self

    def elapsed(self) -> float:
        if self.started is None:
            return 0.0
        return time.perf_counter() - self.started

    def remaining(self) -> float:
        """Seconds left, ``inf`` when unbounded (may go negative)."""
        if self.deadline is None:
            return float("inf")
        return self.deadline - self.elapsed()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, where: str = "") -> None:
        """Raise `DeadlineExceededError` once the deadline has passed."""
        self.start()
        if self.expired:
            raise DeadlineExceededError(
                f"run exceeded its {self.deadline:.3f}s deadline"
                + (f" at {where}" if where else ""),
                deadline_seconds=self.deadline,
                elapsed_seconds=self.elapsed(), where=where or None)


class Cancellation:
    """A sticky cancel flag set by signal handlers, polled by checkpoints.

    The handler only calls :meth:`set`; the pipeline raises
    `RunInterrupted` from :meth:`check` at its next cooperative
    checkpoint, which keeps every data structure (and the on-disk
    journal) consistent at the moment of unwinding.
    """

    def __init__(self) -> None:
        self._reason: str | None = None

    def set(self, reason: str) -> None:
        if self._reason is None:
            self._reason = reason

    @property
    def requested(self) -> bool:
        return self._reason is not None

    @property
    def reason(self) -> str | None:
        return self._reason

    def check(self, where: str = "") -> None:
        if self._reason is not None:
            raise RunInterrupted(
                f"run interrupted by {self._reason}"
                + (f" at {where}" if where else ""),
                signal_name=self._reason, where=where or None)


def make_checkpoint(budget: "RunBudget | None" = None,
                    cancellation: "Cancellation | None" = None,
                    journal: "SearchJournal | None" = None,
                    ) -> Callable[..., None]:
    """Build the cooperative checkpoint callable the pipeline threads
    through table construction, reduction, and the DP.

    Each call polls cancellation first (an interrupted run should report
    *interrupted*, not whichever deadline it also happened to cross),
    then the deadline, then snapshots progress into the journal
    (throttled internally, so calling per DP vertex is cheap).

    The callable accepts ``phase`` / ``step`` / ``total`` keywords, all
    optional, so call sites can attach as much context as they have.
    """

    def checkpoint(*, phase: str = "", step: int | None = None,
                   total: int | None = None) -> None:
        where = phase or "checkpoint"
        if step is not None:
            where = f"{phase}[{step}{'' if total is None else f'/{total}'}]"
        if cancellation is not None:
            cancellation.check(where)
        if budget is not None:
            budget.check(where)
        if journal is not None:
            journal.progress(phase=phase, step=step, total=total)

    return checkpoint
