"""`RunContext`: the one bundle replacing the loose runtime kwargs.

Before PR 5 every layer of the pipeline threaded up to seven keywords —
``jobs``, ``cache``, ``budget``, ``cancellation``, ``journal``,
``checkpoint``, plus the observability pair — through its signature.
`RunContext` bundles them: build one per run, hand it to
`execute_search` (or directly to `CostModel.build_tables` /
`find_best_strategy`), and every phase sees the same deadlines, journal,
tracer, and metrics.

The split between *explicit* and *ambient* is deliberate:

* knobs that change **behaviour** (budget, cancellation, journal, jobs,
  cache, checkpoint) travel only inside the context — nothing consults
  a global to decide how to compute;
* the observability pair changes **nothing**, so ``tracer``/``metrics``
  of ``None`` (the default) inherit whatever `repro.obs.activate`
  installed, letting un-plumbed helpers (baselines, experiment drivers)
  still land in the right trace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

from ..obs.profile import activate, metrics_of
from .budget import Cancellation, RunBudget, make_checkpoint

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.metrics import Metrics
    from ..obs.trace import Tracer
    from .journal import SearchJournal

__all__ = ["RunContext"]


@dataclass
class RunContext:
    """Everything one hardened run carries besides the problem itself.

    Parameters
    ----------
    budget:
        Wall-clock deadline + DP memory budget (`RunBudget`); ``None``
        means unbounded with the default memory budget.
    cancellation:
        Sticky SIGINT/SIGTERM token (pair with `trap_signals`).
    journal:
        Crash-safe `SearchJournal` for bit-identical ``--resume``.
    tracer, metrics:
        Observability pair.  ``None`` inherits the ambient pair
        installed by `repro.obs.activate` (no-ops by default); pass
        `repro.obs.NULL_TRACER` / `NULL_METRICS` to explicitly silence
        an ambient pair.
    jobs, cache:
        Table-construction parallelism and on-disk `TableCache`, as in
        `CostModel.build_tables`.  ``jobs`` accepts a worker count
        (``"auto"`` backend selection) or a backend spelling such as
        ``"serial"``, ``"threads:4"``, ``"processes:2"``.
    pool:
        Fleet worker management: ``"persistent"`` (reuse pre-forked
        workers across tasks) or ``"spawn"`` (one process per task
        attempt).  ``None`` defers to the supervisor's default.
    kernel:
        Compute backend for the hot search kernels
        (`repro.core.kernels`): ``"numpy"``, ``"numba"`` (graceful
        numpy fallback when not installed), or ``"auto"``.  ``None``
        inherits the process-wide selection (``--kernel`` /
        ``PASE_KERNEL``).
    checkpoint:
        Explicit cooperative-poll callable overriding the one composed
        from ``budget``/``cancellation``/``journal`` — used by code that
        already holds a composed checkpoint (e.g. the resilient ladder's
        legacy shim) and by tests injecting failures at exact steps.
    """

    budget: "RunBudget | None" = None
    cancellation: "Cancellation | None" = None
    journal: "SearchJournal | None" = None
    tracer: "Tracer | None" = None
    metrics: "Metrics | None" = None
    jobs: int | str | None = None
    cache: object | None = None
    pool: str | None = None
    kernel: str | None = None
    checkpoint: Callable[..., None] | None = None

    # -- derived accessors ---------------------------------------------------

    @property
    def memory_budget(self) -> int:
        from ..core.dp import DEFAULT_MEMORY_BUDGET

        if self.budget is None:
            return DEFAULT_MEMORY_BUDGET
        return self.budget.memory_budget

    def make_checkpoint(self) -> Callable[..., None] | None:
        """The cooperative poll the phases thread through their loops.

        Returns the explicit ``checkpoint`` override when set, else a
        `make_checkpoint` composition of budget → cancellation → journal
        — instrumented with the context's metrics (poll count + latency
        histogram) when a real registry is active — or ``None`` when
        there is nothing to poll.
        """
        if self.checkpoint is not None:
            return self.checkpoint
        if (self.budget is None and self.cancellation is None
                and self.journal is None):
            return None
        base = make_checkpoint(self.budget, self.cancellation, self.journal)
        metrics = metrics_of(self)
        if not metrics.enabled:
            return base
        polls = metrics.counter(
            "checkpoint_polls_total", "cooperative checkpoint polls")
        latency = metrics.histogram(
            "checkpoint_poll_seconds", "checkpoint poll latency (seconds)")

        def instrumented(**kwargs) -> None:
            t0 = time.perf_counter()
            try:
                base(**kwargs)
            finally:
                polls.inc()
                latency.observe(time.perf_counter() - t0)

        return instrumented

    def observe(self):
        """Install this context's tracer/metrics as the ambient pair.

        ``None`` slots leave the current ambient value in place (see
        `repro.obs.activate`), so a default context is a no-op scope.
        """
        return activate(tracer=self.tracer, metrics=self.metrics)

    def with_overrides(self, **changes) -> "RunContext":
        """Dataclass ``replace`` spelled as a method, for call sites that
        need a one-field variant (e.g. swapping the cache for a
        journal's embedded store)."""
        return replace(self, **changes)

    def started(self) -> "RunContext":
        """Anchor the budget's deadline clock (idempotent); returns self."""
        if self.budget is not None:
            self.budget.start()
        return self
