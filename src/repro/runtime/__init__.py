"""Hardened execution runtime for the strategy-search pipeline.

Wraps table build → reduction → DP / resilient ladder in a wall-clock +
memory `RunBudget` with cooperative cancellation, crash-safe journaling
(`SearchJournal`) for bit-identical resume, signal trapping, and a
structured `RunReport` with documented per-failure exit codes.
"""

from .budget import Cancellation, RunBudget, make_checkpoint
from .context import RunContext
from .journal import JOURNAL_VERSION, SearchJournal
from .report import (
    EXIT_CODES,
    EXIT_DEADLINE,
    EXIT_ERROR,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_QUARANTINED,
    EXIT_RESOURCE,
    EXIT_SIMULATION,
    EXIT_USAGE,
    PhaseRecord,
    RunReport,
)
from .run import RunOutcome, execute_search, run_fingerprint
from .signals import trap_signals

__all__ = [
    "Cancellation",
    "RunBudget",
    "RunContext",
    "make_checkpoint",
    "SearchJournal",
    "JOURNAL_VERSION",
    "PhaseRecord",
    "RunReport",
    "RunOutcome",
    "execute_search",
    "run_fingerprint",
    "trap_signals",
    "EXIT_CODES",
    "EXIT_OK",
    "EXIT_ERROR",
    "EXIT_USAGE",
    "EXIT_RESOURCE",
    "EXIT_SIMULATION",
    "EXIT_DEADLINE",
    "EXIT_INTERRUPTED",
    "EXIT_QUARANTINED",
]
