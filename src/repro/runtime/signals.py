"""SIGINT/SIGTERM trapping for hardened runs.

The handler installed by :func:`trap_signals` never does work itself — it
flags the run's `Cancellation` token and returns, so the pipeline unwinds
via `RunInterrupted` at its next cooperative checkpoint with the journal
consistent.  A *second* signal of either kind means the user wants out
now: the original Python handler is restored and re-invoked, producing
the ordinary `KeyboardInterrupt` / termination behavior.

Registrations **compose**: entering ``trap_signals`` while another
``trap_signals`` scope is already active (e.g. the serve daemon's drain
handler wrapping a journalled search's handler) chains rather than
replaces — one delivered signal flags *every* nested scope's token, so
both the inner search unwinds and the outer server starts draining.
Before this, the inner registration silently shadowed the outer one
until its ``finally`` restored it.
"""

from __future__ import annotations

import contextlib
import signal
import threading
from typing import Iterator

from .budget import Cancellation

__all__ = ["trap_signals"]


@contextlib.contextmanager
def trap_signals(cancellation: Cancellation,
                 signums: tuple[int, ...] = (signal.SIGINT, signal.SIGTERM),
                 ) -> Iterator[Cancellation]:
    """Route the first SIGINT/SIGTERM into ``cancellation``.

    Signals can only be trapped from the main thread; elsewhere (e.g. a
    worker thread running a search) this degrades to a no-op so library
    callers never crash on installation.
    """
    if threading.current_thread() is not threading.main_thread():
        yield cancellation
        return

    previous = {}

    def _handler(signum, frame):
        name = signal.Signals(signum).name
        if cancellation.requested:
            # Second request: restore default behavior and re-raise.
            for num, old in previous.items():
                signal.signal(num, old)
            signal.raise_signal(signum)
            return
        cancellation.set(name)
        # Chain to an enclosing trap_signals scope (marked handlers
        # only — never SIG_DFL/SIG_IGN or foreign handlers): nested
        # registrations each flag their own token off one delivery.
        outer = previous.get(signum)
        if getattr(outer, "_pase_trap", False):
            outer(signum, frame)

    _handler._pase_trap = True  # type: ignore[attr-defined]

    for num in signums:
        previous[num] = signal.signal(num, _handler)
    try:
        yield cancellation
    finally:
        for num, old in previous.items():
            with contextlib.suppress(ValueError, OSError):
                signal.signal(num, old)
