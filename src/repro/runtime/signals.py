"""SIGINT/SIGTERM trapping for hardened runs.

The handler installed by :func:`trap_signals` never does work itself — it
flags the run's `Cancellation` token and returns, so the pipeline unwinds
via `RunInterrupted` at its next cooperative checkpoint with the journal
consistent.  A *second* signal of either kind means the user wants out
now: the original Python handler is restored and re-invoked, producing
the ordinary `KeyboardInterrupt` / termination behavior.
"""

from __future__ import annotations

import contextlib
import signal
import threading
from typing import Iterator

from .budget import Cancellation

__all__ = ["trap_signals"]


@contextlib.contextmanager
def trap_signals(cancellation: Cancellation,
                 signums: tuple[int, ...] = (signal.SIGINT, signal.SIGTERM),
                 ) -> Iterator[Cancellation]:
    """Route the first SIGINT/SIGTERM into ``cancellation``.

    Signals can only be trapped from the main thread; elsewhere (e.g. a
    worker thread running a search) this degrades to a no-op so library
    callers never crash on installation.
    """
    if threading.current_thread() is not threading.main_thread():
        yield cancellation
        return

    previous = {}

    def _handler(signum, frame):
        name = signal.Signals(signum).name
        if cancellation.requested:
            # Second request: restore default behavior and re-raise.
            for num, old in previous.items():
                signal.signal(num, old)
            signal.raise_signal(signum)
            return
        cancellation.set(name)

    for num in signums:
        previous[num] = signal.signal(num, _handler)
    try:
        yield cancellation
    finally:
        for num, old in previous.items():
            with contextlib.suppress(ValueError, OSError):
                signal.signal(num, old)
