"""The hardened execution runtime: one entry point for the full pipeline.

:func:`execute_search` wraps **table build → (reduction) → DP / resilient
ladder / baseline** in a `RunBudget` with cooperative cancellation
checkpoints, optional crash-safe journaling, and structured reporting.
Every failure mode degrades instead of crashing:

* a pool worker dying mid `CostModel.build_tables` retries with backoff,
  then falls back bit-identically to the serial path (recorded, never
  silent);
* corrupt table-cache entries are quarantined and rebuilt;
* SIGINT/SIGTERM and deadline expiry unwind at the next checkpoint with
  the journal flushed, so ``--resume`` replays the run bit-identically —
  tables come back from the journal's content-addressed store and the DP
  is deterministic, so an interrupted-then-resumed run returns exactly
  the strategy and cost an uninterrupted run would.

All run-scoped knobs travel in one `RunContext` (``ctx=``): budget,
cancellation, journal, jobs, cache, and the observability pair.  The
context's tracer/metrics are activated for the whole pipeline, so every
phase — including baselines dispatched through the experiment machinery
— lands in the same trace; the span names mirror the `RunReport` phase
names (``run`` → ``tables`` / ``search``), with the deeper structure
(``tables.build``, ``reduction.round``, ``dp.vertex``,
``resilience.attempt``, ``baseline.*``) nested beneath them.

The terminating exception of an unsuccessful run carries the structured
`RunReport` as ``err.run_report`` so the CLI can print what happened and
exit with the documented per-failure code.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from .._compat import UNSET, reject_ctx_conflict, warn_deprecated_kwargs
from ..core.configs import ConfigSpace
from ..core.costmodel import CostModel, CostTables
from ..core.dp import find_best_strategy
from ..core.exceptions import (
    DeadlineExceededError,
    JournalError,
    RunInterrupted,
    SearchResourceError,
)
from ..core import kernels
from ..core.graph import CompGraph
from ..core.machine import MachineSpec
from ..core.strategy import SearchResult
from ..obs.profile import metrics_of, tracer_of
from .budget import Cancellation, RunBudget
from .context import RunContext
from .journal import SearchJournal
from .report import RunReport

__all__ = ["RunOutcome", "execute_search", "run_fingerprint"]

#: Fingerprint schema version (bump when fields change — a resume across
#: versions must fail loudly, not silently re-interpret old state).
#: v2: ``reduce`` became the resolved mode string ("off"/"auto"/
#: "always") and ``reduce_bypass_ratio`` records the auto-bypass
#: threshold — both can change which (equal-cost) strategy is returned,
#: so resuming across them must not silently mix paths.
#: v3: frontier runs add an ``objective`` key (and their table digest
#: covers the memory tables).  Scalar runs **stay on v2** and emit the
#: exact pre-frontier dict — cached journals and serve coalesce keys
#: must not churn for anyone not using the new objective.
_FINGERPRINT_VERSION = 2
_FINGERPRINT_VERSION_FRONTIER = 3


@dataclass
class RunOutcome:
    """Everything a successful hardened run produced."""

    result: SearchResult
    report: RunReport
    tables: CostTables | None = None
    resilience: "object | None" = None  # ResilienceReport when --resilient


def run_fingerprint(graph: CompGraph, space: ConfigSpace, model: CostModel,
                    *, method: str, seed: int, reduce: "bool | str",
                    resilient: bool, memory_budget: int,
                    order: Sequence[str] | None,
                    objective: "str | object" = "cost") -> dict:
    """Canonical description of everything the run's *answer* depends on.

    Built on `table_digest` (graph, machine, configuration space, cost
    model) plus the search parameters.  Two runs with equal fingerprints
    return bit-identical results, which is exactly the property that
    makes journal resume sound.  Deliberately excludes budgets' wall
    clocks, jobs/cache knobs, and the kernel backend — those change how
    fast the answer arrives, not what it is (backends are bit-identical
    by construction, pinned by the kernel parity tests).  The
    observability pair is excluded for the same reason: tracing a run
    must never change what it computes.  The reduce *mode* and the
    auto-bypass ratio are included: reduced and plain searches return
    equal costs but may pick different equal-cost strategies.

    ``objective="cost"`` (however spelled) emits the byte-identical v2
    dict this function always produced; frontier objectives emit v3 with
    the canonical objective string and a memory-covering table digest.
    """
    from ..core.dp import _bypass_ratio, _resolve_reduce_mode
    from ..core.frontier import parse_objective
    from ..core.tablecache import table_digest

    obj = parse_objective(objective)
    mode = _resolve_reduce_mode(reduce)
    fp = {
        "version": (_FINGERPRINT_VERSION_FRONTIER if obj.is_frontier
                    else _FINGERPRINT_VERSION),
        "tables_digest": table_digest(graph, space, model,
                                      memory=obj.is_frontier),
        "method": method,
        "seed": int(seed),
        "reduce": mode,
        "reduce_bypass_ratio": _bypass_ratio(None) if mode == "auto" else None,
        "resilient": bool(resilient),
        "memory_budget": int(memory_budget),
        "order": None if order is None else list(order),
        "p": int(space.p),
        "mode": space.mode,
        "machine": model.machine.name,
    }
    if obj.is_frontier:
        fp["objective"] = obj.canonical
    return fp


def execute_search(
    graph: CompGraph,
    space: ConfigSpace,
    machine: MachineSpec | None = None,
    *,
    model: CostModel | None = None,
    method: str = "ours",
    seed: int = 0,
    order: Sequence[str] | None = None,
    reduce: "bool | str" = False,
    objective: str = "cost",
    resilient: bool = False,
    ctx: RunContext | None = None,
    resume: bool = False,
    jobs: int | None = UNSET,
    cache: "object | None" = UNSET,
    budget: RunBudget | None = UNSET,
    cancellation: Cancellation | None = UNSET,
    journal: SearchJournal | None = UNSET,
) -> RunOutcome:
    """Run the full search pipeline under the hardened runtime.

    Parameters
    ----------
    graph, space, machine / model:
        The problem instance; pass either the `MachineSpec` or a
        pre-configured `CostModel` (ablation flags).
    method:
        ``"ours"`` runs the tensorized DP (optionally ``resilient`` /
        ``reduce`` / with a caller ``order``); anything else dispatches
        to the matching baseline via `repro.experiments.common`.
    objective:
        ``"cost"`` (default) keeps the scalar pipeline exactly as
        before — same code path, v2 fingerprint, bit-identical results.
        ``"frontier"`` / ``"frontier:eps=<float>"`` runs the
        multi-objective DP: the tables phase also builds per-node memory
        tables (same jobs/cache/shm data plane) and the result's
        ``.frontier`` carries the full (cost, peak-bytes) Pareto set.
        Either way ``RunOutcome.result.frontier`` is non-empty — scalar
        runs get a synthesized length-1 frontier holding their optimum.
    ctx:
        The run's `RunContext`: budget (deadline + DP memory),
        cancellation token (pair with `trap_signals`), crash-safe
        journal, table-build ``jobs``/``cache``, and the tracer/metrics
        pair activated around the whole pipeline.  When the context
        carries a journal its embedded table store is used instead of
        ``ctx.cache``, so resumes find the interrupted build's tables.
    resume:
        Requires a journal whose fingerprint matches this run; a journal
        holding a finished search replays it without recomputing
        anything (zero-duration ``tables``/``search`` spans are still
        emitted so traces always cover every reported phase).
    jobs, cache, budget, cancellation, journal:
        **Deprecated** loose spellings of the same `RunContext` fields
        (bit-identical behaviour, `DeprecationWarning`); mixing them
        with ``ctx=`` is an error.

    Returns a `RunOutcome`; on failure raises the underlying error
    (`DeadlineExceededError`, `RunInterrupted`, `SearchResourceError`)
    with the structured `RunReport` attached as ``err.run_report`` and
    the journal flushed.
    """
    legacy = [name for name, val in
              (("jobs", jobs), ("cache", cache), ("budget", budget),
               ("cancellation", cancellation), ("journal", journal))
              if val is not UNSET]
    if legacy:
        if ctx is not None:
            reject_ctx_conflict("execute_search", legacy)
        warn_deprecated_kwargs("execute_search", legacy)
        ctx = RunContext(
            budget=None if budget is UNSET else budget,
            cancellation=None if cancellation is UNSET else cancellation,
            journal=None if journal is UNSET else journal,
            jobs=None if jobs is UNSET else jobs,
            cache=None if cache is UNSET else cache)
    if ctx is None:
        ctx = RunContext()
    from ..core.frontier import parse_objective

    obj = parse_objective(objective)  # validate before any work
    if model is None:
        if machine is None:
            raise ValueError("pass either machine= or model=")
        model = CostModel(machine)
    machine = model.machine
    if ctx.budget is None or ctx.cancellation is None:
        ctx = ctx.with_overrides(
            budget=ctx.budget or RunBudget(),
            cancellation=ctx.cancellation or Cancellation())
    ctx.started()
    run_budget = ctx.budget
    journal_obj = ctx.journal
    tracer = tracer_of(ctx)
    metrics = metrics_of(ctx)
    report = RunReport(
        journal_path=None if journal_obj is None else str(journal_obj.path))

    fingerprint = run_fingerprint(
        graph, space, model, method=method, seed=seed, reduce=reduce,
        resilient=resilient, memory_budget=run_budget.memory_budget,
        order=order, objective=obj)

    with ctx.observe(), kernels.use(ctx.kernel), tracer.span(
            "run", method=method, p=space.p, reduce=str(reduce),
            resilient=resilient, resume=resume) as run_span:
        if journal_obj is None:
            if resume:
                raise JournalError("--resume requires a journal "
                                   "(pass a RunContext journal / "
                                   "--journal-dir)")
        else:
            report.resumed = journal_obj.open(fingerprint, resume=resume)
            if report.resumed:
                prior = journal_obj.load_result()
                if prior is not None:
                    # The journalled search finished: replay it verbatim,
                    # with zero-work phase spans so the trace still covers
                    # everything the report records.
                    for ev in journal_obj.events:
                        report.degrade(f"{ev['kind']}: {ev['detail']}")
                    for name in ("tables", "search"):
                        with tracer.span(name, replayed=True):
                            pass
                        report.add_phase(name, 0.0, "journal")
                    prior = _ensure_frontier(prior, graph, space)
                    report.best_cost = prior.cost
                    run_span.set(best_cost=prior.cost, replayed=True)
                    return RunOutcome(result=prior, report=report)

        phase = ["tables", time.perf_counter()]

        def _enter(name: str) -> float:
            phase[0] = name
            phase[1] = time.perf_counter()
            return phase[1]

        try:
            # -- phase 1: cost tables (journal store beats the user cache)
            _enter("tables")
            with tracer.span("tables"):
                tables_ctx = ctx
                if journal_obj is not None:
                    tables_ctx = ctx.with_overrides(
                        cache=journal_obj.table_cache())
                tables = model.build_tables(graph, space, ctx=tables_ctx,
                                            memory=obj.is_frontier)
                status = ("cache-hit"
                          if tables.build_stats.get("cache_hit") else "ok")
                if tables.build_stats.get("degraded"):
                    status = "degraded"
                    msg = ("table build fell back to the serial path after "
                           f"pool failure ({tables.degraded_reason})")
                    report.degrade(msg)
                    if journal_obj is not None:
                        journal_obj.event("table-build-degraded", msg)
                quarantined = getattr(tables_ctx.cache, "quarantined", 0)
                if quarantined:
                    msg = (f"quarantined {quarantined} corrupt table-cache "
                           f"entr{'y' if quarantined == 1 else 'ies'} "
                           "and rebuilt")
                    report.degrade(msg)
                    metrics.counter(
                        "table_cache_quarantined_total",
                        "corrupt table-cache entries quarantined").inc(
                            quarantined)
                    if journal_obj is not None:
                        journal_obj.event("cache-quarantine", msg)
            report.add_phase("tables", time.perf_counter() - phase[1], status)
            if journal_obj is not None:
                journal_obj.phase_done(
                    "tables", digest=fingerprint["tables_digest"],
                    degraded=bool(tables.build_stats.get("degraded")))

            # -- phase 2: the search itself -------------------------------
            _enter("search")
            resilience = None
            with tracer.span("search"):
                if method == "ours":
                    if resilient:
                        from ..resilience import resilient_find_best_strategy

                        result, resilience = resilient_find_best_strategy(
                            graph, space, tables, order=order,
                            memory_budget=run_budget.memory_budget,
                            search_fn=_reducing_search(reduce, obj), ctx=ctx)
                        if resilience.retries:
                            msg = ("resilient ladder degraded "
                                   f"{resilience.retries}x: "
                                   + ", ".join(resilience.degradations))
                            report.degrade(msg)
                            if journal_obj is not None:
                                journal_obj.event("search-degraded", msg)
                    else:
                        result = find_best_strategy(
                            graph, space, tables, order=order,
                            memory_budget=run_budget.memory_budget,
                            reduce=reduce, objective=obj.canonical, ctx=ctx)
                else:
                    result = _run_baseline(graph, space, tables, machine,
                                           method, seed, reduce)
            if "table_build_seconds" not in result.stats:
                result = result.with_stats(
                    **{f"table_{k}": float(v)
                       for k, v in tables.build_stats.items()})
            report.add_phase("search", time.perf_counter() - phase[1], "ok")
            report.best_cost = result.cost
            run_span.set(best_cost=result.cost)
            if journal_obj is not None:
                # Journal the raw result: scalar runs keep the exact
                # pre-frontier schema (their length-1 frontier is
                # synthesized, not stored).
                journal_obj.record_result(result)
            result = _ensure_frontier(result, graph, space, tables=tables)
            return RunOutcome(result=result, report=report, tables=tables,
                              resilience=resilience)

        except RunInterrupted as err:
            _finalize_failure(report, journal_obj, "interrupted", err,
                              phase[0], time.perf_counter() - phase[1])
            raise
        except DeadlineExceededError as err:
            _finalize_failure(report, journal_obj, "deadline", err,
                              phase[0], time.perf_counter() - phase[1])
            raise
        except SearchResourceError as err:
            _finalize_failure(report, journal_obj, "resource-error", err,
                              phase[0], time.perf_counter() - phase[1])
            raise


def _reducing_search(reduce: "bool | str", obj=None):
    """`find_best_strategy` with ``reduce``/``objective`` pre-bound,
    for the resilient ladder."""
    frontier = obj is not None and obj.is_frontier
    if not reduce and not frontier:
        return find_best_strategy
    from functools import partial

    kwargs = {}
    if reduce:
        kwargs["reduce"] = reduce
    if frontier:
        kwargs["objective"] = obj.canonical
    return partial(find_best_strategy, **kwargs)


def _ensure_frontier(result: SearchResult, graph: CompGraph,
                     space: ConfigSpace,
                     tables: CostTables | None = None) -> SearchResult:
    """Uniform ``.frontier`` access: scalar results gain a synthesized
    length-1 frontier holding their optimum (frontier runs already carry
    the full set — returned unchanged)."""
    if result.frontier:
        return result
    from dataclasses import replace

    from ..core.frontier import strategy_peak_bytes
    from ..core.strategy import FrontierPoint

    mem_tables = getattr(tables, "mem", None) if tables is not None else None
    peak = strategy_peak_bytes(graph, space, result.strategy,
                               mem_tables=mem_tables)
    point = FrontierPoint(cost=result.cost, peak_bytes=peak,
                          strategy=result.strategy)
    return replace(result, frontier=(point,))


def _run_baseline(graph: CompGraph, space: ConfigSpace, tables: CostTables,
                  machine: MachineSpec, method: str, seed: int,
                  reduce: bool) -> SearchResult:
    """Dispatch non-DP methods through the shared experiment machinery
    (baselines run between checkpoints; MCMC carries its own budget).
    The ambient tracer is already active, so the baselines' ``@profiled``
    spans land under this run's ``search`` span."""
    from ..experiments.common import BenchSetup, search_with

    setup = BenchSetup(name="runtime", graph=graph, p=space.p,
                       machine=machine, space=space, tables=tables)
    return search_with(setup, method, seed=seed, reduce=reduce)


def _finalize_failure(report: RunReport, journal: SearchJournal | None,
                      outcome: str, err: BaseException,
                      phase_name: str, phase_seconds: float) -> None:
    """Flush the journal, stamp the report, attach it to the error."""
    report.outcome = outcome
    report.detail = str(err)
    report.add_phase(phase_name, phase_seconds, outcome)
    if journal is not None:
        prior = journal.load_result()
        if prior is not None:
            report.best_cost = prior.cost
        journal.flush()
    err.run_report = report  # type: ignore[attr-defined]
