"""The hardened execution runtime: one entry point for the full pipeline.

:func:`execute_search` wraps **table build → (reduction) → DP / resilient
ladder / baseline** in a `RunBudget` with cooperative cancellation
checkpoints, optional crash-safe journaling, and structured reporting.
Every failure mode degrades instead of crashing:

* a pool worker dying mid `CostModel.build_tables` retries with backoff,
  then falls back bit-identically to the serial path (recorded, never
  silent);
* corrupt table-cache entries are quarantined and rebuilt;
* SIGINT/SIGTERM and deadline expiry unwind at the next checkpoint with
  the journal flushed, so ``--resume`` replays the run bit-identically —
  tables come back from the journal's content-addressed store and the DP
  is deterministic, so an interrupted-then-resumed run returns exactly
  the strategy and cost an uninterrupted run would.

The terminating exception of an unsuccessful run carries the structured
`RunReport` as ``err.run_report`` so the CLI can print what happened and
exit with the documented per-failure code.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from ..core.configs import ConfigSpace
from ..core.costmodel import CostModel, CostTables
from ..core.dp import find_best_strategy
from ..core.exceptions import (
    DeadlineExceededError,
    JournalError,
    RunInterrupted,
    SearchResourceError,
)
from ..core.graph import CompGraph
from ..core.machine import MachineSpec
from ..core.strategy import SearchResult
from .budget import Cancellation, RunBudget, make_checkpoint
from .journal import SearchJournal
from .report import RunReport

__all__ = ["RunOutcome", "execute_search", "run_fingerprint"]

#: Fingerprint schema version (bump when fields change — a resume across
#: versions must fail loudly, not silently re-interpret old state).
_FINGERPRINT_VERSION = 1


@dataclass
class RunOutcome:
    """Everything a successful hardened run produced."""

    result: SearchResult
    report: RunReport
    tables: CostTables | None = None
    resilience: "object | None" = None  # ResilienceReport when --resilient


def run_fingerprint(graph: CompGraph, space: ConfigSpace, model: CostModel,
                    *, method: str, seed: int, reduce: bool, resilient: bool,
                    memory_budget: int,
                    order: Sequence[str] | None) -> dict:
    """Canonical description of everything the run's *answer* depends on.

    Built on `table_digest` (graph, machine, configuration space, cost
    model) plus the search parameters.  Two runs with equal fingerprints
    return bit-identical results, which is exactly the property that
    makes journal resume sound.  Deliberately excludes budgets' wall
    clocks and jobs/cache knobs — those change how fast the answer
    arrives, not what it is.
    """
    from ..core.tablecache import table_digest

    return {
        "version": _FINGERPRINT_VERSION,
        "tables_digest": table_digest(graph, space, model),
        "method": method,
        "seed": int(seed),
        "reduce": bool(reduce),
        "resilient": bool(resilient),
        "memory_budget": int(memory_budget),
        "order": None if order is None else list(order),
        "p": int(space.p),
        "mode": space.mode,
        "machine": model.machine.name,
    }


def execute_search(
    graph: CompGraph,
    space: ConfigSpace,
    machine: MachineSpec | None = None,
    *,
    model: CostModel | None = None,
    method: str = "ours",
    seed: int = 0,
    order: Sequence[str] | None = None,
    reduce: bool = False,
    resilient: bool = False,
    jobs: int | None = None,
    cache: "object | None" = None,
    budget: RunBudget | None = None,
    cancellation: Cancellation | None = None,
    journal: SearchJournal | None = None,
    resume: bool = False,
) -> RunOutcome:
    """Run the full search pipeline under the hardened runtime.

    Parameters
    ----------
    graph, space, machine / model:
        The problem instance; pass either the `MachineSpec` or a
        pre-configured `CostModel` (ablation flags).
    method:
        ``"ours"`` runs the tensorized DP (optionally ``resilient`` /
        ``reduce`` / with a caller ``order``); anything else dispatches
        to the matching baseline via `repro.experiments.common`.
    jobs, cache:
        Table-construction parallelism and on-disk cache, as in
        `CostModel.build_tables`.  When a ``journal`` is given its
        embedded table store is used instead of ``cache``, so resumes
        find the interrupted build's tables.
    budget, cancellation:
        The run's `RunBudget` (deadline + DP memory) and `Cancellation`
        token (pair with `trap_signals` for SIGINT/SIGTERM handling).
    journal, resume:
        Crash-safe journaling.  ``resume=True`` requires a journal whose
        fingerprint matches this run; a journal holding a finished
        search replays it without recomputing anything.

    Returns a `RunOutcome`; on failure raises the underlying error
    (`DeadlineExceededError`, `RunInterrupted`, `SearchResourceError`)
    with the structured `RunReport` attached as ``err.run_report`` and
    the journal flushed.
    """
    if model is None:
        if machine is None:
            raise ValueError("pass either machine= or model=")
        model = CostModel(machine)
    machine = model.machine
    budget = (budget or RunBudget()).start()
    cancellation = cancellation or Cancellation()
    checkpoint = make_checkpoint(budget, cancellation, journal)
    report = RunReport(
        journal_path=None if journal is None else str(journal.path))

    fingerprint = run_fingerprint(
        graph, space, model, method=method, seed=seed, reduce=reduce,
        resilient=resilient, memory_budget=budget.memory_budget, order=order)

    if journal is None:
        if resume:
            raise JournalError("--resume requires a journal "
                               "(pass journal= / --journal-dir)")
    else:
        report.resumed = journal.open(fingerprint, resume=resume)
        if report.resumed:
            prior = journal.load_result()
            if prior is not None:
                # The journalled search finished: replay it verbatim.
                for ev in journal.events:
                    report.degrade(f"{ev['kind']}: {ev['detail']}")
                report.add_phase("tables", 0.0, "journal")
                report.add_phase("search", 0.0, "journal")
                report.best_cost = prior.cost
                return RunOutcome(result=prior, report=report)

    phase = ["tables", time.perf_counter()]

    def _enter(name: str) -> float:
        phase[0] = name
        phase[1] = time.perf_counter()
        return phase[1]

    try:
        # -- phase 1: cost tables (journal store beats the user cache) ----
        _enter("tables")
        eff_cache = cache if journal is None else journal.table_cache()
        tables = model.build_tables(graph, space, jobs=jobs,
                                    cache=eff_cache, checkpoint=checkpoint)
        status = "cache-hit" if tables.build_stats.get("cache_hit") else "ok"
        if tables.build_stats.get("degraded"):
            status = "degraded"
            msg = ("table build fell back to the serial path after pool "
                   f"failure ({tables.degraded_reason})")
            report.degrade(msg)
            if journal is not None:
                journal.event("table-build-degraded", msg)
        quarantined = getattr(eff_cache, "quarantined", 0)
        if quarantined:
            msg = (f"quarantined {quarantined} corrupt table-cache "
                   f"entr{'y' if quarantined == 1 else 'ies'} and rebuilt")
            report.degrade(msg)
            if journal is not None:
                journal.event("cache-quarantine", msg)
        report.add_phase("tables", time.perf_counter() - phase[1], status)
        if journal is not None:
            journal.phase_done("tables",
                               digest=fingerprint["tables_digest"],
                               degraded=bool(tables.build_stats.get(
                                   "degraded")))

        # -- phase 2: the search itself -----------------------------------
        _enter("search")
        resilience = None
        if method == "ours":
            if resilient:
                from ..resilience import resilient_find_best_strategy

                result, resilience = resilient_find_best_strategy(
                    graph, space, tables, order=order,
                    memory_budget=budget.memory_budget,
                    search_fn=_reducing_search(reduce),
                    checkpoint=checkpoint)
                if resilience.retries:
                    msg = ("resilient ladder degraded "
                           f"{resilience.retries}x: "
                           + ", ".join(resilience.degradations))
                    report.degrade(msg)
                    if journal is not None:
                        journal.event("search-degraded", msg)
            else:
                result = find_best_strategy(
                    graph, space, tables, order=order,
                    memory_budget=budget.memory_budget, reduce=reduce,
                    checkpoint=checkpoint)
        else:
            result = _run_baseline(graph, space, tables, machine,
                                   method, seed, reduce)
        if "table_build_seconds" not in result.stats:
            result = result.with_stats(
                **{f"table_{k}": float(v)
                   for k, v in tables.build_stats.items()})
        report.add_phase("search", time.perf_counter() - phase[1], "ok")
        report.best_cost = result.cost
        if journal is not None:
            journal.record_result(result)
        return RunOutcome(result=result, report=report, tables=tables,
                          resilience=resilience)

    except RunInterrupted as err:
        _finalize_failure(report, journal, "interrupted", err,
                          phase[0], time.perf_counter() - phase[1])
        raise
    except DeadlineExceededError as err:
        _finalize_failure(report, journal, "deadline", err,
                          phase[0], time.perf_counter() - phase[1])
        raise
    except SearchResourceError as err:
        _finalize_failure(report, journal, "resource-error", err,
                          phase[0], time.perf_counter() - phase[1])
        raise


def _reducing_search(reduce: bool):
    """`find_best_strategy` with ``reduce`` pre-bound, for the ladder."""
    if not reduce:
        return find_best_strategy
    from functools import partial

    return partial(find_best_strategy, reduce=True)


def _run_baseline(graph: CompGraph, space: ConfigSpace, tables: CostTables,
                  machine: MachineSpec, method: str, seed: int,
                  reduce: bool) -> SearchResult:
    """Dispatch non-DP methods through the shared experiment machinery
    (baselines run between checkpoints; MCMC carries its own budget)."""
    from ..experiments.common import BenchSetup, search_with

    setup = BenchSetup(name="runtime", graph=graph, p=space.p,
                       machine=machine, space=space, tables=tables)
    return search_with(setup, method, seed=seed, reduce=reduce)


def _finalize_failure(report: RunReport, journal: SearchJournal | None,
                      outcome: str, err: BaseException,
                      phase_name: str, phase_seconds: float) -> None:
    """Flush the journal, stamp the report, attach it to the error."""
    report.outcome = outcome
    report.detail = str(err)
    report.add_phase(phase_name, phase_seconds, outcome)
    if journal is not None:
        prior = journal.load_result()
        if prior is not None:
            report.best_cost = prior.cost
        journal.flush()
    err.run_report = report  # type: ignore[attr-defined]
