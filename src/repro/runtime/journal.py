"""Crash-safe search journal: periodic phase snapshots, atomic writes.

A `SearchJournal` makes an interrupted run resumable *bit-identically*:

* ``journal.json`` records the problem **fingerprint** (table digest,
  method, budgets — everything the answer depends on), per-phase
  completion markers, degradation events, a throttled progress snapshot
  (current phase / DP vertex), and — once the search finishes — the full
  `SearchResult` (strategy, cost, stats).
* A `TableCache` rooted at ``<journal>/tables/`` persists the built cost
  tables, so a run killed mid-DP resumes straight into the (fully
  deterministic) search without rebuilding a single matrix.

Every write goes through a temp file + ``os.replace`` in the journal
directory, so a crash at any instant leaves either the old snapshot or
the new one — never a torn file.  Resuming validates the fingerprint and
raises `JournalError` on any mismatch rather than silently answering a
different question.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..core.exceptions import JournalError
from ..core.strategy import FrontierPoint, SearchResult, Strategy

if TYPE_CHECKING:  # pragma: no cover
    from ..core.tablecache import TableCache

__all__ = ["SearchJournal", "JOURNAL_VERSION"]

#: Journal layout version; bump whenever the stored schema changes.
JOURNAL_VERSION = 1

#: Minimum seconds between on-disk progress snapshots (checkpoints fire
#: per DP vertex; rewriting the journal that often would dominate small
#: searches).
PROGRESS_INTERVAL_SECONDS = 0.5


def _normalize(fingerprint: dict) -> dict:
    """JSON round-trip so in-memory and reloaded fingerprints compare
    equal (tuples become lists, ints stay ints)."""
    return json.loads(json.dumps(fingerprint, sort_keys=True))


class SearchJournal:
    """One resumable run's on-disk state under a journal directory."""

    def __init__(self, root: str | os.PathLike, *,
                 table_store: "TableCache | None" = None) -> None:
        self.root = Path(root)
        self.path = self.root / "journal.json"
        self.state: dict[str, Any] | None = None
        self._table_store = table_store
        self._last_progress_write = 0.0

    # -- lifecycle -----------------------------------------------------------

    def open(self, fingerprint: dict, *, resume: bool = False) -> bool:
        """Start (or resume) a journalled run; True when resuming.

        A fresh open overwrites any previous journal for the directory.
        ``resume=True`` requires an existing journal whose fingerprint
        matches — resuming a journal written for a different model /
        machine / budget would silently answer a different question, so
        that raises `JournalError` instead.
        """
        fingerprint = _normalize(fingerprint)
        if resume:
            state = self._read()
            if state["fingerprint"] != fingerprint:
                raise JournalError(
                    f"journal at {self.path} was written for a different "
                    "problem (fingerprint mismatch); re-run without --resume "
                    "to start fresh")
            self.state = state
            return True
        self.state = {
            "version": JOURNAL_VERSION,
            "fingerprint": fingerprint,
            "phases": {},
            "events": [],
            "progress": {},
        }
        self.flush()
        return False

    def _read(self) -> dict[str, Any]:
        try:
            with open(self.path, encoding="utf-8") as fh:
                state = json.load(fh)
        except FileNotFoundError:
            raise JournalError(
                f"no journal to resume at {self.path}") from None
        except (OSError, json.JSONDecodeError) as err:
            raise JournalError(
                f"journal at {self.path} is unreadable: {err}") from err
        if not isinstance(state, dict) or \
                state.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"journal at {self.path} has unsupported version "
                f"{state.get('version') if isinstance(state, dict) else '?'}")
        return state

    def flush(self) -> None:
        """Atomically persist the current snapshot (temp + ``os.replace``)."""
        if self.state is None:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(self.state, fh, indent=2, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # -- tables --------------------------------------------------------------

    def table_cache(self) -> "TableCache":
        """The journal's cost-table store.

        Defaults to an embedded store at ``<journal>/tables``; a
        ``table_store`` passed at construction (e.g. a fleet-wide shared
        cache) is used instead.  Either way the store is
        content-addressed, so a resume hits the digest of the
        interrupted build and a fingerprint-mismatched entry is simply
        never read — sharing the store across runs is sound.
        """
        from ..core.tablecache import TableCache

        if self._table_store is not None:
            return self._table_store
        return TableCache(self.root / "tables")

    # -- phase bookkeeping ---------------------------------------------------

    def phase(self, name: str) -> dict[str, Any] | None:
        if self.state is None:
            return None
        return self.state["phases"].get(name)

    def phase_done(self, name: str, **data: Any) -> None:
        """Mark a phase complete (flushed immediately — phase boundaries
        are exactly the points a resume must be able to trust)."""
        assert self.state is not None, "journal not opened"
        self.state["phases"][name] = {"done": True, **_normalize(data)}
        self.flush()

    def event(self, kind: str, detail: str) -> None:
        """Record one degradation/quarantine/retry event (flushed)."""
        assert self.state is not None, "journal not opened"
        self.state["events"].append({"kind": kind, "detail": detail})
        self.flush()

    @property
    def events(self) -> list[dict[str, str]]:
        if self.state is None:
            return []
        return list(self.state["events"])

    def progress(self, *, phase: str = "", step: int | None = None,
                 total: int | None = None) -> None:
        """Throttled progress snapshot (cheap enough to call per DP
        vertex; writes at most every `PROGRESS_INTERVAL_SECONDS`)."""
        if self.state is None:
            return
        self.state["progress"] = {"phase": phase, "step": step,
                                  "total": total}
        now = time.monotonic()
        if now - self._last_progress_write >= PROGRESS_INTERVAL_SECONDS:
            self._last_progress_write = now
            self.flush()

    # -- results -------------------------------------------------------------

    def record_result(self, result: SearchResult) -> None:
        """Journal the finished search so a resume replays it verbatim.

        The Pareto frontier is stored only when the result carries one
        (``objective="frontier"`` runs); scalar runs journal exactly the
        pre-frontier schema, so existing journals replay unchanged and
        their length-1 frontier is re-synthesized on replay instead.
        """
        assert self.state is not None, "journal not opened"
        rec = {
            "done": True,
            "method": result.method,
            "cost": result.cost,
            "elapsed": result.elapsed,
            "stats": _normalize(dict(result.stats)),
            "strategy": json.loads(result.strategy.to_json()),
        }
        if result.frontier:
            rec["frontier"] = [
                {"cost": pt.cost, "peak_bytes": pt.peak_bytes,
                 "strategy": json.loads(pt.strategy.to_json())}
                for pt in result.frontier]
        self.state["phases"]["search"] = rec
        self.flush()

    def load_result(self) -> SearchResult | None:
        """The journalled `SearchResult`, or None if the search never
        finished.  Floats round-trip through JSON exactly (repr-based),
        so the replayed cost is bit-identical to the recorded one."""
        rec = self.phase("search")
        if not rec or not rec.get("done"):
            return None
        strategy = Strategy({n: tuple(c) for n, c in rec["strategy"].items()})
        frontier = tuple(
            FrontierPoint(
                cost=float(p["cost"]), peak_bytes=float(p["peak_bytes"]),
                strategy=Strategy(
                    {n: tuple(c) for n, c in p["strategy"].items()}))
            for p in rec.get("frontier", ()))
        return SearchResult(
            strategy=strategy,
            cost=float(rec["cost"]),
            elapsed=float(rec["elapsed"]),
            method=str(rec["method"]),
            stats={k: float(v) for k, v in rec["stats"].items()},
            frontier=frontier,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SearchJournal {self.path}>"
