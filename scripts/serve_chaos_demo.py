#!/usr/bin/env python
"""End-to-end robustness demo against a running ``pase serve`` daemon.

Usage::

    PYTHONPATH=src python -m repro.cli serve --port 8421 --workers 4 \\
        --max-queue 8 --allow-chaos --state-dir serve-state &
    PYTHONPATH=src python scripts/serve_chaos_demo.py \\
        --port 8421 --server-pid $!

Drives the daemon through the failure modes the serve layer exists to
absorb, and exits non-zero the moment any contract breaks:

1. **Burst** — ``--burst`` concurrent requests spread over three
   distinct problems, each client honoring ``Retry-After`` on 429.
   Every request must eventually answer 200, the server must never
   answer 5xx, duplicates of an in-flight problem must coalesce (one
   search per distinct problem, checked against ``/metrics``), and all
   answers for the same problem must be byte-identical.
2. **Worker kill -9** — a long search is interrupted by SIGKILLing one
   of the daemon's pool workers mid-request (found via ``--server-pid``;
   skipped when not given).  The request must still answer 200 via
   redispatch, and a follow-up request must serve the byte-identical
   record from cache.
3. **Poison quarantine** — a problem whose worker dies on every attempt
   must come back as a structured 503 ``quarantined`` (never a 500) and
   appear in ``/v1/quarantine``; the same problem with ``degrade: true``
   must answer 200 with a resilient-coarsened strategy.

Exit code 0 when every contract holds, 1 with a message otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

BURST_MODEL = {"model": "transformer", "p": 16}
LONG_MODEL = {"model": "transformer", "p": 32}
RETRIES_429 = 20


class Failure(Exception):
    pass


def _post(base: str, doc: dict, timeout: float = 120.0):
    # Searches are idempotent lookups, so connection-level hiccups
    # (resets under a synthetic 32-way connect burst) are safe to retry.
    for attempt in range(3):
        req = urllib.request.Request(base + "/v1/search",
                                     data=json.dumps(doc).encode())
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as err:
            return err.code, err.read()
        except (urllib.error.URLError, ConnectionError, TimeoutError):
            if attempt == 2:
                raise
            time.sleep(0.2 * (attempt + 1))


def _get_text(base: str, path: str) -> str:
    with urllib.request.urlopen(base + path, timeout=30) as resp:
        return resp.read().decode()


def _metric(prom: str, name: str) -> float:
    total = 0.0
    for line in prom.splitlines():
        if line.startswith(name) and not line.startswith("#"):
            total += float(line.rsplit(" ", 1)[1])
    return total


def check_burst(base: str, burst: int) -> None:
    docs = [dict(BURST_MODEL, seed=s) for s in range(3)]
    outcomes: list[tuple[int, bytes]] = [(0, b"")] * burst
    retries = [0] * burst

    def one(i: int) -> None:
        doc = docs[i % len(docs)]
        for _ in range(RETRIES_429):
            status, body = _post(base, doc)
            if status != 429:
                outcomes[i] = (status, body)
                return
            retries[i] += 1
            hint = json.loads(body)["error"].get("retry_after") or 1.0
            time.sleep(min(float(hint), 5.0))
        outcomes[i] = (429, body)

    threads = [threading.Thread(target=one, args=(i,))
               for i in range(burst)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    statuses = [s for s, _ in outcomes]
    if any(s >= 500 for s in statuses):
        raise Failure(f"burst produced a 5xx: {sorted(set(statuses))}")
    if statuses != [200] * burst:
        raise Failure(f"burst never converged to all-200: {statuses}")
    for group in range(len(docs)):
        # The `served` block legitimately differs per request (cached /
        # coalesced / attempts); the strategy record must not.
        records = {json.dumps(json.loads(body)["record"], sort_keys=True)
                   for i, (_, body) in enumerate(outcomes)
                   if i % len(docs) == group}
        if len(records) != 1:
            raise Failure(f"problem {group} answered "
                          f"{len(records)} distinct records")

    prom = _get_text(base, "/metrics")
    coalesced = _metric(prom, "pase_serve_coalesce_hits_total")
    if coalesced < 1:
        raise Failure("a 3-problem burst of "
                      f"{burst} requests never coalesced")
    rejected = sum(retries)
    print(f"# burst: {burst} requests over {len(docs)} problems -> "
          f"all 200, {coalesced:.0f} coalesce hits, "
          f"{rejected} bounded 429s, zero 5xx")


def check_worker_kill(base: str, server_pid: int | None) -> None:
    if server_pid is None:
        print("# worker-kill: skipped (no --server-pid)")
        return
    doc = dict(LONG_MODEL, seed=100)
    result: dict = {}

    def fire() -> None:
        result["outcome"] = _post(base, doc)

    before = subprocess.run(
        ["pgrep", "-P", str(server_pid)],
        capture_output=True, text=True).stdout.split()
    t = threading.Thread(target=fire)
    t.start()
    time.sleep(1.0)  # let the search reach a worker
    victims = subprocess.run(
        ["pgrep", "-P", str(server_pid)],
        capture_output=True, text=True).stdout.split()
    fresh = [pid for pid in victims if pid not in before] or victims
    if not fresh:
        raise Failure("no pool worker process found to kill")
    os.kill(int(fresh[0]), signal.SIGKILL)
    t.join()
    status, body = result["outcome"]
    if status != 200:
        raise Failure(f"request under kill -9 answered {status}: "
                      f"{body[:200]!r}")
    status, again = _post(base, doc)
    if status != 200:
        raise Failure(f"follow-up after kill -9 answered {status}")
    record = json.loads(body)["record"]
    cached = json.loads(again)
    if cached["record"] != record:
        raise Failure("record changed across a worker kill -9")
    if not cached["served"]["cached"]:
        raise Failure("follow-up after kill -9 missed the result cache")
    print(f"# worker-kill: SIGKILLed pid {fresh[0]} mid-request -> "
          "200 via redispatch, byte-identical cached follow-up")


def check_quarantine(base: str) -> None:
    poison = dict(BURST_MODEL, seed=300, chaos={"kind": "exit"})
    status, body = _post(base, poison)
    doc = json.loads(body)
    if status != 503 or doc["error"]["kind"] != "quarantined":
        raise Failure(f"poison problem not quarantined: {status} {doc}")
    listing = json.loads(_get_text(base, "/v1/quarantine"))
    if len(listing["quarantine"]) < 1:
        raise Failure("/v1/quarantine does not list the poison problem")
    status, body = _post(base, dict(poison, degrade=True))
    doc = json.loads(body)
    if status != 200 or not doc["served"]["degraded"]:
        raise Failure(f"degrade fallback failed: {status} {doc}")
    if not doc["record"]["task"]["resilient"]:
        raise Failure("degraded answer is not a resilient strategy")
    print("# quarantine: poison 503 quarantined, listed, "
          "degrade fallback answered 200 resilient")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8421)
    parser.add_argument("--burst", type=int, default=32)
    parser.add_argument("--server-pid", type=int, default=None,
                        help="serve daemon pid; enables the kill -9 phase")
    args = parser.parse_args(argv)
    base = f"http://{args.host}:{args.port}"
    try:
        check_burst(base, args.burst)
        check_worker_kill(base, args.server_pid)
        check_quarantine(base)
    except Failure as failure:
        print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("# serve chaos demo: every robustness contract held")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
