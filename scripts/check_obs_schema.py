#!/usr/bin/env python
"""Validate the observability artifacts of a ``pase search``/``sweep``.

Usage::

    PYTHONPATH=src python scripts/check_obs_schema.py TRACE.jsonl METRICS
    PYTHONPATH=src python scripts/check_obs_schema.py TRACE.jsonl METRICS \\
        SUMMARY.json MANIFEST.json
    PYTHONPATH=src python scripts/check_obs_schema.py --serve \\
        TRACE.jsonl METRICS

Checks the trace file against the JSONL span schema (meta header,
well-formed span records, a single root whose tree covers the pipeline
phases — ``run`` for a search trace, ``fleet`` for a sweep trace) and
the metrics export against its format — Prometheus text exposition for
``.prom``/``.txt``, the JSON layout otherwise.  With the optional third
and fourth arguments it also validates a fleet's ``summary.json`` and
``manifest.json`` artifacts.

``--serve`` validates a ``pase serve`` run instead: the trace must be a
forest whose every root is a ``serve.request`` span with children drawn
from the request lifecycle (validate → admit → coalesce|search|cache →
respond), and the metrics export must carry the serve instrument
families (requests by code, coalesce/cache hits, queue depth, request
latency).  CI runs this after the smoke search, the fleet chaos smoke,
and the serve chaos smoke so a schema regression fails the build rather
than silently breaking downstream dashboards.

Exit code 0 when every artifact validates, 1 with a message otherwise.
"""

from __future__ import annotations

import json
import re
import sys

from repro.obs import TRACE_VERSION, read_trace, span_tree

#: One sample line: name, optional ``{label="value",...}`` set (general
#: labels, not just histogram ``le``), then the value.
_PROM_SAMPLE = re.compile(
    r"^pase_[a-z0-9_]+"
    r"(\{[a-z_][a-z0-9_]*=\"[^\"]*\"(,[a-z_][a-z0-9_]*=\"[^\"]*\")*\})?"
    r" -?[0-9][0-9eE.+-]*$")
_PROM_COMMENT = re.compile(
    r"^# (HELP|TYPE) pase_[a-z0-9_]+( .*)?$")

#: Span names the CLI smoke run must have produced, per trace flavour.
REQUIRED_SPANS = {"run", "tables", "search"}
REQUIRED_FLEET_SPANS = {"fleet", "fleet.task"}

#: The serve request lifecycle: every trace root must be a
#: ``serve.request`` whose children come from this set.
SERVE_ROOT = "serve.request"
SERVE_CHILD_SPANS = {"serve.validate", "serve.admit", "serve.coalesce",
                     "serve.search", "serve.cache", "serve.respond"}

#: Instrument families a serve metrics export must carry.
SERVE_REQUIRED_METRICS = {
    "pase_serve_requests_total",
    "pase_serve_coalesce_hits_total",
    "pase_serve_result_cache_hits_total",
    "pase_serve_queue_depth",
    "pase_serve_request_seconds",
}

#: Task states a fleet manifest may record.
MANIFEST_TASK_STATES = {"pending", "running", "done", "quarantined"}

#: Fields every fleet summary.json must carry.
SUMMARY_REQUIRED = {
    "version", "fingerprint", "generated_at", "tasks_total", "succeeded",
    "quarantined", "retries", "stragglers_killed", "worker_crashes",
    "adopted", "completed_this_run", "wall_seconds",
    "searches_per_minute", "workers", "resumed", "quarantined_tasks",
    "results",
}


def check_trace(path: str, *, root: str = "run",
                required: set[str] = REQUIRED_SPANS) -> list[str]:
    errors: list[str] = []
    try:
        records = read_trace(path)
    except (OSError, ValueError) as err:
        return [f"trace: unreadable: {err}"]
    if not records or records[0].get("kind") != "meta":
        errors.append("trace: first record is not the meta header")
    elif records[0].get("version") != TRACE_VERSION:
        errors.append(f"trace: version {records[0].get('version')!r} != "
                      f"expected {TRACE_VERSION}")
    spans = [r for r in records if r.get("kind") == "span"]
    if not spans:
        errors.append("trace: no span records")
        return errors
    for i, rec in enumerate(spans):
        for field in ("id", "name", "start", "end", "seconds"):
            if field not in rec:
                errors.append(f"trace: span #{i} missing {field!r}")
        if rec.get("end", 0) < rec.get("start", 0) or rec.get("seconds", 0) < 0:
            errors.append(f"trace: span {rec.get('name')!r} runs backwards")
    names = {r["name"] for r in spans if "name" in r}
    missing = required - names
    if missing:
        errors.append(f"trace: missing required spans {sorted(missing)}")
    roots = span_tree(spans)
    if [r["name"] for r in roots] != [root]:
        errors.append(f"trace: expected a single {root!r} root, got "
                      f"{[r['name'] for r in roots]}")
    return errors


def check_serve_trace(path: str) -> list[str]:
    """Validate a serve trace: a forest of per-request span trees."""
    errors = check_trace(path, root=SERVE_ROOT,
                         required={SERVE_ROOT, "serve.validate",
                                   "serve.respond"})
    # check_trace demands a single root; a serve trace has one root per
    # request, all named serve.request — drop that error and do the
    # forest checks instead.
    errors = [e for e in errors if "expected a single" not in e]
    try:
        records = read_trace(path)
    except (OSError, ValueError):
        return errors  # already reported unreadable above
    roots = span_tree(r for r in records if r.get("kind") == "span")
    for root in roots:
        if root["name"] != SERVE_ROOT:
            errors.append(f"trace: root span {root['name']!r} is not "
                          f"{SERVE_ROOT!r}")
            continue
        bad = {c["name"] for c in root["children"]} - SERVE_CHILD_SPANS
        if bad:
            errors.append(f"trace: serve.request has unexpected "
                          f"children {sorted(bad)}")
    return errors


def check_serve_metrics(path: str) -> list[str]:
    """Format check + the serve instrument families must be present."""
    errors = check_metrics(path)
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError:
        return errors  # already reported unreadable above
    families: set[str] = set()
    if path.endswith((".prom", ".txt")):
        for line in text.splitlines():
            if line and not line.startswith("#"):
                name = line.split("{")[0].split()[0]
                families.add(re.sub(r"_(bucket|sum|count)$", "", name))
    else:
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            return errors
        if isinstance(doc, dict):
            families = {"pase_" + key.split("{")[0] for key in doc}
    missing = SERVE_REQUIRED_METRICS - families
    if missing:
        errors.append(f"metrics: missing serve families {sorted(missing)}")
    return errors


def check_metrics(path: str) -> list[str]:
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as err:
        return [f"metrics: unreadable: {err}"]
    if path.endswith((".prom", ".txt")):
        return _check_prometheus(text)
    return _check_metrics_json(text)


def _check_prometheus(text: str) -> list[str]:
    errors: list[str] = []
    typed: set[str] = set()
    sampled: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("#"):
            m = _PROM_COMMENT.match(line)
            if m is None:
                errors.append(f"metrics:{lineno}: malformed comment {line!r}")
            elif m.group(1) == "TYPE":
                typed.add(line.split()[2])
            continue
        if not _PROM_SAMPLE.match(line):
            errors.append(f"metrics:{lineno}: malformed sample {line!r}")
            continue
        name = line.split("{")[0].split()[0]
        sampled.add(re.sub(r"_(bucket|sum|count)$", "", name))
    if not sampled:
        errors.append("metrics: no samples")
    untyped = {n for n in sampled if n not in typed}
    if untyped:
        errors.append(f"metrics: samples without TYPE: {sorted(untyped)}")
    return errors


def _check_metrics_json(text: str) -> list[str]:
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as err:
        return [f"metrics: invalid JSON: {err}"]
    if not isinstance(doc, dict) or not doc:
        return ["metrics: expected a non-empty JSON object"]
    errors: list[str] = []
    for name, entry in doc.items():
        if not isinstance(entry, dict) or \
                {"kind", "help", "value"} - set(entry):
            errors.append(f"metrics: entry {name!r} missing kind/help/value")
        elif entry["kind"] not in ("counter", "gauge", "histogram"):
            errors.append(f"metrics: entry {name!r} has unknown kind "
                          f"{entry['kind']!r}")
    return errors


def _load_json(path: str, label: str) -> tuple[dict | None, list[str]]:
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        return None, [f"{label}: unreadable: {err}"]
    if not isinstance(doc, dict):
        return None, [f"{label}: expected a JSON object"]
    return doc, []


def check_summary(path: str) -> list[str]:
    doc, errors = _load_json(path, "summary")
    if doc is None:
        return errors
    missing = SUMMARY_REQUIRED - set(doc)
    if missing:
        errors.append(f"summary: missing field(s) {sorted(missing)}")
        return errors
    for field in ("tasks_total", "succeeded", "quarantined", "retries",
                  "stragglers_killed", "worker_crashes", "adopted",
                  "completed_this_run", "workers"):
        if not isinstance(doc[field], int) or doc[field] < 0:
            errors.append(f"summary: {field} must be a non-negative int, "
                          f"got {doc[field]!r}")
    if doc["succeeded"] + doc["quarantined"] > doc["tasks_total"]:
        errors.append("summary: succeeded + quarantined exceeds tasks_total")
    if len(doc["quarantined_tasks"]) != doc["quarantined"]:
        errors.append("summary: quarantined_tasks length != quarantined")
    for i, q in enumerate(doc["quarantined_tasks"]):
        if not isinstance(q, dict) or \
                {"task_id", "label", "attempts"} - set(q):
            errors.append(f"summary: quarantined_tasks[{i}] missing "
                          "task_id/label/attempts")
    return errors


def check_manifest(path: str) -> list[str]:
    doc, errors = _load_json(path, "manifest")
    if doc is None:
        return errors
    missing = {"version", "fingerprint", "tasks", "counters"} - set(doc)
    if missing:
        errors.append(f"manifest: missing field(s) {sorted(missing)}")
        return errors
    if not isinstance(doc["tasks"], dict) or not doc["tasks"]:
        errors.append("manifest: tasks must be a non-empty object")
        return errors
    for tid, rec in doc["tasks"].items():
        if not isinstance(rec, dict) or "state" not in rec or \
                "attempts" not in rec:
            errors.append(f"manifest: task {tid!r} missing state/attempts")
        elif rec["state"] not in MANIFEST_TASK_STATES:
            errors.append(f"manifest: task {tid!r} has unknown state "
                          f"{rec['state']!r}")
    for counter in ("retries", "stragglers_killed", "worker_crashes",
                    "resumes"):
        if not isinstance(doc["counters"].get(counter), int):
            errors.append(f"manifest: counters.{counter} must be an int")
    return errors


def main(argv: list[str]) -> int:
    serve = "--serve" in argv
    argv = [a for a in argv if a != "--serve"]
    if len(argv) not in (2, 4) or (serve and len(argv) != 2):
        print(__doc__, file=sys.stderr)
        return 1
    trace_path, metrics_path = argv[:2]
    if serve:
        errors = check_serve_trace(trace_path) \
            + check_serve_metrics(metrics_path)
    elif len(argv) == 4:
        errors = check_trace(trace_path, root="fleet",
                             required=REQUIRED_FLEET_SPANS)
        errors += check_metrics(metrics_path)
        errors += check_summary(argv[2])
        errors += check_manifest(argv[3])
    else:
        errors = check_trace(trace_path) + check_metrics(metrics_path)
    for err in errors:
        print(f"check_obs_schema: {err}", file=sys.stderr)
    if not errors:
        print(f"check_obs_schema: OK ({', '.join(argv)})")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
