#!/usr/bin/env python
"""Validate the observability artifacts of a ``pase search`` run.

Usage::

    PYTHONPATH=src python scripts/check_obs_schema.py TRACE.jsonl METRICS

Checks the trace file against the JSONL span schema (meta header,
well-formed span records, a single ``run`` root whose tree covers the
pipeline phases) and the metrics export against its format — Prometheus
text exposition for ``.prom``/``.txt``, the JSON layout otherwise.  CI
runs this after the smoke search so a schema regression fails the build
rather than silently breaking downstream dashboards.

Exit code 0 when both artifacts validate, 1 with a message otherwise.
"""

from __future__ import annotations

import json
import re
import sys

from repro.obs import TRACE_VERSION, read_trace, span_tree

_PROM_SAMPLE = re.compile(
    r"^pase_[a-z0-9_]+(\{le=\"[^\"]+\"\})? -?[0-9][0-9eE.+-]*$")
_PROM_COMMENT = re.compile(
    r"^# (HELP|TYPE) pase_[a-z0-9_]+( .*)?$")

#: Span names the CLI smoke run must have produced.
REQUIRED_SPANS = {"run", "tables", "search"}


def check_trace(path: str) -> list[str]:
    errors: list[str] = []
    try:
        records = read_trace(path)
    except (OSError, ValueError) as err:
        return [f"trace: unreadable: {err}"]
    if not records or records[0].get("kind") != "meta":
        errors.append("trace: first record is not the meta header")
    elif records[0].get("version") != TRACE_VERSION:
        errors.append(f"trace: version {records[0].get('version')!r} != "
                      f"expected {TRACE_VERSION}")
    spans = [r for r in records if r.get("kind") == "span"]
    if not spans:
        errors.append("trace: no span records")
        return errors
    for i, rec in enumerate(spans):
        for field in ("id", "name", "start", "end", "seconds"):
            if field not in rec:
                errors.append(f"trace: span #{i} missing {field!r}")
        if rec.get("end", 0) < rec.get("start", 0) or rec.get("seconds", 0) < 0:
            errors.append(f"trace: span {rec.get('name')!r} runs backwards")
    names = {r["name"] for r in spans if "name" in r}
    missing = REQUIRED_SPANS - names
    if missing:
        errors.append(f"trace: missing required spans {sorted(missing)}")
    roots = span_tree(spans)
    if [r["name"] for r in roots] != ["run"]:
        errors.append(f"trace: expected a single 'run' root, got "
                      f"{[r['name'] for r in roots]}")
    return errors


def check_metrics(path: str) -> list[str]:
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as err:
        return [f"metrics: unreadable: {err}"]
    if path.endswith((".prom", ".txt")):
        return _check_prometheus(text)
    return _check_metrics_json(text)


def _check_prometheus(text: str) -> list[str]:
    errors: list[str] = []
    typed: set[str] = set()
    sampled: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("#"):
            m = _PROM_COMMENT.match(line)
            if m is None:
                errors.append(f"metrics:{lineno}: malformed comment {line!r}")
            elif m.group(1) == "TYPE":
                typed.add(line.split()[2])
            continue
        if not _PROM_SAMPLE.match(line):
            errors.append(f"metrics:{lineno}: malformed sample {line!r}")
            continue
        name = line.split("{")[0].split()[0]
        sampled.add(re.sub(r"_(bucket|sum|count)$", "", name))
    if not sampled:
        errors.append("metrics: no samples")
    untyped = {n for n in sampled if n not in typed}
    if untyped:
        errors.append(f"metrics: samples without TYPE: {sorted(untyped)}")
    return errors


def _check_metrics_json(text: str) -> list[str]:
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as err:
        return [f"metrics: invalid JSON: {err}"]
    if not isinstance(doc, dict) or not doc:
        return ["metrics: expected a non-empty JSON object"]
    errors: list[str] = []
    for name, entry in doc.items():
        if not isinstance(entry, dict) or \
                {"kind", "help", "value"} - set(entry):
            errors.append(f"metrics: entry {name!r} missing kind/help/value")
        elif entry["kind"] not in ("counter", "gauge", "histogram"):
            errors.append(f"metrics: entry {name!r} has unknown kind "
                          f"{entry['kind']!r}")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 1
    trace_path, metrics_path = argv
    errors = check_trace(trace_path) + check_metrics(metrics_path)
    for err in errors:
        print(f"check_obs_schema: {err}", file=sys.stderr)
    if not errors:
        print(f"check_obs_schema: OK ({trace_path}, {metrics_path})")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
