"""Result cache + quarantine: LRU, persistence, crash tolerance."""

import json

from repro.serve.coalesce import CACHE_VERSION, Quarantine, ResultCache


class TestResultCache:
    def test_memory_only_roundtrip(self):
        cache = ResultCache(None)
        assert cache.get("fp") is None
        cache.put("fp", {"cost": 1.0})
        assert cache.get("fp") == {"cost": 1.0}
        cache.flush()  # no-op, must not raise

    def test_lru_eviction(self):
        cache = ResultCache(None, max_entries=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") == {"v": 1}  # refresh a
        cache.put("c", {"v": 3})           # evicts b
        assert cache.get("b") is None
        assert cache.get("a") and cache.get("c")

    def test_persists_and_reloads(self, tmp_path):
        path = tmp_path / "results.json"
        cache = ResultCache(path)
        cache.put("fp1", {"cost": 1.0})
        cache.flush()
        reloaded = ResultCache(path)
        assert reloaded.get("fp1") == {"cost": 1.0}
        assert len(reloaded) == 1

    def test_tolerates_corrupt_and_foreign_files(self, tmp_path):
        path = tmp_path / "results.json"
        path.write_text("{not json", encoding="utf-8")
        assert len(ResultCache(path)) == 0
        path.write_text(json.dumps({"version": CACHE_VERSION + 1,
                                    "results": {"a": {}}}), encoding="utf-8")
        assert len(ResultCache(path)) == 0
        assert len(ResultCache(tmp_path / "missing.json")) == 0

    def test_reload_respects_max_entries(self, tmp_path):
        path = tmp_path / "results.json"
        cache = ResultCache(path)
        for i in range(5):
            cache.put(f"fp{i}", {"v": i})
        cache.flush()
        assert len(ResultCache(path, max_entries=2)) == 2


class TestQuarantine:
    def test_add_get_remove(self, tmp_path):
        q = Quarantine(tmp_path / "quarantine.json")
        entry = q.add("fp", attempts=3, kind="crash", detail="boom",
                      label="alexnet/p8")
        assert entry["attempts"] == 3
        assert q.get("fp")["kind"] == "crash"
        assert q.remove("fp")
        assert q.get("fp") is None
        assert not q.remove("fp")

    def test_flushed_immediately_and_reloaded(self, tmp_path):
        path = tmp_path / "quarantine.json"
        q = Quarantine(path)
        q.add("fp", attempts=2, kind="deadline", detail="slow")
        # No explicit flush: add() must have already persisted (the
        # whole point is surviving the crash it just witnessed).
        reloaded = Quarantine(path)
        assert reloaded.get("fp")["kind"] == "deadline"
        assert reloaded.snapshot() == q.snapshot()

    def test_tolerates_corrupt_file(self, tmp_path):
        path = tmp_path / "quarantine.json"
        path.write_text("garbage", encoding="utf-8")
        assert len(Quarantine(path)) == 0
