"""Wire-schema tests: validation, error shapes, deterministic bodies."""

import json

import pytest

from repro.serve.wire import (
    MAX_P,
    ServeError,
    encode_body,
    success_body,
    validate_request,
)


class TestValidateRequest:
    def test_minimal_request_fills_defaults(self):
        req = validate_request({"model": "alexnet", "p": 8})
        assert req.task.model == "alexnet"
        assert req.task.p == 8
        assert req.task.machine == "1080ti"
        assert req.task.mode == "pow2"
        assert req.task.method == "ours"
        assert req.task.seed == 0
        assert req.deadline is None and req.degrade is False

    def test_full_request(self):
        req = validate_request({
            "model": "transformer", "p": 32, "machine": "1080ti",
            "mode": "divisors", "method": "ours", "seed": 3,
            "reduce": "auto", "resilient": True,
            "memory_budget": 1 << 28, "deadline": 12.5, "degrade": True})
        assert req.task.reduce == "auto" and req.task.resilient
        assert req.deadline == 12.5 and req.degrade

    def test_non_object_body_rejected(self):
        with pytest.raises(ServeError) as exc:
            validate_request([1, 2, 3])
        assert exc.value.status == 400

    def test_collects_every_error_at_once(self):
        with pytest.raises(ServeError) as exc:
            validate_request({"p": "four", "bogus": 1, "seed": "zero"})
        fields = {e["field"] for e in exc.value.errors}
        assert fields == {"model", "p", "bogus", "seed"}
        assert exc.value.status == 400
        assert exc.value.kind == "invalid-request"

    def test_bool_does_not_pass_as_int(self):
        with pytest.raises(ServeError) as exc:
            validate_request({"model": "alexnet", "p": True})
        assert any(e["field"] == "p" for e in exc.value.errors)

    def test_unknown_model_rejected_by_task_validation(self):
        with pytest.raises(ServeError) as exc:
            validate_request({"model": "resnet9000", "p": 8})
        assert exc.value.status == 400

    def test_p_capped(self):
        with pytest.raises(ServeError) as exc:
            validate_request({"model": "alexnet", "p": MAX_P * 2})
        assert any(e["field"] == "p" for e in exc.value.errors)

    def test_bad_reduce_spelling(self):
        with pytest.raises(ServeError) as exc:
            validate_request({"model": "alexnet", "p": 8,
                              "reduce": "sometimes"})
        assert any(e["field"] == "reduce" for e in exc.value.errors)

    @pytest.mark.parametrize("reduce", [True, False, "off", "never",
                                        "auto", "always"])
    def test_good_reduce_spellings(self, reduce):
        req = validate_request({"model": "alexnet", "p": 8,
                                "reduce": reduce})
        assert req.task.reduce == reduce

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ServeError) as exc:
            validate_request({"model": "alexnet", "p": 8, "deadline": 0})
        assert any(e["field"] == "deadline" for e in exc.value.errors)

    def test_max_deadline_caps_and_defaults(self):
        req = validate_request({"model": "alexnet", "p": 8,
                                "deadline": 100.0}, max_deadline=10.0)
        assert req.deadline == 10.0
        req = validate_request({"model": "alexnet", "p": 8},
                               max_deadline=10.0)
        assert req.deadline == 10.0

    def test_chaos_gated_behind_allow_chaos(self):
        doc = {"model": "alexnet", "p": 8, "chaos": {"kind": "exit"}}
        with pytest.raises(ServeError) as exc:
            validate_request(doc)
        assert any(e["field"] == "chaos" for e in exc.value.errors)
        req = validate_request(doc, allow_chaos=True)
        assert req.task.chaos == {"kind": "exit"}


class TestBodies:
    def test_error_body_shape(self):
        err = ServeError(429, "queue-full", "try later", retry_after=2.5,
                         detail={"x": 1})
        body = err.body()
        assert body["error"]["kind"] == "queue-full"
        assert body["error"]["retry_after"] == 2.5
        assert body["error"]["detail"] == {"x": 1}

    def test_success_body_and_encoding_deterministic(self):
        rec = {"cost": 1.0, "task_id": "abc"}
        a = encode_body(success_body("fp", rec, cached=True,
                                     coalesced=False, attempts=0))
        b = encode_body(success_body("fp", dict(rec), cached=True,
                                     coalesced=False, attempts=0))
        assert a == b and a.endswith(b"\n")
        doc = json.loads(a)
        assert doc["served"] == {"cached": True, "coalesced": False,
                                 "attempts": 0, "degraded": False}
