"""Admission window: bounded slots, Retry-After hints, draining."""

import threading

import pytest

from repro.serve.admission import (
    MAX_RETRY_AFTER,
    MIN_RETRY_AFTER,
    AdmissionController,
    AdmissionFull,
    Draining,
)


class TestWindow:
    def test_admit_until_full(self):
        adm = AdmissionController(2)
        adm.admit()
        adm.admit()
        with pytest.raises(AdmissionFull) as exc:
            adm.admit()
        assert exc.value.status == 429
        assert exc.value.retry_after is not None
        adm.release(0.1)
        adm.admit()  # slot freed

    def test_release_never_goes_negative(self):
        adm = AdmissionController(1)
        adm.release()
        assert adm.admitted == 0

    def test_invalid_max_queue(self):
        with pytest.raises(ValueError):
            AdmissionController(0)


class TestRetryAfter:
    def test_clamped_to_bounds(self):
        adm = AdmissionController(4, workers=2)
        assert MIN_RETRY_AFTER <= adm.retry_after() <= MAX_RETRY_AFTER
        # Saturate with slow observed service times: hint hits the cap.
        for _ in range(4):
            adm.admit()
        for _ in range(8):
            adm.release(60.0)
            adm.admit()
        assert adm.retry_after() == MAX_RETRY_AFTER

    def test_scales_with_backlog(self):
        adm = AdmissionController(8, workers=2)
        for _ in range(6):
            adm.admit()
            adm.release(2.0)
        empty = adm.retry_after()
        for _ in range(8):
            adm.admit()
        assert adm.retry_after() > empty


class TestDraining:
    def test_draining_refuses_admission(self):
        adm = AdmissionController(2)
        adm.start_draining()
        assert adm.draining
        with pytest.raises(Draining) as exc:
            adm.admit()
        assert exc.value.status == 503

    def test_wait_drained_blocks_until_releases(self):
        adm = AdmissionController(2)
        adm.admit()
        adm.admit()
        adm.start_draining()
        assert not adm.wait_drained(timeout=0.05)
        releaser = threading.Timer(0.05, lambda: (adm.release(),
                                                  adm.release()))
        releaser.start()
        try:
            assert adm.wait_drained(timeout=5.0)
        finally:
            releaser.cancel()

    def test_wait_drained_immediate_when_empty(self):
        adm = AdmissionController(2)
        adm.start_draining()
        assert adm.wait_drained(timeout=0.01)
