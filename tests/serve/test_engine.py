"""Engine chaos suite: coalescing, crash retry, quarantine, degradation.

Faults here are real process faults, fleet-style: chaos-hooked workers
genuinely ``os._exit`` mid-search, poison problems genuinely burn every
attempt, and the assertions pin the serve contract — N identical
concurrent requests cost one search (and one *re-dispatch* when that
search's worker dies), quarantine answers every waiter with the same
structured 503, and answers are byte-identical however they were
obtained.
"""

import json
import threading

import pytest

from repro.obs.metrics import Metrics
from repro.serve.engine import SearchEngine
from repro.serve.wire import ServeError, validate_request


def make_engine(tmp_path, metrics=None, **kwargs):
    opts = dict(workers=2, max_attempts=3)
    opts.update(kwargs)
    return SearchEngine(tmp_path / "state",
                        metrics=metrics if metrics is not None else Metrics(),
                        **opts)


def request(doc):
    return validate_request(doc, allow_chaos=True)


def run_many(engine, doc, n):
    """Fire ``n`` identical requests concurrently; return outcomes."""
    results = [None] * n
    errors = [None] * n

    def one(i):
        try:
            results[i] = engine.execute(request(doc))
        except ServeError as err:
            errors[i] = err

    threads = [threading.Thread(target=one, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not any(t.is_alive() for t in threads)
    return results, errors


class TestHappyPath:
    def test_search_then_cache_hit(self, tmp_path):
        metrics = Metrics()
        with make_engine(tmp_path, metrics) as engine:
            doc = {"model": "alexnet", "p": 4}
            first = engine.execute(request(doc))
            assert not first.cached and first.attempts == 1
            assert first.record["cost"] > 0
            again = engine.execute(request(doc))
            assert again.cached and again.record == first.record
        assert metrics.counter("serve_searches_total").value == 1
        assert metrics.counter("serve_result_cache_hits_total").value == 1

    def test_memory_budget_clamp_changes_fingerprint_key(self, tmp_path):
        with make_engine(tmp_path, memory_budget=1 << 28) as engine:
            huge = engine.normalize(request(
                {"model": "alexnet", "p": 4,
                 "memory_budget": 1 << 40}).task)
            capped = engine.normalize(request(
                {"model": "alexnet", "p": 4,
                 "memory_budget": 1 << 28}).task)
            assert huge.memory_budget == 1 << 28
            assert engine.fingerprint_of(huge) == \
                engine.fingerprint_of(capped)

    def test_restart_serves_identical_record_from_state(self, tmp_path):
        doc = {"model": "alexnet", "p": 4}
        with make_engine(tmp_path) as engine:
            first = engine.execute(request(doc))
        with make_engine(tmp_path) as engine:
            again = engine.execute(request(doc))
            assert again.cached
            assert json.dumps(again.record, sort_keys=True) == \
                json.dumps(first.record, sort_keys=True)


class TestCoalescing:
    def test_identical_requests_share_one_search(self, tmp_path):
        metrics = Metrics()
        with make_engine(tmp_path, metrics) as engine:
            doc = {"model": "alexnet", "p": 8, "seed": 5}
            results, errors = run_many(engine, doc, 4)
            assert errors == [None] * 4
            records = {json.dumps(r.record, sort_keys=True)
                       for r in results}
            assert len(records) == 1
            assert sum(1 for r in results if r.coalesced) == 3
        assert metrics.counter("serve_searches_total").value == 1
        assert metrics.counter("serve_coalesce_hits_total").value == 3

    def test_coalesced_requests_survive_worker_crash(self, tmp_path):
        """The crash satellite: a worker ``os._exit``s mid-search under
        N coalesced waiters → exactly one re-dispatch (not N), and every
        waiter receives the same successful record."""
        metrics = Metrics()
        with make_engine(tmp_path, metrics) as engine:
            doc = {"model": "alexnet", "p": 4, "seed": 11,
                   "chaos": {"kind": "exit", "attempts": 1}}
            results, errors = run_many(engine, doc, 4)
            assert errors == [None] * 4
            # One flight, killed once, retried once: attempts == 2.
            assert {r.attempts for r in results} == {2}
            records = {json.dumps(r.record, sort_keys=True)
                       for r in results}
            assert len(records) == 1
        assert metrics.counter("serve_retries_total").value == 1
        assert metrics.counter("serve_worker_crashes_total").value == 1
        assert metrics.counter("serve_searches_total").value == 1

    def test_crashed_record_identical_to_clean_record(self, tmp_path):
        clean = make_engine(tmp_path / "a")
        crashy = make_engine(tmp_path / "b")
        try:
            doc = {"model": "alexnet", "p": 4, "seed": 2}
            want = clean.execute(request(doc)).record
            got = crashy.execute(request(
                {**doc, "chaos": {"kind": "exit", "attempts": 1}})).record
            # The chaos hook changes the task id but not the answer:
            # compare everything below the task envelope.
            assert got["cost"] == want["cost"]
            assert got["strategy"] == want["strategy"]
        finally:
            clean.close()
            crashy.close()


class TestQuarantine:
    def test_poison_problem_quarantined_for_all_waiters(self, tmp_path):
        metrics = Metrics()
        with make_engine(tmp_path, metrics, max_attempts=2) as engine:
            doc = {"model": "alexnet", "p": 4, "seed": 13,
                   "chaos": {"kind": "exit"}}
            results, errors = run_many(engine, doc, 3)
            assert results == [None] * 3
            for err in errors:
                assert err.status == 503
                assert err.kind == "quarantined"
                assert err.detail["attempts"] == 2
            # Subsequent request refused straight from the store.
            with pytest.raises(ServeError) as exc:
                engine.execute(request(doc))
            assert exc.value.kind == "quarantined"
        assert metrics.counter("serve_quarantined_total").value == 1

    def test_quarantine_survives_restart(self, tmp_path):
        doc = {"model": "alexnet", "p": 4, "seed": 13,
               "chaos": {"kind": "exit"}}
        with make_engine(tmp_path, max_attempts=2) as engine:
            with pytest.raises(ServeError):
                engine.execute(request(doc))
        with make_engine(tmp_path, max_attempts=2) as engine:
            with pytest.raises(ServeError) as exc:
                engine.execute(request(doc))
            assert exc.value.kind == "quarantined"

    def test_degrade_answers_quarantined_problem(self, tmp_path):
        with make_engine(tmp_path, max_attempts=2) as engine:
            doc = {"model": "alexnet", "p": 4, "seed": 13,
                   "chaos": {"kind": "exit"}}
            with pytest.raises(ServeError):
                engine.execute(request(doc))
            result = engine.execute(request({**doc, "degrade": True}))
            assert result.degraded
            assert result.record["task"]["resilient"] is True
            assert result.record["cost"] > 0


class TestDeadline:
    def test_waiter_deadline_maps_to_504(self, tmp_path):
        with make_engine(tmp_path, workers=1) as engine:
            doc = {"model": "alexnet", "p": 4, "seed": 17,
                   "deadline": 0.01,
                   "chaos": {"kind": "hang", "seconds": 30}}
            with pytest.raises(ServeError) as exc:
                engine.execute(request(doc))
            assert exc.value.status == 504
            assert exc.value.kind == "deadline"
