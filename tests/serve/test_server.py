"""HTTP-level serve tests: endpoints, backpressure, lifecycle, traces."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import Metrics
from repro.obs.trace import read_trace, span_tree
from repro.serve.admission import AdmissionController
from repro.serve.engine import SearchEngine
from repro.serve.server import StrategyServer


class Client:
    """Tiny urllib client; errors come back as (status, body) too."""

    def __init__(self, port):
        self.base = f"http://127.0.0.1:{port}"

    def get(self, path):
        try:
            with urllib.request.urlopen(self.base + path, timeout=30) as r:
                return r.status, json.loads(r.read()), dict(r.headers)
        except urllib.error.HTTPError as e:
            return e.code, json.loads(e.read()), dict(e.headers)

    def get_text(self, path):
        with urllib.request.urlopen(self.base + path, timeout=30) as r:
            return r.status, r.read().decode()

    def post(self, doc, raw=None):
        data = raw if raw is not None else json.dumps(doc).encode()
        req = urllib.request.Request(self.base + "/v1/search", data=data)
        try:
            with urllib.request.urlopen(req, timeout=90) as r:
                return r.status, json.loads(r.read()), dict(r.headers)
        except urllib.error.HTTPError as e:
            return e.code, json.loads(e.read()), dict(e.headers)


def start_server(tmp_path, *, max_queue=8, workers=2, trace=None,
                 allow_chaos=True, **engine_kwargs):
    metrics = Metrics()
    engine = SearchEngine(tmp_path / "state", workers=workers,
                          metrics=metrics, **engine_kwargs)
    admission = AdmissionController(max_queue, workers=workers)
    server = StrategyServer(
        ("127.0.0.1", 0), engine=engine, admission=admission,
        metrics=metrics, allow_chaos=allow_chaos,
        trace=None if trace is None else str(trace))
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server, Client(server.server_port)


class TestEndpoints:
    def test_health_ready_metrics_quarantine(self, tmp_path):
        server, client = start_server(tmp_path)
        try:
            assert client.get("/healthz")[0] == 200
            status, body, _ = client.get("/readyz")
            assert status == 200 and body["ready"]
            status, text = client.get_text("/metrics")
            assert status == 200
            assert "pase_serve_requests_total" in text
            status, body, _ = client.get("/v1/quarantine")
            assert status == 200 and body["quarantine"] == {}
            assert client.get("/nope")[0] == 404
        finally:
            server.close()

    def test_search_then_cache_and_metrics(self, tmp_path):
        server, client = start_server(tmp_path)
        try:
            status, body, _ = client.post({"model": "alexnet", "p": 4})
            assert status == 200 and not body["served"]["cached"]
            status, again, _ = client.post({"model": "alexnet", "p": 4})
            assert status == 200 and again["served"]["cached"]
            assert again["record"] == body["record"]
            assert again["fingerprint"] == body["fingerprint"]
            _, text = client.get_text("/metrics")
            assert 'pase_serve_requests_total{code="200"}' in text
        finally:
            server.close()

    def test_validation_failure_is_structured_400(self, tmp_path):
        server, client = start_server(tmp_path)
        try:
            status, body, _ = client.post({"model": "alexnet", "p": "x",
                                           "bogus": 1})
            assert status == 400
            fields = {e["field"] for e in body["error"]["errors"]}
            assert fields == {"p", "bogus"}
            status, body, _ = client.post(None, raw=b"{not json")
            assert status == 400
        finally:
            server.close()

    def test_oversized_body_413(self, tmp_path):
        server, client = start_server(tmp_path)
        try:
            status, body, _ = client.post(None, raw=b"x" * (65 * 1024))
            assert status == 413
            assert body["error"]["kind"] == "body-too-large"
        finally:
            server.close()


class TestBackpressure:
    def test_full_window_gets_429_with_retry_after(self, tmp_path):
        server, client = start_server(tmp_path, max_queue=1)
        try:
            server.admission.admit()  # occupy the only slot
            status, body, headers = client.post(
                {"model": "alexnet", "p": 4, "seed": 30})
            assert status == 429
            assert body["error"]["kind"] == "queue-full"
            assert float(headers["Retry-After"]) >= 1
            server.admission.release()
            status, _, _ = client.post(
                {"model": "alexnet", "p": 4, "seed": 30})
            assert status == 200
        finally:
            server.close()

    def test_cache_hits_bypass_admission(self, tmp_path):
        server, client = start_server(tmp_path, max_queue=1)
        try:
            assert client.post({"model": "alexnet", "p": 4})[0] == 200
            server.admission.admit()  # window now full
            status, body, _ = client.post({"model": "alexnet", "p": 4})
            assert status == 200 and body["served"]["cached"]
            server.admission.release()
        finally:
            server.close()


class TestLifecycle:
    def test_drain_refuses_new_work_and_readyz_503(self, tmp_path):
        server, client = start_server(tmp_path)
        try:
            assert server.drain(grace=5.0)
            assert client.get("/readyz")[0] == 503
            status, body, _ = client.post({"model": "alexnet", "p": 4,
                                           "seed": 31})
            assert status == 503
            assert body["error"]["kind"] == "draining"
            # Liveness stays up while draining.
            assert client.get("/healthz")[0] == 200
        finally:
            server.close()

    def test_restart_preserves_quarantine_and_cache(self, tmp_path):
        server, client = start_server(tmp_path, max_attempts=2)
        poison = {"model": "alexnet", "p": 4, "seed": 32,
                  "chaos": {"kind": "exit"}}
        try:
            assert client.post({"model": "alexnet", "p": 4})[0] == 200
            status, body, _ = client.post(poison)
            assert status == 503 and body["error"]["kind"] == "quarantined"
        finally:
            server.close()
        server2, client2 = start_server(tmp_path, max_attempts=2)
        try:
            status, body, _ = client2.post(poison)
            assert status == 503 and body["error"]["kind"] == "quarantined"
            status, body, _ = client2.post({"model": "alexnet", "p": 4})
            assert status == 200 and body["served"]["cached"]
            status, body, _ = client2.get("/v1/quarantine")
            assert len(body["quarantine"]) == 1
        finally:
            server2.close()


class TestTracing:
    def test_request_span_forest(self, tmp_path):
        trace = tmp_path / "serve.trace.jsonl"
        server, client = start_server(tmp_path, trace=trace)
        try:
            client.post({"model": "alexnet", "p": 4})   # search
            client.post({"model": "alexnet", "p": 4})   # cache
            client.post({"model": "alexnet", "p": "x"})  # 400
        finally:
            server.close()
        roots = span_tree(read_trace(trace))
        assert len(roots) == 3
        assert {r["name"] for r in roots} == {"serve.request"}
        allowed = {"serve.validate", "serve.admit", "serve.coalesce",
                   "serve.search", "serve.cache", "serve.respond"}
        for root in roots:
            names = [c["name"] for c in root["children"]]
            assert set(names) <= allowed
            assert "serve.respond" in names
        by_status = sorted(r["attrs"]["status"] for r in roots)
        assert by_status == [200, 200, 400]
        searched = [r for r in roots
                    if any(c["name"] == "serve.search"
                           for c in r["children"])]
        cached = [r for r in roots
                  if any(c["name"] == "serve.cache"
                         for c in r["children"])]
        assert len(searched) == 1 and len(cached) == 1
