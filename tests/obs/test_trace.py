"""Tracer: span nesting, crash-safe JSONL, reconstruction, summary."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    TRACE_VERSION,
    NullTracer,
    Tracer,
    format_trace_summary,
    read_trace,
    span_tree,
)


class FakeClock:
    """Deterministic monotonic clock: each read advances by ``step``."""

    __name__ = "fake"

    def __init__(self, step: float = 1.0) -> None:
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        self.t += self.step
        return self.t


def test_nesting_parent_ids_and_close_order():
    tr = Tracer(clock=FakeClock())
    with tr.span("run") as run:
        with tr.span("tables"):
            pass
        with tr.span("search"):
            with tr.span("dp"):
                pass
    # Close order: children before parents.
    assert [r["name"] for r in tr.records] == ["tables", "dp", "search", "run"]
    by_name = {r["name"]: r for r in tr.records}
    assert by_name["run"]["parent"] is None
    assert by_name["tables"]["parent"] == by_name["run"]["id"]
    assert by_name["search"]["parent"] == by_name["run"]["id"]
    assert by_name["dp"]["parent"] == by_name["search"]["id"]
    assert run.span_id == by_name["run"]["id"]
    for rec in tr.records:
        assert rec["seconds"] == rec["end"] - rec["start"] >= 0


def test_attrs_at_open_set_and_name_attribute():
    tr = Tracer(clock=FakeClock())
    with tr.span("dp.vertex", name="conv1", cells=4) as sp:
        sp.set(peak_bytes=128)
    (rec,) = tr.records
    # `name` is both the span name (positional-only) and a legal attr.
    assert rec["name"] == "dp.vertex"
    assert rec["attrs"] == {"name": "conv1", "cells": 4, "peak_bytes": 128}


def test_exception_stamps_error_attr_and_unwinds_stack():
    tr = Tracer(clock=FakeClock())
    with pytest.raises(RuntimeError):
        with tr.span("outer"):
            with tr.span("inner"):
                raise RuntimeError("boom")
    names = {r["name"]: r for r in tr.records}
    assert names["inner"]["attrs"]["error"] == "RuntimeError"
    assert names["outer"]["attrs"]["error"] == "RuntimeError"
    # The stack fully unwound: a new span is again a root.
    with tr.span("next"):
        pass
    assert tr.records[-1]["parent"] is None


def test_abandoned_inner_frames_are_dropped():
    tr = Tracer(clock=FakeClock())
    outer = tr.span("outer")
    tr.span("abandoned")  # entered conceptually, never exited
    outer.__exit__(None, None, None)
    (rec,) = tr.records
    assert rec["name"] == "outer"
    with tr.span("after"):
        pass
    assert tr.records[-1]["parent"] is None


def test_jsonl_file_meta_line_and_roundtrip(tmp_path):
    path = tmp_path / "trace.jsonl"
    with Tracer(path, clock=FakeClock()) as tr:
        with tr.span("run", p=8):
            with tr.span("tables"):
                pass
    records = read_trace(path)
    assert records[0]["kind"] == "meta"
    assert records[0]["version"] == TRACE_VERSION
    assert records[0]["clock"] == "fake"
    spans = [r for r in records if r["kind"] == "span"]
    assert spans == tr.records


def test_every_span_flushed_before_close(tmp_path):
    path = tmp_path / "trace.jsonl"
    tr = Tracer(path, clock=FakeClock())
    with tr.span("tables"):
        pass
    # No close(): the record must already be durable on disk.
    lines = path.read_text().splitlines()
    assert len(lines) == 2  # meta + 1 span
    assert json.loads(lines[1])["name"] == "tables"
    tr.close()


def test_read_trace_drops_torn_tail(tmp_path):
    path = tmp_path / "trace.jsonl"
    with Tracer(path, clock=FakeClock()) as tr:
        with tr.span("a"):
            pass
        with tr.span("b"):
            pass
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"kind": "span", "id": 99, "na')  # crash mid-write
    records = read_trace(path)
    assert [r["name"] for r in records if r["kind"] == "span"] == ["a", "b"]


def test_read_trace_rejects_malformed_middle_line(tmp_path):
    path = tmp_path / "trace.jsonl"
    with Tracer(path, clock=FakeClock()) as tr:
        with tr.span("a"):
            pass
    lines = path.read_text().splitlines()
    lines.insert(1, "not json at all")
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match="malformed trace line"):
        read_trace(path)


def test_span_tree_reconstruction_and_orphans():
    tr = Tracer(clock=FakeClock())
    with tr.span("run"):
        with tr.span("tables"):
            pass
        with tr.span("search"):
            pass
    roots = span_tree(tr.records)
    assert [r["name"] for r in roots] == ["run"]
    assert [c["name"] for c in roots[0]["children"]] == ["tables", "search"]
    # A child whose parent record is missing (torn tail) becomes a root.
    orphaned = [r for r in tr.records if r["name"] != "run"]
    roots = span_tree(orphaned)
    assert sorted(r["name"] for r in roots) == ["search", "tables"]


def test_format_trace_summary_lists_spans():
    tr = Tracer(clock=FakeClock())
    with tr.span("run"):
        for _ in range(3):
            with tr.span("dp.vertex"):
                pass
    text = format_trace_summary(tr.records)
    assert "trace summary" in text
    assert "dp.vertex" in text and "run" in text
    assert format_trace_summary([]) == "trace: no spans recorded"
    assert tr.summary() == text


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.records == ()
    sp = NULL_TRACER.span("anything", name="x", weird=object())
    with sp as inner:
        assert inner.set(a=1) is inner
    # Shared singleton span: no allocation per call.
    assert NULL_TRACER.span("other") is sp
    assert isinstance(NullTracer(), NullTracer)
    assert "disabled" in NULL_TRACER.summary()


def test_non_scalar_attrs_coerced_to_repr():
    tr = Tracer(clock=FakeClock())
    with tr.span("a", obj=[1, 2], flag=True, none=None):
        pass
    attrs = tr.records[0]["attrs"]
    assert attrs == {"obj": "[1, 2]", "flag": True, "none": None}
    json.dumps(tr.records[0])  # record stays JSON-serializable
