"""Ambient context: activate / current_* / resolution / @profiled."""

from __future__ import annotations

import pytest

from repro.obs import (
    NULL_METRICS,
    NULL_TRACER,
    Metrics,
    Tracer,
    activate,
    current_metrics,
    current_tracer,
    metrics_of,
    profiled,
    tracer_of,
)


def test_defaults_are_null():
    assert current_tracer() is NULL_TRACER
    assert current_metrics() is NULL_METRICS


def test_activate_installs_and_restores():
    tr, mx = Tracer(), Metrics()
    with activate(tracer=tr, metrics=mx):
        assert current_tracer() is tr
        assert current_metrics() is mx
    assert current_tracer() is NULL_TRACER
    assert current_metrics() is NULL_METRICS


def test_activate_restores_on_exception():
    tr = Tracer()
    with pytest.raises(RuntimeError):
        with activate(tracer=tr):
            raise RuntimeError
    assert current_tracer() is NULL_TRACER


def test_nested_activation_overrides_one_slot():
    tr1, tr2, mx = Tracer(), Tracer(), Metrics()
    with activate(tracer=tr1, metrics=mx):
        with activate(tracer=tr2):  # metrics=None: leave ambient alone
            assert current_tracer() is tr2
            assert current_metrics() is mx
        assert current_tracer() is tr1


class _Ctx:
    def __init__(self, tracer=None, metrics=None):
        self.tracer = tracer
        self.metrics = metrics


def test_of_resolvers_prefer_explicit_then_ambient():
    tr, mx = Tracer(), Metrics()
    assert tracer_of(None) is NULL_TRACER
    assert tracer_of(_Ctx(tracer=tr)) is tr
    assert metrics_of(_Ctx(metrics=mx)) is mx
    ambient = Tracer()
    with activate(tracer=ambient):
        # ctx slot of None means inherit the ambient pair.
        assert tracer_of(_Ctx()) is ambient
        assert tracer_of(None) is ambient
        assert tracer_of(_Ctx(tracer=tr)) is tr  # explicit still wins
    # Objects without the attributes (duck-typing) fall back too.
    assert tracer_of(object()) is NULL_TRACER
    assert metrics_of(object()) is NULL_METRICS


def test_profiled_bare_uses_qualname():
    @profiled
    def work(x):
        return x + 1

    tr = Tracer()
    with activate(tracer=tr):
        assert work(1) == 2
    assert len(tr.records) == 1
    assert "work" in tr.records[0]["name"]
    assert work.__wrapped__(1) == 2


def test_profiled_named_with_attrs():
    @profiled("baseline.mcmc", flavour="anneal")
    def work():
        return 7

    tr = Tracer()
    with activate(tracer=tr):
        assert work() == 7
    (rec,) = tr.records
    assert rec["name"] == "baseline.mcmc"
    assert rec["attrs"] == {"flavour": "anneal"}


def test_profiled_without_activation_is_silent():
    calls = []

    @profiled("quiet")
    def work():
        calls.append(1)

    work()
    assert calls == [1]  # ran fine, nothing recorded anywhere


def test_profiled_nests_under_enclosing_span():
    @profiled("inner")
    def work():
        pass

    tr = Tracer()
    with activate(tracer=tr):
        with tr.span("outer"):
            work()
    by_name = {r["name"]: r for r in tr.records}
    assert by_name["inner"]["parent"] == by_name["outer"]["id"]
