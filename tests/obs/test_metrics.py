"""Metrics registry: instruments, exporters, atomic dump."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    Metrics,
    atomic_write_text,
)


def test_counter_monotone():
    c = Counter("dp_cells_total")
    c.inc()
    c.inc(41)
    assert c.snapshot() == 42
    with pytest.raises(ValueError, match="negative"):
        c.inc(-1)


def test_gauge_set_and_inc():
    g = Gauge("dp_cells_per_second")
    g.set(10.5)
    g.inc(0.5)
    assert g.snapshot() == 11.0


def test_histogram_cumulative_buckets():
    h = Histogram("lat", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 5.0, 50.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(55.55)
    # Prometheus semantics: buckets are cumulative, +Inf catches all.
    assert snap["buckets"]["0.1"] == 1
    assert snap["buckets"]["1.0"] == 2
    assert snap["buckets"]["10.0"] == 3
    assert snap["buckets"]["+Inf"] == 4
    with pytest.raises(ValueError, match="at least one bucket"):
        Histogram("empty", buckets=())


def test_registry_get_or_create_and_kind_clash():
    m = Metrics()
    c1 = m.counter("hits_total", "cache hits")
    c2 = m.counter("hits_total")
    assert c1 is c2
    assert c1.help == "cache hits"  # first registration wins
    with pytest.raises(ValueError, match="already registered as counter"):
        m.gauge("hits_total")
    with pytest.raises(ValueError, match="invalid metric name"):
        m.counter("Bad-Name")
    assert len(m) == 1


def test_json_export_roundtrips():
    m = Metrics()
    m.counter("a_total", "a help").inc(3)
    m.gauge("b").set(1.5)
    m.histogram("c_seconds").observe(0.5)
    doc = json.loads(m.to_json())
    assert doc["a_total"] == {"kind": "counter", "help": "a help", "value": 3}
    assert doc["b"]["value"] == 1.5
    assert doc["c_seconds"]["value"]["count"] == 1


def test_prometheus_exposition_format():
    m = Metrics()
    m.counter("dp_cells_total", "cells evaluated").inc(7)
    m.histogram("poll_seconds", buckets=(0.1, 1.0)).observe(0.05)
    text = m.to_prometheus()
    assert "# HELP pase_dp_cells_total cells evaluated" in text
    assert "# TYPE pase_dp_cells_total counter" in text
    assert "pase_dp_cells_total 7" in text
    assert "# TYPE pase_poll_seconds histogram" in text
    assert 'pase_poll_seconds_bucket{le="0.1"} 1' in text
    assert 'pase_poll_seconds_bucket{le="1.0"} 1' in text
    assert 'pase_poll_seconds_bucket{le="+Inf"} 1' in text
    assert "pase_poll_seconds_sum 0.05" in text
    assert "pase_poll_seconds_count 1" in text
    assert text.endswith("\n")


def test_dump_picks_format_from_extension(tmp_path):
    m = Metrics()
    m.counter("x_total").inc()
    prom = tmp_path / "out.prom"
    js = tmp_path / "out.json"
    m.dump(prom)
    m.dump(js)
    assert "# TYPE pase_x_total counter" in prom.read_text()
    assert json.loads(js.read_text())["x_total"]["value"] == 1
    # No stray temp files left behind.
    assert sorted(p.name for p in tmp_path.iterdir()) == ["out.json",
                                                          "out.prom"]


def test_atomic_write_creates_parents_and_replaces(tmp_path):
    path = tmp_path / "deep" / "nested" / "m.json"
    atomic_write_text(path, "one")
    atomic_write_text(path, "two")
    assert path.read_text() == "two"
    assert [p.name for p in path.parent.iterdir()] == ["m.json"]


def test_null_metrics_is_inert(tmp_path):
    assert NULL_METRICS.enabled is False
    inst = NULL_METRICS.counter("anything")
    inst.inc(5)
    inst.set(3)
    inst.observe(0.1)
    assert inst.snapshot() == 0.0
    assert NULL_METRICS.gauge("g") is inst  # shared singleton
    assert NULL_METRICS.histogram("h") is inst
    assert len(NULL_METRICS) == 0
    assert list(NULL_METRICS) == []
    assert NULL_METRICS.to_prometheus() == ""
    NULL_METRICS.dump(tmp_path / "never.json")
    assert not (tmp_path / "never.json").exists()


def test_default_buckets_sorted_and_sub_second():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
    assert DEFAULT_BUCKETS[0] == 1e-6 and DEFAULT_BUCKETS[-1] == 1.0


def test_labels_create_distinct_instruments():
    m = Metrics()
    ok = m.counter("requests_total", labels={"code": "200"})
    bad = m.counter("requests_total", labels={"code": "500"})
    assert ok is not bad
    ok.inc(3)
    bad.inc()
    assert ok.snapshot() == 3 and bad.snapshot() == 1
    # Same name+labels is the same instrument.
    assert m.counter("requests_total", labels={"code": "200"}) is ok
    assert len(m) == 2


def test_labeled_family_shares_one_prometheus_header():
    m = Metrics()
    m.counter("requests_total", "How many", labels={"code": "200"}).inc()
    m.counter("requests_total", "How many", labels={"code": "429"}).inc(2)
    prom = m.to_prometheus()
    assert prom.count("# HELP pase_requests_total") == 1
    assert prom.count("# TYPE pase_requests_total counter") == 1
    assert 'pase_requests_total{code="200"} 1' in prom
    assert 'pase_requests_total{code="429"} 2' in prom


def test_labeled_to_json_keys_carry_label_suffix():
    m = Metrics()
    m.counter("requests_total", labels={"code": "200"}).inc()
    doc = json.loads(m.to_json())
    assert doc['requests_total{code="200"}']["value"] == 1
    assert doc['requests_total{code="200"}']["kind"] == "counter"


def test_invalid_label_names_and_values_raise():
    m = Metrics()
    with pytest.raises(ValueError):
        m.counter("x_total", labels={"bad name": "v"})
    with pytest.raises(ValueError):
        m.counter("x_total", labels={"code": 'quo"te'})


def test_null_metrics_accepts_labels():
    inst = NULL_METRICS.counter("x_total", labels={"code": "200"})
    inst.inc()
    assert inst.snapshot() == 0.0
