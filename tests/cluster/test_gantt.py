"""Tests for the ASCII Gantt renderer."""

from repro.baselines import data_parallel_strategy
from repro.cluster import render_gantt, simulate_step
from repro.cluster.trace import TraceRecord
from repro.core.machine import GTX1080TI
from repro.models import mlp


class TestGantt:
    def test_empty(self):
        assert render_gantt([], 0.0) == ""

    def test_rows_and_width(self):
        trace = [TraceRecord(0, "fwd", "t", (("gpu", 0),), 0.0, 1.0),
                 TraceRecord(1, "bwd", "t", (("gpu", 1),), 0.0, 2.0)]
        text = render_gantt(trace, 2.0, width=10)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].count("F") == 5  # first half of the row
        assert "B" * 10 in lines[1]

    def test_idle_rendered_as_dots(self):
        trace = [TraceRecord(0, "fwd", "t", (("gpu", 0),), 0.5, 1.0)]
        text = render_gantt(trace, 1.0, width=10)
        assert text.count(".") == 5

    def test_real_simulation_renders(self):
        g = mlp(batch=32, hidden=(128,))
        rep = simulate_step(g, data_parallel_strategy(g, 4), GTX1080TI, 4,
                            keep_trace=True)
        text = render_gantt(rep.trace, rep.step_time, width=60,
                            resources=[("gpu", 0), ("tx", 0)])
        assert "B" in text and "g" in text  # compute + gradient sync rows

    def test_resource_filter(self):
        trace = [TraceRecord(0, "fwd", "t", (("gpu", 0),), 0.0, 1.0)]
        text = render_gantt(trace, 1.0, width=5, resources=[("gpu", 1)])
        assert text.count(".") == 5
