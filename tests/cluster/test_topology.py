"""Tests for cluster topology and link classes."""

import pytest

from repro.cluster.topology import ClusterTopology, LinkKind
from repro.core.exceptions import SimulationError
from repro.core.machine import GTX1080TI, RTX2080TI


class TestTopology:
    def test_node_packing(self):
        topo = ClusterTopology(GTX1080TI, 16)
        assert topo.num_nodes == 2
        assert topo.node_of(0) == 0 and topo.node_of(7) == 0
        assert topo.node_of(8) == 1

    def test_device_bounds(self):
        topo = ClusterTopology(GTX1080TI, 4)
        with pytest.raises(SimulationError):
            topo.node_of(4)
        with pytest.raises(SimulationError):
            ClusterTopology(GTX1080TI, 0)

    def test_link_kinds(self):
        topo = ClusterTopology(GTX1080TI, 16)
        assert topo.link_kind(3, 3) is LinkKind.LOCAL
        assert topo.link_kind(0, 7) is LinkKind.INTRA_P2P
        assert topo.link_kind(0, 8) is LinkKind.INTER

    def test_no_p2p_machine(self):
        topo = ClusterTopology(RTX2080TI, 8)
        assert topo.link_kind(0, 1) is LinkKind.INTRA_HOST
        # Host staging halves the effective intra bandwidth.
        assert topo.bandwidth(0, 1) == RTX2080TI.intra_node_bw / 2

    def test_bandwidths_ordered(self):
        topo = ClusterTopology(GTX1080TI, 16)
        assert topo.bandwidth(0, 0) == float("inf")
        assert topo.bandwidth(0, 1) > topo.bandwidth(0, 8)

    def test_transfer_time(self):
        topo = ClusterTopology(GTX1080TI, 16)
        assert topo.transfer_time(0, 0, 0) == 0.0
        assert topo.transfer_time(1e9, 3, 3) == 0.0
        t = topo.transfer_time(GTX1080TI.inter_node_bw, 0, 8)
        assert t == pytest.approx(1.0)
