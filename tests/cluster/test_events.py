"""Tests for the list-scheduling event engine."""

import pytest

from repro.cluster.events import ListScheduler, Task
from repro.core.exceptions import SimulationError


def t(kind="w", label="t", res=(("gpu", 0),), dur=1.0, deps=()):
    return Task(kind=kind, label=label, resources=res, duration=dur,
                deps=tuple(deps))


class TestScheduler:
    def test_empty(self):
        assert ListScheduler().run() == (0.0, [])

    def test_serialization_on_shared_resource(self):
        s = ListScheduler()
        s.add(t(dur=2.0))
        s.add(t(dur=3.0))
        makespan, _ = s.run()
        assert makespan == pytest.approx(5.0)

    def test_parallel_on_distinct_resources(self):
        s = ListScheduler()
        s.add(t(dur=2.0, res=(("gpu", 0),)))
        s.add(t(dur=3.0, res=(("gpu", 1),)))
        makespan, _ = s.run()
        assert makespan == pytest.approx(3.0)

    def test_dependencies_respected(self):
        s = ListScheduler()
        a = s.add(t(dur=2.0, res=(("gpu", 0),)))
        s.add(t(dur=1.0, res=(("gpu", 1),), deps=[a]))
        makespan, trace = s.run()
        assert makespan == pytest.approx(3.0)
        by_tid = {r.tid: r for r in trace}
        assert by_tid[1].start == pytest.approx(2.0)

    def test_multi_resource_task_blocks_both(self):
        s = ListScheduler()
        s.add(t(dur=2.0, res=(("nic", 0), ("nic", 1))))
        s.add(t(dur=1.0, res=(("nic", 1),)))
        makespan, _ = s.run()
        assert makespan == pytest.approx(3.0)

    def test_overlap_comm_compute(self):
        """Distinct resource classes run concurrently — the mechanism that
        hides gradient sync behind backward compute."""
        s = ListScheduler()
        a = s.add(t(dur=1.0, res=(("gpu", 0),)))
        s.add(t(kind="sync", dur=5.0, res=(("nic", 0),), deps=[a]))
        s.add(t(dur=4.0, res=(("gpu", 0),), deps=[a]))
        makespan, _ = s.run()
        assert makespan == pytest.approx(6.0)  # not 10

    def test_unknown_dep_rejected(self):
        s = ListScheduler()
        with pytest.raises(SimulationError):
            s.add(t(deps=[5]))

    def test_negative_duration_rejected(self):
        s = ListScheduler()
        with pytest.raises(SimulationError):
            s.add(t(dur=-1.0))

    def test_zero_duration_ok(self):
        s = ListScheduler()
        s.add(t(dur=0.0))
        assert s.run()[0] == 0.0

    def test_trace_complete(self):
        s = ListScheduler()
        for _ in range(5):
            s.add(t())
        makespan, trace = s.run()
        assert len(trace) == 5
        assert makespan == pytest.approx(5.0)

    def test_earliest_ready_priority(self):
        """A task that becomes ready earlier is scheduled first on a
        contended resource."""
        s = ListScheduler()
        a = s.add(t(dur=1.0, res=(("gpu", 1),)))
        late = s.add(t(dur=10.0, res=(("gpu", 0),), deps=[a]))
        early = s.add(t(dur=1.0, res=(("gpu", 0),)))
        _, trace = s.run()
        by_tid = {r.tid: r for r in trace}
        assert by_tid[early].start < by_tid[late].start
