"""Tests for collective timing models."""

import pytest

from repro.cluster.collectives import (
    RING_CHANNELS,
    alltoall_time,
    group_bottleneck_bw,
    ring_allgather_time,
    ring_allreduce_time,
    ring_reduce_scatter_time,
)
from repro.cluster.topology import ClusterTopology
from repro.core.machine import GTX1080TI


@pytest.fixture
def topo():
    return ClusterTopology(GTX1080TI, 16)


class TestBottleneck:
    def test_single_device_infinite(self, topo):
        assert group_bottleneck_bw(topo, [3]) == float("inf")

    def test_intra_node_group(self, topo):
        assert group_bottleneck_bw(topo, [0, 1, 2]) == GTX1080TI.intra_node_bw

    def test_cross_node_group_bottlenecked_by_ib(self, topo):
        assert group_bottleneck_bw(topo, [0, 1, 8]) == GTX1080TI.inter_node_bw

    def test_duplicates_ignored(self, topo):
        assert group_bottleneck_bw(topo, [0, 0, 1]) == \
            group_bottleneck_bw(topo, [0, 1])


class TestRingTimes:
    def test_trivial_cases(self, topo):
        assert ring_allreduce_time(topo, 1e6, [3]) == 0.0
        assert ring_allreduce_time(topo, 0.0, [0, 1]) == 0.0

    def test_allreduce_formula(self, topo):
        t = ring_allreduce_time(topo, 1e9, [0, 1, 2, 3])
        expect = 2 * 1e9 * 3 / 4 / GTX1080TI.intra_node_bw / RING_CHANNELS
        assert t == pytest.approx(expect)

    def test_allreduce_twice_allgather(self, topo):
        devs = [0, 1, 2, 3]
        ar = ring_allreduce_time(topo, 1e9, devs)
        ag = ring_allgather_time(topo, 1e9, devs)
        rs = ring_reduce_scatter_time(topo, 1e9, devs)
        assert ar == pytest.approx(ag + rs)

    def test_cross_node_slower(self, topo):
        intra = ring_allreduce_time(topo, 1e9, [0, 1, 2, 3])
        cross = ring_allreduce_time(topo, 1e9, [0, 1, 8, 9])
        assert cross > intra

    def test_time_grows_with_group(self, topo):
        t2 = ring_allreduce_time(topo, 1e9, [0, 1])
        t8 = ring_allreduce_time(topo, 1e9, list(range(8)))
        assert t8 > t2  # (m-1)/m grows

    def test_alltoall(self, topo):
        assert alltoall_time(topo, 1e9, [0]) == 0.0
        assert alltoall_time(topo, 1e9, [0, 1, 2, 3]) > 0


class TestAllToAll:
    """The all-to-all moves a distinct block per (src, dst) pair; it was
    once a byte-for-byte copy of the all-gather formula."""

    def test_formula(self, topo):
        t = alltoall_time(topo, 1e9, [0, 1, 2, 3])
        expect = 1e9 * 3 / 2 / GTX1080TI.intra_node_bw / RING_CHANNELS
        assert t == pytest.approx(expect)

    def test_costs_m_over_2_times_allgather(self, topo):
        """Per-link forwarded traffic is nbytes·(m-1)/2 vs the
        all-gather's nbytes·(m-1)/m — a factor m/2."""
        for m in (3, 4, 8):
            devs = list(range(m))
            a2a = alltoall_time(topo, 1e9, devs)
            ag = ring_allgather_time(topo, 1e9, devs)
            assert a2a == pytest.approx(ag * m / 2)
            assert a2a > ag  # strictly slower beyond pairs

    def test_pairwise_exchange_equals_allgather(self, topo):
        """At m = 2 every block is a direct neighbor exchange — the two
        schedules coincide."""
        a2a = alltoall_time(topo, 1e9, [0, 1])
        ag = ring_allgather_time(topo, 1e9, [0, 1])
        assert a2a == pytest.approx(ag)

    def test_grows_superlinearly_with_group(self, topo):
        """Total time scales with (m-1)/2, unlike the all-gather's
        saturating (m-1)/m."""
        t2 = alltoall_time(topo, 1e9, [0, 1])
        t8 = alltoall_time(topo, 1e9, list(range(8)))
        assert t8 == pytest.approx(t2 * 7)
