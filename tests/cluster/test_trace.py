"""Tests for trace records and utilization summaries."""

import pytest

from repro.cluster.trace import TraceRecord, busy_time_by_kind, utilization


def rec(tid=0, kind="fwd", start=0.0, end=1.0, res=(("gpu", 0),)):
    return TraceRecord(tid=tid, kind=kind, label="t", resources=res,
                       start=start, end=end)


class TestTrace:
    def test_duration(self):
        assert rec(start=1.0, end=3.5).duration == 2.5

    def test_utilization(self):
        trace = [rec(0, start=0, end=2), rec(1, start=2, end=4,
                                             res=(("gpu", 1),))]
        u = utilization(trace, 4.0)
        assert u[("gpu", 0)] == pytest.approx(0.5)
        assert u[("gpu", 1)] == pytest.approx(0.5)

    def test_utilization_clipped(self):
        u = utilization([rec(start=0, end=10)], 5.0)
        assert u[("gpu", 0)] == 1.0

    def test_utilization_zero_makespan(self):
        assert utilization([rec(start=0, end=0)], 0.0) == {("gpu", 0): 0.0}

    def test_busy_by_kind(self):
        trace = [rec(0, kind="fwd", end=2), rec(1, kind="bwd", end=3),
                 rec(2, kind="fwd", start=2, end=3)]
        busy = busy_time_by_kind(trace)
        assert busy == {"bwd": 3.0, "fwd": 3.0}


class TestCriticalPath:
    def test_empty(self):
        from repro.cluster import critical_path
        assert critical_path([]) == []

    def test_serial_chain(self):
        from repro.cluster import critical_path
        trace = [rec(0, start=0, end=1), rec(1, start=1, end=3),
                 rec(2, start=3, end=4)]
        chain = critical_path(trace)
        assert [r.tid for r in chain] == [0, 1, 2]

    def test_parallel_branch_excluded(self):
        from repro.cluster import critical_path
        trace = [rec(0, start=0, end=1),
                 rec(1, start=0, end=0.5, res=(("gpu", 1),)),
                 rec(2, start=1, end=2)]
        chain = critical_path(trace)
        assert 1 not in [r.tid for r in chain]

    def test_explains_simulated_step(self):
        from repro.baselines import data_parallel_strategy
        from repro.cluster import critical_path_by_kind, simulate_step
        from repro.core.machine import RTX2080TI
        from repro.models import mlp as mk
        g = mk(batch=32, hidden=(1024,), classes=512)
        rep = simulate_step(g, data_parallel_strategy(g, 8), RTX2080TI, 8,
                            keep_trace=True)
        by_kind = critical_path_by_kind(rep.trace)
        # The sync-bound step is explained by gradsync on the path.
        assert by_kind.get("gradsync", 0.0) > by_kind.get("fwd", 0.0)
        assert sum(by_kind.values()) <= rep.step_time * 1.001
