"""Tests for the training-step simulator."""

import numpy as np
import pytest

from repro.assignment.greedy import greedy_placement
from repro.baselines import data_parallel_strategy
from repro.cluster import simulate_step
from repro.cluster.events import ListScheduler, Task
from repro.cluster.simulator import DEFAULT_COMPUTE_EFFICIENCY
from repro.core.exceptions import SimulationError
from repro.core.strategy import Strategy
from repro.core.machine import GTX1080TI, RTX2080TI
from repro.models import mlp
from tests.conftest import build_dag


@pytest.fixture(scope="module")
def small_mlp():
    return mlp(batch=32, hidden=(256, 256), classes=128)


class TestBasics:
    def test_serial_on_one_device(self, small_mlp):
        s = Strategy.serial(small_mlp)
        rep = simulate_step(small_mlp, s, GTX1080TI, 1)
        total_flops = small_mlp.stats()["total_flops"]
        lower = total_flops / (GTX1080TI.peak_flops * DEFAULT_COMPUTE_EFFICIENCY)
        assert rep.step_time >= lower * 0.99
        assert rep.throughput == pytest.approx(32 / rep.step_time)

    def test_report_fields(self, small_mlp):
        s = data_parallel_strategy(small_mlp, 4)
        rep = simulate_step(small_mlp, s, GTX1080TI, 4)
        assert rep.p == 4 and rep.machine == "1080Ti" and rep.batch == 32
        assert rep.task_count > 0
        assert "fwd" in rep.busy_by_kind and "bwd" in rep.busy_by_kind
        assert "gradsync" in rep.busy_by_kind  # replicated weights sync
        assert rep.trace == []  # not kept by default

    def test_keep_trace(self, small_mlp):
        s = Strategy.serial(small_mlp)
        rep = simulate_step(small_mlp, s, GTX1080TI, 1, keep_trace=True)
        assert len(rep.trace) == rep.task_count

    def test_invalid_strategy_rejected(self, small_mlp):
        s = data_parallel_strategy(small_mlp, 8)
        from repro.core.exceptions import StrategyError
        with pytest.raises(StrategyError):
            simulate_step(small_mlp, s, GTX1080TI, 4)  # 8 shards, p=4

    def test_summary(self, small_mlp):
        s = Strategy.serial(small_mlp)
        text = simulate_step(small_mlp, s, GTX1080TI, 1).summary()
        assert "samples/s" in text

    def test_explicit_batch(self, small_mlp):
        s = Strategy.serial(small_mlp)
        rep = simulate_step(small_mlp, s, GTX1080TI, 1, batch=99)
        assert rep.batch == 99


class TestPhysics:
    def test_data_parallel_speedup_is_sublinear(self):
        # Compute-heavy instance: a large batch amortizes the weight sync.
        g = mlp(batch=4096, hidden=(512,), classes=64)
        serial = simulate_step(g, Strategy.serial(g), GTX1080TI, 1)
        dp = simulate_step(g, data_parallel_strategy(g, 4), GTX1080TI, 4)
        speedup = serial.step_time / dp.step_time
        assert 1.0 < speedup <= 4.0 + 1e-9

    def test_data_parallel_hurts_tiny_models(self, small_mlp):
        """With a small batch the gradient sync dwarfs the compute —
        the paper's motivation for non-batch parallelism."""
        serial = simulate_step(small_mlp, Strategy.serial(small_mlp),
                               GTX1080TI, 1)
        dp = simulate_step(small_mlp, data_parallel_strategy(small_mlp, 4),
                           GTX1080TI, 4)
        assert dp.step_time > serial.step_time

    def test_low_balance_machine_slower_step(self, small_mlp):
        s = data_parallel_strategy(small_mlp, 8)
        fast = simulate_step(small_mlp, s, GTX1080TI, 8)
        # 2080Ti computes faster but syncs much slower; for a sync-bound
        # step the step time is longer.
        slow = simulate_step(small_mlp, s, RTX2080TI, 8)
        assert slow.busy_by_kind["gradsync"] > fast.busy_by_kind["gradsync"]

    def test_gradsync_overlaps_backward(self, small_mlp):
        """Step time must be far below the serial sum of all task time —
        the overlap the analytic model ignores."""
        s = data_parallel_strategy(small_mlp, 8)
        rep = simulate_step(small_mlp, s, GTX1080TI, 8)
        total_busy = sum(rep.busy_by_kind.values())
        assert rep.step_time < total_busy

    def test_mismatched_layouts_transfer(self):
        g = build_dag(2, [], batch=16, width=16)
        s = Strategy({"n0": (4, 1), "n1": (1, 4)})
        rep = simulate_step(g, s, GTX1080TI, 4)
        assert rep.busy_by_kind.get("xfer", 0.0) > 0

    def test_matched_layouts_no_transfer(self):
        g = build_dag(2, [], batch=16, width=16)
        s = Strategy({"n0": (4, 1), "n1": (4, 1)})
        rep = simulate_step(g, s, GTX1080TI, 4)
        assert rep.busy_by_kind.get("xfer", 0.0) == 0.0

    def test_reduction_split_adds_reduce_tasks(self):
        g = build_dag(2, [], reduction_mask=0b10)
        assignment = {"n0": (1, 1), "n1": (1, 1, 4)}
        rep = simulate_step(g, Strategy(assignment), GTX1080TI, 4)
        assert rep.busy_by_kind.get("reduce", 0.0) > 0

    def test_update_phase_present_for_params(self):
        g = build_dag(2, [], param_mask=0b11)
        s = Strategy({n: (2, 1) for n in g.node_names})
        rep = simulate_step(g, s, GTX1080TI, 2)
        assert rep.busy_by_kind.get("update", 0.0) > 0

    def test_utilization_bounded(self, small_mlp):
        s = data_parallel_strategy(small_mlp, 4)
        rep = simulate_step(small_mlp, s, GTX1080TI, 4)
        assert all(0.0 <= u <= 1.0 for u in rep.device_utilization.values())


class TestErrors:
    """SimulationError paths: bad placements, bad devices, bad DAGs."""

    def test_unplaced_shards_rejected(self, small_mlp):
        s = data_parallel_strategy(small_mlp, 4)
        pl = greedy_placement(small_mlp, s, 4)
        del pl.devices["fc1"]
        with pytest.raises(SimulationError, match="no placement"):
            simulate_step(small_mlp, s, GTX1080TI, 4, placement=pl)

    def test_unknown_device_rejected(self, small_mlp):
        s = data_parallel_strategy(small_mlp, 4)
        pl = greedy_placement(small_mlp, s, 4)
        pl.devices["fc1"] = np.array([0, 1, 2, 99], dtype=np.int64)
        with pytest.raises(SimulationError, match="outside"):
            simulate_step(small_mlp, s, GTX1080TI, 4, placement=pl)

    def test_colliding_shards_rejected(self, small_mlp):
        s = data_parallel_strategy(small_mlp, 4)
        pl = greedy_placement(small_mlp, s, 4)
        pl.devices["fc1"] = np.array([0, 0, 1, 2], dtype=np.int64)
        with pytest.raises(SimulationError, match="two shards"):
            simulate_step(small_mlp, s, GTX1080TI, 4, placement=pl)

    def test_dependency_cycle_detected(self):
        """`add` forbids forward deps, so a cycle can only be forged by
        mutation — `run` must still refuse to schedule it."""
        sched = ListScheduler()
        a = sched.add(Task(kind="fwd", label="a", resources=(("gpu", 0),),
                           duration=1.0))
        b = sched.add(Task(kind="fwd", label="b", resources=(("gpu", 0),),
                           duration=1.0, deps=(a,)))
        sched.tasks[a].deps = (b,)
        with pytest.raises(SimulationError, match="cycle"):
            sched.run()

    def test_future_dependency_rejected_at_add(self):
        sched = ListScheduler()
        with pytest.raises(SimulationError, match="unknown/future"):
            sched.add(Task(kind="fwd", label="a", resources=(("gpu", 0),),
                           duration=1.0, deps=(5,)))

    def test_negative_duration_rejected_at_add(self):
        sched = ListScheduler()
        with pytest.raises(SimulationError, match="negative duration"):
            sched.add(Task(kind="fwd", label="a", resources=(("gpu", 0),),
                           duration=-1.0))

    def test_missing_batch_dim_needs_explicit_batch(self):
        from repro.core.dims import Dim
        from repro.core.graph import CompGraph
        from repro.core.tensors import TensorSpec
        from repro.ops.base import OpSpec


        op = OpSpec(name="nb", kind="test", dims=(Dim("m", 8),),
                    inputs={"in0": TensorSpec(axes=("m",))},
                    outputs={"out": TensorSpec(axes=("m",))},
                    flops_per_point=2.0)
        g = CompGraph([op])
        s = Strategy.serial(g)
        with pytest.raises(SimulationError, match="batch"):
            simulate_step(g, s, GTX1080TI, 1)
        rep = simulate_step(g, s, GTX1080TI, 1, batch=16)
        assert rep.batch == 16


class TestMultiNode:
    def test_cross_node_sync_slower(self):
        """Spanning two nodes routes the gradient ring over InfiniBand,
        so the same strategy syncs slower than the intra-node run."""
        g = mlp(batch=64, hidden=(2048,), classes=512)
        one_node = simulate_step(g, data_parallel_strategy(g, 8),
                                 GTX1080TI, 8)
        two_node = simulate_step(g, data_parallel_strategy(g, 16),
                                 GTX1080TI, 16)
        # Per-device gradsync time is larger across nodes despite the
        # per-device compute being halved.
        assert two_node.busy_by_kind["gradsync"] / 16 > \
            one_node.busy_by_kind["gradsync"] / 8 * 0.9

    def test_topology_aware_placement_packs_nodes(self):
        from repro.assignment import greedy_placement
        g = mlp(batch=64, hidden=(128,))
        s = data_parallel_strategy(g, 4)
        pl = greedy_placement(g, s, 16)
        # 4 shards land on the first node's devices (0..7).
        assert all(d < 8 for d in pl.devices["fc1"])
