"""Tests for shard-block geometry."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.assignment.blocks import (
    axis_block,
    block_overlap,
    shard_indices,
    tensor_blocks,
)
from tests.core.test_tensors import gemm_op


class TestShardIndices:
    def test_empty_config(self):
        assert shard_indices(()).shape == (1, 0)

    def test_grid(self):
        idx = shard_indices((2, 3))
        assert idx.shape == (6, 2)
        assert idx.tolist()[0] == [0, 0]
        assert idx.tolist()[-1] == [1, 2]

    def test_row_major(self):
        idx = shard_indices((2, 2))
        assert idx.tolist() == [[0, 0], [0, 1], [1, 0], [1, 1]]


class TestAxisBlock:
    def test_exact(self):
        start, stop = axis_block(8, 2, np.array([0, 1]))
        assert start.tolist() == [0, 4] and stop.tolist() == [4, 8]

    def test_ceil_last_block_short(self):
        start, stop = axis_block(7, 2, np.array([0, 1]))
        assert (stop - start).tolist() == [4, 3]

    def test_empty_trailing_block(self):
        start, stop = axis_block(4, 3, np.array([2]))
        assert (stop - start).tolist() == [0]

    @given(st.integers(1, 100), st.integers(1, 16))
    def test_blocks_tile_axis(self, size, split):
        idx = np.arange(split)
        start, stop = axis_block(size, split, idx)
        assert start[0] == 0 and stop[-1] == size or stop.max() == size
        # contiguous, non-overlapping
        assert (start[1:] >= stop[:-1] - 0).all()
        assert int((stop - start).sum()) == size


class TestTensorBlocks:
    def test_gemm_input_blocks(self):
        op = gemm_op(b=8, n=4, c=6)
        cfg = (2, 1, 3)
        shards = shard_indices(cfg)
        blocks = tensor_blocks(op, op.inputs["in"], cfg, shards)
        assert blocks.shape == (6, 2, 2)
        # shard (0,0,0): b in [0,4), c in [0,2)
        assert blocks[0].tolist() == [[0, 4], [0, 2]]

    def test_replicated_dims_same_block(self):
        op = gemm_op(b=8, n=4, c=6)
        cfg = (1, 4, 1)  # n-split: input identical across shards
        shards = shard_indices(cfg)
        blocks = tensor_blocks(op, op.inputs["in"], cfg, shards)
        assert (blocks == blocks[0]).all()


class TestBlockOverlap:
    def test_identical(self):
        a = np.array([[[0, 4], [0, 4]]])
        assert block_overlap(a, a).tolist() == [[16]]

    def test_disjoint(self):
        a = np.array([[[0, 4]]])
        b = np.array([[[4, 8]]])
        assert block_overlap(a, b).tolist() == [[0]]

    def test_partial(self):
        a = np.array([[[0, 4]]])
        b = np.array([[[2, 8]]])
        assert block_overlap(a, b).tolist() == [[2]]

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            block_overlap(np.zeros((1, 1, 2)), np.zeros((1, 2, 2)))

    def test_zero_rank(self):
        out = block_overlap(np.zeros((2, 0, 2)), np.zeros((3, 0, 2)))
        assert out.shape == (2, 3) and (out == 1).all()

    def test_partition_overlaps_sum_to_block(self):
        """Producer blocks tile the tensor, so overlaps with any consumer
        block sum to the consumer block's volume."""
        op = gemm_op(b=8, n=4, c=6)
        out = op.outputs["out"]
        prod_cfg, cons_cfg = (4, 2, 1), (2, 1, 3)
        prod = tensor_blocks(op, out, prod_cfg, shard_indices(prod_cfg))
        cons = tensor_blocks(op, out, cons_cfg, shard_indices(cons_cfg))
        ov = block_overlap(cons, prod)
        # Deduplicate replicated producer columns before summing.
        uniq = {}
        for j in range(prod.shape[0]):
            uniq[prod[j].tobytes()] = j
        cols = sorted(uniq.values())
        vols = (cons[:, :, 1] - cons[:, :, 0]).prod(axis=1)
        assert (ov[:, cols].sum(axis=1) == vols).all()
