"""Tests for greedy locality placement."""

import numpy as np
import pytest

from repro.assignment import greedy_placement
from repro.baselines import data_parallel_strategy
from repro.core.exceptions import SimulationError
from repro.core.strategy import Strategy
from repro.models import mlp
from tests.conftest import build_dag


class TestGreedyPlacement:
    def test_valid_permutations(self):
        g = mlp(batch=16, hidden=(32,))
        s = data_parallel_strategy(g, 4)
        pl = greedy_placement(g, s, 4)
        pl.validate(g)
        for name in g.node_names:
            assert sorted(pl.devices[name].tolist()) == [0, 1, 2, 3]

    def test_aligned_chain_stays_in_place(self):
        """Identical consecutive configs must map matching shards to the
        same device (zero-transfer placement exists and greedy finds it)."""
        g = build_dag(4, [])
        s = Strategy({n: (4, 1) for n in g.node_names})
        pl = greedy_placement(g, s, 4)
        first = pl.devices["n0"]
        for n in g.node_names[1:]:
            assert np.array_equal(pl.devices[n], first)

    def test_serial_nodes_use_device_zero_by_default(self):
        g = build_dag(2, [])
        s = Strategy({n: (1, 1) for n in g.node_names})
        pl = greedy_placement(g, s, 4)
        assert pl.devices["n0"].tolist() == [0]
        # n1 should co-locate with its producer.
        assert pl.devices["n1"].tolist() == [0]

    def test_too_many_shards(self):
        g = build_dag(2, [])
        s = Strategy({n: (4, 1) for n in g.node_names})
        with pytest.raises(SimulationError, match="exceed"):
            greedy_placement(g, s, 2)

    def test_mixed_configs_still_bijective(self):
        g = mlp(batch=16, hidden=(32, 32))
        assignment = {}
        for op in g:
            cfg = [1] * op.rank
            cfg[0] = 2 if op.name != "fc2" else 1
            if op.name == "fc2":
                cfg[1] = 4
            assignment[op.name] = tuple(cfg)
        s = Strategy(assignment)
        pl = greedy_placement(g, s, 4)
        pl.validate(g)

    def test_device_of(self):
        g = build_dag(2, [])
        s = Strategy({n: (2, 1) for n in g.node_names})
        pl = greedy_placement(g, s, 2)
        assert pl.device_of("n0", 0) in (0, 1)

    def test_validate_catches_duplicates(self):
        g = build_dag(2, [])
        s = Strategy({n: (2, 1) for n in g.node_names})
        pl = greedy_placement(g, s, 2)
        pl.devices["n0"][:] = 0
        with pytest.raises(SimulationError, match="two shards"):
            pl.validate(g)

    def test_validate_catches_missing(self):
        g = build_dag(2, [])
        s = Strategy({n: (1, 1) for n in g.node_names})
        pl = greedy_placement(g, s, 2)
        del pl.devices["n1"]
        with pytest.raises(SimulationError, match="no placement"):
            pl.validate(g)
