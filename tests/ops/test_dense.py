"""Tests for fully-connected / feed-forward operators."""

import numpy as np
import pytest

from repro.ops import FullyConnected
from repro.ops.dense import BiasAdd, FeedForward


class TestFullyConnected:
    def test_iteration_space(self):
        fc = FullyConnected("fc", batch=32, in_dim=256, out_dim=512)
        assert fc.dim_names == ("b", "n", "c")
        assert fc.dim_sizes == (32, 512, 256)
        assert fc.reduction_dims == {"c"}

    def test_flops(self):
        fc = FullyConnected("fc", batch=2, in_dim=3, out_dim=5, bias=False)
        assert fc.fwd_flops == 2 * 2 * 3 * 5
        assert fc.flops == 3 * fc.fwd_flops  # has params

    def test_seq_variant(self):
        fc = FullyConnected("fc", batch=4, seq=10, in_dim=8, out_dim=6)
        assert fc.dim_names == ("b", "s", "n", "c")
        assert fc.outputs["out"].shape(fc) == (4, 10, 6)

    def test_renamed_dims(self):
        fc = FullyConnected("fc", batch=4, seq=10, in_dim=8, out_dim=6,
                            names={"n": "v", "c": "d"})
        assert fc.dim_names == ("b", "s", "v", "d")
        assert fc.reduction_dims == {"d"}

    def test_param_volume(self):
        fc = FullyConnected("fc", batch=2, in_dim=3, out_dim=5)
        assert fc.param_volume() == 3 * 5 + 5  # weight + bias

    def test_in_factors_shape(self):
        fc = FullyConnected("fc", batch=2, in_dim=24, out_dim=5,
                            in_factors=(6, 2, 2))
        assert fc.inputs["in"].shape(fc) == (2, 6, 2, 2)

    def test_in_factors_follow_c_split(self):
        fc = FullyConnected("fc", batch=2, in_dim=24, out_dim=5,
                            in_factors=(6, 2, 2))
        splits = fc.inputs["in"].splits(fc, np.array([[1, 1, 3]]))
        assert splits.tolist() == [[1, 3, 1, 1]]

    def test_in_factors_must_multiply(self):
        with pytest.raises(ValueError, match="in_factors"):
            FullyConnected("fc", batch=2, in_dim=24, out_dim=5,
                           in_factors=(5, 2, 2))

    def test_no_bias(self):
        fc = FullyConnected("fc", batch=2, in_dim=3, out_dim=5, bias=False)
        assert fc.param_ports == ("w",)


class TestFeedForward:
    def test_space(self):
        ff = FeedForward("ff", batch=8, seq=16, model_dim=64, hidden=256)
        assert ff.dim_names == ("b", "s", "d", "e")
        assert ff.reduction_dims == {"d", "e"}

    def test_output_width_fixed(self):
        ff = FeedForward("ff", batch=8, seq=16, model_dim=64, hidden=256)
        assert ff.outputs["out"].shape(ff) == (8, 16, 64)
        # Output never splits along the model axis.
        splits = ff.outputs["out"].splits(ff, np.array([[1, 1, 4, 4]]))
        assert splits.tolist() == [[1, 1, 1]]

    def test_param_volume_two_matrices(self):
        ff = FeedForward("ff", batch=8, seq=16, model_dim=64, hidden=256)
        assert ff.param_volume() == 2 * 64 * 256

    def test_flops(self):
        ff = FeedForward("ff", batch=2, seq=3, model_dim=4, hidden=5)
        assert ff.fwd_flops == 4.0 * 2 * 3 * 4 * 5

    def test_hidden_split_shards_params_batch_replicates(self):
        ff = FeedForward("ff", batch=8, seq=16, model_dim=64, hidden=256)
        w = ff.inputs["w"]
        # e-split shards the weights -> no gradient replication group.
        assert w.replication(ff, np.array([[1, 1, 1, 4]])).tolist() == [1]
        assert w.shard_volume(ff, np.array([[1, 1, 1, 4]]))[0] == \
            pytest.approx(w.volume(ff) / 4)
        # b-split replicates the weights across the batch groups.
        assert w.replication(ff, np.array([[8, 1, 1, 1]])).tolist() == [8]


class TestBiasAdd:
    def test_structure(self):
        op = BiasAdd("ba", dims=[("b", 4), ("n", 8)], bias_axis="n")
        assert op.inputs["bias"].is_param
        assert op.inputs["bias"].shape(op) == (8,)
        assert op.flops == 1 * 4 * 8 * 3  # 1 FLOP/point, params -> 3x factor
