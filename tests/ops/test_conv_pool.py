"""Tests for convolution and pooling operators."""

import numpy as np
import pytest

from repro.ops import Conv2D, Pool2D


class TestConv2D:
    def test_same_padding_shape(self):
        c = Conv2D("c", batch=8, in_channels=3, out_channels=16,
                   in_hw=(32, 32), kernel=3, stride=2, padding="same")
        assert c.dim_size("h") == 16 and c.dim_size("w") == 16

    def test_valid_padding_shape(self):
        c = Conv2D("c", batch=8, in_channels=3, out_channels=16,
                   in_hw=(227, 227), kernel=11, stride=4, padding="valid")
        assert c.dim_size("h") == 55

    def test_bad_padding(self):
        with pytest.raises(ValueError):
            Conv2D("c", batch=1, in_channels=1, out_channels=1,
                   in_hw=(4, 4), kernel=3, padding="full")

    def test_degenerate_spatial(self):
        with pytest.raises(ValueError, match="spatial"):
            Conv2D("c", batch=1, in_channels=1, out_channels=1,
                   in_hw=(2, 2), kernel=3, padding="valid")

    def test_asymmetric_kernel(self):
        c = Conv2D("c", batch=2, in_channels=4, out_channels=4,
                   in_hw=(17, 17), kernel=(1, 7))
        assert c.dim_size("r") == 1 and c.dim_size("s") == 7

    def test_input_aliases(self):
        c = Conv2D("c", batch=8, in_channels=3, out_channels=16,
                   in_hw=(32, 32), kernel=3, stride=2)
        assert c.inputs["in"].shape(c) == (8, 3, 32, 32)
        assert c.dim_size("hi") == 32 and c.dim_size("h") == 16

    def test_kernel_unsplittable_by_default(self):
        c = Conv2D("c", batch=8, in_channels=3, out_channels=16,
                   in_hw=(32, 32), kernel=3)
        assert not c.dims[c.dim_index("r")].splittable
        c2 = Conv2D("c", batch=8, in_channels=3, out_channels=16,
                    in_hw=(32, 32), kernel=3, splittable_kernel=True)
        assert c2.dims[c2.dim_index("r")].splittable

    def test_flops(self):
        c = Conv2D("c", batch=2, in_channels=3, out_channels=4,
                   in_hw=(8, 8), kernel=3, bias=False)
        assert c.fwd_flops == 2.0 * 2 * 3 * 8 * 8 * 4 * 3 * 3

    def test_reduction_dims(self):
        c = Conv2D("c", batch=2, in_channels=3, out_channels=4,
                   in_hw=(8, 8), kernel=3)
        assert c.reduction_dims == {"c", "r", "s"}

    def test_halo_zero_when_unsplit(self):
        c = Conv2D("c", batch=8, in_channels=4, out_channels=4,
                   in_hw=(16, 16), kernel=3)
        cfg = np.array([[8, 1, 1, 1, 1, 1, 1]])
        assert c.extra_comm_bytes(cfg).tolist() == [0.0]

    def test_halo_positive_for_spatial_split(self):
        c = Conv2D("c", batch=8, in_channels=4, out_channels=4,
                   in_hw=(16, 16), kernel=3)
        cfg_h = np.zeros((1, 7), dtype=np.int64) + 1
        cfg_h[0, c.dim_index("h")] = 2
        assert c.extra_comm_bytes(cfg_h)[0] > 0

    def test_halo_zero_for_1x1_kernel(self):
        c = Conv2D("c", batch=8, in_channels=4, out_channels=4,
                   in_hw=(16, 16), kernel=1)
        cfg = np.zeros((1, 7), dtype=np.int64) + 1
        cfg[0, c.dim_index("h")] = 2
        assert c.extra_comm_bytes(cfg)[0] == 0.0

    def test_halo_scales_with_kernel(self):
        def halo(k):
            c = Conv2D("c", batch=8, in_channels=4, out_channels=4,
                       in_hw=(16, 16), kernel=k)
            cfg = np.zeros((1, 7), dtype=np.int64) + 1
            cfg[0, c.dim_index("h")] = 2
            return c.extra_comm_bytes(cfg)[0]
        assert halo(5) > halo(3)


class TestPool2D:
    def test_default_stride_is_kernel(self):
        p = Pool2D("p", batch=4, channels=8, in_hw=(16, 16), kernel=2)
        assert p.dim_size("h") == 8

    def test_channels_preserved(self):
        p = Pool2D("p", batch=4, channels=8, in_hw=(16, 16), kernel=2)
        assert p.outputs["out"].shape(p) == (4, 8, 8, 8)

    def test_no_params(self):
        p = Pool2D("p", batch=4, channels=8, in_hw=(16, 16), kernel=2)
        assert not p.has_params
        assert p.training_flop_factor == 2.0

    def test_flops_proportional_to_window(self):
        small = Pool2D("p", batch=4, channels=8, in_hw=(16, 16), kernel=2)
        big = Pool2D("p", batch=4, channels=8, in_hw=(16, 16), kernel=(4, 4),
                     stride=2)
        assert big.flops_per_point > small.flops_per_point

    def test_bad_padding(self):
        with pytest.raises(ValueError):
            Pool2D("p", batch=1, channels=1, in_hw=(4, 4), kernel=2,
                   padding="wrap")

    def test_degenerate(self):
        with pytest.raises(ValueError, match="spatial"):
            Pool2D("p", batch=1, channels=1, in_hw=(2, 2), kernel=4)
