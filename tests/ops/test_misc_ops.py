"""Tests for normalization, activation, softmax, and structural ops."""

import numpy as np
import pytest

from repro.core.exceptions import GraphError
from repro.ops import (
    Activation,
    BatchNorm,
    Concat,
    Dropout,
    ElementwiseBinary,
    Identity,
    LayerNorm,
    LocalResponseNorm,
    Softmax,
    SoftmaxCrossEntropy,
)


class TestNorms:
    def test_lrn_no_params(self):
        op = LocalResponseNorm("l", batch=4, channels=8, hw=(8, 8))
        assert not op.has_params

    def test_batchnorm_params(self):
        op = BatchNorm("bn", batch=4, channels=8, hw=(8, 8))
        assert op.param_volume() == 16  # gamma+beta via scale=2

    def test_layernorm_moment_sync(self):
        op = LayerNorm("ln", batch=4, seq=8, dim=16)
        no_split = op.extra_comm_bytes(np.array([[1, 1, 1]]))
        d_split = op.extra_comm_bytes(np.array([[1, 1, 4]]))
        b_split = op.extra_comm_bytes(np.array([[4, 1, 1]]))
        assert no_split[0] == 0.0 and b_split[0] == 0.0
        assert d_split[0] > 0


class TestElementwise:
    def test_activation(self):
        op = Activation("a", dims=[("b", 4), ("n", 8)], fn="tanh")
        assert op.kind == "act_tanh"
        assert op.flops == 2 * 4 * 8  # 1 flop/pt, no params -> 2x

    def test_dropout(self):
        op = Dropout("d", dims=[("b", 4), ("n", 8)])
        assert op.inputs["in"].shape(op) == (4, 8)

    def test_binary_ports(self):
        op = ElementwiseBinary("add", dims=[("b", 4), ("n", 8)])
        assert set(op.inputs) == {"in0", "in1"}
        assert op.kind == "ew_add"


class TestSoftmax:
    def test_class_split_sync(self):
        op = Softmax("s", batch=8, classes=100)
        none = op.extra_comm_bytes(np.array([[8, 1]]))
        split = op.extra_comm_bytes(np.array([[1, 4]]))
        assert none[0] == 0.0 and split[0] > 0

    def test_seq_variant(self):
        op = SoftmaxCrossEntropy("s", batch=8, classes=100, seq=16,
                                 class_name="v")
        assert op.dim_names == ("b", "s", "v")
        assert op.kind == "softmax_xent"

    def test_sync_scales_with_rows(self):
        op = Softmax("s", batch=8, classes=100)
        full_rows = op.extra_comm_bytes(np.array([[1, 4]]))
        shard_rows = op.extra_comm_bytes(np.array([[8, 4]]))
        assert full_rows[0] > shard_rows[0]


class TestConcat:
    def test_cnn_variant(self):
        op = Concat("c", parts=[3, 5], batch=4, hw=(8, 8))
        assert op.dim_size("c") == 8
        assert op.inputs["in0"].shape(op) == (4, 3, 8, 8)
        assert op.inputs["in1"].shape(op) == (4, 5, 8, 8)
        assert op.outputs["out"].shape(op) == (4, 8, 8, 8)

    def test_parts_follow_channel_split(self):
        op = Concat("c", parts=[4, 4], batch=4, hw=(8, 8))
        splits = op.inputs["in0"].splits(op, np.array([[1, 2, 1, 1]]))
        assert splits.tolist() == [[1, 2, 1, 1]]

    def test_seq_variant(self):
        op = Concat("c", parts=[3, 5], batch=4, hw=None, axis_name="d")
        assert op.dim_names == ("b", "d")

    def test_identity(self):
        op = Identity("i", dims=[("b", 4), ("n", 8)])
        assert op.flops == 0.0


class TestEmbeddingOp:
    def test_structure(self):
        from repro.ops import Embedding
        op = Embedding("e", batch=4, vocab=1000, dim=16, seq=8)
        assert op.dim_names == ("b", "s", "d", "v")
        assert op.fwd_flops == 2.0 * 4 * 8 * 16
        assert op.inputs["w"].sparse_grad_elements == 4 * 8 * 16

    def test_vocab_split_alltoall(self):
        from repro.ops import Embedding
        op = Embedding("e", batch=4, vocab=1000, dim=16, seq=8)
        none = op.extra_comm_bytes(np.array([[4, 1, 1, 1]]))
        vsplit = op.extra_comm_bytes(np.array([[1, 1, 1, 4]]))
        assert none[0] == 0.0 and vsplit[0] > 0

    def test_alltoall_smaller_than_output(self):
        """The v-split exchange moves the produced share, not the full
        activation (the one-hot-matmul model would overcharge m-fold)."""
        from repro.core.tensors import DTYPE_BYTES
        from repro.ops import Embedding
        op = Embedding("e", batch=4, vocab=1000, dim=16, seq=8)
        vol = op.extra_comm_bytes(np.array([[1, 1, 1, 4]]))[0]
        out_bytes = op.outputs["out"].volume(op) * DTYPE_BYTES
        assert vol < out_bytes
