"""Tests for the fused LSTM-stack and multi-head-attention vertices."""

import numpy as np
import pytest

from repro.ops import LSTMStack, MultiheadAttention


class TestLSTMStack:
    def make(self, **kw):
        args = dict(layers=2, batch=8, seq=16, in_dim=32, hidden=64)
        args.update(kw)
        return LSTMStack("lstm", **args)

    def test_five_dim_space(self):
        op = self.make()
        assert op.dim_names == ("l", "b", "s", "d", "e")

    def test_flops(self):
        op = self.make()
        assert op.fwd_flops == 8.0 * 2 * 8 * 16 * 64 * (32 + 64)

    def test_param_volume_matches_gate_matrices(self):
        op = self.make()
        # 4 gates x (input-to-hidden + hidden-to-hidden) per layer.
        assert op.param_volume() == pytest.approx(2 * 4 * (32 + 64) * 64)

    def test_reduction_is_input_dim(self):
        assert self.make().reduction_dims == {"d"}

    def cfg(self, op, **splits):
        c = [1] * op.rank
        for k, v in splits.items():
            c[op.dim_index(k)] = v
        return np.array([c])

    def test_handoff_costs(self):
        op = self.make()
        assert op.extra_comm_bytes(self.cfg(op))[0] == 0.0
        assert op.extra_comm_bytes(self.cfg(op, s=2))[0] > 0     # time tiles
        assert op.extra_comm_bytes(self.cfg(op, l=2))[0] > 0     # pipeline
        assert op.extra_comm_bytes(self.cfg(op, b=8))[0] == 0.0  # pure DP

    def test_hidden_split_gathers_state(self):
        op = self.make()
        e2 = op.extra_comm_bytes(self.cfg(op, e=2))[0]
        e4 = op.extra_comm_bytes(self.cfg(op, e=4))[0]
        assert 0 < e2 < e4  # more shards gather a larger missing share


class TestMultiheadAttention:
    def make(self, **kw):
        args = dict(batch=8, seq=16, heads=4, q_channels=8)
        args.update(kw)
        return MultiheadAttention("attn", **args)

    def test_space_is_bshck(self):
        assert self.make().dim_names == ("b", "s", "h", "c", "k")

    def test_model_width_fixed_alias(self):
        op = self.make()
        assert op.dim_size("dm") == 32
        assert op.inputs["in"].shape(op) == (8, 16, 32)
        # Head splits never split the activations.
        cfg = np.array([[1, 1, 4, 1, 1]])
        assert op.inputs["in"].splits(op, cfg).tolist() == [[1, 1, 1]]

    def test_head_split_shards_params(self):
        op = self.make()
        cfg = np.array([[1, 1, 4, 1, 1]])
        w = op.inputs["w"]
        assert w.shard_volume(op, cfg)[0] == pytest.approx(w.volume(op) / 4)

    def test_param_volume(self):
        op = self.make()
        assert op.param_volume() == pytest.approx(4 * 32 * 32)  # QKVO

    def test_reduction_dims_trigger_block_allreduce(self):
        assert self.make().reduction_dims == {"h", "c", "k"}

    def test_seq_split_gathers_kv(self):
        op = self.make()
        none = op.extra_comm_bytes(np.array([[8, 1, 1, 1, 1]]))
        s_split = op.extra_comm_bytes(np.array([[1, 4, 1, 1, 1]]))
        assert none[0] == 0.0 and s_split[0] > 0

    def test_cross_attention_memory_port(self):
        op = self.make(cross_seq=24)
        assert "memory" in op.inputs
        assert op.inputs["memory"].shape(op) == (8, 24, 32)
        # Memory sequence never splits (queries attend over all of it).
        cfg = np.array([[2, 4, 1, 1, 1]])
        assert op.inputs["memory"].splits(op, cfg).tolist() == [[2, 1, 1]]

    def test_self_attention_has_no_memory(self):
        assert "memory" not in self.make().inputs

    def test_flops_include_scores(self):
        short = self.make(seq=8)
        long = self.make(seq=16)
        # More than linear in seq (s^2 score term).
        assert long.fwd_flops > 2 * short.fwd_flops
