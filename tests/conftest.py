"""Shared fixtures and graph generators for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core.dims import Dim
from repro.core.graph import CompGraph, Edge
from repro.core.tensors import TensorSpec
from repro.ops.base import OpSpec


def make_test_op(name: str, *, batch: int = 4, width: int = 6, n_in: int = 1,
                 with_param: bool = False, reduction: bool = False) -> OpSpec:
    """A generic two-dim operator for structural tests.

    All test ops share the ``(b, m)`` output signature so they can be
    wired into arbitrary DAGs; ``reduction`` adds a contracted dim ``k``.
    """
    dims = [Dim("b", batch), Dim("m", width)]
    red: frozenset[str] = frozenset()
    if reduction:
        dims.append(Dim("k", width))
        red = frozenset({"k"})
    inputs = {f"in{i}": TensorSpec(axes=("b", "m")) for i in range(n_in)}
    if with_param:
        inputs["w"] = TensorSpec(axes=("m",) + (("k",) if reduction else ()),
                                 is_param=True)
    return OpSpec(
        name=name,
        kind="test",
        dims=tuple(dims),
        inputs=inputs,
        outputs={"out": TensorSpec(axes=("b", "m"))},
        reduction_dims=red,
        flops_per_point=2.0,
    )


def build_dag(n_nodes: int, extra_edges: list[tuple[int, int]],
              *, batch: int = 4, width: int = 6,
              param_mask: int = 0, reduction_mask: int = 0) -> CompGraph:
    """A weakly connected DAG: a spine 0->1->...->n plus ``extra_edges``.

    ``extra_edges`` are (src, dst) index pairs with src < dst; each node's
    input ports are allocated in edge-insertion order.
    """
    in_count = [0] * n_nodes
    edges: list[tuple[int, int]] = []
    for i in range(1, n_nodes):
        edges.append((i - 1, i))
        in_count[i] += 1
    for s, d in extra_edges:
        if 0 <= s < d < n_nodes:
            edges.append((s, d))
            in_count[d] += 1
    nodes = [
        make_test_op(f"n{i}", batch=batch, width=width,
                     n_in=max(in_count[i], 1),
                     with_param=bool(param_mask >> i & 1),
                     reduction=bool(reduction_mask >> i & 1))
        for i in range(n_nodes)
    ]
    g = CompGraph(nodes)
    used = [0] * n_nodes
    for s, d in edges:
        g.add_edge(Edge(f"n{s}", "out", f"n{d}", f"in{used[d]}"))
        used[d] += 1
    return g


@st.composite
def small_dags(draw, max_nodes: int = 6):
    """Hypothesis strategy producing small random weakly connected DAGs."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    pairs = [(s, d) for s in range(n) for d in range(s + 1, n) if d - s > 1]
    extra = draw(st.lists(st.sampled_from(pairs), max_size=4, unique=True)) \
        if pairs else []
    param_mask = draw(st.integers(min_value=0, max_value=(1 << n) - 1))
    reduction_mask = draw(st.integers(min_value=0, max_value=(1 << n) - 1))
    return build_dag(n, extra, param_mask=param_mask,
                     reduction_mask=reduction_mask)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def chain3() -> CompGraph:
    """A three-node path graph of test ops."""
    return build_dag(3, [])


@pytest.fixture
def diamond() -> CompGraph:
    """A diamond: n0 -> n1, n2 -> n3."""
    g = CompGraph([
        make_test_op("n0"),
        make_test_op("n1"),
        make_test_op("n2"),
        make_test_op("n3", n_in=2),
    ])
    g.add_edge(Edge("n0", "out", "n1", "in0"))
    g.add_edge(Edge("n0", "out", "n2", "in0"))
    g.add_edge(Edge("n1", "out", "n3", "in0"))
    g.add_edge(Edge("n2", "out", "n3", "in1"))
    return g
