"""Tests for graph statistics and report formatting."""

import pytest

from repro.analysis import (
    config_count_stats,
    degree_histogram,
    dependent_set_profile,
    format_bytes,
    format_frontier_plot,
    format_frontier_table,
    format_grid,
    format_speedup_table,
    format_table_build_stats,
    format_time,
    section_3c_report,
)
from repro.core.sequencer import breadth_first_seq, generate_seq
from repro.models import inception_v3, mlp
from tests.conftest import build_dag


class TestGraphStats:
    def test_degree_histogram(self, diamond):
        assert degree_histogram(diamond) == {2: 4}

    def test_config_count_stats(self):
        g = mlp(batch=16, hidden=(32,))
        s = config_count_stats(g, 8)
        assert s["k_min"] >= 1 and s["k_max"] >= s["k_median"] >= s["k_min"]

    def test_dependent_set_profile(self, diamond):
        prof = dependent_set_profile(diamond, generate_seq(diamond))
        assert prof["max"] >= 1 and prof["mean"] > 0

    def test_section_3c_inception(self):
        """The paper's Section III-C numbers: a few dense nodes, BF
        combinations astronomically above GENERATESEQ's."""
        rep = section_3c_report(inception_v3(), ps=(8,))
        assert rep["nodes_degree_ge_5"] == 12
        assert rep["nodes_degree_lt_5"] == rep["nodes"] - 12
        assert rep["generateseq_max_dependent"] <= 3
        assert rep["bf_combinations_bound"] > \
            1e6 * rep["generateseq_combinations_bound"]


class TestReporting:
    def test_format_time(self):
        assert format_time(None) == "OOM"
        assert format_time(0.234) == "0:00.234"
        assert format_time(75.5) == "1:15.500"

    def test_format_grid(self):
        text = format_grid(["a", "bb"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "-" in lines[1]

    def test_format_speedup_table(self):
        data = {"alexnet": {4: {"ours": 1.5, "expert": 1.2}}}
        text = format_speedup_table(data, ["expert", "ours"])
        assert "1.50x" in text and "1.20x" in text

    def test_format_table_build_stats(self):
        assert format_table_build_stats({}) == \
            "cost tables: no build statistics"
        serial = {"build_seconds": 0.5, "cache_hit": 0.0, "jobs": 1.0,
                  "cells": 2_000_000.0}
        assert format_table_build_stats(serial) == \
            "cost tables: 0.500s (serial, 2.00M cells)"
        par = dict(serial, jobs=4.0)
        assert "parallel x4" in format_table_build_stats(par)
        hit = dict(serial, cache_hit=1.0)
        assert "cache hit" in format_table_build_stats(hit)

    def test_format_table_build_stats_prefixed(self):
        """Accepts SearchResult.stats' table_-prefixed keys too."""
        stats = {"table_build_seconds": 1.25, "table_cache_hit": 1.0,
                 "table_jobs": 1.0, "table_cells": 500_000.0}
        text = format_table_build_stats(stats)
        assert text == "cost tables: 1.250s (cache hit, 0.50M cells)"


class TestFrontierReporting:
    @staticmethod
    def point(cost, peak):
        from repro.core.strategy import FrontierPoint, Strategy

        return FrontierPoint(cost=cost, peak_bytes=peak,
                             strategy=Strategy({"n0": (1, 1, 1, 1, 1)}))

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(1536) == "1.50 KiB"
        assert format_bytes(1.5 * 1024 ** 3) == "1.50 GiB"

    def test_table_marks_min_cost_row(self):
        frontier = [self.point(1.0e9, 4096.0), self.point(2.0e9, 1024.0)]
        text = format_frontier_table(frontier)
        lines = text.splitlines()
        assert "min-cost" in lines[2] and "min-cost" not in lines[3]
        assert "4.00 KiB" in text and "1.00 KiB" in text

    def test_table_empty(self):
        assert format_frontier_table([]) == "frontier: empty"

    def test_plot_scatter_and_degenerate(self):
        frontier = [self.point(1.0e9, 4096.0), self.point(2.0e9, 1024.0)]
        plot = format_frontier_plot(frontier)
        assert "o" in plot and "*" in plot and "min-cost" in plot
        # A single point collapses to a one-line summary, not a plot.
        single = format_frontier_plot(frontier[:1])
        assert single.startswith("frontier: 1 point(s)")
        assert format_frontier_plot([]) == "frontier: empty"
