"""Tests for memory-footprint estimation and memory-capped search."""

import numpy as np
import pytest

from repro.analysis.memory import MemoryModel, strategy_memory
from repro.baselines import data_parallel_strategy
from repro.core.configs import ConfigSpace, prune_configs_by_memory
from repro.core.costmodel import CostModel
from repro.core.dp import find_best_strategy
from repro.core.exceptions import ConfigError
from repro.core.machine import GTX1080TI
from repro.core.strategy import Strategy
from repro.models import mlp, rnnlm


class TestMemoryModel:
    def test_serial_holds_everything(self):
        g = mlp(batch=16, hidden=(64,))
        mem = strategy_memory(g, Strategy.serial(g))
        fc1 = mem["fc1"]
        # weight(784*64) + bias(64), x3 for optimizer state, 4 B each.
        assert fc1.params == pytest.approx((784 * 64 + 64) * 3 * 4)
        assert fc1.activations > 0
        assert fc1.comm_buffers == 0.0  # no comm when serial

    def test_splitting_shrinks_footprint(self):
        g = mlp(batch=16, hidden=(64,))
        op = g.node("fc1")
        mm = MemoryModel()
        serial = mm.node_bytes(op, np.array([[1, 1, 1]]))[0]
        split = mm.node_bytes(op, np.array([[1, 4, 4]]))[0]
        assert split < serial

    def test_data_parallel_replicates_params(self):
        """Batch splits do not shrink parameter memory — the Section II
        point about data parallelism and large models."""
        g = mlp(batch=16, hidden=(64,))
        serial = strategy_memory(g, Strategy.serial(g))
        dp = strategy_memory(g, data_parallel_strategy(g, 4))
        assert dp["fc1"].params == serial["fc1"].params
        assert dp["fc1"].activations < serial["fc1"].activations

    def test_totals(self):
        g = mlp(batch=16, hidden=(64,))
        mem = strategy_memory(g, Strategy.serial(g))
        for nm in mem.values():
            assert nm.total == nm.params + nm.activations + nm.comm_buffers

    def test_node_bytes_matches_node_memory(self):
        """The vectorized per-config table (`node_bytes`, the frontier's
        second objective axis) agrees exactly with the per-strategy
        scalar path (`node_memory`) on every enumerated config."""
        g = rnnlm()
        space = ConfigSpace.build(g, 8)
        mm = MemoryModel()
        for name in g.node_names:
            op = g.node(name)
            configs = space.configs(name)
            table = mm.node_bytes(op, configs)
            assert table.shape == (space.size(name),)
            base = dict(Strategy.serial(g).assignment)
            for k in range(space.size(name)):
                base[name] = tuple(int(v) for v in configs[k])
                strat = Strategy(base)
                assert table[k] == mm.node_memory(g, strat, name).total


class TestMemoryPruning:
    def test_generous_capacity_keeps_everything(self):
        g = mlp(batch=16, hidden=(64,))
        space = ConfigSpace.build(g, 4)
        pruned = prune_configs_by_memory(g, space, 1e15)
        assert all(pruned.size(n) == space.size(n) for n in g.node_names)

    def test_tight_capacity_removes_replicating_configs(self):
        """An 800k-vocab RNNLM cannot replicate its projection on an
        11 GiB device: the data-parallel configs of the big layers must
        disappear from the search space."""
        g = rnnlm(vocab=800_000)
        space = ConfigSpace.build(g, 32)
        pruned = prune_configs_by_memory(g, space, 11 * 2**30)
        proj = g.node("projection")
        assert pruned.size("projection") < space.size("projection")
        for row in pruned.configs("projection"):
            # every surviving config shards the big weight (v or d split)
            assert row[proj.dim_index("v")] * row[proj.dim_index("d")] > 1

    def test_impossible_capacity_raises(self):
        g = mlp(batch=16, hidden=(64,))
        space = ConfigSpace.build(g, 4)
        with pytest.raises(ConfigError, match="no configuration fits"):
            prune_configs_by_memory(g, space, 16.0)

    def test_search_over_pruned_space(self):
        g = rnnlm(vocab=800_000)
        space = prune_configs_by_memory(
            g, ConfigSpace.build(g, 32), 11 * 2**30)
        tables = CostModel(GTX1080TI).build_tables(g, space)
        res = find_best_strategy(g, space, tables)
        res.strategy.validate(g, 32)
        # The found strategy fits on the devices.
        mem = strategy_memory(g, res.strategy)
        assert all(nm.total <= 11 * 2**30 for nm in mem.values())
