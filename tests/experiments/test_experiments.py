"""Smoke tests for the experiment harness (CI-sized parameters)."""

import pytest

from repro.core.machine import GTX1080TI
from repro.experiments import (
    build_setup,
    run_config_mode_ablation,
    run_costterm_ablation,
    run_figure6,
    run_ordering_ablation,
    run_table1,
    run_table2,
    search_with,
)
from repro.experiments.table1 import format_table1
from repro.models import mlp


class TestCommon:
    def test_build_setup_cached(self):
        a = build_setup("alexnet", 4)
        b = build_setup("alexnet", 4)
        assert a is b

    def test_search_with_all_methods(self):
        setup = build_setup("rnnlm", 4)
        for method in ("ours", "bf", "data_parallel", "expert", "random"):
            res = search_with(setup, method)
            res.strategy.validate(setup.graph, 4)
            assert res.cost > 0

    def test_unknown_method(self):
        setup = build_setup("rnnlm", 4)
        with pytest.raises(ValueError):
            search_with(setup, "oracle")

    def test_ours_never_worse_than_baselines(self):
        for bench in ("alexnet", "rnnlm"):
            setup = build_setup(bench, 8)
            ours = search_with(setup, "ours").cost
            for method in ("data_parallel", "expert", "random"):
                assert ours <= search_with(setup, method).cost + 1e-6


class TestTable1:
    def test_small_sweep(self):
        cells = run_table1(benchmarks=("alexnet",), ps=(4,),
                           methods=("bf", "ours"))
        assert len(cells) == 2
        assert all(not c.oom for c in cells)
        text = format_table1(cells)
        assert "alexnet/BF" in text and "alexnet/Ours" in text

    def test_oom_rendering(self):
        from repro.experiments.table1 import Table1Cell
        text = format_table1([Table1Cell("x", 4, "bf", None, None)])
        assert "OOM" in text


class TestTable2:
    def test_structure_at_p8(self):
        from repro.experiments.table2 import strategy_structure_checks
        strategies = run_table2(p=8, benchmarks=("alexnet", "rnnlm"))
        checks = strategy_structure_checks(strategies, p=8)
        assert checks["alexnet_fc_param_parallel"]
        assert checks["rnnlm_projection_vocab_split"]


class TestFigure6:
    def test_single_point(self):
        pts = run_figure6(benchmarks=("rnnlm",), ps=(4,),
                          machines=(GTX1080TI,), methods=("ours",))
        assert len(pts) == 2  # data_parallel baseline + ours
        ours = [p for p in pts if p.method == "ours"][0]
        assert ours.speedup_over_dp > 0


class TestAblations:
    @pytest.fixture(scope="class")
    def graph(self):
        return mlp(batch=32, hidden=(64, 64), classes=32)

    def test_ordering_ablation_same_cost(self, graph):
        out = run_ordering_ablation(graph, 4)
        costs = {v["cost"] for v in out.values() if not v["oom"]}
        assert len(costs) == 1  # Theorem 1: any ordering, same optimum

    def test_config_mode_ablation_monotone(self, graph):
        out = run_config_mode_ablation(graph, 4)
        # Richer spaces can only improve (or tie) the optimum.
        assert out["all"]["cost"] <= out["pow2"]["cost"] + 1e-9
        assert out["all"]["k_max"] >= out["pow2"]["k_max"]

    def test_costterm_ablation(self, graph):
        out = run_costterm_ablation(graph, 8)
        # Ablated searches can only look cheaper under their own oracle...
        assert out["no_grad_sync"]["ablated_cost"] <= out["full"]["ablated_cost"] + 1e-9
        # ...but never beat the full search under the full oracle.
        assert out["no_grad_sync"]["true_cost"] >= out["full"]["true_cost"] - 1e-9


class TestFigure6Formatting:
    def test_as_table(self):
        from repro.experiments.figure6 import Figure6Point, as_table
        pts = [
            Figure6Point("1080Ti", "alexnet", 4, "data_parallel", 100.0, 1.0),
            Figure6Point("1080Ti", "alexnet", 4, "ours", 150.0, 1.5),
            Figure6Point("2080Ti", "alexnet", 4, "ours", 90.0, 2.0),
        ]
        text = as_table(pts, "1080Ti")
        assert "1.50x" in text and "2.00x" not in text


class TestMCMCSensitivity:
    def test_expert_init_beats_serial_init(self):
        """The paper's FlexFlow critique, quantified: meta-heuristic
        quality depends on the initial candidate, and no init reaches
        the DP optimum on the Transformer graph."""
        from repro.experiments import run_mcmc_sensitivity
        rows = run_mcmc_sensitivity(benchmark="transformer", p=4,
                                    seeds=(0,), max_iters=5_000)
        by_init = {r.init: r for r in rows}
        assert by_init["expert"].cost <= by_init["serial"].cost
        assert all(r.gap_vs_dp_optimum >= -1e-9 for r in rows)

    def test_formatting(self):
        from repro.experiments.mcmc_sensitivity import (
            SensitivityRow, format_sensitivity)
        text = format_sensitivity([SensitivityRow("x", "serial", 0, 1.0,
                                                  0.5, 100)])
        assert "+50.00%" in text
