"""``trap_signals``: first-signal flagging, nesting, restore, escalation.

The chaining regression pinned here: before registrations composed, a
``trap_signals`` scope entered inside another (the serve daemon's drain
handler wrapping a journalled search's handler) silently shadowed the
outer one — a single SIGTERM flagged only the inner token and the server
never started draining.  One delivered signal must now flag *every*
nested scope's token.
"""

import signal
import threading

import pytest

from repro.runtime.budget import Cancellation
from repro.runtime.signals import trap_signals


def test_first_signal_flags_token_without_raising():
    cancel = Cancellation()
    with trap_signals(cancel, signums=(signal.SIGTERM,)):
        signal.raise_signal(signal.SIGTERM)
        assert cancel.requested
        assert cancel.reason == "SIGTERM"


def test_nested_scopes_both_flagged_by_one_delivery():
    outer, inner = Cancellation(), Cancellation()
    with trap_signals(outer, signums=(signal.SIGTERM,)):
        with trap_signals(inner, signums=(signal.SIGTERM,)):
            signal.raise_signal(signal.SIGTERM)
            assert inner.requested, "inner scope missed the signal"
            assert outer.requested, "chaining regression: outer scope shadowed"


def test_inner_exit_restores_outer_trap():
    outer, inner = Cancellation(), Cancellation()
    with trap_signals(outer, signums=(signal.SIGTERM,)):
        with trap_signals(inner, signums=(signal.SIGTERM,)):
            pass
        signal.raise_signal(signal.SIGTERM)
        assert outer.requested
        assert not inner.requested


def test_handlers_restored_after_scope():
    before = signal.getsignal(signal.SIGTERM)
    cancel = Cancellation()
    with trap_signals(cancel, signums=(signal.SIGTERM,)):
        assert signal.getsignal(signal.SIGTERM) is not before
    assert signal.getsignal(signal.SIGTERM) is before


def test_second_signal_escalates_to_default_behavior():
    cancel = Cancellation()
    with trap_signals(cancel, signums=(signal.SIGINT,)):
        signal.raise_signal(signal.SIGINT)  # first: flag only
        assert cancel.requested
        with pytest.raises(KeyboardInterrupt):
            signal.raise_signal(signal.SIGINT)  # second: restored + re-raised


def test_noop_off_main_thread():
    cancel = Cancellation()
    before = signal.getsignal(signal.SIGTERM)
    seen = []

    def worker():
        with trap_signals(cancel, signums=(signal.SIGTERM,)) as token:
            seen.append(token)

    t = threading.Thread(target=worker)
    t.start()
    t.join()
    assert seen == [cancel]
    assert signal.getsignal(signal.SIGTERM) is before
