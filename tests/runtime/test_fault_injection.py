"""Fault injection: dead pool workers and corrupt cache entries.

The hardened build must *degrade* — retry, then fall back bit-identically
to the serial path — never crash, never poison the cache, and never hide
that it happened.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.core import costmodel
from repro.core.configs import ConfigSpace
from repro.core.costmodel import CostModel
from repro.core.machine import GTX1080TI
from repro.core.tablecache import TableCache
from tests.conftest import build_dag

IS_FORK = multiprocessing.get_start_method(allow_none=False) == "fork"


def _die_in_worker(name):
    # Module-level so pool.map can pickle it by reference; the moral
    # equivalent of an OOM kill landing on a pool child mid-task.
    os._exit(1)


def make_problem(p: int = 4):
    graph = build_dag(4, [(0, 2), (1, 3)], param_mask=0b1010,
                      reduction_mask=0b0100)
    return graph, ConfigSpace.build(graph, p)


def tables_equal(a, b) -> bool:
    return (set(a.lc) == set(b.lc)
            and set(a.pair_tx) == set(b.pair_tx)
            and all(np.array_equal(a.lc[n], b.lc[n]) for n in a.lc)
            and all(np.array_equal(a.pair_tx[k], b.pair_tx[k])
                    for k in a.pair_tx))


@pytest.fixture
def fast_faults(monkeypatch):
    """Make every build eligible for the pool and retries instant."""
    monkeypatch.setattr(costmodel, "PARALLEL_THRESHOLD_CELLS", 0)
    monkeypatch.setattr(costmodel, "PARALLEL_RETRY_BACKOFF_SECONDS", 0.0)


class TestBrokenPool:
    def test_serial_fallback_is_bit_identical(self, monkeypatch, fast_faults):
        from concurrent.futures.process import BrokenProcessPool

        graph, space = make_problem()
        reference = CostModel(GTX1080TI).build_tables(graph, space)

        calls = {"n": 0}

        def explode(self, graph, space, workers, memory):
            calls["n"] += 1
            raise BrokenProcessPool("worker killed by test")

        monkeypatch.setattr(CostModel, "_build_arrays_parallel", explode)
        tables = CostModel(GTX1080TI).build_tables(graph, space, jobs="processes:2")

        assert calls["n"] == 1 + costmodel.PARALLEL_BUILD_RETRIES
        assert tables.build_stats["degraded"] == 1.0
        assert tables.build_stats["parallel_retries"] == \
            float(costmodel.PARALLEL_BUILD_RETRIES)
        assert tables.build_stats["jobs"] == 1.0
        assert "BrokenProcessPool" in tables.degraded_reason
        assert tables_equal(tables, reference)

    def test_transient_failure_recovers_without_degrading(
            self, monkeypatch, fast_faults):
        from concurrent.futures.process import BrokenProcessPool

        graph, space = make_problem()
        original = CostModel._build_arrays_parallel
        calls = {"n": 0}

        def flaky(self, graph, space, workers, memory):
            calls["n"] += 1
            if calls["n"] == 1:
                raise BrokenProcessPool("transient")
            return original(self, graph, space, workers, memory)

        monkeypatch.setattr(CostModel, "_build_arrays_parallel", flaky)
        tables = CostModel(GTX1080TI).build_tables(graph, space, jobs="processes:2")
        assert tables.build_stats["degraded"] == 0.0
        assert tables.build_stats["parallel_retries"] == 1.0
        assert tables_equal(
            tables, CostModel(GTX1080TI).build_tables(graph, space))

    def test_degraded_build_never_populates_cache(
            self, monkeypatch, fast_faults, tmp_path, caplog):
        from concurrent.futures.process import BrokenProcessPool

        def explode(self, graph, space, workers, memory):
            raise BrokenProcessPool("worker killed by test")

        monkeypatch.setattr(CostModel, "_build_arrays_parallel", explode)
        graph, space = make_problem()
        cache = TableCache(tmp_path / "cache")
        with caplog.at_level("WARNING", logger="repro.core.costmodel"):
            tables = CostModel(GTX1080TI).build_tables(
                graph, space, jobs="processes:2", cache=cache)
        assert tables.build_stats["degraded"] == 1.0
        assert list(cache.entries()) == []
        assert any("not caching" in rec.message for rec in caplog.records)

    def test_oserror_also_degrades(self, monkeypatch, fast_faults):
        def explode(self, graph, space, workers, memory):
            raise OSError("fork: retry: resource temporarily unavailable")

        monkeypatch.setattr(CostModel, "_build_arrays_parallel", explode)
        graph, space = make_problem()
        tables = CostModel(GTX1080TI).build_tables(graph, space, jobs="processes:2")
        assert tables.build_stats["degraded"] == 1.0
        assert "OSError" in tables.degraded_reason


@pytest.mark.skipif(not IS_FORK, reason="needs fork start method so the "
                    "monkeypatched task reaches pool workers")
class TestRealWorkerDeath:
    def test_killed_worker_degrades_to_identical_serial(
            self, monkeypatch, fast_faults):
        """An actual pool child dying mid-task (os._exit, the moral
        equivalent of an OOM kill) must surface as BrokenProcessPool and
        degrade to a bit-identical serial build."""
        graph, space = make_problem()
        reference = CostModel(GTX1080TI).build_tables(graph, space)

        monkeypatch.setattr(costmodel, "_node_task", _die_in_worker)
        tables = CostModel(GTX1080TI).build_tables(graph, space, jobs="processes:2")
        assert tables.build_stats["degraded"] == 1.0
        assert tables_equal(tables, reference)


class TestInterruptibleBackoff:
    """The retry backoff must poll the run's checkpoint, not sleep
    through a SIGINT or a blown deadline (the fleet's per-task deadlines
    depend on this: a worker stuck in a 30s backoff is a straggler)."""

    def test_sleep_aborts_at_the_next_poll(self):
        import time as _time

        from repro.core.exceptions import RunInterrupted

        calls = {"n": 0}

        def checkpoint(**kwargs):
            calls["n"] += 1
            if calls["n"] >= 3:
                raise RunInterrupted("SIGINT", signal_name="SIGINT")

        t0 = _time.perf_counter()
        with pytest.raises(RunInterrupted):
            costmodel._interruptible_sleep(60.0, checkpoint)
        assert _time.perf_counter() - t0 < 5.0
        assert calls["n"] == 3

    def test_sleep_without_checkpoint_just_sleeps(self):
        costmodel._interruptible_sleep(0.0, None)  # must not raise

    def test_full_backoff_polls_then_returns(self):
        calls = {"n": 0}

        def checkpoint(**kwargs):
            calls["n"] += 1

        costmodel._interruptible_sleep(0.12, checkpoint)
        assert calls["n"] >= 2  # polled at least once per slice

    def test_build_retry_backoff_honors_cancellation(
            self, monkeypatch, fast_faults):
        """Cancel mid-backoff: the hardened build must unwind with
        RunInterrupted instead of finishing the sleep and degrading."""
        import time as _time

        from concurrent.futures.process import BrokenProcessPool

        from repro.core.exceptions import RunInterrupted
        from repro.runtime import Cancellation, RunContext

        monkeypatch.setattr(costmodel, "PARALLEL_RETRY_BACKOFF_SECONDS",
                            60.0)

        cancel = Cancellation()

        def explode(self, graph, space, workers, memory):
            # Fail the first attempt, then request cancellation so the
            # backoff before the retry is where the poll must fire.
            cancel.set("SIGINT")
            raise BrokenProcessPool("worker killed by test")

        monkeypatch.setattr(CostModel, "_build_arrays_parallel", explode)
        graph, space = make_problem()
        ctx = RunContext(cancellation=cancel, jobs="processes:2")
        t0 = _time.perf_counter()
        with pytest.raises(RunInterrupted):
            CostModel(GTX1080TI).build_tables(graph, space, ctx=ctx)
        assert _time.perf_counter() - t0 < 5.0


class TestRuntimeSurfacesDegradation:
    def test_execute_search_reports_degraded_build(
            self, monkeypatch, fast_faults, tmp_path):
        from concurrent.futures.process import BrokenProcessPool

        from repro.runtime import SearchJournal, execute_search

        def explode(self, graph, space, workers, memory):
            raise BrokenProcessPool("worker killed by test")

        monkeypatch.setattr(CostModel, "_build_arrays_parallel", explode)
        graph, space = make_problem()
        fresh = execute_search(graph, space, GTX1080TI).result
        journal = SearchJournal(tmp_path / "journal")
        out = execute_search(graph, space, GTX1080TI, jobs="processes:2",
                             journal=journal)
        assert not out.report.clean
        assert any("serial" in d for d in out.report.degradations)
        assert any(ev["kind"] == "table-build-degraded"
                   for ev in journal.events)
        # Degraded, but still the exact answer.
        assert out.result.cost == fresh.cost
        assert out.result.strategy.assignment == fresh.strategy.assignment
