"""Tests for the crash-safe search journal."""

import json

import pytest

from repro.core.exceptions import JournalError
from repro.core.strategy import SearchResult, Strategy
from repro.runtime import JOURNAL_VERSION, SearchJournal

FP = {"version": 1, "tables_digest": "abc", "method": "ours", "seed": 0}


def make_result() -> SearchResult:
    return SearchResult(
        strategy=Strategy({"n0": (1, 2, 1, 1, 2), "n1": (4, 1, 1, 1, 1)}),
        cost=1.234567890123456e12,
        elapsed=0.25,
        method="pase-dp",
        stats={"dp_table_bytes": 1024.0, "table_build_seconds": 0.125},
    )


class TestLifecycle:
    def test_fresh_open_writes_snapshot(self, tmp_path):
        j = SearchJournal(tmp_path / "j")
        assert j.open(FP, resume=False) is False
        state = json.loads(j.path.read_text())
        assert state["version"] == JOURNAL_VERSION
        assert state["fingerprint"]["tables_digest"] == "abc"
        assert state["phases"] == {}

    def test_fresh_open_overwrites_previous_run(self, tmp_path):
        j = SearchJournal(tmp_path / "j")
        j.open(FP, resume=False)
        j.phase_done("tables", digest="abc")
        j2 = SearchJournal(tmp_path / "j")
        j2.open(FP, resume=False)
        assert j2.phase("tables") is None

    def test_resume_roundtrip(self, tmp_path):
        j = SearchJournal(tmp_path / "j")
        j.open(FP, resume=False)
        j.phase_done("tables", digest="abc", degraded=False)
        j.event("cache-quarantine", "1 entry")
        j2 = SearchJournal(tmp_path / "j")
        assert j2.open(FP, resume=True) is True
        assert j2.phase("tables")["done"] is True
        assert j2.events == [{"kind": "cache-quarantine", "detail": "1 entry"}]

    def test_resume_without_journal_fails(self, tmp_path):
        with pytest.raises(JournalError, match="no journal"):
            SearchJournal(tmp_path / "missing").open(FP, resume=True)

    def test_resume_fingerprint_mismatch_fails(self, tmp_path):
        j = SearchJournal(tmp_path / "j")
        j.open(FP, resume=False)
        other = dict(FP, seed=1)
        with pytest.raises(JournalError, match="different problem"):
            SearchJournal(tmp_path / "j").open(other, resume=True)

    def test_resume_corrupt_json_fails(self, tmp_path):
        j = SearchJournal(tmp_path / "j")
        j.open(FP, resume=False)
        j.path.write_text("{ torn mid-write")
        with pytest.raises(JournalError, match="unreadable"):
            SearchJournal(tmp_path / "j").open(FP, resume=True)

    def test_resume_unsupported_version_fails(self, tmp_path):
        j = SearchJournal(tmp_path / "j")
        j.open(FP, resume=False)
        state = json.loads(j.path.read_text())
        state["version"] = JOURNAL_VERSION + 99
        j.path.write_text(json.dumps(state))
        with pytest.raises(JournalError, match="version"):
            SearchJournal(tmp_path / "j").open(FP, resume=True)

    def test_fingerprint_normalized_tuples_match_lists(self, tmp_path):
        # run_fingerprint carries order as a tuple in memory but JSON
        # stores lists; they must compare equal across the round trip.
        fp = dict(FP, order=("a", "b"))
        j = SearchJournal(tmp_path / "j")
        j.open(fp, resume=False)
        assert SearchJournal(tmp_path / "j").open(
            dict(FP, order=["a", "b"]), resume=True) is True

    def test_flush_is_atomic_no_temp_left_behind(self, tmp_path):
        j = SearchJournal(tmp_path / "j")
        j.open(FP, resume=False)
        for _ in range(3):
            j.flush()
        assert [p.name for p in j.root.iterdir()] == ["journal.json"]


class TestResultReplay:
    def test_record_then_load_is_bit_identical(self, tmp_path):
        j = SearchJournal(tmp_path / "j")
        j.open(FP, resume=False)
        res = make_result()
        j.record_result(res)
        j2 = SearchJournal(tmp_path / "j")
        j2.open(FP, resume=True)
        loaded = j2.load_result()
        assert loaded is not None
        assert loaded.cost == res.cost  # exact, not approx
        assert loaded.elapsed == res.elapsed
        assert loaded.method == res.method
        assert loaded.stats == res.stats
        assert loaded.strategy.assignment == res.strategy.assignment

    def test_scalar_result_journals_pre_frontier_schema(self, tmp_path):
        """A scalar run's journal record has no ``frontier`` key — byte
        compatibility with journals written before the frontier existed."""
        j = SearchJournal(tmp_path / "j")
        j.open(FP, resume=False)
        j.record_result(make_result())
        state = json.loads(j.path.read_text())
        assert "frontier" not in state["phases"]["search"]

    def test_frontier_roundtrip_bit_identical(self, tmp_path):
        from repro.core.strategy import FrontierPoint
        base = make_result()
        pts = (
            FrontierPoint(cost=base.cost, peak_bytes=3.25e9,
                          strategy=base.strategy),
            FrontierPoint(cost=base.cost * 1.5, peak_bytes=1.125e9,
                          strategy=Strategy({"n0": (1, 1, 1, 1, 1),
                                             "n1": (2, 2, 1, 1, 1)})),
        )
        res = SearchResult(strategy=base.strategy, cost=base.cost,
                           elapsed=base.elapsed, method="pase-dp+frontier",
                           stats=base.stats, frontier=pts)
        j = SearchJournal(tmp_path / "j")
        j.open(FP, resume=False)
        j.record_result(res)
        j2 = SearchJournal(tmp_path / "j")
        j2.open(FP, resume=True)
        loaded = j2.load_result()
        assert loaded is not None
        assert len(loaded.frontier) == 2
        for got, want in zip(loaded.frontier, pts):
            assert got.cost == want.cost  # exact, not approx
            assert got.peak_bytes == want.peak_bytes
            assert got.strategy.assignment == want.strategy.assignment

    def test_load_result_none_before_search_finishes(self, tmp_path):
        j = SearchJournal(tmp_path / "j")
        j.open(FP, resume=False)
        j.phase_done("tables", digest="abc")
        assert j.load_result() is None

    def test_table_cache_lives_under_journal_root(self, tmp_path):
        j = SearchJournal(tmp_path / "j")
        cache = j.table_cache()
        assert cache.root == j.root / "tables"
