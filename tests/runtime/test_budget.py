"""Tests for RunBudget / Cancellation / make_checkpoint semantics."""

import pytest

from repro.core.exceptions import DeadlineExceededError, RunInterrupted
from repro.runtime import Cancellation, RunBudget, make_checkpoint


class TestRunBudget:
    def test_unbounded_by_default(self):
        b = RunBudget().start()
        assert b.remaining() == float("inf")
        assert not b.expired
        b.check("anywhere")  # never raises

    def test_zero_deadline_is_immediately_expired(self):
        b = RunBudget(deadline=0.0).start()
        assert b.expired
        with pytest.raises(DeadlineExceededError) as exc:
            b.check("tables[3/10]")
        assert exc.value.deadline_seconds == 0.0
        assert exc.value.elapsed_seconds >= 0.0
        assert exc.value.where == "tables[3/10]"
        assert "tables[3/10]" in str(exc.value)

    def test_generous_deadline_does_not_trip(self):
        b = RunBudget(deadline=3600.0).start()
        assert not b.expired
        assert 0.0 < b.remaining() <= 3600.0
        b.check()

    def test_start_is_idempotent(self):
        b = RunBudget(deadline=10.0).start()
        anchor = b.started
        assert b.start() is b
        assert b.started == anchor

    def test_check_autostarts(self):
        b = RunBudget(deadline=10.0)
        assert b.started is None
        b.check()
        assert b.started is not None

    def test_elapsed_before_start_is_zero(self):
        assert RunBudget().elapsed() == 0.0

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError):
            RunBudget(deadline=-1.0)

    def test_nonpositive_memory_budget_rejected(self):
        with pytest.raises(ValueError):
            RunBudget(memory_budget=0)


class TestCancellation:
    def test_clean_token_passes(self):
        c = Cancellation()
        assert not c.requested
        assert c.reason is None
        c.check("dp[5]")

    def test_set_then_check_raises(self):
        c = Cancellation()
        c.set("SIGINT")
        assert c.requested and c.reason == "SIGINT"
        with pytest.raises(RunInterrupted) as exc:
            c.check("dp[5/94]")
        assert exc.value.signal_name == "SIGINT"
        assert exc.value.where == "dp[5/94]"

    def test_first_reason_sticks(self):
        c = Cancellation()
        c.set("SIGINT")
        c.set("SIGTERM")
        assert c.reason == "SIGINT"


class TestMakeCheckpoint:
    def test_noop_without_collaborators(self):
        make_checkpoint()(phase="dp", step=1, total=2)

    def test_cancellation_wins_over_deadline(self):
        # An interrupted run must report *interrupted*, not whichever
        # deadline it also happened to cross while unwinding.
        budget = RunBudget(deadline=0.0).start()
        cancel = Cancellation()
        cancel.set("SIGINT")
        cp = make_checkpoint(budget, cancel)
        with pytest.raises(RunInterrupted):
            cp(phase="tables")

    def test_deadline_checked_when_not_cancelled(self):
        cp = make_checkpoint(RunBudget(deadline=0.0).start(), Cancellation())
        with pytest.raises(DeadlineExceededError):
            cp(phase="dp", step=3, total=9)

    def test_progress_reaches_journal(self, tmp_path):
        from repro.runtime import SearchJournal

        journal = SearchJournal(tmp_path / "j")
        journal.open({"k": 1}, resume=False)
        cp = make_checkpoint(None, None, journal)
        cp(phase="dp", step=7, total=9)
        assert journal.state["progress"] == {"phase": "dp", "step": 7,
                                             "total": 9}
