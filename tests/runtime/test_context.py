"""RunContext bundling, deprecation shims, and trace/phase coverage."""

from __future__ import annotations

import warnings

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.configs import ConfigSpace
from repro.core.costmodel import CostModel
from repro.core.dp import find_best_strategy
from repro.core.machine import GTX1080TI
from repro.obs import NULL_METRICS, NULL_TRACER, Metrics, Tracer, span_tree
from repro.runtime import RunBudget, RunContext, execute_search

from ..conftest import build_dag, small_dags


def _setup(graph, p=4):
    space = ConfigSpace.build(graph, p)
    model = CostModel(GTX1080TI)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        tables = model.build_tables(graph, space)
    return space, model, tables


# -- composition ---------------------------------------------------------------

def test_make_checkpoint_none_when_nothing_to_poll():
    assert RunContext().make_checkpoint() is None


def test_make_checkpoint_explicit_override_wins():
    calls = []

    def ckpt(**kwargs):
        calls.append(kwargs)

    ctx = RunContext(budget=RunBudget(), checkpoint=ckpt)
    assert ctx.make_checkpoint() is ckpt


def test_make_checkpoint_instruments_with_metrics():
    mx = Metrics()
    ctx = RunContext(budget=RunBudget(), metrics=mx)
    ckpt = ctx.make_checkpoint()
    ckpt(phase="tables")
    ckpt(phase="search")
    assert mx.counter("checkpoint_polls_total").snapshot() == 2
    assert mx.histogram("checkpoint_poll_seconds").count == 2


def test_make_checkpoint_plain_without_metrics():
    ctx = RunContext(budget=RunBudget())
    ckpt = ctx.make_checkpoint()
    ckpt(phase="tables")  # must not raise; no registry to bump


def test_observe_installs_pair_and_default_is_noop():
    from repro.obs import current_metrics, current_tracer

    tr, mx = Tracer(), Metrics()
    with RunContext(tracer=tr, metrics=mx).observe():
        assert current_tracer() is tr
        assert current_metrics() is mx
    with RunContext().observe():  # None slots leave ambient alone
        assert current_tracer() is NULL_TRACER
        assert current_metrics() is NULL_METRICS


def test_with_overrides_returns_variant():
    ctx = RunContext(jobs=2)
    ctx2 = ctx.with_overrides(jobs=4)
    assert ctx.jobs == 2 and ctx2.jobs == 4
    assert ctx2.budget is ctx.budget


def test_memory_budget_default_and_explicit():
    from repro.core.dp import DEFAULT_MEMORY_BUDGET

    assert RunContext().memory_budget == DEFAULT_MEMORY_BUDGET
    ctx = RunContext(budget=RunBudget(memory_budget=123))
    assert ctx.memory_budget == 123


# -- deprecation shims ---------------------------------------------------------

def test_execute_search_legacy_kwargs_warn_but_match(chain3):
    space, model, _ = _setup(chain3)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        clean = execute_search(chain3, space, GTX1080TI,
                               ctx=RunContext(budget=RunBudget()))
    with pytest.warns(DeprecationWarning, match="RunContext"):
        legacy = execute_search(chain3, space, GTX1080TI, budget=RunBudget())
    assert legacy.result.cost == clean.result.cost
    assert legacy.result.strategy.assignment == clean.result.strategy.assignment


def test_execute_search_rejects_ctx_plus_legacy(chain3):
    space, _, _ = _setup(chain3)
    with pytest.raises(TypeError, match="not both"):
        execute_search(chain3, space, GTX1080TI, ctx=RunContext(),
                       budget=RunBudget())


def test_build_tables_legacy_kwargs_warn_but_match(chain3):
    space = ConfigSpace.build(chain3, 4)
    model = CostModel(GTX1080TI)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        clean = model.build_tables(chain3, space, ctx=RunContext(jobs=1))
    with pytest.warns(DeprecationWarning, match="RunContext"):
        legacy = model.build_tables(chain3, space, jobs=1)
    for name in clean.lc:
        assert (legacy.lc[name] == clean.lc[name]).all()
    with pytest.raises(TypeError, match="not both"):
        model.build_tables(chain3, space, ctx=RunContext(), jobs=1)


def test_find_best_strategy_legacy_checkpoint_warns(chain3):
    space, model, tables = _setup(chain3)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        clean = find_best_strategy(chain3, space, tables)
        via_ctx = find_best_strategy(chain3, space, tables,
                                     ctx=RunContext(budget=RunBudget()))

    def ckpt(**kwargs):
        pass

    with pytest.warns(DeprecationWarning, match="RunContext"):
        legacy = find_best_strategy(chain3, space, tables, checkpoint=ckpt)
    assert legacy.cost == clean.cost == via_ctx.cost
    with pytest.raises(TypeError, match="not both"):
        find_best_strategy(chain3, space, tables, ctx=RunContext(),
                           checkpoint=ckpt)


def test_ctx_checkpoint_is_polled(chain3):
    space, model, tables = _setup(chain3)
    calls = []

    def ckpt(**kwargs):
        calls.append(kwargs)

    find_best_strategy(chain3, space, tables,
                       ctx=RunContext(checkpoint=ckpt))
    assert calls  # the DP loop cooperatively polled


# -- traced runs ---------------------------------------------------------------

def test_traced_run_is_bit_identical_and_covers_phases(diamond):
    space, _, _ = _setup(diamond)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        plain = execute_search(diamond, space, GTX1080TI)
        tr, mx = Tracer(), Metrics()
        traced = execute_search(diamond, space, GTX1080TI,
                                ctx=RunContext(tracer=tr, metrics=mx))
    assert traced.result.cost == plain.result.cost
    assert traced.result.strategy.assignment == plain.result.strategy.assignment
    roots = span_tree(tr.records)
    assert [r["name"] for r in roots] == ["run"]
    names = {r["name"] for r in tr.records}
    for phase in traced.report.phases:
        assert phase.name in names
    assert mx.counter("dp_cells_total").snapshot() > 0


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graph=small_dags(max_nodes=5))
def test_span_tree_covers_every_report_phase(graph):
    """Property: every phase the RunReport logs has a matching span."""
    space = ConfigSpace.build(graph, 4)
    tr = Tracer()
    outcome = execute_search(graph, space, GTX1080TI, reduce=True,
                             ctx=RunContext(tracer=tr))
    names = {r["name"] for r in tr.records}
    assert "run" in names
    for phase in outcome.report.phases:
        assert phase.name in names, (phase.name, sorted(names))
    # Single root, and it is the run span.
    roots = span_tree(tr.records)
    assert [r["name"] for r in roots] == ["run"]


def test_replayed_run_emits_zero_duration_spans(tmp_path, chain3):
    from repro.runtime import SearchJournal

    space, _, _ = _setup(chain3)
    journal = SearchJournal(tmp_path / "j")
    first = execute_search(chain3, space, GTX1080TI,
                           ctx=RunContext(journal=journal))
    tr = Tracer()
    journal2 = SearchJournal(tmp_path / "j")
    replay = execute_search(chain3, space, GTX1080TI, resume=True,
                            ctx=RunContext(journal=journal2, tracer=tr))
    assert replay.result.cost == first.result.cost
    replayed = [r for r in tr.records
                if (r.get("attrs") or {}).get("replayed")]
    assert {r["name"] for r in replayed} >= {"tables", "search"}
    for rec in replayed:
        if rec["name"] != "run":
            assert rec["seconds"] < 0.01
