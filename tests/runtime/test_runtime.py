"""End-to-end tests for the hardened runtime (`execute_search`)."""

import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configs import ConfigSpace
from repro.core.exceptions import (
    DeadlineExceededError,
    JournalError,
    RunInterrupted,
    SearchResourceError,
)
from repro.core.machine import GTX1080TI
from repro.runtime import (
    Cancellation,
    EXIT_DEADLINE,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_RESOURCE,
    RunBudget,
    SearchJournal,
    execute_search,
    run_fingerprint,
)
from tests.conftest import build_dag, small_dags


def make_problem(p: int = 4):
    graph = build_dag(4, [(0, 2), (1, 3)], param_mask=0b1010,
                      reduction_mask=0b0100)
    return graph, ConfigSpace.build(graph, p)


class TripAfter(Cancellation):
    """Cancellation that self-arms after ``n`` checkpoint polls — a
    deterministic stand-in for a SIGINT landing mid-run."""

    def __init__(self, n: int) -> None:
        super().__init__()
        self.n = n
        self.calls = 0

    def check(self, where: str = "") -> None:
        self.calls += 1
        if self.calls > self.n:
            self.set("SIGINT")
        super().check(where)


class TestCleanRun:
    def test_reports_zero_degradations(self):
        graph, space = make_problem()
        out = execute_search(graph, space, GTX1080TI)
        assert out.report.outcome == "ok"
        assert out.report.clean
        assert out.report.exit_code == EXIT_OK
        assert [ph.name for ph in out.report.phases] == ["tables", "search"]
        assert out.report.best_cost == out.result.cost
        assert "zero degradations" in out.report.summary()

    def test_matches_unhardened_search(self):
        from repro.core.costmodel import CostModel
        from repro.core.dp import find_best_strategy

        graph, space = make_problem()
        tables = CostModel(GTX1080TI).build_tables(graph, space)
        plain = find_best_strategy(graph, space, tables)
        hardened = execute_search(graph, space, GTX1080TI).result
        assert hardened.cost == plain.cost
        assert hardened.strategy.assignment == plain.strategy.assignment

    def test_baseline_method_dispatch(self):
        graph, space = make_problem()
        out = execute_search(graph, space, GTX1080TI, method="data_parallel")
        assert out.result.method == "data_parallel"
        assert out.result.stats["table_build_seconds"] >= 0.0

    def test_reduce_flag_threads_through(self):
        graph, space = make_problem()
        plain = execute_search(graph, space, GTX1080TI).result
        # reduce="always" forces the reduction; plain reduce=True (auto)
        # bypasses it on a problem this small.
        reduced = execute_search(graph, space, GTX1080TI,
                                 reduce="always").result
        assert reduced.cost == pytest.approx(plain.cost)
        assert "reduction_seconds" in reduced.stats
        auto = execute_search(graph, space, GTX1080TI, reduce=True).result
        assert auto.cost == pytest.approx(plain.cost)
        assert auto.stats["reduction_bypassed"] == 1.0

    def test_requires_machine_or_model(self):
        graph, space = make_problem()
        with pytest.raises(ValueError, match="machine"):
            execute_search(graph, space)


class TestFailureModes:
    def test_zero_deadline_raises_with_report(self):
        graph, space = make_problem()
        with pytest.raises(DeadlineExceededError) as exc:
            execute_search(graph, space, GTX1080TI,
                           budget=RunBudget(deadline=0.0))
        report = exc.value.run_report
        assert report.outcome == "deadline"
        assert report.exit_code == EXIT_DEADLINE
        assert "DEADLINE" in report.summary()

    def test_tiny_memory_budget_raises_with_report(self):
        graph, space = make_problem()
        with pytest.raises(SearchResourceError) as exc:
            execute_search(graph, space, GTX1080TI,
                           budget=RunBudget(memory_budget=64))
        assert exc.value.run_report.outcome == "resource-error"
        assert exc.value.run_report.exit_code == EXIT_RESOURCE

    def test_resilient_survives_tiny_memory_budget(self):
        graph, space = make_problem()
        out = execute_search(graph, space, GTX1080TI, resilient=True,
                             budget=RunBudget(memory_budget=4096))
        assert out.resilience is not None
        if out.resilience.retries:
            assert out.report.degradations
            assert not out.report.clean

    def test_cancellation_raises_with_report(self):
        graph, space = make_problem()
        with pytest.raises(RunInterrupted) as exc:
            execute_search(graph, space, GTX1080TI,
                           cancellation=TripAfter(0))
        assert exc.value.run_report.outcome == "interrupted"
        assert exc.value.run_report.exit_code == EXIT_INTERRUPTED

    def test_resume_without_journal_rejected(self):
        graph, space = make_problem()
        with pytest.raises(JournalError, match="journal"):
            execute_search(graph, space, GTX1080TI, resume=True)


class TestJournalledRuns:
    def test_interrupt_then_resume_is_bit_identical(self, tmp_path):
        graph, space = make_problem()
        fresh = execute_search(graph, space, GTX1080TI).result

        journal = SearchJournal(tmp_path / "journal")
        with pytest.raises(RunInterrupted):
            execute_search(graph, space, GTX1080TI, journal=journal,
                           cancellation=TripAfter(5))

        resumed = execute_search(graph, space, GTX1080TI,
                                 journal=SearchJournal(tmp_path / "journal"),
                                 resume=True)
        assert resumed.result.cost == fresh.cost
        assert resumed.result.strategy.assignment == \
            fresh.strategy.assignment
        assert resumed.report.resumed
        assert resumed.report.clean

    def test_resume_after_tables_skips_rebuild(self, tmp_path):
        graph, space = make_problem()
        journal = SearchJournal(tmp_path / "journal")
        # Trip late enough that the tables phase completed and journalled.
        n_tasks = len(graph) + len(graph.edges)
        with pytest.raises(RunInterrupted):
            execute_search(graph, space, GTX1080TI, journal=journal,
                           cancellation=TripAfter(n_tasks + 1))
        resumed = execute_search(graph, space, GTX1080TI,
                                 journal=SearchJournal(tmp_path / "journal"),
                                 resume=True)
        assert resumed.result.stats["table_cache_hit"] == 1.0

    def test_finished_journal_replays_without_recompute(self, tmp_path):
        graph, space = make_problem()
        journal = SearchJournal(tmp_path / "journal")
        first = execute_search(graph, space, GTX1080TI, journal=journal)
        replay = execute_search(graph, space, GTX1080TI,
                                journal=SearchJournal(tmp_path / "journal"),
                                resume=True)
        assert replay.result.cost == first.result.cost
        assert replay.result.strategy.assignment == \
            first.result.strategy.assignment
        assert all(ph.status == "journal" for ph in replay.report.phases)

    def test_resume_different_problem_rejected(self, tmp_path):
        graph, space = make_problem()
        journal = SearchJournal(tmp_path / "journal")
        execute_search(graph, space, GTX1080TI, journal=journal)
        _, other_space = make_problem(p=8)
        with pytest.raises(JournalError, match="different problem"):
            execute_search(graph, other_space, GTX1080TI,
                           journal=SearchJournal(tmp_path / "journal"),
                           resume=True)

    def test_fingerprint_excludes_perf_knobs(self):
        from repro.core.costmodel import CostModel

        graph, space = make_problem()
        model = CostModel(GTX1080TI)
        base = dict(method="ours", seed=0, reduce=False, resilient=False,
                    memory_budget=1 << 30, order=None)
        assert run_fingerprint(graph, space, model, **base) == \
            run_fingerprint(graph, space, model, **base)
        changed = dict(base, seed=1)
        assert run_fingerprint(graph, space, model, **base) != \
            run_fingerprint(graph, space, model, **changed)


class TestObjectiveThreading:
    """The objective-aware API: scalar runs are byte-for-byte the old
    pipeline (fingerprint v2, no frontier work); frontier runs carry the
    exact Pareto set end to end."""

    def base_kwargs(self):
        return dict(method="ours", seed=0, reduce=False, resilient=False,
                    memory_budget=1 << 30, order=None)

    def test_scalar_fingerprint_is_v2_without_objective_key(self):
        from repro.core.costmodel import CostModel

        graph, space = make_problem()
        model = CostModel(GTX1080TI)
        implicit = run_fingerprint(graph, space, model, **self.base_kwargs())
        explicit = run_fingerprint(graph, space, model, objective="cost",
                                   **self.base_kwargs())
        assert implicit == explicit  # byte-identical dict
        assert implicit["version"] == 2
        assert "objective" not in implicit

    def test_frontier_fingerprint_is_v3(self):
        from repro.core.costmodel import CostModel

        graph, space = make_problem()
        model = CostModel(GTX1080TI)
        v2 = run_fingerprint(graph, space, model, **self.base_kwargs())
        v3 = run_fingerprint(graph, space, model, objective="frontier",
                             **self.base_kwargs())
        assert v3["version"] == 3
        assert v3["objective"] == "frontier"
        # The frontier's table digest covers the memory tables too.
        assert v3["tables_digest"] != v2["tables_digest"]
        eps = run_fingerprint(graph, space, model,
                              objective="frontier:eps=0.5",
                              **self.base_kwargs())
        assert eps["objective"] == "frontier:eps=0.5"
        assert eps != v3

    def test_invalid_objective_rejected_before_any_work(self):
        graph, space = make_problem()
        with pytest.raises(ValueError, match="objective"):
            execute_search(graph, space, GTX1080TI, objective="speed")

    def test_scalar_run_synthesizes_length_one_frontier(self):
        from repro.core.frontier import strategy_peak_bytes

        graph, space = make_problem()
        out = execute_search(graph, space, GTX1080TI)
        assert len(out.result.frontier) == 1
        pt = out.result.frontier[0]
        assert pt.cost == out.result.cost
        assert pt.strategy.assignment == out.result.strategy.assignment
        assert pt.peak_bytes == strategy_peak_bytes(graph, space,
                                                    out.result.strategy)

    def test_frontier_run_end_to_end(self):
        graph, space = make_problem()
        scalar = execute_search(graph, space, GTX1080TI).result
        out = execute_search(graph, space, GTX1080TI, objective="frontier")
        res = out.result
        assert res.method.endswith("+frontier")
        assert res.frontier[0].cost == scalar.cost  # bit-identical
        assert res.cost == scalar.cost
        assert res.stats["frontier_points"] == float(len(res.frontier))
        for a, b in zip(res.frontier, res.frontier[1:]):
            assert a.cost <= b.cost and a.peak_bytes > b.peak_bytes
        # Same report surface as a scalar run.
        assert [ph.name for ph in out.report.phases] == ["tables", "search"]
        assert out.report.clean

    def test_frontier_journal_replay_bit_identical(self, tmp_path):
        graph, space = make_problem()
        first = execute_search(graph, space, GTX1080TI,
                               objective="frontier",
                               journal=SearchJournal(tmp_path / "j"))
        replay = execute_search(graph, space, GTX1080TI,
                                objective="frontier",
                                journal=SearchJournal(tmp_path / "j"),
                                resume=True)
        assert all(ph.status == "journal" for ph in replay.report.phases)
        assert len(replay.result.frontier) == len(first.result.frontier)
        for got, want in zip(replay.result.frontier, first.result.frontier):
            assert got.cost == want.cost
            assert got.peak_bytes == want.peak_bytes
            assert got.strategy.assignment == want.strategy.assignment

    def test_scalar_and_frontier_journals_are_distinct_problems(
            self, tmp_path):
        graph, space = make_problem()
        execute_search(graph, space, GTX1080TI,
                       journal=SearchJournal(tmp_path / "j"))
        with pytest.raises(JournalError, match="different problem"):
            execute_search(graph, space, GTX1080TI, objective="frontier",
                           journal=SearchJournal(tmp_path / "j"),
                           resume=True)

    def test_frontier_with_reduce_and_resilient(self):
        import math

        graph, space = make_problem()
        plain = execute_search(graph, space, GTX1080TI,
                               objective="frontier").result
        red = execute_search(graph, space, GTX1080TI, objective="frontier",
                             reduce="always").result
        assert len(red.frontier) == len(plain.frontier)
        for a, b in zip(red.frontier, plain.frontier):
            assert math.isclose(a.cost, b.cost, rel_tol=1e-9)
            assert a.peak_bytes == b.peak_bytes
        res = execute_search(graph, space, GTX1080TI, objective="frontier",
                             resilient=True)
        assert res.result.frontier[0].cost == plain.frontier[0].cost


class TestResumeProperty:
    @settings(max_examples=12, deadline=None)
    @given(small_dags(max_nodes=5), st.sampled_from([2, 4]),
           st.integers(min_value=1, max_value=14))
    def test_interrupt_resume_equals_fresh(self, graph, p, trip_at):
        """Interrupt at a random checkpoint, resume, compare to a fresh
        run: bit-identical cost and strategy, regardless of where the
        interrupt landed."""
        space = ConfigSpace.build(graph, p)
        fresh = execute_search(graph, space, GTX1080TI).result
        with tempfile.TemporaryDirectory() as tmp:
            try:
                out = execute_search(graph, space, GTX1080TI,
                                     journal=SearchJournal(tmp),
                                     cancellation=TripAfter(trip_at))
                # Run finished before the trip point: nothing to resume,
                # but the journalled result must already match.
                assert out.result.cost == fresh.cost
                return
            except RunInterrupted:
                pass
            resumed = execute_search(graph, space, GTX1080TI,
                                     journal=SearchJournal(tmp),
                                     resume=True)
            assert resumed.result.cost == fresh.cost
            assert resumed.result.strategy.assignment == \
                fresh.strategy.assignment
