"""End-to-end tests for the hardened runtime (`execute_search`)."""

import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configs import ConfigSpace
from repro.core.exceptions import (
    DeadlineExceededError,
    JournalError,
    RunInterrupted,
    SearchResourceError,
)
from repro.core.machine import GTX1080TI
from repro.runtime import (
    Cancellation,
    EXIT_DEADLINE,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_RESOURCE,
    RunBudget,
    SearchJournal,
    execute_search,
    run_fingerprint,
)
from tests.conftest import build_dag, small_dags


def make_problem(p: int = 4):
    graph = build_dag(4, [(0, 2), (1, 3)], param_mask=0b1010,
                      reduction_mask=0b0100)
    return graph, ConfigSpace.build(graph, p)


class TripAfter(Cancellation):
    """Cancellation that self-arms after ``n`` checkpoint polls — a
    deterministic stand-in for a SIGINT landing mid-run."""

    def __init__(self, n: int) -> None:
        super().__init__()
        self.n = n
        self.calls = 0

    def check(self, where: str = "") -> None:
        self.calls += 1
        if self.calls > self.n:
            self.set("SIGINT")
        super().check(where)


class TestCleanRun:
    def test_reports_zero_degradations(self):
        graph, space = make_problem()
        out = execute_search(graph, space, GTX1080TI)
        assert out.report.outcome == "ok"
        assert out.report.clean
        assert out.report.exit_code == EXIT_OK
        assert [ph.name for ph in out.report.phases] == ["tables", "search"]
        assert out.report.best_cost == out.result.cost
        assert "zero degradations" in out.report.summary()

    def test_matches_unhardened_search(self):
        from repro.core.costmodel import CostModel
        from repro.core.dp import find_best_strategy

        graph, space = make_problem()
        tables = CostModel(GTX1080TI).build_tables(graph, space)
        plain = find_best_strategy(graph, space, tables)
        hardened = execute_search(graph, space, GTX1080TI).result
        assert hardened.cost == plain.cost
        assert hardened.strategy.assignment == plain.strategy.assignment

    def test_baseline_method_dispatch(self):
        graph, space = make_problem()
        out = execute_search(graph, space, GTX1080TI, method="data_parallel")
        assert out.result.method == "data_parallel"
        assert out.result.stats["table_build_seconds"] >= 0.0

    def test_reduce_flag_threads_through(self):
        graph, space = make_problem()
        plain = execute_search(graph, space, GTX1080TI).result
        # reduce="always" forces the reduction; plain reduce=True (auto)
        # bypasses it on a problem this small.
        reduced = execute_search(graph, space, GTX1080TI,
                                 reduce="always").result
        assert reduced.cost == pytest.approx(plain.cost)
        assert "reduction_seconds" in reduced.stats
        auto = execute_search(graph, space, GTX1080TI, reduce=True).result
        assert auto.cost == pytest.approx(plain.cost)
        assert auto.stats["reduction_bypassed"] == 1.0

    def test_requires_machine_or_model(self):
        graph, space = make_problem()
        with pytest.raises(ValueError, match="machine"):
            execute_search(graph, space)


class TestFailureModes:
    def test_zero_deadline_raises_with_report(self):
        graph, space = make_problem()
        with pytest.raises(DeadlineExceededError) as exc:
            execute_search(graph, space, GTX1080TI,
                           budget=RunBudget(deadline=0.0))
        report = exc.value.run_report
        assert report.outcome == "deadline"
        assert report.exit_code == EXIT_DEADLINE
        assert "DEADLINE" in report.summary()

    def test_tiny_memory_budget_raises_with_report(self):
        graph, space = make_problem()
        with pytest.raises(SearchResourceError) as exc:
            execute_search(graph, space, GTX1080TI,
                           budget=RunBudget(memory_budget=64))
        assert exc.value.run_report.outcome == "resource-error"
        assert exc.value.run_report.exit_code == EXIT_RESOURCE

    def test_resilient_survives_tiny_memory_budget(self):
        graph, space = make_problem()
        out = execute_search(graph, space, GTX1080TI, resilient=True,
                             budget=RunBudget(memory_budget=4096))
        assert out.resilience is not None
        if out.resilience.retries:
            assert out.report.degradations
            assert not out.report.clean

    def test_cancellation_raises_with_report(self):
        graph, space = make_problem()
        with pytest.raises(RunInterrupted) as exc:
            execute_search(graph, space, GTX1080TI,
                           cancellation=TripAfter(0))
        assert exc.value.run_report.outcome == "interrupted"
        assert exc.value.run_report.exit_code == EXIT_INTERRUPTED

    def test_resume_without_journal_rejected(self):
        graph, space = make_problem()
        with pytest.raises(JournalError, match="journal"):
            execute_search(graph, space, GTX1080TI, resume=True)


class TestJournalledRuns:
    def test_interrupt_then_resume_is_bit_identical(self, tmp_path):
        graph, space = make_problem()
        fresh = execute_search(graph, space, GTX1080TI).result

        journal = SearchJournal(tmp_path / "journal")
        with pytest.raises(RunInterrupted):
            execute_search(graph, space, GTX1080TI, journal=journal,
                           cancellation=TripAfter(5))

        resumed = execute_search(graph, space, GTX1080TI,
                                 journal=SearchJournal(tmp_path / "journal"),
                                 resume=True)
        assert resumed.result.cost == fresh.cost
        assert resumed.result.strategy.assignment == \
            fresh.strategy.assignment
        assert resumed.report.resumed
        assert resumed.report.clean

    def test_resume_after_tables_skips_rebuild(self, tmp_path):
        graph, space = make_problem()
        journal = SearchJournal(tmp_path / "journal")
        # Trip late enough that the tables phase completed and journalled.
        n_tasks = len(graph) + len(graph.edges)
        with pytest.raises(RunInterrupted):
            execute_search(graph, space, GTX1080TI, journal=journal,
                           cancellation=TripAfter(n_tasks + 1))
        resumed = execute_search(graph, space, GTX1080TI,
                                 journal=SearchJournal(tmp_path / "journal"),
                                 resume=True)
        assert resumed.result.stats["table_cache_hit"] == 1.0

    def test_finished_journal_replays_without_recompute(self, tmp_path):
        graph, space = make_problem()
        journal = SearchJournal(tmp_path / "journal")
        first = execute_search(graph, space, GTX1080TI, journal=journal)
        replay = execute_search(graph, space, GTX1080TI,
                                journal=SearchJournal(tmp_path / "journal"),
                                resume=True)
        assert replay.result.cost == first.result.cost
        assert replay.result.strategy.assignment == \
            first.result.strategy.assignment
        assert all(ph.status == "journal" for ph in replay.report.phases)

    def test_resume_different_problem_rejected(self, tmp_path):
        graph, space = make_problem()
        journal = SearchJournal(tmp_path / "journal")
        execute_search(graph, space, GTX1080TI, journal=journal)
        _, other_space = make_problem(p=8)
        with pytest.raises(JournalError, match="different problem"):
            execute_search(graph, other_space, GTX1080TI,
                           journal=SearchJournal(tmp_path / "journal"),
                           resume=True)

    def test_fingerprint_excludes_perf_knobs(self):
        from repro.core.costmodel import CostModel

        graph, space = make_problem()
        model = CostModel(GTX1080TI)
        base = dict(method="ours", seed=0, reduce=False, resilient=False,
                    memory_budget=1 << 30, order=None)
        assert run_fingerprint(graph, space, model, **base) == \
            run_fingerprint(graph, space, model, **base)
        changed = dict(base, seed=1)
        assert run_fingerprint(graph, space, model, **base) != \
            run_fingerprint(graph, space, model, **changed)


class TestResumeProperty:
    @settings(max_examples=12, deadline=None)
    @given(small_dags(max_nodes=5), st.sampled_from([2, 4]),
           st.integers(min_value=1, max_value=14))
    def test_interrupt_resume_equals_fresh(self, graph, p, trip_at):
        """Interrupt at a random checkpoint, resume, compare to a fresh
        run: bit-identical cost and strategy, regardless of where the
        interrupt landed."""
        space = ConfigSpace.build(graph, p)
        fresh = execute_search(graph, space, GTX1080TI).result
        with tempfile.TemporaryDirectory() as tmp:
            try:
                out = execute_search(graph, space, GTX1080TI,
                                     journal=SearchJournal(tmp),
                                     cancellation=TripAfter(trip_at))
                # Run finished before the trip point: nothing to resume,
                # but the journalled result must already match.
                assert out.result.cost == fresh.cost
                return
            except RunInterrupted:
                pass
            resumed = execute_search(graph, space, GTX1080TI,
                                     journal=SearchJournal(tmp),
                                     resume=True)
            assert resumed.result.cost == fresh.cost
            assert resumed.result.strategy.assignment == \
                fresh.strategy.assignment
