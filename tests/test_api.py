"""The `repro.api` facade: Problem / search / simulate / re-exports."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.api import (
    FrontierPoint,
    Problem,
    RunContext,
    RunOutcome,
    search,
    select_point,
    simulate,
)
from repro.core.machine import RTX2080TI


@pytest.fixture(scope="module")
def alexnet8() -> Problem:
    return Problem.from_benchmark("alexnet", p=8)


def test_from_benchmark_binds_instance(alexnet8):
    assert alexnet8.p == 8
    assert alexnet8.space.p == 8
    assert alexnet8.machine.name == "1080Ti"
    assert len(list(alexnet8.graph)) > 0


def test_from_benchmark_unknown_name():
    with pytest.raises(ValueError, match="unknown benchmark"):
        Problem.from_benchmark("resnet9000", p=8)


def test_from_benchmark_machine_and_mode():
    prob = Problem.from_benchmark("alexnet", p=4, machine=RTX2080TI,
                                  mode="divisors")
    assert prob.machine is RTX2080TI
    assert prob.space.mode == "divisors"


def test_from_graph(chain3):
    prob = Problem.from_graph(chain3, p=4)
    assert prob.p == 4
    assert prob.cost_model().machine is prob.machine


def test_search_matches_direct_pipeline(alexnet8):
    from repro.runtime import execute_search

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        via_api = search(alexnet8)
        direct = execute_search(alexnet8.graph, alexnet8.space,
                                alexnet8.machine)
    assert isinstance(via_api, RunOutcome)
    assert via_api.result.cost == direct.result.cost
    assert via_api.result.strategy.assignment == \
        direct.result.strategy.assignment


def test_search_accepts_ctx(alexnet8):
    from repro.obs import Metrics, Tracer

    tr, mx = Tracer(), Metrics()
    out = search(alexnet8, ctx=RunContext(tracer=tr, metrics=mx))
    assert {r["name"] for r in tr.records} >= {"run", "tables", "search"}
    assert mx.counter("dp_cells_total").snapshot() > 0
    assert out.result.cost > 0


def test_simulate_accepts_result_or_strategy(alexnet8):
    out = search(alexnet8, method="data_parallel")
    rep_from_result = simulate(alexnet8, out.result)
    rep_from_strategy = simulate(alexnet8, out.result.strategy)
    assert rep_from_result.step_time == rep_from_strategy.step_time
    assert rep_from_result.throughput > 0


def test_top_level_reexports():
    assert repro.Problem is Problem
    assert repro.RunContext is RunContext
    assert repro.search is search
    assert repro.simulate is simulate
    assert repro.api.Problem is Problem
    for name in ("Problem", "RunContext", "api", "obs", "search", "simulate"):
        assert name in repro.__all__


class TestFingerprint:
    """`Problem.fingerprint`: the public coalescing/caching key."""

    def test_stable_hex_digest(self, alexnet8):
        fp = alexnet8.fingerprint()
        assert fp == alexnet8.fingerprint()
        assert len(fp) == 64 and int(fp, 16) >= 0

    def test_equal_problems_have_equal_fingerprints(self, alexnet8):
        rebuilt = Problem.from_benchmark("alexnet", p=8)
        assert rebuilt.fingerprint() == alexnet8.fingerprint()

    def test_covers_search_parameters(self, alexnet8):
        base = alexnet8.fingerprint()
        assert alexnet8.fingerprint(seed=1) != base
        assert alexnet8.fingerprint(method="greedy") != base
        assert alexnet8.fingerprint(reduce=True) != base
        assert alexnet8.fingerprint(resilient=True) != base
        assert alexnet8.fingerprint(memory_budget=1 << 20) != base

    def test_covers_the_problem_itself(self, alexnet8):
        assert Problem.from_benchmark("alexnet", p=4).fingerprint() != \
            alexnet8.fingerprint()
        assert Problem.from_benchmark(
            "alexnet", p=8, machine=RTX2080TI).fingerprint() != \
            alexnet8.fingerprint()

    def test_reduce_spellings_resolve_before_hashing(self, alexnet8):
        # False/"off"/"never" are one resolved mode; True is "auto".
        assert alexnet8.fingerprint(reduce=False) == \
            alexnet8.fingerprint(reduce="off") == \
            alexnet8.fingerprint(reduce="never")
        assert alexnet8.fingerprint(reduce=True) == \
            alexnet8.fingerprint(reduce="auto")

    def test_default_memory_budget_is_explicit(self, alexnet8):
        from repro.core.dp import DEFAULT_MEMORY_BUDGET

        assert alexnet8.fingerprint() == \
            alexnet8.fingerprint(memory_budget=DEFAULT_MEMORY_BUDGET)

    def test_objective_in_fingerprint(self, alexnet8):
        base = alexnet8.fingerprint()
        assert alexnet8.fingerprint(objective="cost") == base
        frontier = alexnet8.fingerprint(objective="frontier")
        assert frontier != base
        assert alexnet8.fingerprint(objective="frontier:eps=0.1") != frontier


class TestFrontierApi:
    """`search(objective=)`, `select_point`, and the uniform
    ``.frontier`` surface."""

    @pytest.fixture(scope="class")
    def chain_problem(self):
        from tests.conftest import build_dag

        g = build_dag(4, [(0, 2)], param_mask=0b1010, reduction_mask=0b0100)
        return Problem.from_graph(g, p=8)

    def test_scalar_search_exposes_length_one_frontier(self, chain_problem):
        out = search(chain_problem)
        assert len(out.result.frontier) == 1
        assert isinstance(out.result.frontier[0], FrontierPoint)
        assert out.result.frontier[0].cost == out.result.cost

    def test_frontier_search_min_cost_bit_identical(self, chain_problem):
        scalar = search(chain_problem)
        out = search(chain_problem, objective="frontier")
        assert out.result.frontier[0].cost == scalar.result.cost
        assert len(out.result.frontier) >= 1

    def test_select_point_no_budget_returns_min_cost(self, chain_problem):
        out = search(chain_problem, objective="frontier")
        assert select_point(out.result.frontier, None) == \
            out.result.frontier[0]

    def test_select_point_budget_picks_cheapest_fit(self, chain_problem):
        out = search(chain_problem, objective="frontier")
        frontier = out.result.frontier
        smallest = frontier[-1]  # ascending cost => descending memory
        picked = select_point(frontier, smallest.peak_bytes)
        assert picked.peak_bytes <= smallest.peak_bytes
        assert picked == smallest

    def test_select_point_unsatisfiable_budget_raises(self, chain_problem):
        from repro.core.exceptions import SearchResourceError

        out = search(chain_problem, objective="frontier")
        tightest = min(pt.peak_bytes for pt in out.result.frontier)
        with pytest.raises(SearchResourceError) as exc:
            select_point(out.result.frontier, tightest - 1.0)
        assert exc.value.requested_bytes == int(tightest)
        assert exc.value.budget_bytes == int(tightest - 1.0)

    def test_select_point_empty_frontier_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            select_point((), None)

    def test_simulate_accepts_frontier_point(self, chain_problem):
        out = search(chain_problem, objective="frontier")
        pt = select_point(out.result.frontier, None)
        rep_from_point = simulate(chain_problem, pt)
        rep_from_strategy = simulate(chain_problem, pt.strategy)
        assert rep_from_point.step_time == rep_from_strategy.step_time

    def test_frontier_point_reexported(self):
        assert repro.api.FrontierPoint is FrontierPoint
