"""Tests for sharding-annotation export."""

import json

from repro.baselines import data_parallel_strategy
from repro.extensions import sharding_spec, to_gshard_json
from repro.models import mlp, rnnlm


class TestShardingSpec:
    def test_covers_all_nodes_and_ports(self):
        g = mlp(batch=16, hidden=(32,))
        spec = sharding_spec(g, data_parallel_strategy(g, 4))
        assert set(spec) == set(g.node_names)
        fc1 = spec["fc1"]
        assert set(fc1["tensors"]) == {"in", "w", "bias", "out"}
        assert fc1["devices"] == 4

    def test_nontrivial_splits_only(self):
        g = mlp(batch=16, hidden=(32,))
        spec = sharding_spec(g, data_parallel_strategy(g, 4))
        assert spec["fc1"]["iteration_splits"] == {"b": 4}

    def test_param_replication_visible(self):
        """The annotation exposes what GShard needs: data parallelism
        replicates weights across all devices."""
        g = mlp(batch=16, hidden=(32,))
        spec = sharding_spec(g, data_parallel_strategy(g, 4))
        w = spec["fc1"]["tensors"]["w"]
        assert w["param"] and w["replication"] == 4
        assert spec["fc1"]["tensors"]["in"]["replication"] == 1

    def test_json_roundtrip(self):
        g = rnnlm()
        text = to_gshard_json(g, data_parallel_strategy(g, 8))
        spec = json.loads(text)
        assert spec["lstm"]["iteration_splits"] == {"b": 8}
        assert spec["embedding"]["tensors"]["w"]["shape"] == [131072, 1024]
