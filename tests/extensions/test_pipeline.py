"""Tests for the PipeDream+PaSE composition."""

import pytest

from repro.core.exceptions import StrategyError
from repro.extensions import partition_stages, pipeline_pase
from repro.models import mlp, vgg16


class TestPartitionStages:
    def test_single_stage(self):
        g = mlp(batch=16, hidden=(32, 32))
        stages = partition_stages(g, 1)
        assert len(stages) == 1
        assert sorted(stages[0]) == sorted(g.node_names)

    def test_stages_cover_and_respect_order(self):
        g = vgg16()
        stages = partition_stages(g, 4)
        flat = [n for stage in stages for n in stage]
        assert flat == list(g.topological_order())
        assert all(stage for stage in stages)

    def test_balances_flops(self):
        g = vgg16()
        stages = partition_stages(g, 4)
        loads = [sum(g.node(n).flops for n in stage) for stage in stages]
        total = sum(loads)
        # min-max DP: heaviest stage within 2x of the even share.
        assert max(loads) <= 2 * total / 4

    def test_too_many_stages(self):
        g = mlp(batch=16, hidden=(32,))
        with pytest.raises(StrategyError):
            partition_stages(g, 100)

    def test_invalid_k(self):
        g = mlp(batch=16, hidden=(32,))
        with pytest.raises(StrategyError):
            partition_stages(g, 0)


class TestPipelinePase:
    def test_end_to_end(self):
        g = vgg16()
        res = pipeline_pase(g, 8, 2)
        assert res.devices_per_stage == 4
        assert len(res.stages) == len(res.strategies) == len(res.stage_costs) == 2
        res.combined.validate(g, 4)
        assert set(res.combined.nodes()) == set(g.node_names)
        assert 0 < res.pipeline_efficiency <= 1.0

    def test_bottleneck_cost(self):
        g = vgg16()
        res = pipeline_pase(g, 8, 2)
        assert res.bottleneck_cost == max(res.stage_costs)

    def test_uneven_split_rejected(self):
        g = vgg16()
        with pytest.raises(StrategyError):
            pipeline_pase(g, 8, 3)

    def test_stage_costs_balanced(self):
        g = vgg16()
        one = pipeline_pase(g, 8, 1)
        four = pipeline_pase(g, 8, 4)
        # Four stages each do ~1/4 of the work on 1/4 of the devices, so
        # the bottleneck stays in the same ballpark as the single stage
        # (pipelining trades device count for stage concurrency) and the
        # stage loads come out balanced.
        assert four.bottleneck_cost < 2 * one.bottleneck_cost
        assert max(four.stage_costs) <= 2.5 * (
            sum(four.stage_costs) / len(four.stage_costs))
