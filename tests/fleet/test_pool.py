"""Persistent worker pool: reuse accounting, recycling, crash burning.

The pool must be invisible at the protocol level — same task files, same
failure semantics, byte-identical merges — while actually reusing
processes.  Bookkeeping (recycling, dead-worker replacement) is pinned
against a fake multiprocessing context so the tests are instant and
deterministic; end-to-end behaviour runs through the real supervisor.
"""

import json
import multiprocessing
import queue
from pathlib import Path

import pytest

from repro.fleet import FleetSupervisor, SweepSpec
from repro.fleet.pool import WorkerPool, pool_worker_main

FAST = dict(backoff_base=0.01, backoff_cap=0.1)


def sweep_spec(**overrides):
    base = dict(models=["alexnet"], ps=[2, 4], methods=["ours"],
                modes=["pow2"])
    base.update(overrides)
    return SweepSpec.from_dict(base)


def run_fleet(spec, fleet_dir, **kwargs):
    opts = dict(FAST)
    opts.update(kwargs)
    resume = opts.pop("resume", False)
    return FleetSupervisor(spec, fleet_dir, **opts).run(resume=resume)


# -- fake multiprocessing context for bookkeeping tests ----------------------


class FakeProcess:
    def __init__(self, target=None, args=(), name=""):
        self.name = name
        self.alive = True
        self.pid = 4242

    def start(self):
        pass

    def is_alive(self):
        return self.alive

    def join(self, timeout=None):
        self.alive = False

    def terminate(self):
        self.alive = False

    def kill(self):
        self.alive = False


class FakeQueue:
    def __init__(self):
        self.items = []

    def put(self, item):
        self.items.append(item)

    def put_nowait(self, item):
        self.items.append(item)

    def close(self):
        pass

    def cancel_join_thread(self):
        pass


class FakeCtx:
    Process = FakeProcess
    Queue = FakeQueue


def make_pool(**kwargs):
    kwargs.setdefault("mp_ctx", FakeCtx())
    kwargs.setdefault("fleet_dir", "/nonexistent")
    kwargs.setdefault("options", {})
    return WorkerPool(**kwargs)


class TestPoolBookkeeping:
    def test_width1_reuses_one_process(self):
        pool = make_pool(max_workers=1)
        for i in range(5):
            pool.submit(f"t{i}", {"model": "alexnet"}, 1)
            pool.release(f"t{i}")
        assert pool.spawned == 1
        assert pool.reused == 4

    def test_recycle_after_one_task_spawns_per_task(self):
        pool = make_pool(max_workers=1, recycle_after=1)
        for i in range(3):
            pool.submit(f"t{i}", {"model": "alexnet"}, 1)
            pool.release(f"t{i}")
        assert pool.spawned == 3
        assert pool.reused == 0

    def test_dead_worker_is_replaced_not_reused(self):
        pool = make_pool(max_workers=2)
        proc = pool.submit("t0", {"model": "alexnet"}, 1)
        proc.alive = False  # burned itself (task failure)
        pool.release("t0")
        pool.submit("t1", {"model": "alexnet"}, 1)
        assert pool.spawned == 2
        assert pool.reused == 0

    def test_spawn_and_reuse_callbacks_fire(self):
        events = []
        pool = make_pool(max_workers=1,
                         on_spawn=lambda: events.append("spawn"),
                         on_reuse=lambda: events.append("reuse"))
        pool.submit("t0", {}, 1)
        pool.release("t0")
        pool.submit("t1", {}, 1)
        assert events == ["spawn", "reuse"]

    def test_shutdown_sentinels_idle_and_terms_busy(self):
        pool = make_pool(max_workers=2)
        pool.submit("t0", {}, 1)
        busy_proc = pool.submit("t1", {}, 1)  # second, distinct worker
        pool.release("t0")                    # first goes idle
        idle_inbox = pool._idle[0].inbox if pool._idle else None
        pool.shutdown(grace=0.01)
        assert not busy_proc.alive
        assert idle_inbox is not None and idle_inbox.items[-1] is None
        assert pool._busy == {} and pool._idle == []

    def test_per_task_options_ride_the_inbox(self):
        pool = make_pool(max_workers=1)
        pool.submit("t0", {"model": "alexnet"}, 1,
                    options={"task_deadline": 1.5})
        inbox = pool._busy["t0"].inbox
        task_dict, attempt, extra = inbox.items[-1]
        assert task_dict == {"model": "alexnet"}
        assert attempt == 1
        assert extra == {"task_deadline": 1.5}
        pool.release("t0")
        # Omitted options travel as None, not an empty dict.
        pool.submit("t1", {}, 2)
        assert pool._busy["t1"].inbox.items[-1] == ({}, 2, None)


class TestPoolWorkerProcess:
    def test_orphan_exits_when_parent_is_gone(self):
        """A pool worker whose supervisor vanished must exit on its own
        instead of lingering as an orphan."""
        ctx = multiprocessing.get_context()
        inbox = ctx.Queue()
        proc = ctx.Process(target=pool_worker_main,
                           args=(inbox, "/nonexistent", {}, 1))
        proc.start()  # parent pid 1 is never ours
        proc.join(timeout=10)
        assert proc.exitcode == 0

    def test_sentinel_stops_worker_cleanly(self):
        ctx = multiprocessing.get_context()
        inbox = ctx.Queue()
        inbox.put(None)
        proc = ctx.Process(
            target=pool_worker_main,
            args=(inbox, "/nonexistent", {}, multiprocessing.current_process().pid))
        proc.start()
        proc.join(timeout=10)
        assert proc.exitcode == 0


class TestPoolEndToEnd:
    def test_persistent_reuses_and_merges_identically(self, tmp_path):
        spec = sweep_spec(seeds=[0, 1])  # 4 tasks
        rep_pool = run_fleet(spec, tmp_path / "pool", workers=1,
                             pool="persistent")
        rep_spawn = run_fleet(spec, tmp_path / "spawn", workers=1,
                              pool="spawn")
        assert rep_pool.clean and rep_spawn.clean
        assert rep_pool.workers_spawned == 1
        assert rep_pool.workers_reused == rep_pool.tasks_total - 1
        assert rep_spawn.workers_spawned == rep_spawn.tasks_total
        assert rep_spawn.workers_reused == 0
        assert (tmp_path / "pool" / "results.jsonl").read_bytes() == \
            (tmp_path / "spawn" / "results.jsonl").read_bytes()
        summary = json.loads(
            (tmp_path / "pool" / "summary.json").read_text())
        assert summary["pool"] == "persistent"
        assert summary["workers_spawned"] == 1
        assert summary["workers_reused"] == rep_pool.tasks_total - 1

    def test_failed_task_burns_its_worker(self, tmp_path):
        spec = sweep_spec(ps=[2], tasks=[{
            "model": "alexnet", "p": 4,
            "chaos": {"kind": "raise", "attempts": 1}}])
        report = run_fleet(spec, tmp_path / "fleet", workers=1,
                           pool="persistent")
        assert report.clean
        assert report.retries == 1
        # The failing attempt's worker died with it; a fresh process
        # served the retry, so at least two forks happened.
        assert report.workers_spawned >= 2

    def test_persistent_is_the_default(self, tmp_path):
        spec = sweep_spec(ps=[2])
        sup = FleetSupervisor(spec, tmp_path / "fleet", workers=1, **FAST)
        assert sup.pool == "persistent"
        report = sup.run()
        assert report.clean and report.pool == "persistent"

    def test_bad_pool_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="pool"):
            FleetSupervisor(sweep_spec(), tmp_path / "fleet",
                            pool="forkbomb")

    def test_resume_under_persistent_pool(self, tmp_path):
        """Kill-free resume parity: a drained sweep resumed under the
        pool replays results without rerunning anything."""
        spec = sweep_spec(seeds=[0, 1])
        run_fleet(spec, tmp_path / "fleet", workers=2, pool="persistent")
        first = (tmp_path / "fleet" / "results.jsonl").read_bytes()
        rep = run_fleet(spec, tmp_path / "fleet", workers=2,
                        pool="persistent", resume=True)
        assert rep.resumed and rep.completed_this_run == 0
        assert (tmp_path / "fleet" / "results.jsonl").read_bytes() == first
