"""Fleet manifest: crash-safe state machine for sweep tasks."""

import json

import pytest

from repro.core.exceptions import JournalError
from repro.fleet import FleetManifest, MANIFEST_VERSION

IDS = ["aaaa", "bbbb", "cccc"]
FP = "f" * 64


@pytest.fixture
def manifest(tmp_path):
    m = FleetManifest(tmp_path / "fleet")
    m.open(FP, list(IDS))
    return m


class TestLifecycle:
    def test_fresh_open_writes_all_pending(self, manifest):
        assert manifest.path.is_file()
        assert manifest.in_state("pending") == IDS
        counts = manifest.counts()
        assert counts["pending"] == 3 and counts["done"] == 0

    def test_transitions_and_attempt_counting(self, manifest):
        manifest.mark_running("aaaa", pid=123)
        assert manifest.task_state("aaaa") == "running"
        assert manifest.task("aaaa")["attempts"] == 1
        manifest.mark_done("aaaa", seconds=1.5)
        assert manifest.task_state("aaaa") == "done"
        assert "pid" not in manifest.task("aaaa")

    def test_failure_retries_until_quarantine(self, manifest):
        for expected in ("pending", "pending", "quarantined"):
            manifest.mark_running("bbbb", pid=1)
            state = manifest.mark_failed(
                "bbbb", detail="boom", kind="error", max_attempts=3)
            assert state == expected
        counts = manifest.counts()
        assert counts["quarantined"] == 1
        assert counts["retries"] == 2
        assert manifest.task("bbbb")["last_error"]["detail"] == "boom"

    def test_failure_kinds_feed_their_counters(self, manifest):
        manifest.mark_running("aaaa", pid=1)
        manifest.mark_failed("aaaa", detail="d", kind="crash",
                             max_attempts=9)
        manifest.mark_running("bbbb", pid=2)
        manifest.mark_failed("bbbb", detail="d", kind="straggler",
                             max_attempts=9)
        counts = manifest.counts()
        assert counts["worker_crashes"] == 1
        assert counts["stragglers_killed"] == 1

    def test_every_flush_is_a_complete_snapshot(self, manifest):
        manifest.mark_running("aaaa", pid=7)
        on_disk = json.loads(manifest.path.read_text())
        assert on_disk["version"] == MANIFEST_VERSION
        assert on_disk["tasks"]["aaaa"]["state"] == "running"
        # No temp files left behind by the atomic writes.
        assert list(manifest.root.glob("*.tmp")) == []


class TestResume:
    def test_resume_demotes_running_tasks(self, manifest):
        manifest.mark_running("aaaa", pid=1)
        manifest.mark_done("aaaa", seconds=0.1)
        manifest.mark_running("bbbb", pid=2)

        fresh = FleetManifest(manifest.root)
        assert fresh.open(FP, list(IDS), resume=True) is True
        assert fresh.task_state("aaaa") == "done"
        assert fresh.task_state("bbbb") == "pending"
        counts = fresh.counts()
        assert counts["resumes"] == 1
        assert counts["reassigned_on_resume"] == 1

    def test_resume_keeps_attempt_history(self, manifest):
        manifest.mark_running("cccc", pid=3)
        fresh = FleetManifest(manifest.root)
        fresh.open(FP, list(IDS), resume=True)
        assert fresh.task("cccc")["attempts"] == 1

    def test_resume_rejects_a_different_spec(self, manifest):
        fresh = FleetManifest(manifest.root)
        with pytest.raises(JournalError, match="fingerprint"):
            fresh.open("0" * 64, list(IDS), resume=True)

    def test_resume_rejects_a_different_task_set(self, manifest):
        fresh = FleetManifest(manifest.root)
        with pytest.raises(JournalError, match="task set"):
            fresh.open(FP, IDS + ["dddd"], resume=True)

    def test_resume_without_a_manifest_fails_loudly(self, tmp_path):
        with pytest.raises(JournalError, match="no fleet manifest"):
            FleetManifest(tmp_path / "empty").open(
                FP, list(IDS), resume=True)

    def test_resume_rejects_an_unsupported_version(self, manifest):
        state = json.loads(manifest.path.read_text())
        state["version"] = MANIFEST_VERSION + 1
        manifest.path.write_text(json.dumps(state))
        with pytest.raises(JournalError, match="version"):
            FleetManifest(manifest.root).open(FP, list(IDS), resume=True)

    def test_resume_rejects_a_torn_manifest(self, manifest):
        manifest.path.write_text("{not json")
        with pytest.raises(JournalError, match="unreadable"):
            FleetManifest(manifest.root).open(FP, list(IDS), resume=True)

    def test_fresh_open_overwrites_an_old_fleet(self, manifest):
        manifest.mark_running("aaaa", pid=1)
        fresh = FleetManifest(manifest.root)
        assert fresh.open("1" * 64, ["xxxx"]) is False
        assert fresh.in_state("pending") == ["xxxx"]
