"""Sweep-spec expansion: deterministic, validated, loudly rejected."""

import json

import pytest

from repro.fleet import SPEC_VERSION, SweepSpec, SweepSpecError, SweepTask


def small_spec(**overrides):
    base = dict(models=["alexnet"], ps=[2, 4],
                methods=["ours", "data_parallel"])
    base.update(overrides)
    return SweepSpec.from_dict(base)


class TestExpansion:
    def test_grid_size_is_the_cross_product(self):
        assert len(small_spec().expand()) == 4

    def test_expansion_order_is_deterministic(self):
        a = [t.task_id for t in small_spec().expand()]
        b = [t.task_id for t in small_spec().expand()]
        assert a == b

    def test_grid_order_follows_field_order(self):
        tasks = small_spec().expand()
        # ps is an outer axis relative to methods.
        assert [(t.p, t.method) for t in tasks] == [
            (2, "ours"), (2, "data_parallel"),
            (4, "ours"), (4, "data_parallel")]

    def test_explicit_tasks_append_after_the_grid(self):
        spec = small_spec(tasks=[{"model": "rnnlm", "p": 4}])
        tasks = spec.expand()
        assert len(tasks) == 5
        assert tasks[-1].model == "rnnlm"

    def test_fault_plans_expand_with_names(self):
        plan = {"name": "slow2", "plan": {
            "stragglers": [{"device": 0, "slowdown": 2.0}]}}
        spec = small_spec(fault_plans=[None, plan])
        tasks = spec.expand()
        assert len(tasks) == 8
        named = [t for t in tasks if t.faults is not None]
        assert len(named) == 4
        assert all(t.faults_name == "slow2" for t in named)

    def test_zero_tasks_rejected(self):
        with pytest.raises(SweepSpecError, match="zero tasks"):
            SweepSpec.from_dict({"models": []}).expand()

    def test_duplicate_tasks_rejected(self):
        spec = small_spec(tasks=[{"model": "alexnet", "p": 2}])
        with pytest.raises(SweepSpecError, match="duplicate"):
            spec.expand()

    def test_malformed_fault_plan_entry_rejected(self):
        spec = small_spec(fault_plans=[{"oops": True}])
        with pytest.raises(SweepSpecError, match="fault_plans"):
            spec.expand()


class TestValidation:
    @pytest.mark.parametrize("field,value,match", [
        ("models", ["lenet"], "unknown model"),
        ("machines", ["tpu"], "unknown machine"),
        ("ps", [0], "must be >= 1"),
        ("modes", ["weird"], "unknown mode"),
        ("methods", ["magic"], "unknown method"),
    ])
    def test_bad_axis_values_rejected(self, field, value, match):
        with pytest.raises(SweepSpecError, match=match):
            small_spec(**{field: value}).expand()

    def test_bad_chaos_kind_rejected(self):
        spec = small_spec(
            tasks=[{"model": "rnnlm", "chaos": {"kind": "dance"}}])
        with pytest.raises(SweepSpecError, match="chaos kind"):
            spec.expand()

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(SweepSpecError, match="unknown field"):
            SweepSpec.from_dict({"models": ["alexnet"], "colour": "red"})

    def test_unknown_task_field_rejected(self):
        with pytest.raises(SweepSpecError, match="unknown field"):
            SweepTask.from_dict({"model": "alexnet", "gpu": 9})

    def test_future_version_rejected(self):
        with pytest.raises(SweepSpecError, match="version"):
            SweepSpec.from_dict({"version": SPEC_VERSION + 1,
                                 "models": ["alexnet"]})


class TestIdentity:
    def test_task_id_is_stable_and_content_addressed(self):
        a = SweepTask(model="alexnet", p=4)
        b = SweepTask(model="alexnet", p=4)
        c = SweepTask(model="alexnet", p=8)
        assert a.task_id == b.task_id
        assert a.task_id != c.task_id

    def test_chaos_participates_in_the_task_id(self):
        plain = SweepTask(model="alexnet")
        chaotic = SweepTask(model="alexnet", chaos={"kind": "raise"})
        assert plain.task_id != chaotic.task_id

    def test_fingerprint_pins_the_whole_spec(self):
        assert small_spec().fingerprint() == small_spec().fingerprint()
        assert small_spec().fingerprint() != \
            small_spec(seeds=[1]).fingerprint()

    def test_roundtrips_through_json(self):
        spec = small_spec(fault_plans=[None])
        again = SweepSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert again.fingerprint() == spec.fingerprint()


class TestObjectiveAxis:
    def test_objective_axis_expands(self):
        spec = small_spec(methods=["ours"],
                          objectives=["cost", "frontier"])
        tasks = spec.expand()
        assert len(tasks) == 4
        assert sorted({t.objective for t in tasks}) == ["cost", "frontier"]

    def test_default_objective_omitted_from_task_dict(self):
        """Pre-frontier task ids must not churn: a default-objective task
        serializes without the field, so journal directories and
        manifest slots keyed on the id stay valid across resumes."""
        task = SweepTask(model="alexnet", p=4)
        assert "objective" not in task.to_dict()
        assert task.task_id == \
            SweepTask(model="alexnet", p=4, objective="cost").task_id

    def test_frontier_objective_changes_task_id_and_label(self):
        plain = SweepTask(model="alexnet")
        frontier = SweepTask(model="alexnet", objective="frontier")
        assert plain.task_id != frontier.task_id
        assert "frontier" in frontier.label
        assert "frontier" not in plain.label

    def test_default_objectives_axis_omitted_from_spec_dict(self):
        spec = small_spec()
        assert "objectives" not in spec.to_dict()
        assert spec.fingerprint() == \
            small_spec(objectives=["cost"]).fingerprint()
        assert spec.fingerprint() != \
            small_spec(methods=["ours"],
                       objectives=["cost", "frontier"]).fingerprint()

    def test_bad_objective_rejected(self):
        with pytest.raises(SweepSpecError, match="objective"):
            small_spec(methods=["ours"], objectives=["speed"]).expand()

    def test_frontier_requires_ours(self):
        spec = small_spec(objectives=["frontier"])  # includes data_parallel
        with pytest.raises(SweepSpecError, match="requires method 'ours'"):
            spec.expand()

    def test_eps_objective_round_trips(self):
        spec = small_spec(methods=["ours"],
                          objectives=["frontier:eps=0.1"])
        tasks = spec.expand()
        assert all(t.objective == "frontier:eps=0.1" for t in tasks)
        again = SweepSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert again.fingerprint() == spec.fingerprint()


class TestFromFile:
    def test_reads_a_spec_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"models": ["alexnet"], "ps": [2]}))
        assert len(SweepSpec.from_file(path).expand()) == 1

    def test_missing_file_is_a_spec_error(self, tmp_path):
        with pytest.raises(SweepSpecError, match="cannot read"):
            SweepSpec.from_file(tmp_path / "nope.json")

    def test_invalid_json_is_a_spec_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(SweepSpecError, match="not valid JSON"):
            SweepSpec.from_file(path)

    def test_non_object_json_is_a_spec_error(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(SweepSpecError, match="must be an object"):
            SweepSpec.from_file(path)
